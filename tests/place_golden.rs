//! Golden tests for device/edge placement plans: an `all_local` plan
//! must be bit-identical to the pre-placement pipeline, adaptive runs
//! must be deterministic under same-seed reruns, migrations under a
//! scheduled link outage must land inside the governor's recovery
//! budget, a quiet fault plan must produce zero migrations, and a
//! recorded adaptive run must replay its migration decisions exactly
//! from the `place/vio` boundary stream.

use std::sync::Arc;
use std::time::Duration;

use illixr_core::boundary::{Boundary, TraceSource};
use illixr_core::fault::{FaultKind, FaultPlan, FaultWindow};
use illixr_core::link::{Direction, LinkProfile};
use illixr_core::obs::{chrome_trace_json, metrics_csv};
use illixr_core::sched::{PlacementConfig, PlacementPlan, Side};
use illixr_platform::spec::Platform;
use illixr_render::apps::Application;
use illixr_system::experiment::{
    ExperimentConfig, IntegratedExperiment, VISUAL_DEVICE_CHAIN, VISUAL_EDGE_CHAIN,
};

/// Outage window used by every degraded-link test below.
const OUTAGE: (u64, u64) = (800_000_000, 1_400_000_000);

fn outage_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).with_window(FaultWindow::new(
        FaultKind::LinkOutage,
        Direction::Uplink.label(),
        OUTAGE.0,
        OUTAGE.1,
        1.0,
    ))
}

/// An adaptive run long enough for the default governor ladder to
/// escalate during [`OUTAGE`] and restore afterwards.
fn adaptive_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(Application::Platformer, Platform::Desktop)
        .with_fault_plan(outage_plan(9))
        .with_link_profile(LinkProfile::wifi())
        .with_placement(PlacementPlan::adaptive("vio", Side::Edge));
    cfg.duration = Duration::from_secs_f64(3.5);
    cfg
}

#[test]
fn all_local_plan_is_bit_identical_to_the_default_pipeline() {
    let base = ExperimentConfig::quick(Application::Sponza, Platform::JetsonLP).with_trace();
    let default_run = IntegratedExperiment::run(&base);
    let placed_cfg = base.clone().with_placement(PlacementPlan::all_local());
    assert_eq!(
        placed_cfg.config_hash(),
        base.config_hash(),
        "all_local must not perturb the config hash (pre-placement hashes are frozen)"
    );
    let placed = IntegratedExperiment::run(&placed_cfg);
    assert_eq!(default_run.mtp, placed.mtp);
    assert_eq!(default_run.chain_outcomes, placed.chain_outcomes);
    assert_eq!(default_run.telemetry.records("vio"), placed.telemetry.records("vio"));
    assert_eq!(
        metrics_csv(&default_run.metrics),
        metrics_csv(&placed.metrics),
        "all_local metrics.csv must be bit-identical to the default pipeline"
    );
    assert_eq!(
        chrome_trace_json(&default_run.tracer),
        chrome_trace_json(&placed.tracer),
        "all_local trace.json must be bit-identical to the default pipeline"
    );
    assert!(placed.migrations.is_empty());
    assert_eq!(placed.vio_final_side, Side::Device);
}

#[test]
fn quiet_fault_plan_produces_zero_migrations() {
    let mut adaptive = ExperimentConfig::quick(Application::Platformer, Platform::Desktop)
        .with_link_profile(LinkProfile::wifi())
        .with_placement(PlacementPlan::adaptive("vio", Side::Edge));
    adaptive.duration = Duration::from_secs(2);
    let mut pinned = adaptive.clone().with_placement(PlacementPlan::pinned("vio", Side::Edge));
    pinned.duration = adaptive.duration;

    let a = IntegratedExperiment::run(&adaptive);
    assert!(a.migrations.is_empty(), "healthy link must never migrate: {:?}", a.migrations);
    assert_eq!(a.vio_final_side, Side::Edge);

    // With no decisions to make, adaptive is the pinned-edge run.
    let p = IntegratedExperiment::run(&pinned);
    assert_eq!(a.mtp, p.mtp);
    assert_eq!(a.chain_outcomes, p.chain_outcomes);
    assert_eq!(a.telemetry.records("vio@edge"), p.telemetry.records("vio@edge"));
}

#[test]
fn outage_migration_recovers_within_the_governor_budget() {
    let cfg = adaptive_config();
    let run = IntegratedExperiment::run(&cfg);
    let m = &run.migrations;
    assert_eq!(m.len(), 2, "one escalation + one restore: {m:?}");
    assert_eq!((m[0].from, m[0].to), (Side::Edge, Side::Device));
    assert!(
        m[0].at_ns >= OUTAGE.0 && m[0].at_ns <= OUTAGE.1,
        "escalation must land inside the outage: {}",
        m[0].at_ns
    );
    let budget = PlacementConfig::default().recovery_budget_ns();
    assert_eq!((m[1].from, m[1].to), (Side::Device, Side::Edge));
    assert!(
        m[1].at_ns > OUTAGE.1 && m[1].at_ns <= OUTAGE.1 + budget,
        "restore must land within the governor budget: {} vs {}",
        m[1].at_ns,
        OUTAGE.1 + budget
    );
    assert_eq!(run.vio_final_side, Side::Edge);
    // Decisions only ever land on epoch boundaries (the determinism
    // rule): both sides of every migration are epoch multiples.
    let epoch = cfg.placement_config.epoch_ns;
    for mig in m {
        assert_eq!(mig.at_ns % epoch, 0, "migration off the epoch grid: {mig:?}");
    }
    // The cut really moved: both visual chains saw completed work.
    assert!(run.chain_miss_rate(VISUAL_DEVICE_CHAIN).is_some());
    assert!(run.chain_miss_rate(VISUAL_EDGE_CHAIN).is_some());
}

#[test]
fn adaptive_same_seed_rerun_is_bit_identical() {
    let cfg = adaptive_config();
    let a = IntegratedExperiment::run(&cfg);
    let b = IntegratedExperiment::run(&cfg);
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.mtp, b.mtp);
    assert_eq!(a.chain_outcomes, b.chain_outcomes);
    assert_eq!(a.telemetry.records("vio"), b.telemetry.records("vio"));
    assert_eq!(a.telemetry.records("vio@edge"), b.telemetry.records("vio@edge"));
}

/// Migration decisions are boundary-recorded on `place/vio`: replaying
/// the recording under a different config seed re-derives the same
/// migrations from the trace (not the controller's live inputs) and
/// re-records byte-identical boundary streams.
#[test]
fn recorded_adaptive_run_replays_migrations_exactly() {
    let record_cfg = adaptive_config().with_trace().with_boundary_record();
    let recorded = IntegratedExperiment::run(&record_cfg);
    assert_eq!(recorded.migrations.len(), 2, "recording should migrate: {:?}", recorded.migrations);
    let trace = recorded.boundary_trace.clone().expect("recording enabled");
    assert!(
        trace.streams.iter().any(|(name, _)| name == "place/vio"),
        "placement decisions must be on the boundary"
    );

    // Same scheduled fault plan (the outage is physical, not RNG), new
    // config seed: decisions must come from the recorded stream.
    let mut replay_cfg = adaptive_config()
        .with_trace()
        .with_boundary_record()
        .with_trace_source(TraceSource::new(Arc::new(trace.clone())));
    replay_cfg.seed ^= 0x9ACE_D0CE;
    let replayed = IntegratedExperiment::run(&replay_cfg);
    assert_eq!(recorded.migrations, replayed.migrations, "replayed migrations diverged");
    let rerec = replayed.boundary_trace.as_ref().expect("re-recording enabled");
    if rerec.encode() != trace.encode() {
        panic!(
            "re-recorded trace diverged:\n{}",
            Boundary::divergence_report(&trace, rerec, &replayed.stream_stats)
        );
    }
}
