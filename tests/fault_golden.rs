//! Golden tests for the fault-injection subsystem: same-seed faulted
//! runs must be bit-identical (the fault trials are stateless hashes of
//! seed × kind × target × sequence, so injection adds no new
//! nondeterminism), a plugin crash mid-run must be restarted by the
//! supervisor within its backoff budget with a bounded motion-to-photon
//! spike, the supervised adaptive runtime must strictly beat the
//! unsupervised baseline on chain-deadline misses at the same fault
//! intensity, and a zero-intensity plan must be a perfect no-op.

use std::time::Duration;

use illixr_core::fault::{FaultPlan, NS_PER_SEC};
use illixr_core::obs::{chrome_trace_json, metrics_csv};
use illixr_core::sched::PolicyKind;
use illixr_core::supervisor::{PluginHealth, SupervisionPolicy};
use illixr_platform::spec::Platform;
use illixr_render::apps::Application;
use illixr_system::experiment::{ExperimentConfig, ExperimentResult, IntegratedExperiment};
use proptest::prelude::*;

const SEED: u64 = 42;

/// The same contended single-core configuration as `sched_golden`, with
/// the canonical scheduled fault plan layered on top: sensor dropouts,
/// a mid-run link outage, and plugin crashes for `vio` and
/// `imu_integrator`.
fn faulted(policy: PolicyKind, supervised: bool, intensity: f64) -> ExperimentResult {
    let mut cfg = ExperimentConfig::quick(Application::Platformer, Platform::Desktop)
        .with_trace()
        .with_policy(policy)
        .with_load_factor(2.0)
        .with_cpu_cores(1);
    cfg.chain_deadline = Duration::from_millis(15);
    let plan = FaultPlan::scheduled(SEED, intensity, cfg.duration.as_nanos() as u64);
    cfg = cfg.with_fault_plan(plan);
    if supervised {
        cfg = cfg.with_supervision(SupervisionPolicy::default());
    }
    IntegratedExperiment::run(&cfg)
}

fn miss_rate(result: &ExperimentResult) -> f64 {
    let total = result.chain_outcomes.len().max(1);
    result.chain_outcomes.iter().filter(|o| o.missed).count() as f64 / total as f64
}

#[test]
fn faulted_runs_are_bit_identical_across_same_seed_runs() {
    let a = faulted(PolicyKind::Adaptive, true, 1.0);
    let b = faulted(PolicyKind::Adaptive, true, 1.0);
    assert_eq!(
        chrome_trace_json(&a.tracer),
        chrome_trace_json(&b.tracer),
        "faulted trace.json must be bit-identical for the same seed"
    );
    assert_eq!(
        metrics_csv(&a.metrics),
        metrics_csv(&b.metrics),
        "faulted metrics.csv must be bit-identical for the same seed"
    );
    assert_eq!(a.chain_outcomes, b.chain_outcomes);
    assert_eq!(a.supervisor.total_panics(), b.supervisor.total_panics());
    assert_eq!(a.supervisor.recovery_times_ns(), b.supervisor.recovery_times_ns());
    assert_eq!(a.shed_jobs, b.shed_jobs);
    assert_eq!(a.degradation_level, b.degradation_level);
}

#[test]
fn supervised_run_restarts_crashed_plugins_within_the_backoff_budget() {
    let policy = SupervisionPolicy::default();
    let result = faulted(PolicyKind::Adaptive, true, 1.0);
    // The scheduled plan crashes both vio (35% of the run) and
    // imu_integrator (45%); each panic must be contained, counted, and
    // answered with a restart.
    assert!(
        result.supervisor.total_panics() >= 2,
        "expected both scheduled crashes to fire, saw {} panics",
        result.supervisor.total_panics()
    );
    let recoveries = result.supervisor.recovery_times_ns();
    assert!(!recoveries.is_empty(), "supervised run must record panic→recovery latencies");
    // Recovery latency spans panic → next *productive* iteration, so it
    // includes the backoff plus at most a few scheduling periods of the
    // restarted plugin — bounded well under a second of simulated time.
    let bound = policy.backoff_budget() + Duration::from_millis(500);
    for &ns in &recoveries {
        assert!(
            Duration::from_nanos(ns) < bound,
            "recovery took {:.1} ms, budget-derived bound is {:.1} ms",
            ns as f64 / 1e6,
            bound.as_secs_f64() * 1e3
        );
    }
    // Each crashed plugin stayed within its restart budget and came
    // back healthy.
    for report in result.supervisor.report() {
        if report.panics > 0 {
            assert!(report.restarts >= 1, "{} crashed but was never restarted", report.name);
            assert!(report.restarts <= policy.max_restarts);
            assert_eq!(
                report.health,
                PluginHealth::Running,
                "{} should be running again after its restart",
                report.name
            );
        }
    }
    // The recovery histogram is exported alongside the rest of the
    // observability artifacts.
    assert!(
        metrics_csv(&result.metrics).contains("supervisor.recovery"),
        "metrics.csv missing the supervisor.recovery histogram"
    );
    // Crashing and restarting plugins must not wreck the display path:
    // MTP stays within a small factor of the fault-free run.
    let quiet = faulted(PolicyKind::Adaptive, true, 0.0);
    let mtp = |r: &ExperimentResult| r.mtp_ms().map(|m| m.mean).unwrap_or(0.0);
    assert!(
        mtp(&result) < 3.0 * mtp(&quiet).max(1.0),
        "faulted MTP {:.1} ms must stay bounded vs fault-free {:.1} ms",
        mtp(&result),
        mtp(&quiet)
    );
}

#[test]
fn supervision_strictly_beats_the_unsupervised_baseline_under_faults() {
    let base = faulted(PolicyKind::RateMonotonic, false, 1.0);
    let sup = faulted(PolicyKind::Adaptive, true, 1.0);
    // Without supervision the crashes still fire and are contained, but
    // nothing restarts: imu_integrator stays dead, freezing the chain's
    // published origin, so chain latency grows without bound.
    assert!(base.supervisor.total_panics() >= 1);
    assert!(base.supervisor.recovery_times_ns().is_empty());
    assert_eq!(base.supervisor.health("imu_integrator"), Some(PluginHealth::Failed));
    let (base_rate, sup_rate) = (miss_rate(&base), miss_rate(&sup));
    assert!(
        sup_rate < base_rate,
        "supervised chain miss rate {sup_rate:.4} must beat unsupervised {base_rate:.4}"
    );
}

#[test]
fn explicit_quiet_plan_matches_the_default_run_bit_for_bit() {
    // Threading a zero-intensity plan (and an idle supervisor) through
    // the whole stack must not perturb a single trace event: the fault
    // checks and catch_unwind containment are behaviourally invisible
    // when nothing fires.
    let default_cfg =
        ExperimentConfig::quick(Application::Platformer, Platform::Desktop).with_trace();
    let default_run = IntegratedExperiment::run(&default_cfg);
    let quiet_cfg = ExperimentConfig::quick(Application::Platformer, Platform::Desktop)
        .with_trace()
        .with_fault_plan(FaultPlan::scheduled(SEED, 0.0, 2 * NS_PER_SEC))
        .with_supervision(SupervisionPolicy::default());
    let quiet_run = IntegratedExperiment::run(&quiet_cfg);
    assert_eq!(chrome_trace_json(&default_run.tracer), chrome_trace_json(&quiet_run.tracer));
    assert_eq!(metrics_csv(&default_run.metrics), metrics_csv(&quiet_run.metrics));
    assert_eq!(default_run.chain_outcomes, quiet_run.chain_outcomes);
    assert_eq!(quiet_run.supervisor.total_panics(), 0);
    assert!(quiet_run.supervisor.recovery_times_ns().is_empty());
}

/// Every consumer surface of `plan` must report "no fault" at the
/// given query point.
fn assert_plan_is_quiet(
    plan: &FaultPlan,
    now: u64,
    seq: u64,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert!(plan.is_quiet());
    let camera = plan.sensor("camera");
    prop_assert!(!camera.drop_frame(now, seq));
    prop_assert!(!camera.frozen(now));
    let imu = plan.sensor("imu");
    prop_assert!(!imu.imu_gap(now, seq));
    prop_assert_eq!(imu.bias(now), 0.0);
    prop_assert_eq!(imu.noise(now, seq), 0.0);
    for target in ["uplink", "downlink", ""] {
        let link = plan.link(target);
        prop_assert!(link.outage_until(now).is_none());
        prop_assert_eq!(link.jitter_scale(now), 1.0);
        prop_assert!(!link.duplicate(seq));
        prop_assert!(!link.reorder(seq));
    }
    prop_assert_eq!(plan.crash_count_through("vio", now), 0);
    prop_assert_eq!(plan.crash_count_through("imu_integrator", now), 0);
    prop_assert_eq!(plan.worker_crashes_due("shard/0", now), 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // A zero-or-negative-intensity plan is a no-op for every consumer
    // surface, whatever the seed, duration, or query point.
    #[test]
    fn zero_intensity_plan_is_a_noop(
        seed in 0u64..u64::MAX,
        // Half the draws land on exactly 0.0, half strictly negative.
        intensity in (-2.0f64..0.0).prop_map(|x| (x + 1.0).min(0.0)),
        duration_ns in 1u64..300 * NS_PER_SEC,
        now in 0u64..u64::MAX,
        seq in 0u64..u64::MAX,
    ) {
        let plan = FaultPlan::scheduled(seed, intensity, duration_ns);
        assert_plan_is_quiet(&plan, now, seq)?;
    }
}
