//! Property-based tests (proptest) over the core data structures and
//! invariants of the substrates.

use illixr_testbed::audio::ambisonics::encode_block;
use illixr_testbed::audio::rotation::rotate_yaw;
use illixr_testbed::dsp::convolution::{convolve_direct, fft_convolve, OverlapSave};
use illixr_testbed::dsp::fft::{fft, ifft};
use illixr_testbed::dsp::Complex;
use illixr_testbed::image::{flip, ssim, GrayImage, RgbImage};
use illixr_testbed::math::Svd;
use illixr_testbed::math::{so3_exp, so3_log, Cholesky, DMatrix, Pose, Quat, Vec3};
use illixr_testbed::qoe::mtp::MtpCalculator;
use illixr_testbed::visual::distortion::{DistortionMesh, DistortionParams};
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    -10.0..10.0f64
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (small_f64(), small_f64(), small_f64()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn rotation_vec() -> impl Strategy<Value = Vec3> {
    ((-3.0..3.0f64), (-3.0..3.0f64), (-3.0..3.0f64)).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn pose() -> impl Strategy<Value = Pose> {
    (vec3(), rotation_vec()).prop_map(|(p, rv)| Pose::new(p, Quat::from_rotation_vector(rv)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pose_compose_inverse_is_identity(a in pose()) {
        let id = a.compose(&a.inverse());
        prop_assert!(id.translation_distance(&Pose::IDENTITY) < 1e-9);
        prop_assert!(id.rotation_distance(&Pose::IDENTITY) < 1e-7);
    }

    #[test]
    fn pose_composition_is_associative(a in pose(), b in pose(), c in pose()) {
        let left = a.compose(&b).compose(&c);
        let right = a.compose(&b.compose(&c));
        let probe = Vec3::new(0.3, -0.7, 1.1);
        prop_assert!((left.transform_point(probe) - right.transform_point(probe)).norm() < 1e-8);
    }

    #[test]
    fn quat_rotation_preserves_norm(rv in rotation_vec(), v in vec3()) {
        let q = Quat::from_rotation_vector(rv);
        prop_assert!((q.rotate(v).norm() - v.norm()).abs() < 1e-9 * (1.0 + v.norm()));
    }

    #[test]
    fn so3_exp_log_roundtrip(rv in rotation_vec()) {
        // Keep below π where the log is unique.
        prop_assume!(rv.norm() < 3.1);
        let back = so3_log(&so3_exp(rv));
        prop_assert!((back - rv).norm() < 1e-6, "rv {rv} back {back}");
    }

    #[test]
    fn cholesky_solve_solves(vals in proptest::collection::vec(-2.0..2.0f64, 16), rhs in proptest::collection::vec(-5.0..5.0f64, 4)) {
        // Build SPD A = B Bᵀ + 4I from arbitrary B.
        let b = DMatrix::from_row_slice(4, 4, &vals);
        let mut a = b.mul_transpose(&b);
        for i in 0..4 { a[(i, i)] += 4.0; }
        let x = Cholesky::new(&a).unwrap().solve(&DMatrix::column(&rhs));
        let back = &a * &x;
        for i in 0..4 {
            prop_assert!((back[(i, 0)] - rhs[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn fft_roundtrip_and_parseval(signal in proptest::collection::vec(-1.0..1.0f64, 64)) {
        let buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let spec = fft(&buf);
        let back = ifft(&spec);
        for (a, b) in buf.iter().zip(&back) {
            prop_assert!((a.re - b.re).abs() < 1e-9);
        }
        let te: f64 = buf.iter().map(|c| c.norm_sqr()).sum();
        let fe: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / 64.0;
        prop_assert!((te - fe).abs() < 1e-8 * (1.0 + te));
    }

    #[test]
    fn fft_convolution_matches_direct(
        signal in proptest::collection::vec(-1.0..1.0f64, 1..48),
        kernel in proptest::collection::vec(-1.0..1.0f64, 1..16),
    ) {
        let a = convolve_direct(&signal, &kernel);
        let b = fft_convolve(&signal, &kernel);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn overlap_save_matches_batch(
        kernel in proptest::collection::vec(-1.0..1.0f64, 1..24),
        blocks in 1usize..5,
    ) {
        let block_len = 32;
        let signal: Vec<f64> = (0..blocks * block_len).map(|i| ((i * 7) % 13) as f64 / 13.0 - 0.5).collect();
        let mut conv = OverlapSave::new(&kernel, block_len);
        let mut streamed = Vec::new();
        for chunk in signal.chunks(block_len) {
            streamed.extend(conv.process(chunk));
        }
        let batch = convolve_direct(&signal, &kernel);
        for (i, (a, b)) in streamed.iter().zip(batch.iter()).enumerate() {
            prop_assert!((a - b).abs() < 1e-8, "sample {}: {} vs {}", i, a, b);
        }
    }

    #[test]
    fn soundfield_rotation_preserves_energy(az in -3.0..3.0f64, el in -1.4..1.4f64, yaw in -6.0..6.0f64) {
        let field = encode_block(&[1.0, -0.5, 0.25], az, el);
        let rotated = rotate_yaw(&field, yaw);
        prop_assert!((rotated.energy() - field.energy()).abs() < 1e-9 * (1.0 + field.energy()));
    }

    #[test]
    fn ssim_is_reflexive_and_bounded(seed in 0u64..1000) {
        let img = GrayImage::from_fn(24, 24, |x, y| {
            (((x as u64 * 31 + y as u64 * 17 + seed) % 97) as f32) / 97.0
        });
        let s = ssim(&img, &img);
        prop_assert!((s - 1.0).abs() < 1e-4);
        let other = GrayImage::from_fn(24, 24, |x, _| (x % 2) as f32);
        let cross = ssim(&img, &other);
        prop_assert!((-1.0..=1.0).contains(&cross));
    }

    #[test]
    fn flip_is_reflexive_and_bounded(seed in 0u64..1000) {
        let img = RgbImage::from_fn(16, 16, |x, y| {
            let v = (((x as u64 * 13 + y as u64 * 29 + seed) % 83) as f32) / 83.0;
            [v, 1.0 - v, 0.5]
        });
        prop_assert!(flip(&img, &img) < 1e-6);
        let inverted = RgbImage::from_fn(16, 16, |x, y| {
            let [r, g, b] = img.get(x, y);
            [1.0 - r, 1.0 - g, 1.0 - b]
        });
        let d = flip(&img, &inverted);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn svd_reconstructs_arbitrary_matrices(vals in proptest::collection::vec(-3.0..3.0f64, 24)) {
        let a = DMatrix::from_row_slice(6, 4, &vals);
        let svd = Svd::new(&a).unwrap();
        prop_assert!((&svd.reconstruct() - &a).frobenius_norm() < 1e-8 * (1.0 + a.frobenius_norm()));
        for w in svd.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
            prop_assert!(w[1] >= -1e-12);
        }
    }

    #[test]
    fn distortion_center_is_always_fixed(k1 in 0.0..0.5f64, k2 in 0.0..0.2f64, scale in 0.9..1.1f64) {
        let params = DistortionParams {
            k1,
            k2,
            channel_scale: [scale, 1.0, 2.0 - scale],
            mesh_resolution: 16,
        };
        let mesh = DistortionMesh::new(&params);
        for c in 0..3 {
            let center = mesh.sample(c, 0.5, 0.5);
            prop_assert!((center.x - 0.5).abs() < 1e-9 && (center.y - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn quat_slerp_stays_unit_and_bounded(
        rv1 in rotation_vec(),
        rv2 in rotation_vec(),
        t in 0.0..1.0f64,
    ) {
        let a = Quat::from_rotation_vector(rv1);
        let b = Quat::from_rotation_vector(rv2);
        let s = a.slerp(b, t);
        prop_assert!((s.norm() - 1.0).abs() < 1e-9);
        // The interpolant never rotates further from `a` than `b` does
        // (geodesic property), modulo numerical slack.
        prop_assert!(a.angle_to(s) <= a.angle_to(b) + 1e-6);
    }

    #[test]
    fn mtp_total_is_sum_of_parts(pose_ms in 0u64..50, start_off in 0u64..20, exec_us in 0u64..20_000) {
        use illixr_testbed::core::Time;
        let calc = MtpCalculator::new(std::time::Duration::from_nanos(8_333_333));
        let pose_t = Time::from_millis(pose_ms);
        let start = pose_t + std::time::Duration::from_millis(start_off);
        let end = start + std::time::Duration::from_micros(exec_us);
        let s = calc.sample(pose_t, start, end);
        prop_assert_eq!(s.total(), s.imu_age + s.reprojection + s.swap);
        prop_assert!(s.display_vsync >= end);
        prop_assert!(s.swap < std::time::Duration::from_nanos(8_333_334));
    }
}
