//! Golden tests for the scheduling subsystem: same-seed runs under the
//! EDF and adaptive-governor policies must be bit-identical (telemetry,
//! trace and metrics artifacts all derive from the simulated clock),
//! the traced artifacts must carry the scheduling instrumentation
//! (per-job lateness histograms, chain histograms, degradation-level
//! counter), and under overload the governor must strictly beat the
//! rate-monotonic baseline on chain-deadline misses.

use std::time::Duration;

use illixr_core::obs::{chrome_trace_json, metrics_csv};
use illixr_core::sched::PolicyKind;
use illixr_platform::spec::Platform;
use illixr_render::apps::Application;
use illixr_system::experiment::{ExperimentConfig, ExperimentResult, IntegratedExperiment};

/// A contended single-core configuration where policy choice matters:
/// the non-preemptive VIO update blocks the 2 ms integrator period, so
/// the imu → integrator → timewarp chain goes late in bursts.
fn overloaded(policy: PolicyKind, load: f64) -> ExperimentResult {
    let mut cfg = ExperimentConfig::quick(Application::Platformer, Platform::Desktop)
        .with_trace()
        .with_policy(policy)
        .with_load_factor(load)
        .with_cpu_cores(1);
    cfg.chain_deadline = Duration::from_millis(15);
    IntegratedExperiment::run(&cfg)
}

fn miss_rate(result: &ExperimentResult) -> f64 {
    let total = result.chain_outcomes.len().max(1);
    result.chain_outcomes.iter().filter(|o| o.missed).count() as f64 / total as f64
}

#[test]
fn edf_runs_are_bit_identical_across_same_seed_runs() {
    let a = overloaded(PolicyKind::Edf, 2.0);
    let b = overloaded(PolicyKind::Edf, 2.0);
    assert_eq!(
        chrome_trace_json(&a.tracer),
        chrome_trace_json(&b.tracer),
        "EDF trace.json must be bit-identical for the same seed"
    );
    assert_eq!(
        metrics_csv(&a.metrics),
        metrics_csv(&b.metrics),
        "EDF metrics.csv must be bit-identical for the same seed"
    );
    assert_eq!(a.chain_outcomes, b.chain_outcomes);
}

#[test]
fn adaptive_runs_are_bit_identical_across_same_seed_runs() {
    let a = overloaded(PolicyKind::Adaptive, 3.0);
    let b = overloaded(PolicyKind::Adaptive, 3.0);
    assert_eq!(
        chrome_trace_json(&a.tracer),
        chrome_trace_json(&b.tracer),
        "governor trace.json must be bit-identical for the same seed"
    );
    assert_eq!(
        metrics_csv(&a.metrics),
        metrics_csv(&b.metrics),
        "governor metrics.csv must be bit-identical for the same seed"
    );
    assert_eq!(a.chain_outcomes, b.chain_outcomes);
    assert_eq!(a.shed_jobs, b.shed_jobs);
    assert_eq!(a.degradation_level, b.degradation_level);
}

#[test]
fn traced_runs_carry_the_scheduling_instrumentation() {
    let result = overloaded(PolicyKind::Adaptive, 3.0);
    let csv = metrics_csv(&result.metrics);
    // Per-job lateness is recorded for every completion; misses get
    // their own histogram.
    assert!(csv.contains("sched.lateness"), "metrics.csv missing sched.lateness");
    assert!(csv.contains("sched.miss"), "metrics.csv missing sched.miss");
    // Chain completions land in per-chain histograms.
    assert!(csv.contains("chain.mtp"), "metrics.csv missing chain.mtp");
    let trace = chrome_trace_json(&result.tracer);
    // Chain spans carry the deadline verdict; under this overload the
    // governor escalates, so the degradation-level counter track must
    // appear too.
    assert!(trace.contains("\"chain.mtp\""), "trace missing chain spans");
    assert!(result.degradation_level > 0, "governor should escalate at 3x load on one core");
    assert!(trace.contains("sched.level"), "trace missing degradation-level counter");
    assert!(result.shed_jobs > 0, "escalated governor should shed jobs");
}

#[test]
fn governor_strictly_beats_rate_monotonic_under_overload() {
    let rm = overloaded(PolicyKind::RateMonotonic, 3.0);
    let gov = overloaded(PolicyKind::Adaptive, 3.0);
    assert!(rm.shed_jobs == 0 && rm.degradation_level == 0);
    let (rm_rate, gov_rate) = (miss_rate(&rm), miss_rate(&gov));
    assert!(
        gov_rate < rm_rate,
        "governor chain miss rate {gov_rate:.4} must beat rate-monotonic {rm_rate:.4}"
    );
    // Degradation must not break the display path: the compositor is
    // Critical-class (never shed), so MTP stays in the same ballpark.
    let mtp = |r: &ExperimentResult| r.mtp_ms().map(|m| m.mean).unwrap_or(0.0);
    assert!(
        mtp(&gov) < 3.0 * mtp(&rm).max(1.0),
        "governor MTP {:.1} ms must stay bounded vs rate-monotonic {:.1} ms",
        mtp(&gov),
        mtp(&rm)
    );
}

#[test]
fn default_policy_is_unchanged_rate_monotonic() {
    // The paper configuration must keep its historical behaviour: the
    // default policy is rate-monotonic, nothing is shed, and the
    // governor machinery stays out of the way.
    let cfg = ExperimentConfig::quick(Application::Platformer, Platform::Desktop);
    assert_eq!(cfg.policy, PolicyKind::RateMonotonic);
    let result = IntegratedExperiment::run(&cfg);
    assert_eq!(result.shed_jobs, 0);
    assert_eq!(result.degradation_level, 0);
    assert!(!result.chain_outcomes.is_empty(), "chain tracking records completions");
}
