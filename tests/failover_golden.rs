//! Golden tests for crash-consistent session failover: a run with
//! injected worker crashes plus checkpoint/catch-up recovery must
//! produce the same per-session display suffix as a run that never
//! crashed (the ghost mirror keeps shared-resource contention
//! identical, and catch-up replay reconstructs the session exactly);
//! an armed-but-uncrashed failover config must be bitwise inert; the
//! whole failover pipeline must be deterministic across reruns and
//! worker counts; and a corrupt checkpoint must surface as a typed
//! decode error with a graceful restart fallback, never a panic.
//!
//! Also pins the `ILXC` checkpoint container format via the committed
//! `tests/data/checkpoint_fixture.ilxc` (regenerate with
//! `cargo test --test failover_golden write_checkpoint_fixture -- --ignored`).

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use illixr_core::boundary::{Checkpoint, CheckpointError};
use illixr_core::fault::{FaultKind, FaultPlan, FaultWindow};
use illixr_core::{Clock, SimClock, Time};
use illixr_server::session::SessionTelemetry;
use illixr_server::snapshot::SessionSnapshot;
use illixr_server::{
    ClientSession, FailoverConfig, FailoverPolicy, ServerBuilder, ServerReport, SessionConfig,
};

const CRASH_AT: Duration = Duration::from_millis(900);

fn catchup() -> FailoverConfig {
    FailoverConfig {
        policy: FailoverPolicy::CheckpointCatchup,
        checkpoint_every: Some(Duration::from_millis(300)),
        ..FailoverConfig::default()
    }
}

/// One deterministic `WorkerCrash` window for shard 1, firing at the
/// first batch that shard executes at or after `CRASH_AT`.
fn crash_plan() -> FaultPlan {
    let at = CRASH_AT.as_nanos() as u64;
    FaultPlan::new(7).with_window(FaultWindow::new(
        FaultKind::WorkerCrash,
        "shard/1",
        at,
        at + 1,
        1.0,
    ))
}

fn base(n: usize) -> ServerBuilder {
    ServerBuilder::new().sessions(n).duration(Duration::from_secs(2)).shards(4).workers(1)
}

/// Per-frame display log at and after `after`, formatted byte-stably.
fn display_suffix(t: &SessionTelemetry, after: Time) -> String {
    let mut out = String::new();
    for (f, mtp) in t.displayed_frames.iter().zip(&t.mtp_ns) {
        if f.time >= after {
            out.push_str(&format!("t={} mtp={} pose={:?}\n", f.time.as_nanos(), mtp, f.pose));
        }
    }
    out
}

fn crashed_run() -> ServerReport {
    base(8).fault_plan(crash_plan()).failover(catchup()).build().run()
}

/// Criterion (a): after the recovery point, every session's display
/// log — times, MTP, warp poses — is byte-identical to the uncrashed
/// run's, and sessions outside the crashed fault domain are identical
/// over the whole run.
#[test]
fn catchup_recovery_restores_per_session_suffix_byte_identically() {
    let crashed = crashed_run();
    let clean = base(8).fault_plan(FaultPlan::new(7)).failover(catchup()).build().run();

    let incidents = &crashed.failover_incidents;
    assert!(!incidents.is_empty(), "the WorkerCrash window must quarantine shard 1's sessions");
    for i in incidents {
        assert_eq!(i.mode, "catchup", "a 300ms checkpoint epoch must enable catch-up");
        assert!(i.recovered_at.is_some(), "session {} never recovered", i.session);
    }
    let recovered_at = incidents.iter().filter_map(|i| i.recovered_at).max().unwrap();

    let crashed_ids: HashSet<u32> = incidents.iter().map(|i| i.session).collect();
    for (a, b) in crashed.sessions().zip(clean.sessions()) {
        assert_eq!(
            display_suffix(a.telemetry(), recovered_at),
            display_suffix(b.telemetry(), recovered_at),
            "session {} post-recovery display suffix diverged from the uncrashed run",
            a.id()
        );
        if !crashed_ids.contains(&a.id()) {
            // The ghost mirror must keep link/pool/render contention
            // exactly as the live session would have: bystander
            // sessions never notice the crash.
            assert_eq!(
                format!("{:?}", a.telemetry()),
                format!("{:?}", b.telemetry()),
                "bystander session {} diverged from the uncrashed run",
                a.id()
            );
        }
    }
}

/// Criterion (b): arming failover (checkpoint epochs, journaling)
/// without any crash must not perturb the engine's output by a single
/// byte relative to the historical (pre-failover) engine — summary,
/// metrics CSV and chrome trace alike.
#[test]
fn armed_failover_without_crashes_is_bitwise_inert() {
    use illixr_core::obs::{chrome_trace_json, metrics_csv};
    let plain = base(8).trace(true).build().run();
    let armed = base(8).trace(true).failover(catchup()).build().run();
    let summary = armed.summary_text();
    assert_eq!(
        plain.summary_text(),
        summary,
        "checkpointing must be invisible until a crash consumes it"
    );
    assert!(!summary.contains("failover"), "no incidents means no failover summary lines");
    assert_eq!(metrics_csv(&plain.metrics), metrics_csv(&armed.metrics), "metrics CSV diverged");
    assert_eq!(
        chrome_trace_json(&plain.tracer),
        chrome_trace_json(&armed.tracer),
        "chrome trace diverged"
    );
}

/// Criterion (c): the whole crash-quarantine-recover pipeline is
/// deterministic — same seed, same report — and invariant to the
/// worker count (crash injection lives in the plan, not the threads).
#[test]
fn failover_runs_are_bit_identical_across_reruns_and_worker_counts() {
    let run = |workers: usize| {
        base(8).workers(workers).fault_plan(crash_plan()).failover(catchup()).build().run()
    };
    let a = run(1);
    assert!(!a.failover_incidents.is_empty(), "crash must fire");
    let b = run(1);
    assert_eq!(a.summary_text(), b.summary_text(), "same-seed failover rerun diverged");
    let c = run(4);
    assert_eq!(a.summary_text(), c.summary_text(), "failover output depends on worker count");
}

/// Criterion (d): a corrupt checkpoint is a typed decode error at the
/// codec layer, and the engine degrades to a restart-only recovery
/// instead of panicking.
#[test]
fn corrupt_checkpoint_yields_typed_error_and_restart_fallback() {
    let mut ck = Checkpoint::new(42, 0xABCD, 123);
    ck.entries.push(("session".to_owned(), vec![1, 2, 3, 4]));
    let mut bytes = ck.encode();
    bytes.pop();
    assert!(
        matches!(Checkpoint::decode(&bytes), Err(CheckpointError::Truncated(_))),
        "dropping the final byte must decode to a typed truncation error"
    );

    let report = base(8)
        .fault_plan(crash_plan())
        .failover(catchup())
        .tune(|c| c.failover.corrupt_checkpoints = true)
        .build()
        .run();
    assert!(!report.failover_incidents.is_empty(), "crash must fire");
    for i in &report.failover_incidents {
        assert_eq!(
            i.mode, "restart_fallback",
            "a corrupt checkpoint must fall back to a budgeted restart"
        );
        assert!(i.recovered_at.is_some(), "session {} never recovered via restart", i.session);
    }
}

/// Restart-only recovery (no checkpoints) still brings sessions back,
/// and a disabled policy leaves them quarantined for good.
#[test]
fn restart_only_recovers_and_disabled_stays_quarantined() {
    let restart = base(8)
        .fault_plan(crash_plan())
        .failover(FailoverConfig { policy: FailoverPolicy::RestartOnly, ..Default::default() })
        .build()
        .run();
    assert!(!restart.failover_incidents.is_empty());
    for i in &restart.failover_incidents {
        assert_eq!(i.mode, "restart");
        assert!(i.recovered_at.is_some());
    }

    let disabled = base(8).fault_plan(crash_plan()).build().run();
    assert!(!disabled.failover_incidents.is_empty());
    for i in &disabled.failover_incidents {
        assert_eq!(i.mode, "none");
        assert!(i.recovered_at.is_none(), "disabled policy must never recover");
        assert!(i.lost_frames > 0, "a dark session loses display opportunities");
    }
}

/// The canonical fixture content: a checkpoint wrapping a genuine
/// mid-run session snapshot, so the committed bytes pin both the
/// `ILXC` container and the session-snapshot codec underneath it.
fn fixture_checkpoint() -> Checkpoint {
    let clock = Arc::new(SimClock::new());
    let mut session = ClientSession::new(0, SessionConfig::new(11), clock.clone());
    session.connect(Time::ZERO, false);
    let imu_period = Duration::from_secs_f64(1.0 / session.config.imu_hz);
    for step in 0..40u64 {
        clock.advance_to(Time::ZERO + imu_period * step as u32);
        session.on_imu_due();
        if step % 10 == 9 {
            let _ = session.on_camera_due();
        }
    }
    let snap = session.snapshot();
    let mut ck = Checkpoint::new(11, 0x1117_C0DE, clock.now().as_nanos());
    ck.entries.push(("session".to_owned(), snap.encode()));
    ck
}

const FIXTURE_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/checkpoint_fixture.ilxc");

/// Format stability: the committed fixture keeps decoding under the
/// current schema, re-encodes to the committed bytes, and its embedded
/// session snapshot round-trips byte-identically.
#[test]
fn committed_checkpoint_fixture_round_trips_byte_identically() {
    let bytes = std::fs::read(FIXTURE_PATH).expect("fixture committed under tests/data/");
    let ck = Checkpoint::decode(&bytes).expect("fixture decodes under the current schema");
    assert_eq!(ck.encode(), bytes, "fixture must re-encode to the committed bytes");
    let entry = ck.entry("session").expect("fixture carries a session snapshot");
    let snap = SessionSnapshot::decode(entry).expect("embedded snapshot decodes");
    assert_eq!(snap.encode(), entry, "embedded snapshot must re-encode byte-identically");
}

/// Corrupt or truncated fixtures are rejected with typed errors, never
/// misread: every truncation point and a flipped magic byte fail.
#[test]
fn corrupted_fixture_bytes_are_rejected() {
    let bytes = std::fs::read(FIXTURE_PATH).expect("fixture committed under tests/data/");
    for cut in 0..bytes.len() {
        assert!(Checkpoint::decode(&bytes[..cut]).is_err(), "truncation at {cut} must fail");
    }
    let mut flipped = bytes.clone();
    flipped[0] ^= 0xFF;
    assert!(matches!(Checkpoint::decode(&flipped), Err(CheckpointError::BadMagic { .. })));
}

/// Regenerates the committed fixture after an intentional schema bump:
/// `cargo test --test failover_golden write_checkpoint_fixture -- --ignored`.
#[test]
#[ignore]
fn write_checkpoint_fixture() {
    std::fs::write(FIXTURE_PATH, fixture_checkpoint().encode()).expect("write fixture");
}
