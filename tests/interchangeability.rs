//! The paper's modularity claim (§II-B): "each plugin is interchangeable
//! with another as long as it complies with the event-stream interface."
//! These tests swap alternative implementations behind the same streams
//! and verify downstream consumers cannot tell the difference.

use std::sync::Arc;

use illixr_testbed::core::plugin::{Plugin, PluginRegistry, RuntimeBuilder};
use illixr_testbed::core::{Clock, SimClock, Time};
use illixr_testbed::sensors::camera::{PinholeCamera, StereoRig};
use illixr_testbed::sensors::dataset::SyntheticDataset;
use illixr_testbed::sensors::imu::ImuNoise;
use illixr_testbed::sensors::plugins::{
    OfflineImuCameraPlugin, SyntheticCameraPlugin, SyntheticImuPlugin,
};
use illixr_testbed::sensors::trajectory::Trajectory;
use illixr_testbed::sensors::types::{streams, ImuSample, PoseEstimate, StereoFrame};
use illixr_testbed::sensors::world::LandmarkWorld;
use illixr_testbed::vio::integrator::{ImuState, Scheme};
use illixr_testbed::vio::msckf::VioConfig;
use illixr_testbed::vio::plugins::{ImuIntegratorPlugin, VioPlugin};

fn rig() -> StereoRig {
    StereoRig::zed_mini(PinholeCamera::qvga())
}

/// Runs VIO against whatever camera/IMU provider is plugged in and
/// returns the final pose error; the provider is opaque to VIO.
fn track_with_provider(mut providers: Vec<Box<dyn Plugin>>, ds: &SyntheticDataset) -> f64 {
    let clock = SimClock::new();
    let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
    let gt0 = &ds.ground_truth[0];
    let init = ImuState::from_pose(gt0.timestamp, gt0.pose, gt0.velocity);
    let mut vio = VioPlugin::new(VioConfig::fast(PinholeCamera::qvga()), init);
    for p in &mut providers {
        p.start(&ctx);
    }
    vio.start(&ctx);
    for k in 1..30u64 {
        clock.advance_to(Time::from_secs_f64(k as f64 / 15.0));
        for p in &mut providers {
            p.iterate(&ctx);
        }
        vio.iterate(&ctx);
    }
    let truth = ds.ground_truth_pose(clock.now());
    vio.state().pose.translation_distance(&truth)
}

#[test]
fn offline_and_synthetic_providers_are_interchangeable() {
    // Dataset instances are a function of the RNG stream; this seed is
    // calibrated to a mid-difficulty trajectory under the vendored
    // third_party/rand generator.
    let seed = 3;
    let ds = SyntheticDataset::vicon_room_like(seed, 2.0);
    // Provider A: offline dataset player (one plugin feeding two streams).
    let err_offline = track_with_provider(
        vec![Box::new(OfflineImuCameraPlugin::new(Arc::new(ds.clone()), rig()))],
        &ds,
    );
    // Provider B: live-synthetic camera + IMU (two plugins, same streams,
    // same underlying trajectory).
    let world = Arc::new(ds.world.clone());
    let err_synth = track_with_provider(
        vec![
            Box::new(SyntheticCameraPlugin::new(ds.trajectory.clone(), world, rig())),
            Box::new(SyntheticImuPlugin::new(
                ds.trajectory.clone(),
                ImuNoise::default(),
                500.0,
                seed,
            )),
        ],
        &ds,
    );
    // VIO tracked successfully with both providers — the modularity
    // claim. (Errors differ because live-synthetic regenerates noise.)
    assert!(err_offline < 0.5, "offline provider: error {err_offline}");
    assert!(err_synth < 0.5, "synthetic provider: error {err_synth}");
}

#[test]
fn integrator_schemes_are_interchangeable() {
    // RK4 (OpenVINS) vs midpoint (GTSAM stand-in), same streams.
    for scheme in [Scheme::Rk4, Scheme::Midpoint] {
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        let ds = SyntheticDataset::vicon_room_like(9, 1.0);
        let gt0 = &ds.ground_truth[0];
        let init = ImuState::from_pose(gt0.timestamp, gt0.pose, gt0.velocity);
        let mut source = OfflineImuCameraPlugin::new(Arc::new(ds.clone()), rig());
        let mut integ = ImuIntegratorPlugin::new(init).with_scheme(scheme);
        source.start(&ctx);
        integ.start(&ctx);
        let fast = ctx
            .switchboard
            .topic::<PoseEstimate>(streams::FAST_POSE)
            .expect("stream")
            .async_reader();
        for k in 1..15u64 {
            clock.advance_to(Time::from_millis(k * 66));
            source.iterate(&ctx);
            integ.iterate(&ctx);
        }
        let pose = fast.latest().expect("fast pose published");
        let truth = ds.ground_truth_pose(pose.timestamp);
        let err = pose.pose.translation_distance(&truth);
        assert!(err < 0.3, "{scheme:?}: drift {err}");
    }
}

#[test]
fn vio_implementations_are_interchangeable() {
    // Table II lists two VIO implementations; swap them behind the same
    // streams and verify downstream consumers keep working.
    use illixr_testbed::vio::alternative::FrameToFrameConfig;
    use illixr_testbed::vio::plugins::AlternativeVioPlugin;

    let ds = SyntheticDataset::vicon_room_like(13, 2.0);
    let gt0 = ds.ground_truth[0];
    let init = ImuState::from_pose(gt0.timestamp, gt0.pose, gt0.velocity);
    type PluginFactory<'a> = Box<dyn Fn() -> Box<dyn Plugin> + 'a>;
    let build: Vec<(&str, PluginFactory)> = vec![
        (
            "msckf",
            Box::new(move || {
                Box::new(VioPlugin::new(VioConfig::fast(PinholeCamera::qvga()), init))
            }),
        ),
        (
            "frame-to-frame",
            Box::new(move || {
                Box::new(AlternativeVioPlugin::new(FrameToFrameConfig::default(), rig(), init))
            }),
        ),
    ];
    for (name, make) in build {
        let err = track_with_provider_vio(make(), &ds);
        assert!(err < 0.8, "{name}: drift {err:.3} m");
    }
}

/// Like `track_with_provider` but swaps the VIO instead of the source.
fn track_with_provider_vio(mut vio: Box<dyn Plugin>, ds: &SyntheticDataset) -> f64 {
    let clock = SimClock::new();
    let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
    let mut source = OfflineImuCameraPlugin::new(Arc::new(ds.clone()), rig());
    source.start(&ctx);
    vio.start(&ctx);
    let slow =
        ctx.switchboard.topic::<PoseEstimate>(streams::SLOW_POSE).expect("stream").async_reader();
    for k in 1..30u64 {
        clock.advance_to(Time::from_secs_f64(k as f64 / 15.0));
        source.iterate(&ctx);
        vio.iterate(&ctx);
    }
    let pose = slow.latest().expect("vio published poses");
    pose.pose.translation_distance(&ds.ground_truth_pose(pose.timestamp))
}

#[test]
fn plugin_registry_builds_alternatives_by_name() {
    // The registry is the paper's plugin loader: configurations pick
    // implementations by name.
    let seed = 3;
    let ds = Arc::new(SyntheticDataset::vicon_room_like(seed, 0.5));
    let mut registry = PluginRegistry::new();
    let ds_for_offline = ds.clone();
    registry.register("camera_imu/offline", move |_| {
        Box::new(OfflineImuCameraPlugin::new(ds_for_offline.clone(), rig()))
    });
    registry.register("camera_imu/synthetic", move |_| {
        Box::new(SyntheticCameraPlugin::new(
            Trajectory::walking(seed),
            Arc::new(LandmarkWorld::lab(seed)),
            rig(),
        ))
    });
    let clock = SimClock::new();
    let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
    for name in ["camera_imu/offline", "camera_imu/synthetic"] {
        let cam_reader =
            ctx.switchboard.topic::<StereoFrame>(streams::CAMERA).expect("stream").sync_reader(16);
        let mut plugin = registry.build(name, &ctx).expect("registered plugin builds");
        plugin.start(&ctx);
        clock.advance_to(clock.now() + std::time::Duration::from_millis(100));
        plugin.iterate(&ctx);
        assert!(!cam_reader.is_empty(), "{name} published no camera frames");
    }
}

#[test]
fn stream_typing_is_enforced_across_crates() {
    let ctx = RuntimeBuilder::new(Arc::new(SimClock::new())).build();
    let _imu = ctx.switchboard.topic::<ImuSample>(streams::IMU).expect("stream").writer();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // Wrong payload type on an existing stream must panic loudly.
        let _bad = ctx.switchboard.topic::<StereoFrame>(streams::IMU).expect("stream").writer();
    }));
    assert!(result.is_err(), "type confusion on a stream must be rejected");
}
