//! Property-based tests for the offloading bridge: whatever the link
//! latency and jitter, offloading must stay deterministic per seed and
//! must never reorder a stream.

use std::sync::Arc;
use std::time::Duration;

use illixr_testbed::core::plugin::{IterationReport, Plugin, PluginContext, RuntimeBuilder};
use illixr_testbed::core::{SimClock, SyncReader, Time, Writer};
use illixr_testbed::system::offload::{OffloadLink, OffloadedPlugin};
use proptest::prelude::*;

/// A remote component that echoes `in` to `out` unchanged, preserving
/// arrival order.
struct Relay {
    reader: Option<SyncReader<u64>>,
    writer: Option<Writer<u64>>,
}

impl Plugin for Relay {
    fn name(&self) -> &str {
        "relay"
    }
    fn start(&mut self, ctx: &PluginContext) {
        self.reader = Some(ctx.switchboard.topic::<u64>("in").expect("stream").sync_reader(4096));
        self.writer = Some(ctx.switchboard.topic::<u64>("out").expect("stream").writer());
    }
    fn iterate(&mut self, _ctx: &PluginContext) -> IterationReport {
        while let Some(v) = self.reader.as_ref().expect("started").try_recv() {
            self.writer.as_ref().expect("started").put(v.data);
        }
        IterationReport::nominal()
    }
}

/// Drives `values` through an offloaded relay: publish one value per
/// tick, then idle long enough for the link to drain. Returns the
/// values received on `out`, in delivery order.
fn run_offloaded(values: &[u64], latency_ms: u64, sigma: f64, seed: u64) -> Vec<u64> {
    let clock = SimClock::new();
    let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
    let link = OffloadLink::symmetric(Duration::from_millis(latency_ms)).with_jitter(sigma, seed);
    let mut remote = OffloadedPlugin::new(Box::new(Relay { reader: None, writer: None }), link)
        .uplink::<u64>("in")
        .downlink::<u64>("out");
    remote.start(&ctx);
    let out = ctx.switchboard.topic::<u64>("out").expect("stream").sync_reader(4096);
    let writer = ctx.switchboard.topic::<u64>("in").expect("stream").writer();
    let tick = Duration::from_millis(2);
    let mut t = Time::ZERO;
    for &v in values {
        writer.put(v);
        remote.iterate(&ctx);
        t += tick;
        clock.advance_to(t);
    }
    // Idle ticks: generous headroom for the worst log-normal draw.
    let drain = 40 * latency_ms.max(1) + 200;
    for _ in 0..drain {
        remote.iterate(&ctx);
        t += tick;
        clock.advance_to(t);
    }
    remote.iterate(&ctx);
    out.drain().iter().map(|e| e.data).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // A jittered link is a deterministic function of its seed: the
    // same traffic over the same link twice gives identical delivery.
    #[test]
    fn jittered_link_is_deterministic_per_seed(
        params in (1usize..40, 0u64..30, 0.0..0.8f64, 0u64..1000),
    ) {
        let (n, latency_ms, sigma, seed) = params;
        let values: Vec<u64> = (0..n as u64).collect();
        let a = run_offloaded(&values, latency_ms, sigma, seed);
        let b = run_offloaded(&values, latency_ms, sigma, seed);
        prop_assert_eq!(a, b);
    }

    // Jitter delays individual transfers but the bridge is FIFO per
    // stream: every published event arrives, in publication order.
    #[test]
    fn per_stream_order_survives_jitter(
        params in (1usize..40, 0u64..30, 0.0..0.8f64, 0u64..1000),
    ) {
        let (n, latency_ms, sigma, seed) = params;
        let values: Vec<u64> = (0..n as u64).collect();
        let delivered = run_offloaded(&values, latency_ms, sigma, seed);
        prop_assert_eq!(delivered, values);
    }
}
