//! Cross-crate integration tests of the full system: the complete plugin
//! graph running in simulated mode, checked against the paper's headline
//! observations.

use std::time::Duration;

use illixr_testbed::platform::spec::Platform;
use illixr_testbed::render::apps::Application;
use illixr_testbed::system::experiment::{ExperimentConfig, IntegratedExperiment, COMPONENTS};

fn quick(app: Application, platform: Platform) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(app, platform);
    cfg.duration = Duration::from_secs(2);
    cfg
}

#[test]
fn all_components_run_in_the_integrated_system() {
    let r = IntegratedExperiment::run(&quick(Application::Platformer, Platform::Desktop));
    for name in COMPONENTS {
        let stats = r.stats(name).unwrap_or_else(|| panic!("component '{name}' never ran"));
        assert!(stats.invocations > 0, "component '{name}' has no invocations");
    }
}

#[test]
fn desktop_meets_paper_targets_for_platformer() {
    let r = IntegratedExperiment::run(&quick(Application::Platformer, Platform::Desktop));
    // Fig 3a: essentially all targets met on the desktop for Platformer.
    assert!(r.stats("vio").unwrap().achieved_hz > 13.5);
    assert!(r.stats("timewarp").unwrap().achieved_hz > 110.0);
    assert!(r.stats("application").unwrap().achieved_hz > 100.0);
    assert!(r.stats("audio_playback").unwrap().achieved_hz > 45.0);
    assert!(r.stats("imu_integrator").unwrap().achieved_hz > 420.0);
    // Table IV: desktop MTP ≈ 3 ms, well under the 20 ms VR target.
    let mtp = r.mtp_ms().unwrap();
    assert!(mtp.mean < 6.0, "desktop MTP {mtp}");
}

#[test]
fn sponza_on_desktop_misses_application_deadline_like_the_paper() {
    // Fig 3a: "the application component for Sponza and Materials are the
    // only exceptions" to the desktop meeting its targets.
    let sponza = IntegratedExperiment::run(&quick(Application::Sponza, Platform::Desktop));
    let ar = IntegratedExperiment::run(&quick(Application::ArDemo, Platform::Desktop));
    let sponza_app = sponza.stats("application").unwrap();
    let ar_app = ar.stats("application").unwrap();
    assert!(
        sponza_app.achieved_hz < 80.0,
        "Sponza app should miss 120 Hz: {}",
        sponza_app.achieved_hz
    );
    assert!(ar_app.achieved_hz > 110.0, "AR Demo app should meet 120 Hz: {}", ar_app.achieved_hz);
    // But reprojection compensates: timewarp still hits the target.
    assert!(sponza.stats("timewarp").unwrap().achieved_hz > 110.0);
}

#[test]
fn platform_ordering_holds_across_metrics() {
    let apps = [Application::Platformer];
    for app in apps {
        let d = IntegratedExperiment::run(&quick(app, Platform::Desktop));
        let hp = IntegratedExperiment::run(&quick(app, Platform::JetsonHP));
        let lp = IntegratedExperiment::run(&quick(app, Platform::JetsonLP));
        // MTP: desktop < HP < LP (Table IV rows).
        let (md, mh, ml) =
            (d.mtp_ms().unwrap().mean, hp.mtp_ms().unwrap().mean, lp.mtp_ms().unwrap().mean);
        assert!(md < mh && mh < ml, "MTP ordering {md} {mh} {ml}");
        // Power: desktop ≫ HP > LP (Fig 6a).
        assert!(d.power.total() > hp.power.total());
        assert!(hp.power.total() > lp.power.total());
        // Audio never degrades (Fig 3: audio meets target everywhere).
        for r in [&d, &hp, &lp] {
            assert!(r.stats("audio_playback").unwrap().achieved_hz > 44.0);
        }
    }
}

#[test]
fn per_frame_variability_exists_in_all_components() {
    // §IV-A1: "the standard deviations for execution time are surprisingly
    // significant in many cases" — every component must show nonzero
    // per-frame variance.
    let r = IntegratedExperiment::run(&quick(Application::Platformer, Platform::Desktop));
    for name in COMPONENTS {
        let s = r.stats(name).unwrap();
        assert!(
            s.std_execution > Duration::ZERO,
            "component '{name}' shows no execution-time variability"
        );
    }
}

#[test]
fn vio_work_factor_is_input_dependent() {
    let r = IntegratedExperiment::run(&quick(Application::Platformer, Platform::Desktop));
    let records = r.telemetry.records("vio");
    let min = records.iter().map(|x| x.work_factor).fold(f64::INFINITY, f64::min);
    let max = records.iter().map(|x| x.work_factor).fold(0.0, f64::max);
    assert!(max > min, "VIO work factor never varied: {min}..{max}");
}

#[test]
fn mtp_decomposition_is_consistent() {
    let r = IntegratedExperiment::run(&quick(Application::ArDemo, Platform::Desktop));
    assert!(!r.mtp.is_empty());
    for s in &r.mtp {
        assert_eq!(s.total(), s.imu_age + s.reprojection + s.swap);
        // With a 120 Hz display the swap wait is below one period plus
        // scheduling slack.
        assert!(s.swap < Duration::from_millis(10), "swap {:?}", s.swap);
    }
}
