//! Golden tests for the event-driven session engine at scale: a
//! 256-session trace-driven run must be bit-identical across reruns,
//! reports must be invariant to the engine's shard/worker/ring knobs
//! (they only change *where* work executes, never *what* it computes),
//! and the bounded emission rings must lose and reorder nothing under
//! backpressure.

use std::sync::Arc;
use std::time::Duration;

use illixr_sched::ring::spsc_ring;
use illixr_server::server::ReplayLoad;
use illixr_server::{LinkConfig, PlacementPolicy, SchedulerConfig, ServerBuilder, SessionState};

/// A pool/link profile wide enough that 256 sessions are all admitted
/// at full rate (the Wi-Fi default saturates around 16).
fn at_scale(n: usize) -> ServerBuilder {
    ServerBuilder::new()
        .sessions(n)
        .duration(Duration::from_secs(1))
        .link(LinkConfig {
            uplink_bps: 30e9,
            downlink_bps: 100e9,
            base_latency: Duration::from_millis(2),
            jitter_sigma: 0.0,
            seed: 0,
        })
        .scheduler(SchedulerConfig {
            workers: 256,
            placement: PlacementPolicy::DeadlineAware { deadline: Duration::from_millis(30) },
            ..SchedulerConfig::default()
        })
}

/// `ReplayLoad::fan_out` at 256 sessions: every session runs from the
/// same one-session recording through per-session transforms, and the
/// whole report is bit-identical across same-seed reruns.
#[test]
fn fan_out_rerun_at_256_sessions_is_bit_identical() {
    let trace = Arc::new(
        ServerBuilder::new()
            .sessions(1)
            .duration(Duration::from_secs(1))
            .record_boundary(true)
            .build()
            .run()
            .boundary_trace
            .expect("recording enabled"),
    );
    let run = || {
        at_scale(256)
            .replay(ReplayLoad::fan_out(trace.clone(), 42, Duration::from_millis(40), 0.05))
            .build()
            .run()
    };
    let a = run();
    assert_eq!(a.count(SessionState::Rejected), 0, "scale profile must admit all 256");
    assert!(a.aggregate_fps() > 0.0, "fan-out sessions should display frames");
    let b = run();
    assert_eq!(a.summary_text(), b.summary_text(), "256-session fan-out reruns diverged");
}

/// Sharding decides which worker owns a session's state machine —
/// nothing else. One mega-shard and 32 shards must produce the same
/// bytes at 256 sessions.
#[test]
fn reports_are_invariant_to_shard_count_at_scale() {
    let run = |shards: usize| at_scale(256).shards(shards).build().run().summary_text();
    let one = run(1);
    assert_eq!(one, run(32), "shard count leaked into results");
}

/// Tiny rings force the emission path to block on backpressure; with
/// worker threads racing the coordinator the report must still match
/// the inline (single-threaded) run byte for byte — nothing lost,
/// nothing reordered.
#[test]
fn tiny_rings_under_worker_threads_match_inline_run() {
    let run = |workers: usize, ring: usize| {
        at_scale(64).workers(workers).ring_capacity(ring).build().run().summary_text()
    };
    let inline = run(1, 256);
    assert_eq!(inline, run(4, 2), "backpressured threaded run diverged from inline run");
}

/// Unit-level ring check: a capacity-4 SPSC ring carrying 10,000
/// sequenced items across a thread boundary delivers every item in
/// order (push_blocking spins on full, pop on empty).
#[test]
fn spsc_ring_backpressure_loses_and_reorders_nothing() {
    const ITEMS: u64 = 10_000;
    let (producer, mut consumer) = spsc_ring::<u64>(4);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut producer = producer;
            for i in 0..ITEMS {
                producer.push_blocking(i);
            }
        });
        let mut expected = 0u64;
        while expected < ITEMS {
            if let Some(v) = consumer.pop() {
                assert_eq!(v, expected, "ring reordered or dropped an item");
                expected += 1;
            } else {
                std::thread::yield_now();
            }
        }
        assert!(consumer.pop().is_none(), "ring delivered an extra item");
    });
}
