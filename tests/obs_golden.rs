//! Golden tests for the observability layer: traces and metrics must
//! be bit-identical across same-seed runs (every timestamp comes from
//! the simulated clock), the trace must contain spans and flow events
//! for the pipeline, and the per-stage MTP decomposition must sum to
//! the end-to-end MTP.

use std::time::Duration;

use illixr_core::obs::{chrome_trace_json, metrics_csv};
use illixr_platform::spec::Platform;
use illixr_render::apps::Application;
use illixr_server::ServerBuilder;
use illixr_system::experiment::{ExperimentConfig, IntegratedExperiment};

fn traced_server_artifacts() -> (String, String) {
    let report =
        ServerBuilder::new().sessions(3).duration(Duration::from_secs(2)).trace(true).build().run();
    (chrome_trace_json(&report.tracer), metrics_csv(&report.metrics))
}

#[test]
fn server_trace_and_metrics_are_bit_identical_across_runs() {
    let (trace_a, csv_a) = traced_server_artifacts();
    let (trace_b, csv_b) = traced_server_artifacts();
    assert_eq!(trace_a, trace_b, "trace.json must be bit-identical for the same seed");
    assert_eq!(csv_a, csv_b, "metrics.csv must be bit-identical for the same seed");
}

#[test]
fn server_trace_contains_pipeline_spans_and_flow_events() {
    let (trace, csv) = traced_server_artifacts();
    // Server-side spans: VIO worker-pool batches and cloud renders.
    assert!(trace.contains("vio_batch"), "missing vio_pool batch spans");
    assert!(trace.contains("\"render\""), "missing render spans");
    // Client-side spans on session-scoped tracks.
    assert!(trace.contains("s0/warp"), "missing session 0 warp track");
    assert!(trace.contains("s2/warp"), "missing session 2 warp track");
    // Switchboard flow events stitch the causal chain: "s" starts a
    // flow at the publisher, "f" finishes it at the consumer.
    assert!(trace.contains("\"ph\":\"s\""), "missing flow-start events");
    assert!(trace.contains("\"ph\":\"f\""), "missing flow-finish events");
    // Link backlog counters.
    assert!(trace.contains("uplink_queue_ms"), "missing uplink counter track");
    // Histogram CSV carries the MTP stages and topic gauges.
    for name in ["mtp.sense", "mtp.round_trip", "mtp.queue", "mtp.warp", "mtp.swap", "mtp.total"] {
        assert!(csv.contains(name), "metrics.csv missing {name}");
    }
    assert!(csv.contains("topic.s0/"), "metrics.csv missing per-session topic gauges");
}

#[test]
fn server_mtp_stage_means_sum_to_total() {
    let report =
        ServerBuilder::new().sessions(2).duration(Duration::from_secs(2)).trace(true).build().run();
    let mean = |name: &str| {
        let h = report.metrics.snapshot(name).unwrap_or_else(|| panic!("no histogram {name}"));
        h.sum_ns as f64 / h.count.max(1) as f64
    };
    let stage_sum = mean("mtp.sense")
        + mean("mtp.round_trip")
        + mean("mtp.queue")
        + mean("mtp.warp")
        + mean("mtp.swap");
    let total = mean("mtp.total");
    assert!(total > 0.0, "no displayed frames recorded");
    let gap = (stage_sum - total).abs() / total;
    assert!(
        gap < 0.01,
        "stage decomposition gap {gap} exceeds 1% (sum {stage_sum}, total {total})"
    );
}

#[test]
fn experiment_trace_is_deterministic_and_decomposes_mtp() {
    let run = || {
        let cfg = ExperimentConfig::quick(Application::Platformer, Platform::Desktop).with_trace();
        IntegratedExperiment::run(&cfg)
    };
    let a = run();
    let b = run();
    assert_eq!(chrome_trace_json(&a.tracer), chrome_trace_json(&b.tracer));
    assert_eq!(metrics_csv(&a.metrics), metrics_csv(&b.metrics));
    let trace = chrome_trace_json(&a.tracer);
    assert!(trace.contains("\"mtp\""), "missing per-frame mtp spans");
    assert!(trace.contains("\"ph\":\"s\""), "missing flow events");
    let mean = |name: &str| {
        let h = a.metrics.snapshot(name).unwrap_or_else(|| panic!("no histogram {name}"));
        h.sum_ns as f64 / h.count.max(1) as f64
    };
    let stage_sum = mean("mtp.imu_age") + mean("mtp.reprojection") + mean("mtp.swap");
    let total = mean("mtp.total");
    let gap = (stage_sum - total).abs() / total;
    assert!(gap < 0.01, "experiment stage gap {gap} (sum {stage_sum}, total {total})");
}

#[test]
fn untraced_runs_record_nothing() {
    let report = ServerBuilder::new().sessions(1).duration(Duration::from_secs(1)).build().run();
    assert!(!report.tracer.is_enabled());
    assert!(report.tracer.spans().is_empty());
    assert!(report.metrics.snapshots().is_empty());
}
