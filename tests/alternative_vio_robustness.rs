use illixr_testbed::sensors::camera::{PinholeCamera, StereoRig};
use illixr_testbed::sensors::dataset::SyntheticDataset;
use illixr_testbed::sensors::types::StereoFrame;
use illixr_testbed::vio::alternative::{FrameToFrameConfig, FrameToFrameVio};
use illixr_testbed::vio::integrator::ImuState;
use std::sync::Arc;

#[test]
fn alternative_vio_never_diverges_across_seeds() {
    let rig = StereoRig::zed_mini(PinholeCamera::qvga());
    let mut worsts = Vec::new();
    for seed in [1u64, 7, 13, 21, 27, 42, 55, 99] {
        let ds = SyntheticDataset::vicon_room_like(seed, 4.0);
        let gt0 = ds.ground_truth[0];
        let mut vio = FrameToFrameVio::new(
            FrameToFrameConfig::default(),
            rig,
            ImuState::from_pose(gt0.timestamp, gt0.pose, gt0.velocity),
        );
        let mut imu_idx = 0;
        let mut worst = 0.0f64;
        for (k, &t) in ds.camera_times.iter().enumerate() {
            while imu_idx < ds.imu.len() && ds.imu[imu_idx].timestamp <= t {
                vio.process_imu(ds.imu[imu_idx]);
                imu_idx += 1;
            }
            let (l, r) = ds.render_frame(&rig, k);
            let out = vio.process_frame(
                &StereoFrame { timestamp: t, left: Arc::new(l), right: Arc::new(r), seq: k as u64 },
                None,
            );
            worst = worst.max(out.state.pose.translation_distance(&ds.ground_truth_pose(t)));
        }
        // The lightweight tracker's accuracy class is decimeters-to-
        // low-meters depending on the trajectory (vs the MSCKF's
        // centimeters); the guarantee tested here is *bounded* error —
        // the leaky velocity prior prevents runaway divergence during
        // vision outages.
        assert!(worst < 4.0, "seed {seed}: diverged to {worst:.2} m");
        worsts.push(worst);
    }
    worsts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = worsts[worsts.len() / 2];
    assert!(median < 1.5, "median worst drift {median:.2} m");
}
