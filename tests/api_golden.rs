//! Golden tests for the WebXR-style front-end (`illixr-api`).
//!
//! Two determinism contracts:
//!
//! 1. **Mock backend**: two sessions negotiated from the same seed
//!    replay bit-identical frame/input/hit-test streams (compared both
//!    as transcript bytes and as drained payloads).
//! 2. **Remote backend**: an immersive-vr session with default features
//!    adopted into an `illixr-server` run reports byte-identically to a
//!    direct `ServerBuilder` run of the same shape — the front-end adds
//!    no nondeterminism and no configuration drift.

use std::time::Duration;

use illixr_testbed::api::{
    payloads, Feature, MockConfig, MockDiscovery, Ray, Registry, RemoteConfig, RemoteDiscovery,
    Session, SessionInit, SessionMode,
};
use illixr_testbed::math::Vec3;
use illixr_testbed::server::ServerBuilder;

/// Opens a fully-featured mock session and drains every stream.
fn run_mock(seed: u64) -> (String, Vec<String>, usize, usize) {
    let mut registry = Registry::new();
    registry.register(Box::new(MockDiscovery::with_config(MockConfig {
        frames: 90,
        ..MockConfig::new(seed)
    })));
    let init = SessionInit::new().optional(&[Feature::HandTracking, Feature::HitTest]);
    let mut session: Session = registry.request_session(SessionMode::ImmersiveVr, &init).unwrap();
    let frames = session.frames();
    let inputs = session.input_events();
    let hits = session.hit_test_events();
    session
        .request_hit_test(Ray {
            origin: Vec3::new(0.0, 1.6, 0.0),
            direction: Vec3::new(0.0, -1.0, 0.0),
        })
        .unwrap();
    while session.pump().is_some() {}
    let frame_lines: Vec<String> = payloads(frames.drain())
        .into_iter()
        .map(|f| format!("{} {} {:?}", f.index, f.time.as_nanos(), f.viewer))
        .collect();
    (session.transcript().to_owned(), frame_lines, inputs.drain().len(), hits.drain().len())
}

#[test]
fn mock_streams_are_bit_identical_across_same_seed_reruns() {
    let (transcript_a, frames_a, inputs_a, hits_a) = run_mock(13);
    let (transcript_b, frames_b, inputs_b, hits_b) = run_mock(13);
    assert!(!transcript_a.is_empty());
    assert_eq!(transcript_a, transcript_b, "same-seed transcripts must be byte-identical");
    assert_eq!(frames_a, frames_b);
    assert_eq!(frames_a.len(), 90);
    assert_eq!((inputs_a, hits_a), (inputs_b, hits_b));
    assert!(inputs_a > 0, "90 scripted frames must produce input edges");
    assert_eq!(hits_a, 90, "every frame answers the active hit-test subscription");

    // A different seed must actually change the streams.
    let (transcript_c, ..) = run_mock(14);
    assert_ne!(transcript_a, transcript_c);
}

#[test]
fn remote_session_report_matches_direct_server_run() {
    let duration = Duration::from_secs(2);
    let mut registry = Registry::new();
    registry.register(Box::new(RemoteDiscovery::new(RemoteConfig { duration, real_vio: false })));
    let mut session =
        registry.request_session(SessionMode::ImmersiveVr, &SessionInit::new()).unwrap();
    let frames = session.run(u64::MAX);

    let direct = ServerBuilder::new().sessions(1).duration(duration).build().run();
    assert_eq!(
        session.report(),
        direct.summary_text(),
        "front-end session must configure the server identically to a direct run"
    );
    let handle = direct.session(0).unwrap();
    assert_eq!(
        frames as usize,
        handle.telemetry().displayed_frames.len(),
        "session frame stream must replay the displayed-frame log one-to-one"
    );
    assert!(frames > 0);
}

#[test]
fn mixed_mode_remote_sessions_coexist_and_rerun_identically() {
    let open_all = || {
        let discovery = RemoteDiscovery::new(RemoteConfig {
            duration: Duration::from_secs(1),
            real_vio: false,
        });
        let server = discovery.handle();
        let mut registry = Registry::new();
        registry.register(Box::new(discovery));
        let modes = [SessionMode::Inline, SessionMode::ImmersiveVr, SessionMode::ImmersiveAr];
        // All sessions must be adopted before the first frame triggers
        // the shared server run.
        let mut sessions: Vec<Session> = modes
            .into_iter()
            .map(|mode| registry.request_session(mode, &SessionInit::new()).unwrap())
            .collect();
        let counts: Vec<u64> = sessions.iter_mut().map(|s| s.run(u64::MAX)).collect();
        (counts, server.server_report().summary_text())
    };
    let (counts_a, report_a) = open_all();
    let (counts_b, report_b) = open_all();
    assert_eq!(counts_a, counts_b);
    assert_eq!(report_a, report_b, "mixed-mode server run must be deterministic");
    assert!(
        counts_a.iter().all(|&frames| frames > 0),
        "all three modes must deliver frames from one shared server: {counts_a:?}"
    );
}
