//! Golden tests for the record/replay determinism boundary: a recorded
//! run must replay bit-identically — same boundary trace bytes, same
//! Perfetto trace JSON, same metrics CSV — even when the replaying
//! config carries a different seed and a quiet fault plan (the trace,
//! not the generators or the fault RNG, is the source of truth); the
//! committed fixture trace must keep decoding and re-recording to the
//! exact committed bytes (format stability); and fanning one recording
//! out to 64 synthetic server sessions must be deterministic across
//! reruns.
#![recursion_limit = "256"]

use std::sync::Arc;
use std::time::Duration;

use illixr_core::boundary::{Boundary, Trace, TraceError, TraceSource};
use illixr_core::fault::FaultPlan;
use illixr_core::obs::{chrome_trace_json, metrics_csv};
use illixr_core::supervisor::SupervisionPolicy;
use illixr_platform::spec::Platform;
use illixr_render::apps::Application;
use illixr_server::server::ReplayLoad;
use illixr_server::ServerBuilder;
use illixr_system::experiment::{ExperimentConfig, ExperimentResult, IntegratedExperiment};
use proptest::prelude::*;

/// The fig4-style shape `trace_replay --write-fixture` records under —
/// keep in sync with `crates/bench/src/bin/trace_replay.rs`.
fn fig4_config() -> ExperimentConfig {
    ExperimentConfig::quick(Application::Platformer, Platform::Desktop)
        .with_trace()
        .with_boundary_record()
}

fn assert_replay_identity(recorded: &ExperimentResult, replayed: &ExperimentResult) {
    let trace = recorded.boundary_trace.as_ref().expect("recording enabled");
    let rerec = replayed.boundary_trace.as_ref().expect("re-recording enabled");
    if rerec.encode() != trace.encode() {
        panic!(
            "re-recorded trace diverged:\n{}",
            Boundary::divergence_report(trace, rerec, &replayed.stream_stats)
        );
    }
    assert_eq!(
        chrome_trace_json(&replayed.tracer),
        chrome_trace_json(&recorded.tracer),
        "replayed trace.json must be bit-identical"
    );
    assert_eq!(
        metrics_csv(&replayed.metrics),
        metrics_csv(&recorded.metrics),
        "replayed metrics.csv must be bit-identical"
    );
}

#[test]
fn recorded_run_replays_bit_identically_with_different_config_seed() {
    let recorded = IntegratedExperiment::run(&fig4_config());
    let trace = recorded.boundary_trace.clone().expect("recording enabled");
    assert!(trace.record_count() > 500, "2 s of IMU+camera: {}", trace.record_count());

    let mut cfg = fig4_config().with_trace_source(TraceSource::new(Arc::new(trace)));
    cfg.seed ^= 0xFACE_FEED;
    let replayed = IntegratedExperiment::run(&cfg);
    assert_replay_identity(&recorded, &replayed);
}

/// Satellite: a faulted *and supervised* recording replays identically
/// under a quiet plan — sensor faults are baked into the recorded
/// samples, and scheduled plugin crashes replay from the recorded
/// `crash/<plugin>` boundary stream, not from the fault RNG.
#[test]
fn faulted_supervised_recording_replays_under_a_quiet_plan() {
    let mut cfg = fig4_config()
        .with_fault_plan(FaultPlan::scheduled(42, 1.0, Duration::from_secs(2).as_nanos() as u64))
        .with_supervision(SupervisionPolicy::default());
    cfg.chain_deadline = Duration::from_millis(15);
    let recorded = IntegratedExperiment::run(&cfg);
    let trace = recorded.boundary_trace.clone().expect("recording enabled");
    assert!(
        trace.streams.iter().any(|(name, _)| name.starts_with("crash/")),
        "intensity-1.0 scheduled plan should crash at least one plugin"
    );

    // Quiet plan, different seed: everything must come from the trace.
    let mut replay_cfg = fig4_config()
        .with_supervision(SupervisionPolicy::default())
        .with_trace_source(TraceSource::new(Arc::new(trace)));
    replay_cfg.chain_deadline = Duration::from_millis(15);
    replay_cfg.seed ^= 0xDEAD;
    let replayed = IntegratedExperiment::run(&replay_cfg);
    assert_replay_identity(&recorded, &replayed);
    assert_eq!(
        recorded.supervisor.report(),
        replayed.supervisor.report(),
        "replayed crash/restart history must match the recording"
    );
}

/// Format stability: the committed fixture keeps decoding, and
/// replaying it re-records to the exact committed bytes.
#[test]
fn committed_fixture_replays_and_rerecords_byte_identically() {
    let bytes =
        std::fs::read(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/trace_fixture.ilxt"))
            .expect("fixture committed under tests/data/");
    let trace = Trace::decode(&bytes).expect("fixture decodes under the current schema");
    assert!(trace.record_count() > 0);

    let cfg = fig4_config().with_trace_source(TraceSource::new(Arc::new(trace)));
    let replayed = IntegratedExperiment::run(&cfg);
    let rerec = replayed.boundary_trace.expect("re-recording enabled");
    assert_eq!(
        rerec.encode(),
        bytes,
        "fixture replay must re-record to the committed bytes (format or boundary drift)"
    );
}

/// Corrupt or truncated fixtures are rejected, never misread.
#[test]
fn corrupt_fixture_bytes_are_rejected() {
    let bytes =
        std::fs::read(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/trace_fixture.ilxt"))
            .expect("fixture committed under tests/data/");
    assert!(matches!(Trace::decode(&bytes[..bytes.len() - 3]), Err(TraceError::Truncated(_))));
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(Trace::decode(&bad_magic), Err(TraceError::BadMagic { .. })));
    let mut bad_version = bytes;
    bad_version[4] = 0xEE;
    assert!(matches!(Trace::decode(&bad_version), Err(TraceError::UnsupportedVersion { .. })));
}

/// Fanning one recording out to 64 synthetic sessions is deterministic
/// across reruns — same trace, same transform seed, same report bytes.
#[test]
fn fan_out_to_64_sessions_is_deterministic_across_reruns() {
    let duration = Duration::from_secs(1);
    let recorded =
        ServerBuilder::new().sessions(1).duration(duration).record_boundary(true).build().run();
    let trace = Arc::new(recorded.boundary_trace.expect("recording enabled"));

    let run = || {
        ServerBuilder::new()
            .sessions(64)
            .duration(duration)
            .tune(|cfg| {
                cfg.admission.degrade_threshold = 10.0;
                cfg.admission.reject_threshold = 10.0;
            })
            .replay(ReplayLoad::fan_out(trace.clone(), 7, Duration::from_millis(40), 0.05))
            .build()
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.summary_text(), b.summary_text(), "64-session fan-out reruns diverged");
    let displayed: u64 = a.sessions().map(|s| s.mtp().displayed).sum();
    assert!(displayed > 64, "fan-out sessions should display frames: {displayed}");
}

/// Record→replay bit identity for one `(seed, intensity)` point: a
/// faulted supervised 1 s recording replayed under a quiet plan and a
/// different config seed.
fn check_identity_at(seed: u64, intensity: f64) {
    let base = || {
        let mut cfg = ExperimentConfig::quick(Application::Platformer, Platform::Desktop)
            .with_trace()
            .with_boundary_record()
            .with_supervision(SupervisionPolicy::default());
        cfg.duration = Duration::from_secs(1);
        cfg.seed = seed;
        cfg
    };
    let recorded = IntegratedExperiment::run(&base().with_fault_plan(FaultPlan::scheduled(
        seed,
        intensity,
        Duration::from_secs(1).as_nanos() as u64,
    )));
    let trace = recorded.boundary_trace.clone().expect("recording enabled");
    let mut replay_cfg = base().with_trace_source(TraceSource::new(Arc::new(trace)));
    replay_cfg.seed = seed.wrapping_add(999);
    let replayed = IntegratedExperiment::run(&replay_cfg);
    assert_replay_identity(&recorded, &replayed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn record_replay_identity_across_seeds_and_intensities(
        seed in 0u64..1_000,
        intensity in 0.0f64..1.5,
    ) {
        check_identity_at(seed, intensity);
    }
}
