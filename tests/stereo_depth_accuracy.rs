//! Stereo triangulation accuracy: the front end's KLT disparity against
//! known landmark depths — guards against systematic depth bias, which
//! would silently poison every map-based consumer.

use illixr_testbed::math::Pose;
use illixr_testbed::sensors::camera::{PinholeCamera, StereoRig};
use illixr_testbed::sensors::world::LandmarkWorld;
use illixr_testbed::vio::frontend::{FrontEnd, FrontEndParams};

#[test]
fn stereo_depth_from_frontend_disparity_is_unbiased() {
    let rig = StereoRig::zed_mini(PinholeCamera::qvga());
    let world = LandmarkWorld::lab(27);
    let pose = Pose::IDENTITY;
    let left = world.render(&rig, &pose, 0);
    let right = world.render(&rig, &pose, 1);
    let mut fe = FrontEnd::new(FrontEndParams::default());
    let tracks = fe.process(&left, &right, None);
    let mut errs = Vec::new();
    for t in &tracks {
        let Some(r) = t.right else { continue };
        let disparity = t.left.x - r.x;
        let Some(depth) = rig.depth_from_disparity(disparity) else { continue };
        // true depth: nearest landmark to the ray
        let ray =
            rig.camera.unproject(illixr_testbed::math::Vec2::new(t.left.x, t.left.y)).normalized();
        let mut best = (f64::INFINITY, 0.0);
        for &lm in world.landmarks() {
            let p = pose.inverse().transform_point(lm);
            if p.z < 0.1 {
                continue;
            }
            let perp = (p - ray * p.dot(ray)).norm();
            if perp < best.0 {
                best = (perp, p.z);
            }
        }
        if best.0 < 0.15 {
            errs.push((best.1, depth, disparity));
        }
    }
    assert!(errs.len() >= 10, "too few landmark-matched stereo tracks: {}", errs.len());
    let mean_rel: f64 = errs.iter().map(|(t, e, _)| (e - t) / t).sum::<f64>() / errs.len() as f64;
    let worst_rel: f64 = errs.iter().map(|(t, e, _)| ((e - t) / t).abs()).fold(0.0, f64::max);
    assert!(mean_rel.abs() < 0.01, "systematic depth bias {:+.2}%", mean_rel * 100.0);
    assert!(worst_rel < 0.05, "worst relative depth error {:.2}%", worst_rel * 100.0);
}
