//! Additional cross-crate edge-case tests for the substrates.

use illixr_testbed::audio::binaural::default_ring_bank;
use illixr_testbed::audio::hrtf::HRIR_TAPS;
use illixr_testbed::core::{Clock, SimClock, Time};
use illixr_testbed::dsp::window::blackman;
use illixr_testbed::dsp::Biquad;
use illixr_testbed::image::{GrayImage, Pyramid, RgbImage};
use illixr_testbed::math::{percentile, Mat4, OnlineStats, Quat, Svd, Vec3};
use illixr_testbed::platform::power::{PowerModel, Rail};
use illixr_testbed::platform::spec::Platform;
use illixr_testbed::sensors::camera::{PinholeCamera, StereoRig};
use illixr_testbed::visual::hologram::{compute_hologram, HologramConfig};

#[test]
fn stereo_camera_centers_are_baseline_apart() {
    let rig = StereoRig::zed_mini(PinholeCamera::vga());
    let pose = illixr_testbed::math::Pose::new(
        Vec3::new(1.0, 2.0, 3.0),
        Quat::from_axis_angle(Vec3::UNIT_Y, 0.7),
    );
    let (l, r) = rig.camera_centers(&pose);
    assert!(((l - r).norm() - rig.baseline).abs() < 1e-12);
}

#[test]
fn perspective_composed_with_view_is_invertible_in_frustum() {
    let proj = Mat4::perspective(1.2, 16.0 / 9.0, 0.1, 50.0);
    let view = Mat4::look_at(Vec3::new(1.0, 2.0, 3.0), Vec3::ZERO, Vec3::UNIT_Y);
    let vp = proj * view;
    let inv = vp.inverse().expect("view-projection invertible");
    let p = Vec3::new(0.3, -0.2, 0.0);
    let clip = vp * p.extend(1.0);
    let back = (inv * clip).project();
    assert!((back - p).norm() < 1e-9);
}

#[test]
fn svd_pseudo_solves_rank_deficient_system() {
    use illixr_testbed::math::DMatrix;
    // Rank-2 system in 3 unknowns; SVD exposes the rank.
    let a = DMatrix::from_fn(5, 3, |r, c| match c {
        0 => r as f64,
        1 => 2.0 * r as f64, // linearly dependent on column 0
        _ => 1.0,
    });
    let svd = Svd::new(&a).unwrap();
    assert_eq!(svd.rank(1e-10), 2);
}

#[test]
fn blackman_window_tapers_to_near_zero() {
    let w = blackman(64);
    assert!(w[0].abs() < 1e-6);
    assert!(w[32] > 0.9);
}

#[test]
fn biquad_block_processing_matches_sample_processing() {
    let mut a = Biquad::low_pass(48_000.0, 2_000.0, 0.707);
    let mut b = Biquad::low_pass(48_000.0, 2_000.0, 0.707);
    let input: Vec<f64> = (0..128).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
    let per_sample: Vec<f64> = input.iter().map(|&x| a.process(x)).collect();
    let mut block = input.clone();
    b.process_block(&mut block);
    for (x, y) in per_sample.iter().zip(&block) {
        assert!((x - y).abs() < 1e-12);
    }
}

#[test]
fn pyramid_levels_preserve_mean_intensity() {
    let base = GrayImage::from_fn(64, 64, |x, y| ((x + y) % 16) as f32 / 16.0);
    let pyr = Pyramid::new(&base, 3);
    let m0 = pyr.level(0).mean();
    let m2 = pyr.level(2).mean();
    assert!((m0 - m2).abs() < 0.05, "level means {m0} vs {m2}");
}

#[test]
fn power_model_energy_scales_with_duration() {
    let m = PowerModel::new(Platform::JetsonHP);
    let b = m.breakdown_from_compute(0.5, 0.5);
    let e1 = PowerModel::energy_joules(&b, 10.0);
    let e2 = PowerModel::energy_joules(&b, 20.0);
    assert!((e2 / e1 - 2.0).abs() < 1e-12);
    // All rails positive.
    for rail in Rail::ALL {
        assert!(b.get(rail) > 0.0);
    }
}

#[test]
fn hologram_width_height_accessors() {
    let cfg = HologramConfig { width: 32, height: 16, iterations: 1, ..Default::default() };
    let t = GrayImage::from_fn(32, 16, |x, _| (x % 2) as f32);
    let holo = compute_hologram(&[t.clone(), t], &cfg, None);
    assert_eq!(holo.width(), 32);
    assert_eq!(holo.height(), 16);
}

#[test]
fn hrir_bank_has_expected_shape() {
    let bank = default_ring_bank(48_000.0);
    assert_eq!(bank.len(), 8);
    for i in 0..bank.len() {
        assert_eq!(bank.pair(i).left.len(), HRIR_TAPS);
        assert_eq!(bank.pair(i).right.len(), HRIR_TAPS);
    }
}

#[test]
fn sim_clock_is_shared_across_threads() {
    let clock = SimClock::new();
    let clone = clock.clone();
    let handle = std::thread::spawn(move || {
        clone.advance_to(Time::from_millis(42));
    });
    handle.join().unwrap();
    assert_eq!(clock.now(), Time::from_millis(42));
}

#[test]
fn online_stats_percentile_interplay() {
    let data: Vec<f64> = (0..101).map(|i| i as f64).collect();
    let mut s = OnlineStats::new();
    data.iter().for_each(|&x| s.push(x));
    assert_eq!(percentile(&data, 50.0), Some(50.0));
    assert!((s.mean() - 50.0).abs() < 1e-12);
    assert_eq!(s.min(), 0.0);
    assert_eq!(s.max(), 100.0);
}

#[test]
fn rgb_image_channel_roundtrip() {
    let img = RgbImage::from_fn(8, 8, |x, y| [x as f32 / 8.0, y as f32 / 8.0, 0.25]);
    for c in 0..3 {
        let ch = img.channel(c);
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(ch.get(x, y), img.get(x, y)[c]);
            }
        }
    }
}

#[test]
fn msckf_update_shrinks_uncertainty_and_corrects_pose() {
    // A focused filter-consistency check: start the filter with a small
    // position offset from truth; after a few frames of updates the
    // estimate must move toward truth (Jacobian signs correct) rather
    // than away from it (signs flipped).
    use illixr_testbed::sensors::dataset::SyntheticDataset;
    use illixr_testbed::sensors::types::StereoFrame;
    use illixr_testbed::vio::integrator::ImuState;
    use illixr_testbed::vio::msckf::{Msckf, VioConfig};
    use std::sync::Arc;

    let ds = SyntheticDataset::vicon_room_like(61, 2.0);
    let rig = StereoRig::zed_mini(PinholeCamera::qvga());
    let gt0 = ds.ground_truth[0];
    let offset = Vec3::new(0.05, -0.03, 0.04); // 7 cm initial error
    let mut wrong_pose = gt0.pose;
    wrong_pose.position += offset;
    let init = ImuState::from_pose(gt0.timestamp, wrong_pose, gt0.velocity);
    let mut filter = Msckf::new(VioConfig::fast(PinholeCamera::qvga()), init);

    let initial_err = offset.norm();
    let mut imu_idx = 0;
    for (k, &t) in ds.camera_times.iter().enumerate() {
        while imu_idx < ds.imu.len() && ds.imu[imu_idx].timestamp <= t {
            filter.process_imu(ds.imu[imu_idx]);
            imu_idx += 1;
        }
        let (l, r) = ds.render_frame(&rig, k);
        filter.process_frame(
            &StereoFrame { timestamp: t, left: Arc::new(l), right: Arc::new(r), seq: k as u64 },
            None,
        );
    }
    let final_err = filter
        .state()
        .pose
        .translation_distance(&ds.ground_truth_pose(*ds.camera_times.last().unwrap()));
    // Visual updates cannot fully remove an absolute offset (it is only
    // weakly observable), but a sign error would blow the error up.
    assert!(
        final_err < 3.0 * initial_err,
        "filter diverged from a 7 cm initial offset: {final_err:.3} m"
    );
}
