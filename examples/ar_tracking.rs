//! AR head tracking over an offline dataset: the perception pipeline in
//! isolation.
//!
//! Replays a pre-recorded (synthetic EuRoC-like) camera+IMU sequence
//! through the offline-player plugin, tracks it with the MSCKF VIO and
//! the RK4 IMU integrator, and reports trajectory accuracy against
//! ground truth — the workflow a robotics/SLAM user of the testbed runs
//! daily.
//!
//! ```bash
//! cargo run --release --example ar_tracking
//! ```

use std::sync::Arc;

use illixr_testbed::core::plugin::{Plugin, RuntimeBuilder};
use illixr_testbed::core::{SimClock, Time};
use illixr_testbed::qoe::ate::absolute_trajectory_error;
use illixr_testbed::sensors::camera::{PinholeCamera, StereoRig};
use illixr_testbed::sensors::dataset::SyntheticDataset;
use illixr_testbed::sensors::plugins::OfflineImuCameraPlugin;
use illixr_testbed::sensors::types::{streams, PoseEstimate};
use illixr_testbed::vio::integrator::ImuState;
use illixr_testbed::vio::msckf::VioConfig;
use illixr_testbed::vio::plugins::{ImuIntegratorPlugin, VioPlugin};

fn main() {
    println!("AR tracking over an offline dataset (EuRoC-replacement)\n");
    let duration_s = 6.0;
    let ds = Arc::new(SyntheticDataset::vicon_room_like(11, duration_s));
    let cam = PinholeCamera::qvga();
    let rig = StereoRig::zed_mini(cam);

    // Demonstrate the dataset's CSV round trip (the archival format).
    let csv = std::env::temp_dir().join("illixr_example_seq.csv");
    ds.save_csv(&csv).expect("dataset saved");
    let (imu_rows, _gt) = SyntheticDataset::load_csv(&csv).expect("dataset loaded");
    println!("dataset: {:.1} s, {} IMU rows (CSV round trip OK)", duration_s, imu_rows.len());
    std::fs::remove_file(&csv).ok();

    let clock = SimClock::new();
    let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
    let gt0 = &ds.ground_truth[0];
    let init = ImuState::from_pose(gt0.timestamp, gt0.pose, gt0.velocity);
    let mut source = OfflineImuCameraPlugin::new(ds.clone(), rig);
    let mut vio = VioPlugin::new(VioConfig::fast(cam), init);
    let mut integrator = ImuIntegratorPlugin::new(init);
    source.start(&ctx);
    vio.start(&ctx);
    integrator.start(&ctx);
    let fast_pose =
        ctx.switchboard.topic::<PoseEstimate>(streams::FAST_POSE).expect("stream").async_reader();

    let mut est = Vec::new();
    let mut truth = Vec::new();
    let steps = (duration_s * 15.0) as u64;
    for k in 1..steps {
        clock.advance_to(Time::from_secs_f64(k as f64 / 15.0));
        source.iterate(&ctx);
        vio.iterate(&ctx);
        integrator.iterate(&ctx);
        if let Some(pose) = fast_pose.latest() {
            est.push(pose.pose);
            truth.push(ds.ground_truth_pose(pose.timestamp));
        }
    }

    let ate_cm = absolute_trajectory_error(&est, &truth).expect("poses collected") * 100.0;
    let final_err_cm = est.last().unwrap().translation_distance(truth.last().unwrap()) * 100.0;
    println!("tracked {} pose samples over {:.1} s", est.len(), duration_s);
    println!("absolute trajectory error: {ate_cm:.1} cm (final drift {final_err_cm:.1} cm)");
    println!("(paper §V-E reports 4.9–8.1 cm ATE on EuRoC Vicon Room 1 Medium)");
    assert!(ate_cm < 60.0, "tracking diverged");
}
