//! Spatial audio standalone: encode moving sources into a soundfield,
//! rotate it with a scripted head motion, and binauralize.
//!
//! Prints the interaural level difference over time — you can "see" the
//! lecturer sweep from left to right as the listener turns their head.
//!
//! ```bash
//! cargo run --release --example spatial_audio
//! ```

use illixr_testbed::audio::ambisonics::Soundfield;
use illixr_testbed::audio::binaural::{default_ring_bank, BinauralDecoder};
use illixr_testbed::audio::rotation::rotate_yaw;
use illixr_testbed::audio::sources::SoundSource;
use illixr_testbed::audio::{encode_block, psychoacoustic_filter};

fn main() {
    let rate = 48_000.0;
    let block = 1024;
    println!("Spatial audio: a lecturer 60° to the left, listener turning toward them\n");
    let mut lecturer = SoundSource::lecture(rate, 1.05, 3); // ~60° left
    let bank = default_ring_bank(rate);
    let mut decoder = BinauralDecoder::new(&bank, block);

    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>16}",
        "t (s)", "head yaw", "L rms", "R rms", "balance (L-R dB)"
    );
    println!("{}", "-".repeat(60));
    let blocks = 48; // ~1 s
    for k in 0..blocks {
        let t = k as f64 * block as f64 / rate;
        // The listener turns from straight ahead to facing the lecturer.
        let yaw = 1.05 * (t / 1.0).min(1.0);
        let mono = lecturer.next_block(block);
        let field: Soundfield = encode_block(&mono, lecturer.azimuth, 0.0);
        let rotated = rotate_yaw(&field, yaw);
        let filtered = psychoacoustic_filter(&rotated, rate);
        let stereo = decoder.process(&filtered);
        if k % 8 == 0 {
            let rms = |x: &[f64]| (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt();
            let l = rms(&stereo.left);
            let r = rms(&stereo.right);
            let db = 20.0 * (l.max(1e-12) / r.max(1e-12)).log10();
            println!("{t:>8.2} {:>9.2}° {l:>10.4} {r:>10.4} {db:>15.1}dB", yaw.to_degrees());
        }
    }
    println!("\nAs the head turns toward the source, the interaural balance approaches 0 dB.");
}
