//! A miniature architecture study: what does moving from a desktop to an
//! embedded platform do to the XR experience?
//!
//! Runs the integrated simulated system for every platform and prints a
//! one-screen summary — achieved rates, deadline misses, MTP, power —
//! the kind of question the testbed exists to answer (paper §V).
//!
//! ```bash
//! cargo run --release --example platform_study
//! ```

use illixr_testbed::platform::spec::Platform;
use illixr_testbed::render::apps::Application;
use illixr_testbed::system::experiment::{ExperimentConfig, IntegratedExperiment};

fn main() {
    let app = Application::Sponza;
    println!("Platform study: {app} for 3 simulated seconds per platform\n");
    println!(
        "{:<11} {:>9} {:>9} {:>9} {:>10} {:>9} {:>9} {:>9}",
        "platform", "VIO Hz", "app Hz", "warp Hz", "MTP (ms)", "power", "GPU util", "judder"
    );
    println!("{}", "-".repeat(82));
    for platform in Platform::ALL {
        let mut cfg = ExperimentConfig::paper(app, platform);
        cfg.duration = std::time::Duration::from_secs(3);
        let r = IntegratedExperiment::run(&cfg);
        let hz = |name: &str| r.stats(name).map(|s| s.achieved_hz).unwrap_or(0.0);
        let mtp = r.mtp_ms().map(|m| format!("{m:.1}")).unwrap_or_else(|| "-".into());
        println!(
            "{:<11} {:>9.1} {:>9.1} {:>9.1} {:>10} {:>8.1}W {:>8.0}% {:>6.1}mm",
            platform.label(),
            hz("vio"),
            hz("application"),
            hz("timewarp"),
            mtp,
            r.power.total(),
            r.gpu_util * 100.0,
            r.pose_judder().unwrap_or(0.0) * 1e3,
        );
    }
    println!("\nReading the table: the desktop hits its targets at two orders of");
    println!("magnitude too much power; Jetson-LP fits the power envelope but the");
    println!("visual pipeline collapses — the paper's central tension (§IV).");
}
