//! Quickstart: the smallest end-to-end ILLIXR-rs session.
//!
//! Starts the full live testbed (camera → VIO → integrator → application
//! → timewarp, plus the audio pipeline) on real threads for two seconds,
//! then prints what each component achieved — the "hello world" of the
//! testbed.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use std::time::Duration;

use illixr_testbed::render::apps::Application;
use illixr_testbed::system::config::SystemConfig;
use illixr_testbed::system::testbed::LiveTestbed;

fn main() {
    println!("ILLIXR-rs quickstart: live testbed, AR Demo, 2 seconds\n");
    let config = SystemConfig { eye_width: 64, eye_height: 64, ..Default::default() };
    // Rates derated to 25% so the demo runs comfortably anywhere.
    let testbed = LiveTestbed::start(Application::ArDemo, config, 42, 0.25);
    testbed.run_for(Duration::from_secs(2));

    let telemetry = testbed.context().telemetry.clone();
    println!("{:<16} {:>8} {:>8} {:>12} {:>8}", "component", "runs", "drops", "mean exec", "rate");
    println!("{}", "-".repeat(58));
    for name in [
        "camera",
        "imu",
        "vio",
        "imu_integrator",
        "application",
        "timewarp",
        "audio_encoding",
        "audio_playback",
    ] {
        if let Some(s) = telemetry.stats(name) {
            println!(
                "{:<16} {:>8} {:>8} {:>9.2} ms {:>6.1}Hz",
                name,
                s.invocations,
                s.drops,
                s.mean_execution.as_secs_f64() * 1e3,
                s.achieved_hz
            );
        }
    }
    testbed.shutdown();
    println!("\nDone. Try `cargo run -p illixr-bench --release --bin fig3` next.");
}
