//! WebXR-style session demo: negotiate an immersive-VR session against
//! the headless backend (the local integrated pipeline), drain 100
//! frames plus the input-event stream, and print what negotiation
//! granted.
//!
//! ```bash
//! cargo run --release --example api_session
//! ```

use illixr_testbed::api::{
    Feature, HeadlessConfig, HeadlessDiscovery, Registry, SessionInit, SessionMode,
};

fn main() {
    println!("ILLIXR-rs WebXR-style front-end: immersive-vr over the headless backend\n");

    let mut registry = Registry::new();
    registry.register(Box::new(HeadlessDiscovery::new(HeadlessConfig::default())));
    println!("registered backends: {:?}", registry.backends());
    println!(
        "immersive-vr supported: {}, immersive-ar supported: {}",
        registry.supports_session(SessionMode::ImmersiveVr),
        registry.supports_session(SessionMode::ImmersiveAr),
    );

    // local-floor is a hard requirement; hand tracking and hit-test are
    // nice-to-have. The headless backend grants the first two and
    // silently drops hit-test (no world geometry service).
    let init = SessionInit::new()
        .required(&[Feature::LocalFloor])
        .optional(&[Feature::HandTracking, Feature::HitTest]);
    let mut session = registry
        .request_session(SessionMode::ImmersiveVr, &init)
        .expect("headless backend accepts immersive-vr with local-floor");

    println!("\nsession open on '{}' ({})", session.backend(), session.mode().label());
    print!("negotiated features:");
    for feature in session.granted_features() {
        print!(" {}", feature.name());
    }
    println!("\nblend mode: {}", session.blend_mode().label());

    let frames = session.frames();
    let inputs = session.input_events();
    let delivered = session.run(100);
    println!("\ndrained {delivered} frames:");
    for event in frames.drain().iter().step_by(20) {
        let f = &event.data;
        println!(
            "  frame {:>3} t={:>7.1} ms viewer=({:+.3}, {:+.3}, {:+.3}) views={}",
            f.index,
            f.time.as_millis_f64(),
            f.viewer.position.x,
            f.viewer.position.y,
            f.viewer.position.z,
            f.views.len(),
        );
    }

    let events = inputs.drain();
    println!("\n{} input events over those frames:", events.len());
    for event in events.iter().take(8) {
        println!(
            "  t={:>7.1} ms source={} {}",
            event.time.as_millis_f64(),
            event.source,
            event.kind.label()
        );
    }
    if events.len() > 8 {
        println!("  ... and {} more", events.len() - 8);
    }

    session.end();
    println!("\nsession ended after {} frames", session.frame_count());
    println!("backend report: {}", session.report());
}
