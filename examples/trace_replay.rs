//! Trace-driven component study (§V-G): record a full-system run's
//! sensor streams, then replay them to drive VIO in isolation.
//!
//! This is the "rosbag" workflow the paper proposes for using ILLIXR
//! with architectural simulators: the component under study sees exactly
//! the traffic a full-system run produced — same frames, same IMU
//! samples, same timing — without running the rest of the system.
//!
//! ```bash
//! cargo run --release --example trace_replay
//! ```

use std::sync::Arc;

use illixr_testbed::core::plugin::{Plugin, RuntimeBuilder};
use illixr_testbed::core::trace::{StreamRecorder, TraceReplayer};
use illixr_testbed::core::{SimClock, Time};
use illixr_testbed::sensors::camera::{PinholeCamera, StereoRig};
use illixr_testbed::sensors::dataset::SyntheticDataset;
use illixr_testbed::sensors::plugins::OfflineImuCameraPlugin;
use illixr_testbed::sensors::types::{streams, ImuSample, PoseEstimate, StereoFrame};
use illixr_testbed::vio::integrator::ImuState;
use illixr_testbed::vio::msckf::VioConfig;
use illixr_testbed::vio::plugins::VioPlugin;

fn main() {
    let duration_s = 3.0;
    let ds = Arc::new(SyntheticDataset::vicon_room_like(33, duration_s));
    let rig = StereoRig::zed_mini(PinholeCamera::qvga());
    let gt0 = ds.ground_truth[0];
    let init = ImuState::from_pose(gt0.timestamp, gt0.pose, gt0.velocity);
    let ticks = (duration_s * 15.0) as u64;

    // --- Phase 1: full(ish) system run with recorders attached ----------
    println!("Phase 1: run the system and record its sensor streams");
    let clock_a = SimClock::new();
    let ctx_a = RuntimeBuilder::new(Arc::new(clock_a.clone())).build();
    let cam_recorder = StreamRecorder::<StereoFrame>::start(
        &ctx_a.switchboard,
        Arc::new(clock_a.clone()),
        streams::CAMERA,
        1 << 12,
    );
    let imu_recorder = StreamRecorder::<ImuSample>::start(
        &ctx_a.switchboard,
        Arc::new(clock_a.clone()),
        streams::IMU,
        1 << 14,
    );
    let mut source = OfflineImuCameraPlugin::new(ds.clone(), rig);
    let mut vio_a = VioPlugin::new(VioConfig::fast(rig.camera), init);
    source.start(&ctx_a);
    vio_a.start(&ctx_a);
    let poses_a = ctx_a
        .switchboard
        .topic::<PoseEstimate>(streams::SLOW_POSE)
        .expect("stream")
        .sync_reader(1 << 10);
    for k in 1..=ticks {
        clock_a.advance_to(Time::from_secs_f64(k as f64 / 15.0));
        source.iterate(&ctx_a);
        cam_recorder.pump();
        imu_recorder.pump();
        vio_a.iterate(&ctx_a);
    }
    let cam_trace = cam_recorder.finish();
    let imu_trace = imu_recorder.finish();
    let reference: Vec<PoseEstimate> = poses_a.drain().iter().map(|e| e.data).collect();
    println!(
        "  recorded {} camera frames + {} IMU samples spanning {:.1} s",
        cam_trace.len(),
        imu_trace.len(),
        cam_trace.span().as_secs_f64()
    );

    // --- Phase 2: replay the traces into an isolated VIO ----------------
    println!("\nPhase 2: replay the traces to drive a fresh VIO in isolation");
    let clock_b = SimClock::new();
    let ctx_b = RuntimeBuilder::new(Arc::new(clock_b.clone())).build();
    let mut cam_replay = TraceReplayer::new(&ctx_b.switchboard, cam_trace);
    let mut imu_replay = TraceReplayer::new(&ctx_b.switchboard, imu_trace);
    let mut vio_b = VioPlugin::new(VioConfig::fast(rig.camera), init);
    vio_b.start(&ctx_b);
    let poses_b = ctx_b
        .switchboard
        .topic::<PoseEstimate>(streams::SLOW_POSE)
        .expect("stream")
        .sync_reader(1 << 10);
    for k in 1..=ticks {
        let now = Time::from_secs_f64(k as f64 / 15.0);
        clock_b.advance_to(now);
        imu_replay.pump(now);
        cam_replay.pump(now);
        vio_b.iterate(&ctx_b);
    }
    assert!(cam_replay.finished() && imu_replay.finished(), "traces fully replayed");
    let replayed: Vec<PoseEstimate> = poses_b.drain().iter().map(|e| e.data).collect();

    // --- Compare ----------------------------------------------------------
    println!(
        "  reference run produced {} poses, trace-driven run {}",
        reference.len(),
        replayed.len()
    );
    assert_eq!(reference.len(), replayed.len());
    let max_diff = reference
        .iter()
        .zip(&replayed)
        .map(|(a, b)| a.pose.translation_distance(&b.pose))
        .fold(0.0f64, f64::max);
    println!("  max pose difference between runs: {:.3e} m", max_diff);
    assert!(max_diff < 1e-12, "trace-driven run must be bit-identical");
    println!("\nOK: the component under study saw exactly the recorded traffic —");
    println!("identical outputs, no rest-of-system required (the §V-G workflow).");
}
