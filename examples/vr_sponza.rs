//! A VR application written against the OpenXR-style API.
//!
//! This is the paper's application-side view: the app knows nothing
//! about plugins or streams — it runs the canonical OpenXR frame loop
//! (`wait_frame` → `begin_frame` → `locate_views` → render →
//! `end_frame`) against the runtime, which supplies tracked poses and
//! accepts submitted eye buffers. The runtime side warps the submitted
//! frames to fresher poses with timewarp.
//!
//! ```bash
//! cargo run --release --example vr_sponza
//! ```

use std::sync::Arc;

use illixr_testbed::core::plugin::{Plugin, RuntimeBuilder};
use illixr_testbed::core::{Clock, SimClock, Time};
use illixr_testbed::math::Vec3;
use illixr_testbed::render::apps::Application;
use illixr_testbed::render::raster::Rasterizer;
use illixr_testbed::sensors::trajectory::Trajectory;
use illixr_testbed::system::config::SystemConfig;
use illixr_testbed::system::openxr::XrInstance;
use illixr_testbed::vio::plugins::GroundTruthPosePlugin;
use illixr_testbed::visual::distortion::DistortionParams;
use illixr_testbed::visual::plugins::{TimewarpPlugin, WarpedFrame, DISPLAY_STREAM};
use illixr_testbed::visual::reprojection::ReprojectionConfig;

fn main() {
    println!("VR Sponza via the OpenXR-style API\n");
    let clock = SimClock::new();
    let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
    let config = SystemConfig { eye_width: 96, eye_height: 96, ..Default::default() };

    // Runtime side: a pose provider and the timewarp compositor.
    let mut tracker = GroundTruthPosePlugin::new(Trajectory::gentle(7));
    let mut compositor = TimewarpPlugin::new(
        ReprojectionConfig::rotational(config.fov_rad(), 1.0),
        DistortionParams::default(),
    );
    tracker.start(&ctx);
    compositor.start(&ctx);
    let display =
        ctx.switchboard.topic::<WarpedFrame>(DISPLAY_STREAM).expect("stream").sync_reader(256);

    // Application side: pure OpenXR.
    let instance = XrInstance::create(ctx.clone(), config);
    let mut session = instance.begin_session();
    let mut scene = Application::Sponza.build(7);
    let mut raster_l = Rasterizer::new(96, 96);
    let mut raster_r = Rasterizer::new(96, 96);

    let frames = 24;
    for k in 0..frames {
        clock.advance_to(Time::from_millis(8 * (k + 1)));
        tracker.iterate(&ctx); // runtime publishes a fresh pose

        let state = session.wait_frame();
        session.begin_frame();
        let views = session.locate_views(state.predicted_display_time);
        scene.animate_to(clock.now().as_secs_f64());
        // Offset the viewpoint back so the atrium is in frame.
        let mut pose_l = views[0].pose;
        let mut pose_r = views[1].pose;
        pose_l.position += Vec3::new(0.0, 1.6, 6.0);
        pose_r.position += Vec3::new(0.0, 1.6, 6.0);
        scene.render(&mut raster_l, &pose_l, views[0].fov_y, 1.0);
        scene.render(&mut raster_r, &pose_r, views[1].fov_y, 1.0);
        session.end_frame(
            state,
            Arc::new(raster_l.take_framebuffer()),
            Arc::new(raster_r.take_framebuffer()),
            views[0].pose,
        );

        compositor.iterate(&ctx); // runtime warps to the freshest pose
    }

    let shown = display.drain();
    println!("submitted {} frames, compositor displayed {}", session.frame_count(), shown.len());
    let mean_age_ms = shown.iter().map(|f| f.pose_age.as_secs_f64() * 1e3).sum::<f64>()
        / shown.len().max(1) as f64;
    println!("mean pose age at warp: {mean_age_ms:.2} ms");
    let last = shown.last().expect("frames were displayed");
    let nonblack = last.left.as_slice().iter().filter(|p| p[0] + p[1] + p[2] > 0.05).count();
    println!(
        "final frame: {}x{}, {:.0}% lit pixels",
        last.left.width(),
        last.left.height(),
        100.0 * nonblack as f64 / (96.0 * 96.0)
    );
    assert!(shown.len() as u64 >= session.frame_count() - 1, "compositor kept up");
    println!("\nOK: the app ran entirely against the OpenXR-style boundary.");
}
