//! The "futuristic" standalone components: dense scene reconstruction
//! and eye tracking.
//!
//! The paper measures these standalone because no OpenXR interface
//! existed for applications to consume them (§III-B). This example runs
//! both for a few seconds of synthetic sensing and reports what they
//! produced: a surfel map of the room with its pose-tracking accuracy,
//! and a gaze-estimation error sweep.
//!
//! ```bash
//! cargo run --release --example scene_and_gaze
//! ```

use std::sync::Arc;

use illixr_testbed::core::plugin::{Plugin, RuntimeBuilder};
use illixr_testbed::core::{SimClock, Time};
use illixr_testbed::eyetrack::eye::EyeParams;
use illixr_testbed::eyetrack::gaze::gaze_error;
use illixr_testbed::eyetrack::net::SegmentationNet;
use illixr_testbed::math::Vec3;
use illixr_testbed::reconstruction::plugin::{
    SceneReconstructionPlugin, SceneUpdate, SCENE_STREAM,
};
use illixr_testbed::sensors::camera::{PinholeCamera, StereoRig};
use illixr_testbed::sensors::trajectory::Trajectory;
use illixr_testbed::sensors::world::LandmarkWorld;

fn main() {
    // --- Scene reconstruction -------------------------------------------
    println!("Scene reconstruction (ElasticFusion-like surfel pipeline)\n");
    let clock = SimClock::new();
    let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
    let cam = PinholeCamera { fx: 95.0, fy: 95.0, cx: 48.0, cy: 36.0, width: 96, height: 72 };
    let world = Arc::new(LandmarkWorld::new(80, Vec3::new(4.0, 2.5, 4.0), 21));
    let trajectory = Trajectory::gentle(21);
    let mut scene =
        SceneReconstructionPlugin::new(world, StereoRig::zed_mini(cam), trajectory.clone());
    scene.start(&ctx);
    let updates =
        ctx.switchboard.topic::<SceneUpdate>(SCENE_STREAM).expect("stream").sync_reader(128);
    let frames = 30; // 3 s at 10 Hz
    for k in 0..frames {
        clock.advance_to(Time::from_millis(k * 100));
        scene.iterate(&ctx);
    }
    let all = updates.drain();
    let last = all.last().expect("scene updates were published");
    let truth = trajectory.pose(Time::from_millis((frames - 1) * 100));
    println!("fused {} depth frames into {} surfels", all.len(), last.map_size);
    println!(
        "ICP-only pose drift after {:.1} s: {:.1} cm",
        frames as f64 * 0.1,
        last.pose.translation_distance(&truth) * 100.0
    );
    let refinements = all.iter().filter(|u| u.refined).count();
    println!("global refinement passes (loop-closure stand-ins): {refinements}");
    println!("task shares:");
    for (task, share) in scene.task_timer().shares() {
        println!("  {task:<22} {:.1}%", share * 100.0);
    }

    // --- Eye tracking ----------------------------------------------------
    println!("\nEye tracking (RITnet-like segmentation CNN)\n");
    let net = SegmentationNet::new();
    println!("{:>10} {:>10} {:>14}", "gaze x", "gaze y", "error (deg)");
    let mut worst: f64 = 0.0;
    for (gx, gy) in [(0.0, 0.0), (0.3, 0.0), (-0.3, 0.1), (0.2, -0.2), (-0.15, 0.15)] {
        let err = gaze_error(&net, &EyeParams { gaze_x: gx, gaze_y: gy, ..Default::default() });
        worst = worst.max(err);
        println!("{:>9.2}° {:>9.2}° {:>13.2}°", gx.to_degrees(), gy.to_degrees(), err.to_degrees());
    }
    println!(
        "\nworst gaze error {:.2}° across the sweep (one CNN pass per eye, batch 2 —",
        worst.to_degrees()
    );
    println!("the paper's low-GPU-utilization observation for eye tracking).");
}
