//! Multi-session server demo: eight headsets share one edge server.
//!
//! Each session is a full thin client — synthetic camera + IMU along
//! its own trajectory, local IMU integration — while VIO and rendering
//! run server-side behind a contended Wi-Fi-class link. One session
//! joins late, one leaves early, and admission control decides who
//! gets in at what rate.
//!
//! ```bash
//! cargo run --release --example multi_session
//! ```

use std::time::Duration;

use illixr_testbed::core::Time;
use illixr_testbed::server::{ServerBuilder, SessionState};

fn main() {
    println!("ILLIXR-rs multi-session server: 8 clients, 5 simulated seconds\n");
    let report = ServerBuilder::new()
        .sessions(8)
        .duration(Duration::from_secs(5))
        .real_vio(true)
        // Session 5 joins halfway through; session 2 leaves early.
        .configure_session(5, |s| s.connect_at = Time::from_millis(2500))
        .configure_session(2, |s| s.disconnect_at = Some(Time::from_millis(1500)))
        .build()
        .run();

    println!(
        "admitted {} of {} ({} degraded, {} rejected)\n",
        report.admitted(),
        report.session_count(),
        report.degraded(),
        report.count(SessionState::Rejected),
    );
    println!(
        "{:<8} {:>12} {:>11} {:>10} {:>8} {:>8} {:>7} {:>10}",
        "session", "mtp_mean_ms", "mtp_p99_ms", "displayed", "dropped", "jobs", "poses", "err_cm"
    );
    println!("{}", "-".repeat(82));
    for s in report.sessions() {
        let mtp = s.mtp();
        println!(
            "{:<8} {:>12.2} {:>11.2} {:>10} {:>8} {:>8} {:>7} {:>10}",
            s.id(),
            mtp.mean.as_secs_f64() * 1e3,
            mtp.p99.as_secs_f64() * 1e3,
            mtp.displayed,
            mtp.dropped,
            s.telemetry().vio_jobs,
            s.telemetry().poses_received,
            s.pose_error().map_or("-".to_string(), |e| format!("{:.1}", e * 100.0)),
        );
    }
    println!(
        "\nshared link: uplink queue mean {:.2} ms, downlink queue mean {:.2} ms",
        report.uplink.mean_queue_delay().as_secs_f64() * 1e3,
        report.downlink.mean_queue_delay().as_secs_f64() * 1e3,
    );
    println!(
        "VIO pool: {} batches, mean batch {:.1} jobs, utilization {:.0}%",
        report.scheduler.batches,
        report.scheduler.mean_batch(),
        report.pool_utilization * 100.0,
    );
    for a in &report.admission {
        println!(
            "admission @ {:.1}s: session {} load {:.2}+{:.2} -> {}",
            a.time.as_secs_f64(),
            a.session,
            a.load_before,
            a.offered,
            a.decision.label(),
        );
    }
}
