//! Offline shim for the `parking_lot` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the handful of external dependencies are replaced with small
//! API-compatible local implementations. This one wraps `std::sync`
//! primitives behind `parking_lot`'s panic-free interface: `lock()`,
//! `read()` and `write()` return guards directly (poisoning is absorbed
//! by taking the inner value — the workspace never relies on poison
//! semantics).

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with `parking_lot`'s `lock() -> guard` API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard { inner: e.into_inner() }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock with `parking_lot`'s `read()`/`write()` API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock(..)")
    }
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_mutates() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
