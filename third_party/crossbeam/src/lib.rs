//! Offline shim for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::channel`'s bounded channels
//! (`bounded`, `Sender::{try_send, len}`, `Receiver::{try_recv, recv,
//! len, is_empty}` and the matching error enums), so this shim implements
//! exactly that surface over a `Mutex<VecDeque>` + `Condvar`. Semantics
//! match crossbeam where the workspace depends on them:
//!
//! * `try_send` on a full queue returns [`channel::TrySendError::Full`]
//!   with the value, without blocking;
//! * dropping the receiver makes subsequent sends return
//!   `Disconnected` (how the switchboard garbage-collects
//!   subscriptions);
//! * dropping all senders wakes blocked `recv` calls with an error.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The queue is at capacity; the value is handed back.
        Full(T),
        /// The receiver is gone; the value is handed back.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// No message is queued and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        capacity: usize,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        available: Condvar,
    }

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates a bounded channel with room for `capacity` messages.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            available: Condvar::new(),
        });
        (Sender { inner: inner.clone() }, Receiver { inner })
    }

    impl<T> Sender<T> {
        /// Enqueues `value` without blocking.
        ///
        /// # Errors
        ///
        /// Returns [`TrySendError::Full`] when the queue is at capacity
        /// and [`TrySendError::Disconnected`] when the receiver has been
        /// dropped; the value is handed back in both cases.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.len() >= self.inner.capacity {
                return Err(TrySendError::Full(value));
            }
            q.push_back(value);
            drop(q);
            self.inner.available.notify_one();
            Ok(())
        }

        /// Number of queued messages (crossbeam exposes this on both
        /// halves; the switchboard uses it for queue-depth stats).
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Self { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake any blocked receiver.
                self.inner.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Pops the next message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when additionally every sender
        /// has been dropped.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.inner.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or every sender is dropped.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and no sender
        /// remains.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.available.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_delivers_in_order() {
            let (tx, rx) = bounded(4);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn full_queue_rejects_without_blocking() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(rx.len(), 1);
        }

        #[test]
        fn dropped_receiver_disconnects_sender() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert_eq!(tx.try_send(7), Err(TrySendError::Disconnected(7)));
        }

        #[test]
        fn dropped_senders_disconnect_receiver() {
            let (tx, rx) = bounded::<u32>(1);
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_blocks_until_send() {
            let (tx, rx) = bounded(2);
            let handle = std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                tx.try_send(42).unwrap();
            });
            assert_eq!(rx.recv(), Ok(42));
            handle.join().unwrap();
        }
    }
}
