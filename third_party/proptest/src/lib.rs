//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace tests use:
//! range and tuple strategies, `prop_map`, `collection::vec`, the
//! `proptest!` macro with an optional `proptest_config` attribute, and
//! the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * inputs are drawn from a generator seeded by the test name, so a
//!   given test sees the same cases on every run and on every machine
//!   (upstream seeds from the OS and persists regressions instead);
//! * there is no shrinking — a failure reports the case index and the
//!   assertion message, and the deterministic seed makes the case
//!   reproducible by construction.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, map: f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty f32 strategy range");
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

    /// Number-of-elements specification for [`crate::collection::vec`]:
    /// either an exact length or a half-open range of lengths.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy returned by [`crate::collection::vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
        _marker: PhantomData<S>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                self.size.lo + (rng.next_u64() as usize) % (self.size.hi - self.size.lo)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub(crate) fn vec_strategy<S: Strategy>(
        element: S,
        size: impl Into<SizeRange>,
    ) -> VecStrategy<S> {
        VecStrategy { element, size: size.into(), _marker: PhantomData }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size` (an exact `usize` or a
    /// `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        crate::strategy::vec_strategy(element, size)
    }
}

pub mod test_runner {
    /// Runner configuration; only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// `prop_assert!`/`prop_assert_eq!` failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: String) -> Self {
            Self::Fail(msg)
        }

        /// Builds the rejection variant.
        pub fn reject(msg: String) -> Self {
            Self::Reject(msg)
        }
    }

    /// Deterministic generator: xoshiro256++ seeded by hashing the
    /// test name, so each property sees a stable, distinct stream.
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds from a test name (FNV-1a hash → SplitMix64 expansion).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut x = h;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// A uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives the generated cases for one property.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
        rejects: u32,
    }

    impl TestRunner {
        /// A runner for the property named `name`.
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            Self { config, rng: TestRng::from_name(name), rejects: 0 }
        }

        /// Number of passing cases required.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The case generator.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }

        /// Records a `prop_assume!` rejection; panics when the
        /// property rejects far more often than it runs.
        pub fn note_reject(&mut self, msg: &str) {
            self.rejects += 1;
            assert!(
                self.rejects < self.config.cases.saturating_mul(16).max(256),
                "property rejected too many inputs (last: {msg})"
            );
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", *l, *r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Skips the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, optionally preceded by
/// `#![proptest_config(ProptestConfig::...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, concat!(module_path!(), "::", stringify!($name)));
            let mut passed = 0u32;
            let mut case = 0u64;
            while passed < runner.cases() {
                case += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), runner.rng());)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(msg)) => {
                        runner.note_reject(&msg);
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} of {} failed: {}", case, stringify!($name), msg);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_compose(x in -1.0..1.0f64, pair in (0u64..10, 0usize..4)) {
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!(pair.0 < 10 && pair.1 < 4);
        }

        #[test]
        fn vec_lengths_respect_spec(
            exact in crate::collection::vec(0.0..1.0f64, 5),
            ranged in crate::collection::vec(0u64..3, 2..7),
        ) {
            prop_assert_eq!(exact.len(), 5);
            prop_assert!((2..7).contains(&ranged.len()));
        }

        #[test]
        fn prop_map_applies(v in (0.0..1.0f64).prop_map(|x| x * 2.0)) {
            prop_assert!((0.0..2.0).contains(&v));
        }

        #[test]
        fn assume_skips_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
