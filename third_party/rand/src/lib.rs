//! Offline shim for the `rand` crate.
//!
//! The workspace seeds every generator explicitly
//! (`StdRng::seed_from_u64`) and only draws uniform ranges and
//! Bernoulli samples, so this shim provides exactly that: a
//! deterministic xoshiro256++ generator behind the familiar
//! [`Rng`]/[`SeedableRng`] traits. The value *sequences* differ from
//! upstream `rand` (a different core generator), which is fine — the
//! workspace depends on determinism and distribution shape, never on
//! specific draws.

use std::ops::Range;

/// Core generator interface plus the convenience draws the workspace
/// uses.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// A draw of type `T` over its natural full range (`f64` in
    /// `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self.next_u64())
    }
}

/// Types drawable by [`Rng::gen`].
pub trait Standard {
    /// Maps 64 uniform bits to a value.
    fn standard(bits: u64) -> Self;
}

impl Standard for f64 {
    fn standard(bits: u64) -> Self {
        unit_f64(bits)
    }
}

impl Standard for u64 {
    fn standard(bits: u64) -> Self {
        bits
    }
}

/// Seeding interface: the workspace always seeds from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniformly sampleable ranges.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ≤ span/2⁶⁴, negligible for the small
                // spans the workspace draws.
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

/// Stock generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++, seeded via
    /// SplitMix64 (deterministic for a given seed on every platform).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the 256-bit state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0..3usize);
            assert!(i < 3);
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_probability_is_reasonable() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn uniform_f64_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
