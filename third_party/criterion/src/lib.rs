//! Offline shim for the `criterion` crate.
//!
//! Provides the group/bench_function/iter surface the workspace benches
//! use, backed by a simple wall-clock sampler: each benchmark runs a
//! short warm-up, then `sample_size` timed samples, and prints the
//! median per-iteration time. No statistics, plots, or baselines —
//! enough to run `cargo bench` offline and eyeball relative costs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        println!("group: {name}");
        BenchmarkGroup { _criterion: self, name, sample_size }
    }
}

/// A named set of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::with_capacity(self.sample_size) };
        // One warm-up sample, discarded.
        f(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let mut per_iter: Vec<Duration> = bencher.samples;
        per_iter.sort();
        let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or_default();
        println!("  {}/{id}: median {median:?} over {} samples", self.name, per_iter.len());
        self
    }

    /// Ends the group (upstream emits summaries here; the shim prints
    /// as it goes).
    pub fn finish(&mut self) {}
}

/// How `iter_batched` amortises setup cost; the shim runs one routine
/// call per sample regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording one sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }

    /// Times `routine` on a fresh input from `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.samples.push(start.elapsed());
    }
}

/// Declares a function running each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_requested_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("t");
        group.sample_size(3);
        let mut calls = 0;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn iter_batched_feeds_setup_output() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("t");
        group.sample_size(2);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
        });
    }
}
