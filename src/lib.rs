//! Workspace façade re-exporting the ILLIXR-rs crates.
pub use illixr_api as api;
pub use illixr_audio as audio;
pub use illixr_core as core;
pub use illixr_dsp as dsp;
pub use illixr_eyetrack as eyetrack;
pub use illixr_image as image;
pub use illixr_math as math;
pub use illixr_platform as platform;
pub use illixr_qoe as qoe;
pub use illixr_reconstruction as reconstruction;
pub use illixr_render as render;
pub use illixr_sensors as sensors;
pub use illixr_server as server;
pub use illixr_system as system;
pub use illixr_vio as vio;
pub use illixr_visual as visual;
