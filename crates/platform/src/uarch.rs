//! Analytical microarchitecture model (paper Fig 8).
//!
//! The paper derives per-component IPC and top-down cycle breakdowns
//! (retiring / bad-speculation / frontend-bound / backend-bound) from
//! VTune's microarchitectural exploration. Without hardware counters,
//! ILLIXR-rs computes the same quantities from a documented analytical
//! pipeline model: each component supplies an [`OpMix`] describing its
//! instruction mix, vectorization, working set, instruction footprint and
//! branch behaviour (hand-derived from the actual algorithm
//! implementations in this workspace), and the model maps it onto a
//! 4-wide out-of-order core.
//!
//! The top-down identity `retiring = IPC / issue_width` holds by
//! construction, matching the paper's data (e.g. audio playback:
//! IPC 3.5 ↔ 86 % retiring; audio encoding: IPC 2.5 ↔ 69 % retiring).

/// Issue width of the modeled core.
pub const ISSUE_WIDTH: f64 = 4.0;

/// An instruction-mix profile for one component or task.
///
/// Fractions should sum to approximately 1; [`OpMix::normalized`] fixes
/// up small deviations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Simple ALU / address arithmetic.
    pub int_ops: f64,
    /// Floating-point multiply-add work.
    pub fp_ops: f64,
    /// Divisions and modulo (single hardware divider — the audio
    /// encoding bottleneck).
    pub div_ops: f64,
    /// Transcendentals (sin/cos/exp — hologram).
    pub transcendental_ops: f64,
    /// Loads.
    pub loads: f64,
    /// Stores.
    pub stores: f64,
    /// Branches.
    pub branches: f64,
    /// Fraction of FP work that is vectorized (0 = scalar, 1 = full SIMD).
    pub vectorization: f64,
    /// Data working-set size in KiB (drives backend memory stalls).
    pub working_set_kib: f64,
    /// Instruction footprint in KiB (drives frontend stalls — the GPU
    /// driver's huge footprint is what tanks reprojection's IPC).
    pub instruction_kib: f64,
    /// Branch misprediction rate in mispredicts per branch.
    pub branch_miss_rate: f64,
    /// Fraction of loads covered by the demand prefetcher (the paper
    /// observes prefetchers are very effective for VIO).
    pub prefetch_coverage: f64,
}

impl OpMix {
    /// A balanced default mix (compute-light scalar code).
    pub fn balanced() -> Self {
        Self {
            int_ops: 0.30,
            fp_ops: 0.20,
            div_ops: 0.0,
            transcendental_ops: 0.0,
            loads: 0.25,
            stores: 0.10,
            branches: 0.15,
            vectorization: 0.0,
            working_set_kib: 64.0,
            instruction_kib: 16.0,
            branch_miss_rate: 0.02,
            prefetch_coverage: 0.5,
        }
    }

    /// Returns the mix with instruction-class fractions normalized to
    /// sum to 1.
    pub fn normalized(mut self) -> Self {
        let sum = self.int_ops
            + self.fp_ops
            + self.div_ops
            + self.transcendental_ops
            + self.loads
            + self.stores
            + self.branches;
        if sum > 0.0 {
            self.int_ops /= sum;
            self.fp_ops /= sum;
            self.div_ops /= sum;
            self.transcendental_ops /= sum;
            self.loads /= sum;
            self.stores /= sum;
            self.branches /= sum;
        }
        self
    }
}

/// Top-down cycle accounting, fractions summing to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleBreakdown {
    /// Useful work.
    pub retiring: f64,
    /// Wasted by branch mispredictions.
    pub bad_speculation: f64,
    /// Instruction-supply stalls.
    pub frontend_bound: f64,
    /// Execution/memory stalls.
    pub backend_bound: f64,
    /// Instructions per cycle.
    pub ipc: f64,
}

/// The analytical pipeline model.
#[derive(Debug, Clone, Copy, Default)]
pub struct UarchModel;

impl UarchModel {
    /// Creates the model.
    pub fn new() -> Self {
        Self
    }

    /// Evaluates a profile.
    pub fn evaluate(&self, mix: &OpMix) -> CycleBreakdown {
        let m = mix.normalized();

        // Execution throughput in ops/cycle per class. Vectorized FP
        // retires multiple elements per µop, modeled as higher throughput.
        let fp_throughput = 2.0 * (1.0 + 3.0 * m.vectorization.clamp(0.0, 1.0));
        let cpi_compute = m.int_ops / 4.0
            + m.fp_ops / fp_throughput
            + m.div_ops / (1.0 / 12.0)
            + m.transcendental_ops / (1.0 / 9.0)
            + m.loads / 2.5
            + m.stores / 1.5
            + m.branches / 2.0;

        // Memory hierarchy: miss rate and latency from the working set.
        let (miss_rate, latency) = memory_tier(m.working_set_kib);
        let effective_misses = miss_rate * (1.0 - m.prefetch_coverage.clamp(0.0, 1.0));
        let cpi_memory = m.loads * effective_misses * latency
            // OoO cores hide a large part of the latency; keep ~25 %.
            * 0.25;

        // Frontend: an instruction footprint beyond the 32 KiB L1i incurs
        // fetch stalls roughly proportional to the overflow.
        let icache_kib = 32.0;
        let cpi_frontend = if m.instruction_kib > icache_kib {
            0.6 * ((m.instruction_kib / icache_kib).ln())
        } else {
            0.0
        };

        // Bad speculation: ~16-cycle flush per mispredicted branch.
        let cpi_badspec = m.branches * m.branch_miss_rate.clamp(0.0, 1.0) * 16.0;

        let cpi_base = (1.0 / ISSUE_WIDTH).max(cpi_compute);
        let cpi_total = cpi_base + cpi_memory + cpi_frontend + cpi_badspec;
        let ipc = (1.0 / cpi_total).min(ISSUE_WIDTH);

        // Top-down attribution: retiring is the fraction of issue slots
        // doing useful work; the remainder splits proportionally to the
        // stall CPIs.
        let retiring = ipc / ISSUE_WIDTH;
        let stall_total = (cpi_base - 1.0 / ISSUE_WIDTH) + cpi_memory + cpi_frontend + cpi_badspec;
        let lost = (1.0 - retiring).max(0.0);
        let (bad, front, back) = if stall_total > 1e-12 {
            let backend_cpi = (cpi_base - 1.0 / ISSUE_WIDTH) + cpi_memory;
            (
                lost * cpi_badspec / stall_total,
                lost * cpi_frontend / stall_total,
                lost * backend_cpi / stall_total,
            )
        } else {
            (0.0, 0.0, lost)
        };
        CycleBreakdown {
            retiring,
            bad_speculation: bad,
            frontend_bound: front,
            backend_bound: back,
            ipc,
        }
    }
}

/// Returns `(miss_rate_per_load, miss_latency_cycles)` for a working set.
fn memory_tier(working_set_kib: f64) -> (f64, f64) {
    if working_set_kib <= 32.0 {
        (0.01, 4.0) // L1-resident
    } else if working_set_kib <= 256.0 {
        (0.05, 14.0) // L2-resident
    } else if working_set_kib <= 12_288.0 {
        (0.10, 44.0) // LLC-resident
    } else {
        (0.25, 220.0) // DRAM-bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vectorized_compute() -> OpMix {
        OpMix {
            int_ops: 0.15,
            fp_ops: 0.45,
            div_ops: 0.0,
            transcendental_ops: 0.0,
            loads: 0.20,
            stores: 0.08,
            branches: 0.12,
            vectorization: 0.9,
            working_set_kib: 64.0,
            instruction_kib: 12.0,
            branch_miss_rate: 0.005,
            prefetch_coverage: 0.8,
        }
    }

    fn driver_bound() -> OpMix {
        OpMix {
            int_ops: 0.35,
            fp_ops: 0.05,
            div_ops: 0.0,
            transcendental_ops: 0.0,
            loads: 0.30,
            stores: 0.10,
            branches: 0.20,
            vectorization: 0.0,
            working_set_kib: 4096.0,
            instruction_kib: 512.0,
            branch_miss_rate: 0.05,
            prefetch_coverage: 0.2,
        }
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let model = UarchModel::new();
        for mix in [OpMix::balanced(), vectorized_compute(), driver_bound()] {
            let b = model.evaluate(&mix);
            let sum = b.retiring + b.bad_speculation + b.frontend_bound + b.backend_bound;
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        }
    }

    #[test]
    fn topdown_identity_holds() {
        let model = UarchModel::new();
        let b = model.evaluate(&vectorized_compute());
        assert!((b.retiring - b.ipc / ISSUE_WIDTH).abs() < 1e-12);
    }

    #[test]
    fn vectorized_compute_achieves_high_ipc() {
        let b = UarchModel::new().evaluate(&vectorized_compute());
        assert!(b.ipc > 2.5, "ipc {}", b.ipc);
        assert!(b.retiring > 0.6);
    }

    #[test]
    fn driver_bound_code_has_low_ipc_and_frontend_stalls() {
        let b = UarchModel::new().evaluate(&driver_bound());
        assert!(b.ipc < 1.0, "ipc {}", b.ipc);
        assert!(b.frontend_bound > 0.15, "frontend {}", b.frontend_bound);
    }

    #[test]
    fn divider_limits_ipc() {
        let mut mix = vectorized_compute();
        mix.div_ops = 0.10;
        mix.fp_ops -= 0.10;
        let with_div = UarchModel::new().evaluate(&mix);
        let without = UarchModel::new().evaluate(&vectorized_compute());
        assert!(with_div.ipc < without.ipc);
    }

    #[test]
    fn larger_working_set_increases_backend_stalls() {
        let model = UarchModel::new();
        let mut small = OpMix::balanced();
        small.working_set_kib = 16.0;
        let mut large = OpMix::balanced();
        large.working_set_kib = 100_000.0;
        let bs = model.evaluate(&small);
        let bl = model.evaluate(&large);
        assert!(bl.backend_bound > bs.backend_bound);
        assert!(bl.ipc < bs.ipc);
    }

    #[test]
    fn branch_misses_create_bad_speculation() {
        let model = UarchModel::new();
        let mut missy = OpMix::balanced();
        missy.branch_miss_rate = 0.15;
        let b = model.evaluate(&missy);
        assert!(b.bad_speculation > 0.1, "bad spec {}", b.bad_speculation);
    }

    #[test]
    fn ipc_bounded_by_issue_width() {
        let mut mix = vectorized_compute();
        mix.vectorization = 1.0;
        mix.int_ops = 1.0;
        let b = UarchModel::new().evaluate(&mix.normalized());
        assert!(b.ipc <= ISSUE_WIDTH + 1e-12);
    }
}
