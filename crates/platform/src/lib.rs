//! Hardware platform models for ILLIXR-rs.
//!
//! The paper characterizes ILLIXR on three physical configurations: a
//! high-end **desktop** (Intel Xeon E-2236 + RTX 2080), an NVIDIA Jetson
//! AGX Xavier in a high-performance mode (**Jetson-HP**) and the same
//! board at half clocks (**Jetson-LP**) (§III-A). None of that hardware is
//! available to a simulation-only reproduction, so this crate provides
//! *calibrated analytical models* of the three platforms:
//!
//! * [`spec`] — core counts, clock scaling, and per-platform compute
//!   throughput scalars for CPU and GPU work;
//! * [`timing`] — per-component execution-cost model (desktop-calibrated
//!   base cost × platform scalar × input-dependent work factor ×
//!   deterministic log-normal contention jitter), which drives the
//!   discrete-event scheduler;
//! * [`power`] — the five power rails reported by the Jetson
//!   (`CPU`, `GPU`, `DDR`, `SoC`, `Sys`, §III-E) with
//!   utilization-dependent draw, reproducing Fig 6;
//! * [`uarch`] — an analytical CPU pipeline model mapping per-task
//!   operation mixes onto IPC and top-down cycle breakdowns
//!   (retiring / bad-speculation / frontend-bound / backend-bound),
//!   reproducing Fig 8.
//!
//! Absolute numbers are model outputs, not measurements; the reproduction
//! targets are the *relationships* the paper emphasizes (who misses
//! deadlines where, rail shares, IPC spread).

pub mod power;
pub mod rng;
pub mod spec;
pub mod timing;
pub mod uarch;

pub use power::{PowerBreakdown, PowerModel, Rail};
pub use spec::{Platform, PlatformSpec};
pub use timing::{CostClass, CostEntry, TimingModel};
pub use uarch::{CycleBreakdown, OpMix, UarchModel};
