//! The per-component execution-cost model driving simulated runs.
//!
//! Each component has a *base cost*: its mean execution time on the
//! desktop platform at nominal work. An invocation's modeled cost is
//!
//! ```text
//! cost = base × platform_scale(class) × work_factor × lognormal(σ)
//! ```
//!
//! where `work_factor` is the input-dependent work the component actually
//! performed (reported by the real algorithm execution — e.g. VIO's
//! tracked-feature count) and the log-normal term models scheduling and
//! resource-contention noise (paper §IV-A1 observes significant per-frame
//! variability in *all* components, not only the input-dependent ones).
//! The jitter is seeded per `(platform, component, invocation)` so runs
//! are bit-reproducible.

use std::collections::HashMap;
use std::time::Duration;

use crate::rng::{seed_from, SplitMix64};
use crate::spec::{Platform, PlatformSpec};

/// Whether a component's cost scales with the platform's CPU or GPU
/// capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    /// CPU-bound work (VIO, audio, sensor handling).
    Cpu,
    /// GPU-bound work (rendering, reprojection shaders, hologram).
    Gpu,
}

/// The cost parameters of one component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEntry {
    /// Mean desktop execution time at `work_factor == 1`.
    pub base: Duration,
    /// CPU- or GPU-scaled.
    pub class: CostClass,
    /// Sigma of the log-normal contention jitter (0 disables jitter).
    pub jitter_sigma: f64,
}

impl CostEntry {
    /// Convenience constructor from milliseconds.
    pub fn from_millis(base_ms: f64, class: CostClass, jitter_sigma: f64) -> Self {
        Self { base: Duration::from_secs_f64(base_ms / 1e3), class, jitter_sigma }
    }
}

/// Maps `(component, invocation, work_factor)` to modeled execution time
/// on a specific platform.
#[derive(Debug, Clone)]
pub struct TimingModel {
    spec: PlatformSpec,
    entries: HashMap<String, CostEntry>,
}

impl TimingModel {
    /// Creates an empty model for `platform`.
    pub fn new(platform: Platform) -> Self {
        Self { spec: platform.spec(), entries: HashMap::new() }
    }

    /// The platform this model targets.
    pub fn platform(&self) -> Platform {
        self.spec.platform
    }

    /// The platform spec.
    pub fn spec(&self) -> &PlatformSpec {
        &self.spec
    }

    /// Registers (or replaces) a component's cost entry.
    pub fn insert(&mut self, component: &str, entry: CostEntry) {
        self.entries.insert(component.to_owned(), entry);
    }

    /// Returns the cost entry for `component`, if registered.
    pub fn entry(&self, component: &str) -> Option<&CostEntry> {
        self.entries.get(component)
    }

    /// Models the execution time of one invocation.
    ///
    /// # Panics
    ///
    /// Panics when `component` was never registered — a configuration
    /// error that should fail loudly.
    pub fn cost(&self, component: &str, invocation: u64, work_factor: f64) -> Duration {
        let entry = self
            .entries
            .get(component)
            .unwrap_or_else(|| panic!("no cost entry registered for component '{component}'"));
        let scale = match entry.class {
            CostClass::Cpu => self.spec.cpu_scale,
            CostClass::Gpu => self.spec.gpu_scale,
        };
        let jitter = if entry.jitter_sigma > 0.0 {
            let seed = seed_from(component, invocation) ^ seed_from(self.spec.name, 0);
            SplitMix64::new(seed).next_lognormal(entry.jitter_sigma)
        } else {
            1.0
        };
        let secs = entry.base.as_secs_f64() * scale * work_factor.max(0.0) * jitter;
        Duration::from_secs_f64(secs)
    }

    /// The deterministic mean cost (no jitter) — used for scheduling
    /// reservations such as "run reprojection as late as possible".
    pub fn mean_cost(&self, component: &str, work_factor: f64) -> Duration {
        let entry = self
            .entries
            .get(component)
            .unwrap_or_else(|| panic!("no cost entry registered for component '{component}'"));
        let scale = match entry.class {
            CostClass::Cpu => self.spec.cpu_scale,
            CostClass::Gpu => self.spec.gpu_scale,
        };
        Duration::from_secs_f64(entry.base.as_secs_f64() * scale * work_factor.max(0.0))
    }

    /// Names of all registered components (sorted).
    pub fn component_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_with(platform: Platform) -> TimingModel {
        let mut m = TimingModel::new(platform);
        m.insert("vio", CostEntry::from_millis(10.0, CostClass::Cpu, 0.0));
        m.insert("app", CostEntry::from_millis(5.0, CostClass::Gpu, 0.0));
        m
    }

    #[test]
    fn desktop_cost_equals_base_without_jitter() {
        let m = model_with(Platform::Desktop);
        assert_eq!(m.cost("vio", 0, 1.0), Duration::from_millis(10));
        assert_eq!(m.cost("app", 0, 1.0), Duration::from_millis(5));
    }

    #[test]
    fn platform_scaling_applies_by_class() {
        let d = model_with(Platform::Desktop);
        let lp = model_with(Platform::JetsonLP);
        let spec = Platform::JetsonLP.spec();
        let cpu_ratio = lp.cost("vio", 0, 1.0).as_secs_f64() / d.cost("vio", 0, 1.0).as_secs_f64();
        let gpu_ratio = lp.cost("app", 0, 1.0).as_secs_f64() / d.cost("app", 0, 1.0).as_secs_f64();
        assert!((cpu_ratio - spec.cpu_scale).abs() < 1e-9);
        assert!((gpu_ratio - spec.gpu_scale).abs() < 1e-9);
    }

    #[test]
    fn work_factor_scales_linearly() {
        let m = model_with(Platform::Desktop);
        let c1 = m.cost("vio", 0, 1.0).as_secs_f64();
        let c2 = m.cost("vio", 0, 2.5).as_secs_f64();
        assert!((c2 / c1 - 2.5).abs() < 1e-9);
    }

    #[test]
    fn jitter_is_deterministic_and_varies_by_invocation() {
        let mut m = TimingModel::new(Platform::Desktop);
        m.insert("x", CostEntry::from_millis(10.0, CostClass::Cpu, 0.2));
        let a0 = m.cost("x", 0, 1.0);
        let a0_again = m.cost("x", 0, 1.0);
        let a1 = m.cost("x", 1, 1.0);
        assert_eq!(a0, a0_again);
        assert_ne!(a0, a1);
    }

    #[test]
    fn jitter_centers_on_base() {
        let mut m = TimingModel::new(Platform::Desktop);
        m.insert("x", CostEntry::from_millis(10.0, CostClass::Cpu, 0.15));
        let mean: f64 = (0..2000).map(|i| m.cost("x", i, 1.0).as_secs_f64()).sum::<f64>() / 2000.0;
        assert!((mean - 0.010).abs() < 0.0008, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "no cost entry")]
    fn unknown_component_panics() {
        let m = model_with(Platform::Desktop);
        let _ = m.cost("unknown", 0, 1.0);
    }

    #[test]
    fn mean_cost_has_no_jitter() {
        let mut m = TimingModel::new(Platform::JetsonHP);
        m.insert("x", CostEntry::from_millis(2.0, CostClass::Cpu, 0.5));
        assert_eq!(m.mean_cost("x", 1.0), m.mean_cost("x", 1.0));
        let expected = 2.0e-3 * Platform::JetsonHP.spec().cpu_scale;
        assert!((m.mean_cost("x", 1.0).as_secs_f64() - expected).abs() < 1e-12);
    }
}
