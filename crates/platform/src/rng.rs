//! A tiny deterministic RNG (SplitMix64) for the timing model's jitter.
//!
//! The timing model needs per-invocation noise that is (a) reproducible
//! across runs and machines and (b) independent of call ordering between
//! components. SplitMix64 seeded per `(component, invocation)` gives both
//! without threading RNG state through the scheduler.

/// SplitMix64 pseudo-random generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard normal sample (Box-Muller).
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = self.next_f64().max(1e-300);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Log-normal sample with median 1 and the given sigma of the
    /// underlying normal.
    pub fn next_lognormal(&mut self, sigma: f64) -> f64 {
        (self.next_gaussian() * sigma).exp()
    }
}

/// Mixes a string and counter into a seed (FNV-1a over the name, then the
/// counter folded in).
pub fn seed_from(name: &str, counter: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequences() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gaussian_has_reasonable_moments() {
        let mut rng = SplitMix64::new(3);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_median_near_one() {
        let mut rng = SplitMix64::new(11);
        let mut samples: Vec<f64> = (0..10_001).map(|_| rng.next_lognormal(0.3)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[5000];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn seed_differs_by_name_and_counter() {
        assert_ne!(seed_from("vio", 0), seed_from("vio", 1));
        assert_ne!(seed_from("vio", 0), seed_from("app", 0));
    }
}
