//! Power-rail model (paper §III-E, Fig 6).
//!
//! The Jetson exposes five measurable rails — CPU, GPU, DDR, SoC
//! (on-chip microcontrollers, excludes CPU/GPU) and Sys (display,
//! storage, I/O) — and the paper's key observation is that the
//! "invisible" SoC+Sys rails consume **more than half** of Jetson-LP's
//! total power, motivating on-sensor computing. Each rail here draws
//! `idle + dynamic × utilization` watts; utilizations come from the
//! simulated schedule, so power varies by application exactly as in
//! Fig 6.

use core::fmt;

use crate::spec::Platform;

/// A measurable power rail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rail {
    /// CPU cluster.
    Cpu,
    /// GPU.
    Gpu,
    /// DRAM.
    Ddr,
    /// On-chip logic other than CPU/GPU (microcontrollers, ISP, fabric).
    Soc,
    /// Board/system: display, sensors, storage, I/O.
    Sys,
}

impl Rail {
    /// All rails in the order Fig 6b stacks them.
    pub const ALL: [Rail; 5] = [Rail::Cpu, Rail::Gpu, Rail::Ddr, Rail::Soc, Rail::Sys];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Rail::Cpu => "CPU",
            Rail::Gpu => "GPU",
            Rail::Ddr => "DDR",
            Rail::Soc => "SoC",
            Rail::Sys => "Sys",
        }
    }
}

impl fmt::Display for Rail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Idle and dynamic (full-utilization) watts for one rail.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RailParams {
    idle: f64,
    dynamic: f64,
}

/// Per-rail power draw in watts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// CPU watts.
    pub cpu: f64,
    /// GPU watts.
    pub gpu: f64,
    /// DDR watts.
    pub ddr: f64,
    /// SoC watts.
    pub soc: f64,
    /// Sys watts.
    pub sys: f64,
}

impl PowerBreakdown {
    /// Total watts across all rails.
    pub fn total(&self) -> f64 {
        self.cpu + self.gpu + self.ddr + self.soc + self.sys
    }

    /// The given rail's share of the total, in `[0, 1]`.
    pub fn share(&self, rail: Rail) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 0.0;
        }
        self.get(rail) / total
    }

    /// Watts on one rail.
    pub fn get(&self, rail: Rail) -> f64 {
        match rail {
            Rail::Cpu => self.cpu,
            Rail::Gpu => self.gpu,
            Rail::Ddr => self.ddr,
            Rail::Soc => self.soc,
            Rail::Sys => self.sys,
        }
    }
}

/// The power model for one platform.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    platform: Platform,
    cpu: RailParams,
    gpu: RailParams,
    ddr: RailParams,
    soc: RailParams,
    sys: RailParams,
}

impl PowerModel {
    /// Creates the calibrated model for `platform`.
    ///
    /// Calibration targets (paper Fig 6): desktop total is two-to-three
    /// orders of magnitude above the 0.1–2 W ideal and GPU-dominated;
    /// both Jetsons land near their 10 W TDP preset; on Jetson-LP the
    /// SoC+Sys rails exceed 50 % of total.
    pub fn new(platform: Platform) -> Self {
        match platform {
            Platform::Desktop => Self {
                platform,
                cpu: RailParams { idle: 14.0, dynamic: 66.0 },
                gpu: RailParams { idle: 18.0, dynamic: 197.0 },
                ddr: RailParams { idle: 3.0, dynamic: 12.0 },
                soc: RailParams { idle: 12.0, dynamic: 6.0 },
                sys: RailParams { idle: 28.0, dynamic: 4.0 },
            },
            Platform::JetsonHP => Self {
                platform,
                cpu: RailParams { idle: 0.7, dynamic: 3.1 },
                gpu: RailParams { idle: 0.6, dynamic: 4.2 },
                ddr: RailParams { idle: 0.5, dynamic: 2.1 },
                soc: RailParams { idle: 1.5, dynamic: 0.4 },
                sys: RailParams { idle: 2.4, dynamic: 0.3 },
            },
            Platform::JetsonLP => Self {
                platform,
                // Half clocks: dynamic power drops superlinearly
                // (frequency and voltage), idle and board power barely
                // change — which is exactly why SoC+Sys dominate.
                cpu: RailParams { idle: 0.55, dynamic: 1.1 },
                gpu: RailParams { idle: 0.45, dynamic: 1.5 },
                ddr: RailParams { idle: 0.45, dynamic: 0.9 },
                soc: RailParams { idle: 1.45, dynamic: 0.25 },
                sys: RailParams { idle: 2.35, dynamic: 0.2 },
            },
        }
    }

    /// The platform this model belongs to.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// Power draw for the given average utilizations (each in `[0, 1]`).
    ///
    /// `ddr_util` is typically derived from CPU+GPU activity;
    /// [`PowerModel::breakdown_from_compute`] does this for you.
    pub fn breakdown(&self, cpu_util: f64, gpu_util: f64, ddr_util: f64) -> PowerBreakdown {
        let c = cpu_util.clamp(0.0, 1.0);
        let g = gpu_util.clamp(0.0, 1.0);
        let d = ddr_util.clamp(0.0, 1.0);
        // SoC and Sys activity track overall system business weakly.
        let activity = (0.5 * c + 0.5 * g).clamp(0.0, 1.0);
        PowerBreakdown {
            cpu: self.cpu.idle + self.cpu.dynamic * c,
            gpu: self.gpu.idle + self.gpu.dynamic * g,
            ddr: self.ddr.idle + self.ddr.dynamic * d,
            soc: self.soc.idle + self.soc.dynamic * activity,
            sys: self.sys.idle + self.sys.dynamic * activity,
        }
    }

    /// Power draw with DDR utilization estimated from compute activity.
    pub fn breakdown_from_compute(&self, cpu_util: f64, gpu_util: f64) -> PowerBreakdown {
        let ddr = (0.4 * cpu_util + 0.6 * gpu_util).clamp(0.0, 1.0);
        self.breakdown(cpu_util, gpu_util, ddr)
    }

    /// Energy in joules for holding a breakdown for `seconds`.
    pub fn energy_joules(breakdown: &PowerBreakdown, seconds: f64) -> f64 {
        breakdown.total() * seconds.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desktop_is_orders_of_magnitude_above_jetson() {
        let d = PowerModel::new(Platform::Desktop).breakdown_from_compute(0.6, 0.7);
        let lp = PowerModel::new(Platform::JetsonLP).breakdown_from_compute(0.6, 0.7);
        assert!(d.total() > 150.0, "desktop {}", d.total());
        assert!(lp.total() < 10.0, "jetson-lp {}", lp.total());
        assert!(d.total() / lp.total() > 20.0);
    }

    #[test]
    fn desktop_power_is_gpu_dominated() {
        let d = PowerModel::new(Platform::Desktop).breakdown_from_compute(0.5, 0.8);
        assert!(d.share(Rail::Gpu) > 0.4, "gpu share {}", d.share(Rail::Gpu));
        assert!(d.gpu > d.cpu);
    }

    #[test]
    fn jetson_lp_soc_sys_exceed_half() {
        // The paper's headline power observation (§IV-A2).
        let lp = PowerModel::new(Platform::JetsonLP).breakdown_from_compute(0.5, 0.5);
        let share = lp.share(Rail::Soc) + lp.share(Rail::Sys);
        assert!(share > 0.5, "SoC+Sys share {share}");
    }

    #[test]
    fn jetsons_near_ten_watt_preset() {
        let hp = PowerModel::new(Platform::JetsonHP).breakdown_from_compute(0.9, 0.9);
        let lp = PowerModel::new(Platform::JetsonLP).breakdown_from_compute(0.9, 0.9);
        assert!(hp.total() < 16.0 && hp.total() > 6.0, "hp {}", hp.total());
        assert!(lp.total() < 10.0 && lp.total() > 4.0, "lp {}", lp.total());
        assert!(hp.total() > lp.total());
    }

    #[test]
    fn higher_utilization_draws_more_power() {
        let m = PowerModel::new(Platform::JetsonHP);
        assert!(
            m.breakdown_from_compute(0.9, 0.9).total() > m.breakdown_from_compute(0.1, 0.1).total()
        );
    }

    #[test]
    fn utilization_is_clamped() {
        let m = PowerModel::new(Platform::Desktop);
        assert_eq!(m.breakdown(2.0, -1.0, 0.5).cpu, m.breakdown(1.0, 0.0, 0.5).cpu);
    }

    #[test]
    fn shares_sum_to_one() {
        let b = PowerModel::new(Platform::JetsonHP).breakdown_from_compute(0.4, 0.6);
        let sum: f64 = Rail::ALL.iter().map(|&r| b.share(r)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_integrates_power() {
        let b = PowerBreakdown { cpu: 1.0, gpu: 2.0, ddr: 0.5, soc: 0.5, sys: 1.0 };
        assert!((PowerModel::energy_joules(&b, 10.0) - 50.0).abs() < 1e-12);
    }
}
