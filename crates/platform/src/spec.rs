//! Platform specifications (paper §III-A).

use core::fmt;

/// The three evaluated hardware configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Intel Xeon E-2236 (6C12T) + NVIDIA RTX 2080 — the tethered-VR
    /// upper bound.
    Desktop,
    /// NVIDIA Jetson AGX Xavier, 10 W mode, maximum clocks.
    JetsonHP,
    /// NVIDIA Jetson AGX Xavier, 10 W mode, half clocks.
    JetsonLP,
}

impl Platform {
    /// All three platforms in the order the paper plots them.
    pub const ALL: [Platform; 3] = [Platform::Desktop, Platform::JetsonHP, Platform::JetsonLP];

    /// The platform's model parameters.
    pub fn spec(self) -> PlatformSpec {
        match self {
            // CPU/GPU scale = how much slower than the desktop a unit of
            // work runs. Calibrated so the schedule qualitatively matches
            // Fig 3: desktop meets essentially all targets, Jetson-HP
            // degrades the visual pipeline, Jetson-LP misses nearly
            // everything except audio.
            Platform::Desktop => PlatformSpec {
                platform: self,
                name: "desktop",
                cpu_cores: 12,
                gpu_slots: 2,
                cpu_scale: 1.0,
                gpu_scale: 1.0,
                cpu_freq_ghz: 3.4,
                gpu_freq_ghz: 1.7,
                gpu_preempt_ms: 0.15,
            },
            Platform::JetsonHP => PlatformSpec {
                platform: self,
                name: "jetson-hp",
                cpu_cores: 8,
                gpu_slots: 1,
                cpu_scale: 3.4,
                gpu_scale: 5.5,
                cpu_freq_ghz: 2.27,
                gpu_freq_ghz: 1.37,
                gpu_preempt_ms: 2.2,
            },
            Platform::JetsonLP => PlatformSpec {
                platform: self,
                name: "jetson-lp",
                cpu_cores: 8,
                gpu_slots: 1,
                cpu_scale: 6.8,
                gpu_scale: 11.0,
                cpu_freq_ghz: 1.13,
                gpu_freq_ghz: 0.68,
                gpu_preempt_ms: 4.4,
            },
        }
    }

    /// Short display name matching the paper's figure labels.
    pub fn label(self) -> &'static str {
        match self {
            Platform::Desktop => "Desktop",
            Platform::JetsonHP => "Jetson-HP",
            Platform::JetsonLP => "Jetson-LP",
        }
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Model parameters of one platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformSpec {
    /// Which platform this spec belongs to.
    pub platform: Platform,
    /// Machine-readable name.
    pub name: &'static str,
    /// Schedulable CPU cores (hardware threads for the desktop).
    pub cpu_cores: usize,
    /// Concurrent GPU execution slots (the desktop's discrete GPU can
    /// overlap a graphics and a compute queue; the Jetson serializes).
    pub gpu_slots: usize,
    /// CPU execution-time multiplier relative to the desktop.
    pub cpu_scale: f64,
    /// GPU execution-time multiplier relative to the desktop.
    pub gpu_scale: f64,
    /// Nominal CPU clock, for cycle-count conversions.
    pub cpu_freq_ghz: f64,
    /// Nominal GPU clock.
    pub gpu_freq_ghz: f64,
    /// GPU preemption granularity in milliseconds: how long a
    /// high-priority context waits for running work to reach a
    /// preemption point. Discrete desktop GPUs preempt at pixel/draw
    /// granularity; embedded GPUs are coarser.
    pub gpu_preempt_ms: f64,
}

impl PlatformSpec {
    /// Converts seconds of CPU time on this platform into CPU cycles.
    pub fn cpu_seconds_to_cycles(&self, secs: f64) -> f64 {
        secs * self.cpu_freq_ghz * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_ordering_of_compute_capability() {
        let d = Platform::Desktop.spec();
        let hp = Platform::JetsonHP.spec();
        let lp = Platform::JetsonLP.spec();
        assert!(d.cpu_scale < hp.cpu_scale);
        assert!(hp.cpu_scale < lp.cpu_scale);
        assert!(d.gpu_scale < hp.gpu_scale);
        assert!(hp.gpu_scale < lp.gpu_scale);
    }

    #[test]
    fn jetson_lp_is_half_clock_of_hp() {
        let hp = Platform::JetsonHP.spec();
        let lp = Platform::JetsonLP.spec();
        assert!((lp.cpu_freq_ghz * 2.0 - hp.cpu_freq_ghz).abs() < 0.02);
        assert!((lp.gpu_freq_ghz * 2.0 - hp.gpu_freq_ghz).abs() < 0.02);
        assert!((lp.cpu_scale / hp.cpu_scale - 2.0).abs() < 0.01);
        assert_eq!(hp.cpu_cores, lp.cpu_cores);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Platform::Desktop.label(), "Desktop");
        assert_eq!(Platform::JetsonHP.label(), "Jetson-HP");
        assert_eq!(Platform::JetsonLP.label(), "Jetson-LP");
    }

    #[test]
    fn cycles_conversion() {
        let d = Platform::Desktop.spec();
        assert!((d.cpu_seconds_to_cycles(1.0) - 3.4e9).abs() < 1.0);
    }
}
