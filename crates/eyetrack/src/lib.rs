//! Eye tracking: a RITnet-style segmentation CNN over synthetic eye
//! images (paper Table II: "Eye Tracking — RITnet — Python, CUDA").
//!
//! The paper characterizes eye tracking as "a typical deep neural
//! network" spending ~74 % of its time in convolutions (§IV-B). This
//! crate reproduces that computational shape from scratch:
//!
//! * [`net`] — a small fixed-weight encoder-decoder CNN (conv / ReLU /
//!   max-pool / upsample) producing a 4-class segmentation (background,
//!   sclera, iris, pupil), processed one image per eye (batch 2, the
//!   paper's low-GPU-utilization observation);
//! * [`eye`] — a synthetic eye-image generator (sclera + iris + pupil
//!   ellipses with gaze-dependent offsets), the OpenEDS stand-in;
//! * [`gaze`] — pupil-centroid extraction and gaze-angle estimation from
//!   the segmentation mask;
//! * [`plugin`] — the `eye_tracking` plugin publishing gaze estimates.
//!
//! Weights are procedurally initialized (deterministic); the point is the
//! compute/memory behaviour and the dataflow, not learned accuracy —
//! the pupil is still localized correctly because the synthetic pupil is
//! the darkest region and the fixed filters preserve that ordering
//! through the pipeline (verified by tests).

pub mod eye;
pub mod gaze;
pub mod net;
pub mod plugin;

pub use eye::{render_eye, EyeParams};
pub use gaze::{estimate_gaze, GazeEstimate};
pub use net::SegmentationNet;
pub use plugin::EyeTrackingPlugin;
