//! The `eye_tracking` plugin.
//!
//! Renders synthetic eye-camera images for both eyes (batch size 2 — one
//! image per eye, the paper's low-GPU-utilization observation), runs the
//! segmentation CNN and publishes a [`BinocularGaze`] on the `gaze`
//! stream. The paper runs eye tracking standalone (no OpenXR gaze
//! interface existed for applications at the time, §III-B); the plugin
//! is nevertheless fully stream-integrated so future consumers can read
//! it.

use illixr_core::plugin::{IterationReport, Plugin, PluginContext};
use illixr_core::switchboard::Writer;

use crate::eye::{render_eye, EyeParams};
use crate::gaze::{estimate_gaze, GazeEstimate};
use crate::net::SegmentationNet;

/// Gaze estimates for both eyes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinocularGaze {
    /// Left-eye estimate.
    pub left: GazeEstimate,
    /// Right-eye estimate.
    pub right: GazeEstimate,
}

/// Stream name for gaze estimates.
pub const GAZE_STREAM: &str = "gaze";

/// The plugin. Gaze follows a smooth scan pattern over time.
pub struct EyeTrackingPlugin {
    net: SegmentationNet,
    params: EyeParams,
    writer: Option<Writer<BinocularGaze>>,
}

impl EyeTrackingPlugin {
    /// Creates the plugin with default eye-image dimensions.
    pub fn new() -> Self {
        Self { net: SegmentationNet::new(), params: EyeParams::default(), writer: None }
    }

    /// True gaze at time `t` (a Lissajous scan within the eye's range).
    pub fn true_gaze(t_secs: f64) -> (f64, f64) {
        (0.3 * (0.7 * t_secs).sin(), 0.2 * (1.1 * t_secs).cos())
    }
}

impl Default for EyeTrackingPlugin {
    fn default() -> Self {
        Self::new()
    }
}

impl Plugin for EyeTrackingPlugin {
    fn name(&self) -> &str {
        "eye_tracking"
    }

    fn start(&mut self, ctx: &PluginContext) {
        self.writer =
            Some(ctx.switchboard.topic::<BinocularGaze>(GAZE_STREAM).expect("stream").writer());
    }

    fn iterate(&mut self, ctx: &PluginContext) -> IterationReport {
        let t = ctx.clock.now().as_secs_f64();
        let (gx, gy) = Self::true_gaze(t);
        // Batch of two: left and right eye (vergence ignored; the right
        // eye mirrors horizontally).
        let mut left_params = self.params;
        left_params.gaze_x = gx;
        left_params.gaze_y = gy;
        let mut right_params = self.params;
        right_params.gaze_x = -gx;
        right_params.gaze_y = gy;

        let left_img = render_eye(&left_params);
        let right_img = render_eye(&right_params);
        let left_mask = self.net.segment(&left_img);
        let right_mask = self.net.segment(&right_img);
        let left = estimate_gaze(&left_mask, left_params.width, left_params.height);
        let right = estimate_gaze(&right_mask, right_params.width, right_params.height);
        self.writer
            .as_ref()
            .expect("start() must run before iterate()")
            .put(BinocularGaze { left, right });
        IterationReport::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_core::plugin::RuntimeBuilder;
    use illixr_core::{SimClock, Time};
    use std::sync::Arc;

    #[test]
    fn plugin_publishes_gaze_tracking_truth() {
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        let reader =
            ctx.switchboard.topic::<BinocularGaze>(GAZE_STREAM).expect("stream").async_reader();
        let mut plugin = EyeTrackingPlugin::new();
        plugin.start(&ctx);
        clock.advance_to(Time::from_millis(800));
        plugin.iterate(&ctx);
        let gaze = reader.latest().expect("gaze published");
        let (gx, gy) = EyeTrackingPlugin::true_gaze(0.8);
        assert!((gaze.left.gaze_x - gx).abs() < 0.1, "{} vs {gx}", gaze.left.gaze_x);
        assert!((gaze.left.gaze_y - gy).abs() < 0.1);
        assert!((gaze.right.gaze_x + gx).abs() < 0.1); // mirrored
        assert!(gaze.left.pupil_pixels > 0);
    }

    #[test]
    fn gaze_follows_motion_over_time() {
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        let reader =
            ctx.switchboard.topic::<BinocularGaze>(GAZE_STREAM).expect("stream").sync_reader(16);
        let mut plugin = EyeTrackingPlugin::new();
        plugin.start(&ctx);
        for k in 0..5 {
            clock.advance_to(Time::from_millis(k * 700));
            plugin.iterate(&ctx);
        }
        let estimates = reader.drain();
        assert_eq!(estimates.len(), 5);
        // Gaze must change over the scan.
        let first = estimates.first().unwrap().left.gaze_x;
        let spread = estimates.iter().map(|g| (g.left.gaze_x - first).abs()).fold(0.0, f64::max);
        assert!(spread > 0.05, "gaze did not move: spread {spread}");
    }
}
