//! A small fixed-weight encoder-decoder segmentation CNN.
//!
//! Architecture (RITnet-shaped, scaled down): two conv+pool encoder
//! stages, a bottleneck conv, two upsample+conv decoder stages, and a
//! 1×1 classification head over 4 classes (background, sclera, iris,
//! pupil). All convolutions are 3×3 except the head.
//!
//! Channel 0 is a hand-crafted "darkness" feature (inverted box blur)
//! that is passed through every stage, so the classification head can
//! threshold it into the four intensity bands of a synthetic eye; the
//! remaining channels carry deterministic pseudo-random filters that
//! contribute realistic compute and memory traffic (the paper's point is
//! the workload shape: 74 % convolution time, weights ≪ activations).

use illixr_image::GrayImage;

/// Segmentation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EyeClass {
    /// Skin / background.
    Background = 0,
    /// Sclera (white of the eye).
    Sclera = 1,
    /// Iris.
    Iris = 2,
    /// Pupil.
    Pupil = 3,
}

impl EyeClass {
    /// Converts a class index (0–3) to the enum.
    ///
    /// # Panics
    ///
    /// Panics for indices above 3.
    pub fn from_index(i: usize) -> Self {
        match i {
            0 => Self::Background,
            1 => Self::Sclera,
            2 => Self::Iris,
            3 => Self::Pupil,
            _ => panic!("invalid eye class index {i}"),
        }
    }
}

/// A `channels × height × width` activation tensor.
#[derive(Debug, Clone)]
pub struct Tensor {
    /// Channels.
    pub ch: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    /// CHW-ordered data.
    pub data: Vec<f32>,
}

impl Tensor {
    /// A zero tensor.
    pub fn zeros(ch: usize, h: usize, w: usize) -> Self {
        Self { ch, h, w, data: vec![0.0; ch * h * w] }
    }

    #[inline]
    fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data[(c * self.h + y) * self.w + x]
    }

    #[inline]
    fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        self.data[(c * self.h + y) * self.w + x] = v;
    }

    #[inline]
    fn get_clamped(&self, c: usize, y: isize, x: isize) -> f32 {
        let yy = y.clamp(0, self.h as isize - 1) as usize;
        let xx = x.clamp(0, self.w as isize - 1) as usize;
        self.get(c, yy, xx)
    }
}

/// A 3×3 convolution layer with per-output-channel bias.
#[derive(Debug, Clone)]
struct Conv3x3 {
    in_ch: usize,
    out_ch: usize,
    /// `[out][in][ky][kx]` flattened.
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl Conv3x3 {
    /// Deterministic pseudo-random weights with channel 0 configured as
    /// either the darkness extractor (first layer) or a pass-through.
    fn new(in_ch: usize, out_ch: usize, seed: u32, first_layer: bool) -> Self {
        let mut weights = vec![0.0f32; out_ch * in_ch * 9];
        let mut bias = vec![0.0f32; out_ch];
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
        let mut next = || {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 9) as f32 / (1 << 23) as f32 - 1.0) * 0.25
        };
        for o in 0..out_ch {
            for i in 0..in_ch {
                for k in 0..9 {
                    weights[(o * in_ch + i) * 9 + k] = next();
                }
            }
        }
        // Channel 0: darkness feature.
        if first_layer {
            // out0 = 1 − box-blur(intensity)  (via bias 1, weights −1/9).
            for w in weights.iter_mut().take(9) {
                *w = -1.0 / 9.0;
            }
            bias[0] = 1.0;
        } else {
            // out0 = in0 (center tap 1, all other taps/channels 0).
            for i in 0..in_ch {
                for k in 0..9 {
                    weights[i * 9 + k] = 0.0;
                }
            }
            weights[4] = 1.0;
            bias[0] = 0.0;
        }
        Self { in_ch, out_ch, weights, bias }
    }

    fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.ch, self.in_ch, "channel mismatch");
        let mut out = Tensor::zeros(self.out_ch, x.h, x.w);
        for o in 0..self.out_ch {
            for y in 0..x.h {
                for xx in 0..x.w {
                    let mut acc = self.bias[o];
                    for i in 0..self.in_ch {
                        let base = (o * self.in_ch + i) * 9;
                        for ky in 0..3usize {
                            for kx in 0..3usize {
                                let w = self.weights[base + ky * 3 + kx];
                                if w == 0.0 {
                                    continue;
                                }
                                let v = x.get_clamped(
                                    i,
                                    y as isize + ky as isize - 1,
                                    xx as isize + kx as isize - 1,
                                );
                                acc += w * v;
                            }
                        }
                    }
                    // ReLU fused.
                    out.set(o, y, xx, acc.max(0.0));
                }
            }
        }
        out
    }
}

fn max_pool2(x: &Tensor) -> Tensor {
    let (h, w) = ((x.h / 2).max(1), (x.w / 2).max(1));
    let mut out = Tensor::zeros(x.ch, h, w);
    for c in 0..x.ch {
        for y in 0..h {
            for xx in 0..w {
                let mut m = f32::NEG_INFINITY;
                for dy in 0..2 {
                    for dx in 0..2 {
                        m = m.max(x.get_clamped(c, (2 * y + dy) as isize, (2 * xx + dx) as isize));
                    }
                }
                out.set(c, y, xx, m);
            }
        }
    }
    out
}

fn upsample2(x: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(x.ch, x.h * 2, x.w * 2);
    for c in 0..x.ch {
        for y in 0..out.h {
            for xx in 0..out.w {
                out.set(c, y, xx, x.get(c, y / 2, xx / 2));
            }
        }
    }
    out
}

/// The segmentation network.
#[derive(Debug, Clone)]
pub struct SegmentationNet {
    enc1: Conv3x3,
    enc2: Conv3x3,
    bottleneck: Conv3x3,
    dec1: Conv3x3,
    dec2: Conv3x3,
    /// 1×1 head: `[class][channel]` weights + bias.
    head_w: Vec<f32>,
    head_b: Vec<f32>,
    channels: usize,
}

impl Default for SegmentationNet {
    fn default() -> Self {
        Self::new()
    }
}

impl SegmentationNet {
    /// Builds the fixed-weight network (8 feature channels).
    pub fn new() -> Self {
        let ch = 8;
        // Head: class scores are lines in the darkness feature v with
        // increasing slopes, partitioning v into
        // background < sclera < iris < pupil.
        let mut head_w = vec![0.0f32; 4 * ch];
        //                 slope      (channel 0 only)
        head_w[0] = 0.0; // background
        head_w[ch] = 4.0; // sclera
        head_w[2 * ch] = 8.0; // iris
        head_w[3 * ch] = 16.0; // pupil
        let head_b = vec![0.0, -0.8, -2.8, -9.0];
        Self {
            enc1: Conv3x3::new(1, ch, 1, true),
            enc2: Conv3x3::new(ch, ch, 2, false),
            bottleneck: Conv3x3::new(ch, ch, 3, false),
            dec1: Conv3x3::new(ch, ch, 4, false),
            dec2: Conv3x3::new(ch, ch, 5, false),
            head_w,
            head_b,
            channels: ch,
        }
    }

    /// Approximate multiply-accumulate count for one forward pass on a
    /// `w × h` input (used by the timing/energy models).
    pub fn macs(&self, w: usize, h: usize) -> u64 {
        let c = self.channels as u64;
        let full = (w * h) as u64;
        let quarter = full / 4;
        let sixteenth = full / 16;
        9 * c * full                    // enc1 (1→c at full res)
            + 9 * c * c * quarter      // enc2
            + 9 * c * c * sixteenth    // bottleneck
            + 9 * c * c * quarter      // dec1
            + 9 * c * c * full         // dec2
            + 4 * c * full // head
    }

    /// Runs a forward pass, returning the per-pixel class mask.
    #[allow(clippy::needless_range_loop)] // CHW index math
    pub fn segment(&self, image: &GrayImage) -> Vec<EyeClass> {
        let (w, h) = (image.width(), image.height());
        assert!(w % 4 == 0 && h % 4 == 0, "input dimensions must be multiples of 4");
        let mut input = Tensor::zeros(1, h, w);
        for y in 0..h {
            for x in 0..w {
                input.set(0, y, x, image.get(x, y));
            }
        }
        let e1 = self.enc1.forward(&input);
        let p1 = max_pool2(&e1);
        let e2 = self.enc2.forward(&p1);
        let p2 = max_pool2(&e2);
        let b = self.bottleneck.forward(&p2);
        let u1 = upsample2(&b);
        let d1 = self.dec1.forward(&u1);
        let u2 = upsample2(&d1);
        let d2 = self.dec2.forward(&u2);
        // 1×1 classification head + argmax.
        let mut mask = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                let mut best = 0;
                let mut best_score = f32::NEG_INFINITY;
                for class in 0..4 {
                    let mut s = self.head_b[class];
                    for c in 0..self.channels {
                        s += self.head_w[class * self.channels + c]
                            * d2.get(c, y, x)
                            * if c == 0 { 1.0 } else { 0.0 };
                    }
                    if s > best_score {
                        best_score = s;
                        best = class;
                    }
                }
                mask.push(EyeClass::from_index(best));
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_intensity_bands() {
        // Quadrants of distinct intensities map to distinct classes.
        let img = GrayImage::from_fn(32, 32, |x, y| match (x < 16, y < 16) {
            (true, true) => 0.95,   // bright → background
            (false, true) => 0.65,  // sclera band
            (true, false) => 0.4,   // iris band
            (false, false) => 0.05, // dark → pupil
        });
        let net = SegmentationNet::new();
        let mask = net.segment(&img);
        // Sample away from quadrant borders (blur + pooling smears edges).
        let at = |x: usize, y: usize| mask[y * 32 + x];
        assert_eq!(at(5, 5), EyeClass::Background);
        assert_eq!(at(26, 5), EyeClass::Sclera);
        assert_eq!(at(5, 26), EyeClass::Iris);
        assert_eq!(at(26, 26), EyeClass::Pupil);
    }

    #[test]
    fn output_covers_every_pixel() {
        let img = GrayImage::from_fn(64, 32, |x, _| x as f32 / 64.0);
        let mask = SegmentationNet::new().segment(&img);
        assert_eq!(mask.len(), 64 * 32);
    }

    #[test]
    fn deterministic() {
        let img = GrayImage::from_fn(32, 32, |x, y| ((x * y) % 7) as f32 / 7.0);
        let a = SegmentationNet::new().segment(&img);
        let b = SegmentationNet::new().segment(&img);
        assert_eq!(a, b);
    }

    #[test]
    fn macs_scale_with_resolution() {
        let net = SegmentationNet::new();
        assert!(net.macs(64, 64) > 4 * net.macs(32, 32) / 2);
        assert!(net.macs(64, 64) < net.macs(128, 128));
    }

    #[test]
    #[should_panic]
    fn rejects_unaligned_input() {
        let img = GrayImage::new(33, 32);
        let _ = SegmentationNet::new().segment(&img);
    }
}
