//! Gaze extraction from the segmentation mask.

use crate::eye::{EyeParams, MAX_GAZE_RAD};
use crate::net::EyeClass;

/// A gaze estimate for one eye.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GazeEstimate {
    /// Horizontal gaze angle, radians.
    pub gaze_x: f64,
    /// Vertical gaze angle, radians.
    pub gaze_y: f64,
    /// Number of pupil pixels the estimate is based on (0 = no pupil
    /// found; the angles are then 0).
    pub pupil_pixels: usize,
}

/// Estimates gaze from a segmentation mask by inverting the
/// pupil-centroid → gaze mapping of the synthetic eye model.
pub fn estimate_gaze(mask: &[EyeClass], width: usize, height: usize) -> GazeEstimate {
    assert_eq!(mask.len(), width * height, "mask size mismatch");
    let mut sum_x = 0.0f64;
    let mut sum_y = 0.0f64;
    let mut count = 0usize;
    for y in 0..height {
        for x in 0..width {
            if mask[y * width + x] == EyeClass::Pupil {
                sum_x += x as f64;
                sum_y += y as f64;
                count += 1;
            }
        }
    }
    if count == 0 {
        return GazeEstimate { gaze_x: 0.0, gaze_y: 0.0, pupil_pixels: 0 };
    }
    let cx = width as f64 / 2.0;
    let cy = height as f64 / 2.0;
    let dx = sum_x / count as f64 - cx;
    let dy = sum_y / count as f64 - cy;
    // Invert `gaze_to_offset`.
    let scale_x = width as f64 * 0.25 / MAX_GAZE_RAD;
    let scale_y = height as f64 * 0.25 / MAX_GAZE_RAD;
    GazeEstimate { gaze_x: dx / scale_x, gaze_y: dy / scale_y, pupil_pixels: count }
}

/// End-to-end accuracy helper: renders an eye at `params`, segments it
/// with `net`, and returns the gaze error in radians.
pub fn gaze_error(net: &crate::net::SegmentationNet, params: &EyeParams) -> f64 {
    let img = crate::eye::render_eye(params);
    let mask = net.segment(&img);
    let est = estimate_gaze(&mask, params.width, params.height);
    ((est.gaze_x - params.gaze_x).powi(2) + (est.gaze_y - params.gaze_y).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::SegmentationNet;

    #[test]
    fn recovers_center_gaze() {
        let net = SegmentationNet::new();
        let err = gaze_error(&net, &EyeParams::default());
        assert!(err < 0.08, "gaze error {err} rad");
    }

    #[test]
    fn recovers_offset_gaze() {
        let net = SegmentationNet::new();
        for (gx, gy) in [(0.25, 0.0), (-0.25, 0.1), (0.0, -0.2), (0.3, 0.2)] {
            let err = gaze_error(&net, &EyeParams { gaze_x: gx, gaze_y: gy, ..Default::default() });
            assert!(err < 0.1, "gaze ({gx}, {gy}) error {err} rad");
        }
    }

    #[test]
    fn empty_mask_yields_zero_gaze() {
        let mask = vec![EyeClass::Background; 16 * 16];
        let est = estimate_gaze(&mask, 16, 16);
        assert_eq!(est.pupil_pixels, 0);
        assert_eq!(est.gaze_x, 0.0);
    }

    #[test]
    #[should_panic]
    fn mask_size_mismatch_panics() {
        let mask = vec![EyeClass::Background; 10];
        let _ = estimate_gaze(&mask, 16, 16);
    }
}
