//! Synthetic eye-image generation — the OpenEDS dataset stand-in.

use illixr_image::draw::fill_ellipse_gray;
use illixr_image::{gaussian_blur, GrayImage};

/// Parameters of a rendered eye.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EyeParams {
    /// Image width (multiple of 4 for the CNN).
    pub width: usize,
    /// Image height (multiple of 4).
    pub height: usize,
    /// Horizontal gaze angle, radians (positive = looking right).
    pub gaze_x: f64,
    /// Vertical gaze angle, radians (positive = looking down).
    pub gaze_y: f64,
    /// Pupil dilation factor (1.0 nominal).
    pub pupil_dilation: f64,
}

impl Default for EyeParams {
    fn default() -> Self {
        Self { width: 96, height: 64, gaze_x: 0.0, gaze_y: 0.0, pupil_dilation: 1.0 }
    }
}

/// Maximum gaze magnitude (radians) that maps inside the eye opening.
pub const MAX_GAZE_RAD: f64 = 0.5;

/// Pixel offset of the iris center for a gaze angle.
pub fn gaze_to_offset(params: &EyeParams) -> (f64, f64) {
    let scale_x = params.width as f64 * 0.25 / MAX_GAZE_RAD;
    let scale_y = params.height as f64 * 0.25 / MAX_GAZE_RAD;
    (params.gaze_x * scale_x, params.gaze_y * scale_y)
}

/// Renders an IR-style eye image with the intensity layering the
/// segmentation CNN expects: skin ≈ 0.95, sclera ≈ 0.65, iris ≈ 0.38,
/// pupil ≈ 0.05.
pub fn render_eye(params: &EyeParams) -> GrayImage {
    let (w, h) = (params.width as f32, params.height as f32);
    let (cx, cy) = (w / 2.0, h / 2.0);
    let mut img = GrayImage::from_fn(params.width, params.height, |_, _| 0.95);
    // Eye opening (sclera): a wide ellipse.
    fill_ellipse_gray(&mut img, cx, cy, w * 0.42, h * 0.38, 0.65);
    // Iris and pupil shift with gaze.
    let (dx, dy) = gaze_to_offset(params);
    let ix = cx + dx as f32;
    let iy = cy + dy as f32;
    let iris_r = h * 0.26;
    fill_ellipse_gray(&mut img, ix, iy, iris_r, iris_r, 0.38);
    let pupil_r = (iris_r * 0.45 * params.pupil_dilation as f32).max(2.0);
    fill_ellipse_gray(&mut img, ix, iy, pupil_r, pupil_r, 0.05);
    gaussian_blur(&img, 0.8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_gaze_puts_pupil_in_middle() {
        let img = render_eye(&EyeParams::default());
        // Darkest pixel should be near the center.
        let (mut min_v, mut min_x, mut min_y) = (f32::INFINITY, 0, 0);
        for y in 0..img.height() {
            for x in 0..img.width() {
                if img.get(x, y) < min_v {
                    min_v = img.get(x, y);
                    min_x = x;
                    min_y = y;
                }
            }
        }
        assert!((min_x as f64 - 48.0).abs() < 6.0, "pupil x {min_x}");
        assert!((min_y as f64 - 32.0).abs() < 6.0, "pupil y {min_y}");
        assert!(min_v < 0.2);
    }

    #[test]
    fn gaze_shifts_pupil() {
        let left = render_eye(&EyeParams { gaze_x: -0.3, ..Default::default() });
        let right = render_eye(&EyeParams { gaze_x: 0.3, ..Default::default() });
        let darkest_x = |img: &GrayImage| {
            let mut best = (f32::INFINITY, 0usize);
            for y in 0..img.height() {
                for x in 0..img.width() {
                    if img.get(x, y) < best.0 {
                        best = (img.get(x, y), x);
                    }
                }
            }
            best.1
        };
        assert!(darkest_x(&right) > darkest_x(&left) + 10);
    }

    #[test]
    fn dilation_grows_dark_area() {
        let small = render_eye(&EyeParams { pupil_dilation: 0.7, ..Default::default() });
        let large = render_eye(&EyeParams { pupil_dilation: 1.5, ..Default::default() });
        let dark_count = |img: &GrayImage| img.as_slice().iter().filter(|&&v| v < 0.2).count();
        assert!(dark_count(&large) > dark_count(&small));
    }

    #[test]
    fn intensity_bands_present() {
        let img = render_eye(&EyeParams::default());
        let has_near = |target: f32| img.as_slice().iter().any(|&v| (v - target).abs() < 0.1);
        assert!(has_near(0.95)); // skin
        assert!(has_near(0.65)); // sclera
        assert!(has_near(0.38)); // iris
        assert!(has_near(0.05)); // pupil
    }
}
