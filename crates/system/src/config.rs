//! System configuration: the tuned parameters of paper Table III and
//! the aspirational device requirements of Table I.

use std::time::Duration;

/// The manually tuned system-level parameters (paper Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Camera (VIO) frame rate, Hz — tuned to 15 from a 15–100 range.
    pub camera_hz: f64,
    /// IMU (integrator) rate, Hz — tuned to 500 from ≤ 800.
    pub imu_hz: f64,
    /// Display / visual-pipeline rate, Hz — tuned to 120 from 30–144.
    pub display_hz: f64,
    /// Audio block rate, Hz — tuned to 48 from 48–96.
    pub audio_hz: f64,
    /// Audio block size, samples — tuned to 1024 from 256–2048.
    pub audio_block: usize,
    /// Per-eye render width (the paper drives a 2K display; the
    /// simulation renders smaller buffers and charges 2K cost through
    /// the timing model).
    pub eye_width: usize,
    /// Per-eye render height.
    pub eye_height: usize,
    /// Display field of view, degrees — tuned to 90 from ≤ 180.
    pub fov_deg: f64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            camera_hz: 15.0,
            imu_hz: 500.0,
            display_hz: 120.0,
            audio_hz: 48.0,
            audio_block: 1024,
            eye_width: 96,
            eye_height: 96,
            fov_deg: 90.0,
        }
    }
}

impl SystemConfig {
    /// Camera period (the VIO deadline, 66.7 ms).
    pub fn camera_period(&self) -> Duration {
        illixr_core::time::period_from_hz(self.camera_hz)
    }

    /// IMU period (the integrator deadline, 2 ms).
    pub fn imu_period(&self) -> Duration {
        illixr_core::time::period_from_hz(self.imu_hz)
    }

    /// Display period (application + reprojection deadline, 8.33 ms).
    pub fn display_period(&self) -> Duration {
        illixr_core::time::period_from_hz(self.display_hz)
    }

    /// Audio block period (20.8 ms).
    pub fn audio_period(&self) -> Duration {
        illixr_core::time::period_from_hz(self.audio_hz)
    }

    /// Vertical field of view in radians.
    pub fn fov_rad(&self) -> f64 {
        self.fov_deg.to_radians()
    }
}

/// Aspirational device requirements (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableIRequirements {
    /// Target motion-to-photon latency, ms.
    pub mtp_ms: f64,
    /// Target power, watts.
    pub power_w: f64,
    /// Target refresh rate, Hz.
    pub refresh_hz: f64,
}

impl TableIRequirements {
    /// Ideal VR device (Table I: MTP < 20 ms, 1–2 W, 90–144 Hz).
    pub fn ideal_vr() -> Self {
        Self { mtp_ms: 20.0, power_w: 1.5, refresh_hz: 120.0 }
    }

    /// Ideal AR device (Table I: MTP < 5 ms, 0.1–0.2 W, 90–144 Hz).
    pub fn ideal_ar() -> Self {
        Self { mtp_ms: 5.0, power_w: 0.15, refresh_hz: 120.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_iii() {
        let c = SystemConfig::default();
        assert_eq!(c.camera_period(), Duration::from_nanos(66_666_667));
        assert_eq!(c.imu_period(), Duration::from_millis(2));
        assert_eq!(c.display_period(), Duration::from_nanos(8_333_333));
        assert_eq!(c.audio_period(), Duration::from_nanos(20_833_333));
        assert_eq!(c.audio_block, 1024);
    }

    #[test]
    fn table_i_targets() {
        assert!(TableIRequirements::ideal_ar().mtp_ms < TableIRequirements::ideal_vr().mtp_ms);
        assert!(TableIRequirements::ideal_ar().power_w < 1.0);
    }
}
