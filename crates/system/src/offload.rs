//! Component offloading: running a plugin "remotely" behind a modeled
//! network link.
//!
//! The paper's footnote 2: *"Since component interfaces are well-specified
//! and modular, a local component can be easily swapped with a remote one
//! without modifying the rest of the system. We have already implemented
//! offloading some components and plan a generalized offloading module
//! that any component can use."* This module is that generalized
//! mechanism for ILLIXR-rs: [`OffloadedPlugin`] wraps any plugin in its
//! own private switchboard and *bridges* its input and output streams
//! across an [`OffloadLink`] with configurable uplink/downlink latency
//! and jitter. The rest of the system keeps talking to the same stream
//! names and cannot tell the component moved to an edge server — except
//! through the added latency, which is precisely the research question
//! (device–edge partitioning, §V-F).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use illixr_core::boundary::{Boundary, ByteReader, ByteWriter};
use illixr_core::fault::FaultPlan;
use illixr_core::link::{Direction, Link, LinkProfile};
use illixr_core::plugin::{IterationReport, Plugin, PluginContext};
use illixr_core::sched::{PlacementPlan, Side};
use illixr_core::{Switchboard, Time};
use illixr_platform::rng::SplitMix64;

/// A modeled network link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadLink {
    /// Device → server latency.
    pub uplink: Duration,
    /// Server → device latency.
    pub downlink: Duration,
    /// Log-normal jitter sigma applied to each transfer (0 = none).
    pub jitter_sigma: f64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl OffloadLink {
    /// A symmetric link with the given one-way latency and no jitter.
    ///
    /// The RNG seed is pinned to `0`. With `jitter_sigma == 0.0` the
    /// jitter RNG is never drawn, but the seed *still* keys stochastic
    /// link faults (duplicate/reorder draws in the stream bridges), so
    /// two `symmetric` links in one run share a fault-outcome universe.
    /// Thread the run seed through with [`OffloadLink::with_seed`] or
    /// build from a profile with [`OffloadLink::from_profile`] when
    /// fault independence matters.
    pub fn symmetric(one_way: Duration) -> Self {
        Self { uplink: one_way, downlink: one_way, jitter_sigma: 0.0, seed: 0 }
    }

    /// A point-to-point link with a [`LinkProfile`]'s propagation
    /// latency and jitter, keyed by the run seed. Bandwidth is not
    /// modeled here (the point-to-point pipe is latency-only); embed
    /// the link in a `SharedLink` via `LinkConfig::from_point_to_point`
    /// when serialization and queueing matter.
    pub fn from_profile(profile: LinkProfile, seed: u64) -> Self {
        Self {
            uplink: profile.base_latency,
            downlink: profile.base_latency,
            jitter_sigma: profile.jitter_sigma,
            seed,
        }
    }

    /// Adds log-normal jitter with the given sigma.
    pub fn with_jitter(mut self, sigma: f64, seed: u64) -> Self {
        self.jitter_sigma = sigma;
        self.seed = seed;
        self
    }

    /// Replaces the RNG seed (jitter *and* stochastic link-fault
    /// draws) without touching latency or jitter parameters.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Link for OffloadLink {
    fn label(&self) -> &'static str {
        "p2p"
    }

    /// Delivery = `now` + the direction's one-way latency. The
    /// point-to-point pipe models no bandwidth (payload size is
    /// ignored) and keeps no queue; jitter is owned by the per-stream
    /// bridges, which hold the RNG state, so the trait-level answer is
    /// the nominal latency.
    fn deliver_at(&mut self, direction: Direction, now: Time, _bytes: u64) -> Time {
        let one_way = match direction {
            Direction::Uplink => self.uplink,
            Direction::Downlink => self.downlink,
        };
        now + one_way
    }
}

/// A one-direction, one-stream bridge pumped by the wrapper each
/// iteration: events read on the source switchboard become visible on
/// the destination switchboard after the link delay.
/// A deferred bridge constructor, run at `start` when the outer context
/// is known.
type BridgeFactory =
    Box<dyn FnOnce(&PluginContext, &Switchboard, OffloadLink, &str) -> Box<dyn Bridge> + Send>;

trait Bridge: Send {
    /// Moves due events; `now` is the runtime clock.
    fn pump(&mut self, now: Time);
    /// Events currently in flight.
    fn in_flight(&self) -> usize;
}

struct StreamBridge<T: Clone + Send + Sync + 'static> {
    reader: illixr_core::SyncReader<T>,
    writer: illixr_core::Writer<T>,
    delay: Duration,
    jitter_sigma: f64,
    rng: SplitMix64,
    queue: VecDeque<(Time, T)>,
    /// The runtime's fault plan and the fault target this bridge
    /// reports as (the offloaded plugin's name).
    plan: Arc<FaultPlan>,
    target: String,
    /// Per-bridge transfer counter keying stochastic link faults.
    seq: u64,
    /// Latest scheduled delivery among in-order packets: nominal
    /// traffic never overtakes (per-stream FIFO even under jitter);
    /// only a `LinkReorder` fault may fall behind its successors.
    watermark: Time,
    /// Determinism boundary: each transfer's final `(due, duplicate)`
    /// outcome is recorded on `label` (and replayed from it instead of
    /// consulting the jitter RNG or the fault plan).
    boundary: Arc<Boundary>,
    label: String,
}

/// Boundary payload for one bridge transfer: final delivery time plus
/// the duplicate flag (jitter, outages, reordering and the watermark
/// clamp are already folded into `due_ns`).
fn encode_delivery(due_ns: u64, duplicate: bool) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(due_ns);
    w.put_u16(duplicate as u16);
    w.into_bytes()
}

fn decode_delivery(payload: &[u8]) -> Option<(u64, bool)> {
    let mut r = ByteReader::new(payload);
    let due_ns = r.take_u64().ok()?;
    let duplicate = r.take_u16().ok()? != 0;
    Some((due_ns, duplicate))
}

impl<T: Clone + Send + Sync + 'static> Bridge for StreamBridge<T> {
    fn pump(&mut self, now: Time) {
        let faults = (!self.plan.is_quiet()).then(|| self.plan.link(&self.target));
        let replay = self.boundary.source().filter(|src| src.has_stream(&self.label)).cloned();
        // Ingest new events with their delivery times.
        for event in self.reader.drain_iter() {
            let seq = self.seq;
            self.seq += 1;
            let (due, duplicate) = if let Some(src) = &replay {
                // Replay: the recorded outcome replaces the jitter RNG
                // and the fault plan entirely. Ingest order and times
                // are deterministic, so records pair up one-to-one.
                let (tag, payload) = src
                    .next_due(&self.label, now.as_nanos())
                    .expect("replayed bridge transfer missing from trace");
                let (due_ns, duplicate) =
                    decode_delivery(&payload).expect("corrupt bridge delivery record");
                self.boundary.record(&self.label, tag, payload);
                (Time::from_nanos(due_ns), duplicate)
            } else {
                let jitter = if self.jitter_sigma > 0.0 {
                    self.rng.next_lognormal(self.jitter_sigma)
                } else {
                    1.0
                };
                let mut scale = jitter;
                if let Some(f) = &faults {
                    scale *= f.jitter_scale(now.as_nanos());
                }
                let delay = Duration::from_secs_f64(self.delay.as_secs_f64() * scale);
                let mut due = now + delay;
                let mut duplicate = false;
                let mut reordered = false;
                if let Some(f) = &faults {
                    if let Some(outage_end) = f.outage_until(now.as_nanos()) {
                        // The packet is held until the outage clears.
                        due = due.max(Time::from_nanos(outage_end));
                    }
                    if f.reorder(seq) {
                        // Held one extra link delay so it lands behind
                        // its successors.
                        due += self.delay;
                        reordered = true;
                    }
                    duplicate = f.duplicate(seq);
                }
                if !reordered {
                    due = due.max(self.watermark);
                    self.watermark = due;
                }
                self.boundary.record(
                    &self.label,
                    now.as_nanos(),
                    encode_delivery(due.as_nanos(), duplicate),
                );
                (due, duplicate)
            };
            // Due-sorted insert (stable): reorder-faulted packets
            // genuinely deliver after the ones that overtook them,
            // instead of head-of-line-blocking the queue.
            let pos = self.queue.iter().rposition(|(d, _)| *d <= due).map_or(0, |p| p + 1);
            self.queue.insert(pos, (due, event.data.clone()));
            if duplicate {
                self.queue.insert(pos + 1, (due, event.data.clone()));
            }
        }
        // Deliver what has arrived.
        while let Some((due, _)) = self.queue.front() {
            if *due > now {
                break;
            }
            let (_, value) = self.queue.pop_front().expect("checked front");
            self.writer.put(value);
        }
    }

    fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

/// A plugin running behind a network link.
///
/// Construct with [`OffloadedPlugin::new`], then declare which streams
/// cross the link with [`OffloadedPlugin::uplink`] (inputs) and
/// [`OffloadedPlugin::downlink`] (outputs) *before* the runtime calls
/// `start`.
pub struct OffloadedPlugin {
    inner: Box<dyn Plugin>,
    link: OffloadLink,
    /// The remote side's private switchboard.
    remote_switchboard: Switchboard,
    /// Deferred bridge constructors (run at start, when the outer
    /// context is known).
    pending: Vec<BridgeFactory>,
    bridges: Vec<Box<dyn Bridge>>,
    remote_ctx: Option<PluginContext>,
    name: String,
    /// The placement cut-point this wrapper represents (defaults to
    /// the inner plugin's name).
    cut: String,
}

impl std::fmt::Debug for OffloadedPlugin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OffloadedPlugin({}, {} bridges)", self.name, self.bridges.len())
    }
}

impl OffloadedPlugin {
    /// Wraps `inner` behind `link`, at a cut-point named after the
    /// inner plugin.
    pub fn new(inner: Box<dyn Plugin>, link: OffloadLink) -> Self {
        let cut = inner.name().to_owned();
        Self::for_cut(inner, &cut, link)
    }

    /// Wraps `inner` behind `link` at an explicitly named cut-point,
    /// so a [`PlacementPlan`] can address the boundary independently
    /// of the plugin's name (e.g. cut `"perception"` wrapping the VIO
    /// plugin).
    pub fn for_cut(inner: Box<dyn Plugin>, cut: &str, link: OffloadLink) -> Self {
        let name = format!("{}@remote", inner.name());
        Self {
            inner,
            link,
            remote_switchboard: Switchboard::new(),
            pending: Vec::new(),
            bridges: Vec::new(),
            remote_ctx: None,
            name,
            cut: cut.to_owned(),
        }
    }

    /// The cut-point this wrapper answers to in a [`PlacementPlan`].
    pub fn cut(&self) -> &str {
        &self.cut
    }

    /// Resolves the cut against a [`PlacementPlan`]: `Edge` keeps the
    /// wrapper (streams cross the link), `Device` unwraps it and
    /// returns the inner plugin untouched — the declared bridges are
    /// dropped, so a device-side placement is byte-identical to never
    /// having wrapped the plugin at all.
    pub fn place(self, plan: &PlacementPlan) -> Box<dyn Plugin> {
        match plan.side_of(&self.cut) {
            Side::Edge => Box::new(self),
            Side::Device => self.inner,
        }
    }

    /// Declares an input stream that crosses the uplink (device →
    /// server): events published locally reach the remote component
    /// after `link.uplink`.
    pub fn uplink<T: Clone + Send + Sync + 'static>(mut self, stream: &str) -> Self {
        let stream = stream.to_owned();
        let seed_salt = self.pending.len() as u64;
        self.pending.push(Box::new(move |outer, remote, link, target| {
            Box::new(StreamBridge::<T> {
                reader: outer.switchboard.topic::<T>(&stream).expect("stream").sync_reader(4096),
                writer: remote.topic::<T>(&stream).expect("stream").writer(),
                delay: link.uplink,
                jitter_sigma: link.jitter_sigma,
                rng: SplitMix64::new(link.seed ^ (0xB0A7 + seed_salt)),
                queue: VecDeque::new(),
                plan: outer.fault.clone(),
                target: target.to_owned(),
                seq: 0,
                watermark: Time::ZERO,
                boundary: outer.boundary.clone(),
                label: format!("offload/{target}/up/{stream}"),
            })
        }));
        self
    }

    /// Declares an output stream that crosses the downlink (server →
    /// device).
    pub fn downlink<T: Clone + Send + Sync + 'static>(mut self, stream: &str) -> Self {
        let stream = stream.to_owned();
        let seed_salt = 0x1000 + self.pending.len() as u64;
        self.pending.push(Box::new(move |outer, remote, link, target| {
            Box::new(StreamBridge::<T> {
                reader: remote.topic::<T>(&stream).expect("stream").sync_reader(4096),
                writer: outer.switchboard.topic::<T>(&stream).expect("stream").writer(),
                delay: link.downlink,
                jitter_sigma: link.jitter_sigma,
                rng: SplitMix64::new(link.seed ^ (0xD030 + seed_salt)),
                queue: VecDeque::new(),
                plan: outer.fault.clone(),
                target: target.to_owned(),
                seq: 0,
                watermark: Time::ZERO,
                boundary: outer.boundary.clone(),
                label: format!("offload/{target}/down/{stream}"),
            })
        }));
        self
    }

    /// Total events currently in flight on the link.
    pub fn in_flight(&self) -> usize {
        self.bridges.iter().map(|b| b.in_flight()).sum()
    }
}

impl Plugin for OffloadedPlugin {
    fn name(&self) -> &str {
        &self.name
    }

    fn start(&mut self, ctx: &PluginContext) {
        // The remote component lives in its own context: private
        // switchboard, shared clock/telemetry/faults/supervision.
        let remote_ctx = PluginContext {
            switchboard: self.remote_switchboard.clone(),
            phonebook: ctx.phonebook.clone(),
            clock: ctx.clock.clone(),
            telemetry: ctx.telemetry.clone(),
            tracer: ctx.tracer.clone(),
            metrics: ctx.metrics.clone(),
            fault: ctx.fault.clone(),
            supervisor: ctx.supervisor.clone(),
            boundary: ctx.boundary.clone(),
            placement: ctx.placement.clone(),
        };
        let target = self.inner.name().to_owned();
        for make in self.pending.drain(..) {
            self.bridges.push(make(ctx, &self.remote_switchboard, self.link, &target));
        }
        self.inner.start(&remote_ctx);
        // Keep the remote context for iterate.
        self.remote_ctx = Some(remote_ctx);
    }

    fn iterate(&mut self, ctx: &PluginContext) -> IterationReport {
        let now = ctx.clock.now();
        // Pump uplinks, run the remote component, pump downlinks.
        for b in &mut self.bridges {
            b.pump(now);
        }
        let remote_ctx = self.remote_ctx.as_ref().expect("start() must run before iterate()");
        let report = self.inner.iterate(remote_ctx);
        for b in &mut self.bridges {
            b.pump(now);
        }
        report
    }

    fn stop(&mut self) {
        self.inner.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_core::{Clock, RuntimeBuilder, SimClock};

    struct Echo {
        reader: Option<illixr_core::SyncReader<u32>>,
        writer: Option<illixr_core::Writer<u32>>,
    }
    impl Plugin for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn start(&mut self, ctx: &PluginContext) {
            self.reader = Some(ctx.switchboard.topic::<u32>("in").expect("stream").sync_reader(64));
            self.writer = Some(ctx.switchboard.topic::<u32>("out").expect("stream").writer());
        }
        fn iterate(&mut self, _ctx: &PluginContext) -> IterationReport {
            let mut any = false;
            while let Some(v) = self.reader.as_ref().expect("started").try_recv() {
                self.writer.as_ref().expect("started").put(v.data + 1);
                any = true;
            }
            if any {
                IterationReport::nominal()
            } else {
                IterationReport::skipped()
            }
        }
    }

    fn echo() -> Box<dyn Plugin> {
        Box::new(Echo { reader: None, writer: None })
    }

    #[test]
    fn events_cross_the_link_with_delay() {
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        let mut remote =
            OffloadedPlugin::new(echo(), OffloadLink::symmetric(Duration::from_millis(10)))
                .uplink::<u32>("in")
                .downlink::<u32>("out");
        remote.start(&ctx);
        let out = ctx.switchboard.topic::<u32>("out").expect("stream").sync_reader(16);
        ctx.switchboard.topic::<u32>("in").expect("stream").writer().put(41);
        // t=0: the event is still on the uplink.
        remote.iterate(&ctx);
        assert!(out.is_empty());
        // t=10ms: arrives at the server, gets processed, response enters
        // the downlink.
        clock.advance_to(Time::from_millis(10));
        remote.iterate(&ctx);
        assert!(out.is_empty(), "response must still be on the downlink");
        // t=20ms: response arrives at the device.
        clock.advance_to(Time::from_millis(20));
        remote.iterate(&ctx);
        assert_eq!(**out.try_recv().expect("response delivered"), 42);
    }

    #[test]
    fn zero_latency_link_is_transparent() {
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        let mut remote = OffloadedPlugin::new(echo(), OffloadLink::symmetric(Duration::ZERO))
            .uplink::<u32>("in")
            .downlink::<u32>("out");
        remote.start(&ctx);
        let out = ctx.switchboard.topic::<u32>("out").expect("stream").sync_reader(16);
        ctx.switchboard.topic::<u32>("in").expect("stream").writer().put(1);
        remote.iterate(&ctx);
        remote.iterate(&ctx);
        assert_eq!(**out.try_recv().expect("instant delivery"), 2);
    }

    #[test]
    fn link_outage_holds_packets_until_the_window_clears() {
        use illixr_core::fault::{FaultKind, FaultPlan, FaultWindow};
        let clock = SimClock::new();
        // Outage from 5 ms to 40 ms on every link target.
        let plan = FaultPlan::new(3).with_window(FaultWindow::new(
            FaultKind::LinkOutage,
            "",
            Time::from_millis(5).as_nanos(),
            Time::from_millis(40).as_nanos(),
            1.0,
        ));
        let ctx =
            RuntimeBuilder::new(Arc::new(clock.clone())).with_fault_plan(Arc::new(plan)).build();
        let mut remote =
            OffloadedPlugin::new(echo(), OffloadLink::symmetric(Duration::from_millis(10)))
                .uplink::<u32>("in")
                .downlink::<u32>("out");
        remote.start(&ctx);
        let out = ctx.switchboard.topic::<u32>("out").expect("stream").sync_reader(16);
        // Sent at t=10ms, inside the outage: held until 40 ms, then the
        // echo reply crosses the downlink by 50 ms.
        clock.advance_to(Time::from_millis(10));
        ctx.switchboard.topic::<u32>("in").expect("stream").writer().put(7);
        remote.iterate(&ctx);
        clock.advance_to(Time::from_millis(30));
        remote.iterate(&ctx);
        assert!(out.is_empty(), "nothing crosses during the outage (10 ms delay elapsed)");
        clock.advance_to(Time::from_millis(41));
        remote.iterate(&ctx); // uplink clears, echo runs, reply enters downlink
        clock.advance_to(Time::from_millis(52));
        remote.iterate(&ctx);
        assert_eq!(**out.try_recv().expect("delivered after the outage"), 8);
    }

    #[test]
    fn duplicate_fault_delivers_the_packet_twice() {
        use illixr_core::fault::{FaultPlan, StochasticRates};
        let clock = SimClock::new();
        let rates = StochasticRates { link_duplicate: 1.0, ..StochasticRates::ZERO };
        let plan = FaultPlan::new(11).with_rates(rates);
        let ctx =
            RuntimeBuilder::new(Arc::new(clock.clone())).with_fault_plan(Arc::new(plan)).build();
        let mut remote = OffloadedPlugin::new(echo(), OffloadLink::symmetric(Duration::ZERO))
            .uplink::<u32>("in")
            .downlink::<u32>("out");
        remote.start(&ctx);
        let out = ctx.switchboard.topic::<u32>("out").expect("stream").sync_reader(16);
        ctx.switchboard.topic::<u32>("in").expect("stream").writer().put(1);
        remote.iterate(&ctx);
        remote.iterate(&ctx);
        let got = out.drain();
        // Both copies crossed the uplink; each echo reply was itself
        // duplicated on the downlink.
        assert!(got.len() >= 2, "duplicate rate 1.0 must at least double delivery");
        assert!(got.iter().all(|v| ***v == 2));
    }

    #[test]
    fn recorded_bridge_deliveries_replay_without_the_fault_plan() {
        use illixr_core::boundary::{TraceRecorder, TraceSource};
        use illixr_core::fault::{FaultPlan, StochasticRates};

        // One timeline of sends, exercised with jitter + duplicates.
        let drive = |ctx: &PluginContext, clock: &SimClock| {
            let mut remote = OffloadedPlugin::new(
                echo(),
                OffloadLink::symmetric(Duration::from_millis(10)).with_jitter(0.5, 77),
            )
            .uplink::<u32>("in")
            .downlink::<u32>("out");
            remote.start(ctx);
            let out = ctx.switchboard.topic::<u32>("out").expect("stream").sync_reader(64);
            let writer = ctx.switchboard.topic::<u32>("in").expect("stream").writer();
            let mut deliveries = Vec::new();
            for step in 0..40u64 {
                clock.advance_to(Time::from_millis(step * 5));
                if step % 3 == 0 {
                    writer.put(step as u32);
                }
                remote.iterate(ctx);
                for v in out.drain() {
                    deliveries.push((clock.now().as_nanos(), **v));
                }
            }
            deliveries
        };

        let rates = StochasticRates { link_duplicate: 0.3, ..StochasticRates::ZERO };
        let plan = Arc::new(FaultPlan::new(5).with_rates(rates));
        let recorder = TraceRecorder::new(5, 0);
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone()))
            .with_fault_plan(plan)
            .with_recorder(recorder.clone())
            .build();
        let recorded = drive(&ctx, &clock);
        let trace = Arc::new(recorder.snapshot());
        assert!(trace.stream("offload/echo/up/in").is_some());

        // Replay under a quiet plan and a different jitter outcome
        // universe: deliveries (times and duplicates) must match.
        let clock2 = SimClock::new();
        let rerec = TraceRecorder::new(5, 0);
        let ctx2 = RuntimeBuilder::new(Arc::new(clock2.clone()))
            .with_trace(TraceSource::new(trace.clone()))
            .with_recorder(rerec.clone())
            .build();
        let replayed = drive(&ctx2, &clock2);
        assert_eq!(recorded, replayed);
        assert_eq!(rerec.snapshot().encode(), trace.encode());
    }

    #[test]
    fn from_profile_threads_the_run_seed() {
        let link = OffloadLink::from_profile(LinkProfile::cellular_5g(), 42);
        assert_eq!(link.uplink, Duration::from_millis(12));
        assert_eq!(link.downlink, Duration::from_millis(12));
        assert_eq!(link.jitter_sigma, 0.35);
        assert_eq!(link.seed, 42);
        assert_eq!(OffloadLink::symmetric(Duration::ZERO).with_seed(7).seed, 7);
    }

    #[test]
    fn offload_link_implements_the_unified_link_trait() {
        let mut link = OffloadLink {
            uplink: Duration::from_millis(3),
            downlink: Duration::from_millis(5),
            jitter_sigma: 0.0,
            seed: 0,
        };
        assert_eq!(Link::label(&link), "p2p");
        let t = Time::from_millis(100);
        assert_eq!(link.deliver_at(Direction::Uplink, t, 1 << 20), Time::from_millis(103));
        assert_eq!(link.deliver_at(Direction::Downlink, t, 0), Time::from_millis(105));
    }

    #[test]
    fn placement_plan_resolves_the_cut_side() {
        let link = OffloadLink::symmetric(Duration::from_millis(10));
        // Edge side: the wrapper (and its link delay) survives.
        let plan = PlacementPlan::all_local().with_cut("echo", Side::Edge, false);
        let placed = OffloadedPlugin::new(echo(), link)
            .uplink::<u32>("in")
            .downlink::<u32>("out")
            .place(&plan);
        assert_eq!(placed.name(), "echo@remote");

        // Device side (the all-local default): the inner plugin comes
        // back untouched and the link disappears entirely.
        let wrapped = OffloadedPlugin::for_cut(echo(), "perception", link)
            .uplink::<u32>("in")
            .downlink::<u32>("out");
        assert_eq!(wrapped.cut(), "perception");
        let mut local = wrapped.place(&PlacementPlan::all_local());
        assert_eq!(local.name(), "echo");
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        local.start(&ctx);
        let out = ctx.switchboard.topic::<u32>("out").expect("stream").sync_reader(16);
        ctx.switchboard.topic::<u32>("in").expect("stream").writer().put(41);
        local.iterate(&ctx);
        assert_eq!(**out.try_recv().expect("no link in the way"), 42, "device side is immediate");
    }

    #[test]
    fn in_flight_counts_queued_transfers() {
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        let mut remote =
            OffloadedPlugin::new(echo(), OffloadLink::symmetric(Duration::from_millis(50)))
                .uplink::<u32>("in")
                .downlink::<u32>("out");
        remote.start(&ctx);
        for v in 0..5 {
            ctx.switchboard.topic::<u32>("in").expect("stream").writer().put(v);
        }
        remote.iterate(&ctx);
        assert_eq!(remote.in_flight(), 5);
    }
}
