//! The simulated integrated experiment: the engine behind Figs 3–7 and
//! Tables IV–V.
//!
//! For one `(application, platform)` pair this assembles the full plugin
//! graph of Fig 1/2 — camera, IMU, VIO, IMU integrator, application,
//! reprojection, audio encoding, audio playback — on the discrete-event
//! scheduler, with per-invocation costs from the platform timing model
//! and real algorithm execution for every component. Thirty simulated
//! seconds later the telemetry holds exactly the quantities the paper
//! plots: achieved rates, per-frame execution times, CPU-cycle shares,
//! deadline misses, MTP samples and power-rail utilization.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use illixr_audio::plugins::{AudioEncodingPlugin, AudioPlaybackPlugin};
use illixr_core::boundary::{Boundary, Trace, TraceRecorder, TraceSource};
use illixr_core::fault::FaultPlan;
use illixr_core::link::{Direction, LinkProfile};
use illixr_core::obs::{Metrics, Tracer};
use illixr_core::plugin::{IterationReport, Plugin, PluginContext, RuntimeBuilder};
use illixr_core::sched::{
    ChainId, ChainOutcome, ChainSpec, Migration, PlacementConfig, PlacementController,
    PlacementPlan, PolicyKind, PriorityClass, Side,
};
use illixr_core::sim::{ExecOutcome, Resource, SimEngine, TaskSpec};
use illixr_core::supervisor::{SupervisionPolicy, Supervisor};
use illixr_core::telemetry::{ComponentStats, RecordLogger};
use illixr_core::Time;
use illixr_image::{flip, ssim, RgbImage};
use illixr_platform::power::{PowerBreakdown, PowerModel};
use illixr_platform::rng::SplitMix64;
use illixr_platform::spec::Platform;
use illixr_platform::timing::{CostClass, CostEntry, TimingModel};
use illixr_qoe::mtp::{MtpCalculator, MtpSample};
use illixr_qoe::report::MeanStd;
use illixr_render::apps::Application;
use illixr_render::plugin::ApplicationPlugin;
use illixr_sensors::camera::{PinholeCamera, StereoRig};
use illixr_sensors::imu::ImuNoise;
use illixr_sensors::plugins::{SyntheticCameraPlugin, SyntheticImuPlugin};
use illixr_sensors::trajectory::Trajectory;
use illixr_sensors::world::LandmarkWorld;
use illixr_vio::integrator::ImuState;
use illixr_vio::msckf::VioConfig;
use illixr_vio::plugins::{ImuIntegratorPlugin, VioPlugin};
use illixr_visual::distortion::DistortionParams;
use illixr_visual::plugins::{TimewarpPlugin, WarpedFrame, DISPLAY_STREAM};
use illixr_visual::reprojection::ReprojectionConfig;

use crate::config::SystemConfig;

/// Configuration of one integrated run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The application workload.
    pub app: Application,
    /// The modeled hardware platform.
    pub platform: Platform,
    /// Simulated duration (the paper runs ≈ 30 s).
    pub duration: Duration,
    /// System parameters (Table III).
    pub system: SystemConfig,
    /// RNG seed (trajectory, world, sensors, jitter).
    pub seed: u64,
    /// When true, adds the "futuristic" components the paper measures
    /// standalone — eye tracking and scene reconstruction — to the
    /// integrated configuration, quantifying §V-A's warning that "more
    /// components \[will\] further stress the entire system".
    pub extended: bool,
    /// When true, the run records spans, switchboard flow events and
    /// latency histograms ([`ExperimentResult::tracer`] /
    /// [`ExperimentResult::metrics`]) for Perfetto export. All
    /// timestamps come from the simulated clock, so traces are
    /// bit-identical across runs with the same seed.
    pub trace: bool,
    /// Scheduling policy for the run (rate-monotonic reproduces the
    /// historical fixed-priority dispatch; EDF and the adaptive
    /// governor are the research policies).
    pub policy: PolicyKind,
    /// Multiplier on every component's modeled cost: 1.0 is the
    /// calibrated platform, 1.5+ models overload (heavier scenes, a
    /// slower silicon bin, co-located work).
    pub load_factor: f64,
    /// End-to-end deadline for the `mtp` chain
    /// (imu → imu_integrator → timewarp): the motion-to-photon budget
    /// a chain completion is judged against.
    pub chain_deadline: Duration,
    /// Overrides the platform's CPU core count (e.g. pin a 12-core
    /// desktop to 1 core to study scheduling under contention).
    pub cpu_cores_override: Option<usize>,
    /// Fault-injection plan consulted by the sensor plugins and the
    /// crash injector ([`FaultPlan::quiet`] by default — a guaranteed
    /// no-op that keeps default runs bit-identical to fault-free ones).
    pub fault_plan: Arc<FaultPlan>,
    /// Crash-containment policy. `None` (the default) still contains a
    /// plugin panic, but the plugin stays dead for the rest of the run;
    /// `Some(policy)` restarts it after a simulated-time backoff, up to
    /// the policy's restart budget.
    pub supervision: Option<SupervisionPolicy>,
    /// When true, every physical input crossing the determinism
    /// boundary (camera poses, IMU samples, link deliveries, scheduled
    /// crashes) is recorded into
    /// [`ExperimentResult::boundary_trace`].
    pub record_boundary: bool,
    /// Replays boundary inputs from a recorded trace instead of
    /// generating them; the run reproduces the recording bit-for-bit.
    /// World/trajectory seeds come from the trace header, not
    /// [`ExperimentConfig::seed`].
    pub replay: Option<TraceSource>,
    /// Device/edge placement plan. The only cut-point the integrated
    /// pipeline exposes is `"vio"`: pin it on [`Side::Edge`] to model
    /// offloaded perception, or declare it adaptive to let a
    /// [`PlacementController`] migrate it at decision epochs. The
    /// default [`PlacementPlan::all_local`] (and any plan that leaves
    /// `vio` pinned device-side) takes the exact code path of a run
    /// with no plan at all, so default runs stay bit-identical.
    pub placement: PlacementPlan,
    /// Hysteresis/epoch tuning for adaptive placement.
    pub placement_config: PlacementConfig,
    /// Device↔edge link preset used when the `vio` cut runs (or may
    /// run) edge-side. Ignored by all-local plans.
    pub link_profile: LinkProfile,
}

impl ExperimentConfig {
    /// A paper-like configuration: 30 simulated seconds.
    pub fn paper(app: Application, platform: Platform) -> Self {
        Self {
            app,
            platform,
            duration: Duration::from_secs(30),
            system: SystemConfig::default(),
            seed: 42,
            extended: false,
            trace: false,
            policy: PolicyKind::RateMonotonic,
            load_factor: 1.0,
            chain_deadline: Duration::from_millis(25),
            cpu_cores_override: None,
            fault_plan: Arc::new(FaultPlan::quiet()),
            supervision: None,
            record_boundary: false,
            replay: None,
            placement: PlacementPlan::all_local(),
            placement_config: PlacementConfig::default(),
            link_profile: LinkProfile::wifi(),
        }
    }

    /// A short configuration for tests.
    pub fn quick(app: Application, platform: Platform) -> Self {
        Self { duration: Duration::from_secs(2), ..Self::paper(app, platform) }
    }

    /// Adds eye tracking and scene reconstruction to the run.
    pub fn with_extended_components(mut self) -> Self {
        self.extended = true;
        self
    }

    /// Enables span/flow tracing and histogram metrics for this run.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Selects the scheduling policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Scales every component's modeled cost (overload modeling).
    pub fn with_load_factor(mut self, load_factor: f64) -> Self {
        self.load_factor = load_factor;
        self
    }

    /// Pins the run to `cores` CPU cores regardless of platform.
    pub fn with_cpu_cores(mut self, cores: usize) -> Self {
        self.cpu_cores_override = Some(cores);
        self
    }

    /// Injects faults according to `plan` (see
    /// [`FaultPlan::scheduled`] for the standard intensity ladder).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Arc::new(plan);
        self
    }

    /// Overrides the master seed (trajectory, world, app content,
    /// fault plans derived from it by callers).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Supervises plugin crashes: contained panics are answered with
    /// backoff restarts instead of leaving the plugin dead.
    pub fn with_supervision(mut self, policy: SupervisionPolicy) -> Self {
        self.supervision = Some(policy);
        self
    }

    /// Records the determinism boundary into
    /// [`ExperimentResult::boundary_trace`].
    pub fn with_boundary_record(mut self) -> Self {
        self.record_boundary = true;
        self
    }

    /// Replays boundary inputs from `source` (see
    /// [`ExperimentConfig::replay`]). Combine with
    /// [`ExperimentConfig::with_boundary_record`] to re-record the
    /// replay for a byte-identity check.
    pub fn with_trace_source(mut self, source: TraceSource) -> Self {
        self.replay = Some(source);
        self
    }

    /// Declares where the `vio` cut-point runs (see
    /// [`ExperimentConfig::placement`]).
    pub fn with_placement(mut self, plan: PlacementPlan) -> Self {
        self.placement = plan;
        self
    }

    /// Tunes the adaptive placement controller's decision epochs and
    /// hysteresis ladder.
    pub fn with_placement_config(mut self, config: PlacementConfig) -> Self {
        self.placement_config = config;
        self
    }

    /// Selects the device↔edge link preset for placed runs.
    pub fn with_link_profile(mut self, profile: LinkProfile) -> Self {
        self.link_profile = profile;
        self
    }

    /// True when the plan actually moves (or may move) the `vio` cut
    /// off the device — the gate for every placement code path.
    fn placement_active(&self) -> bool {
        self.placement.is_adaptive("vio") || self.placement.side_of("vio") == Side::Edge
    }

    /// FNV-1a hash of the recording-relevant configuration, stamped
    /// into trace headers for provenance.
    pub fn config_hash(&self) -> u64 {
        let mut repr = format!(
            "{:?}|{:?}|{}|{}|{}|{:?}|{}|{}|{:?}|{}|{}",
            self.app,
            self.platform,
            self.duration.as_nanos(),
            self.seed,
            self.extended,
            self.policy,
            self.load_factor,
            self.chain_deadline.as_nanos(),
            self.cpu_cores_override,
            self.fault_plan.seed(),
            self.fault_plan.is_quiet(),
        );
        // Gated so every pre-placement recording keeps its hash.
        if self.placement_active() {
            repr.push_str(&format!(
                "|place={}|link={}",
                self.placement.label(),
                self.link_profile.name
            ));
        }
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in repr.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

/// The components of the integrated configuration, in the stacking order
/// of Fig 5.
pub const COMPONENTS: [&str; 8] = [
    "camera",
    "vio",
    "imu",
    "imu_integrator",
    "application",
    "timewarp",
    "audio_playback",
    "audio_encoding",
];

/// The outcome of one integrated run.
#[derive(Debug)]
pub struct ExperimentResult {
    /// The application that ran.
    pub app: Application,
    /// The platform that was modeled.
    pub platform: Platform,
    /// Simulated duration.
    pub duration: Duration,
    /// Raw telemetry (per-component frame records).
    pub telemetry: Arc<RecordLogger>,
    /// Per-frame motion-to-photon samples.
    pub mtp: Vec<MtpSample>,
    /// The pose sequence actually displayed (one per warped frame).
    pub displayed_poses: Vec<illixr_math::Pose>,
    /// Average CPU utilization in `[0, 1]`.
    pub cpu_util: f64,
    /// Average GPU utilization in `[0, 1]`.
    pub gpu_util: f64,
    /// Modeled power draw.
    pub power: PowerBreakdown,
    /// Total modeled energy over the run, joules (the paper's custom
    /// profiler reports average power *and* average energy, §III-E).
    pub energy_joules: f64,
    /// End-of-run switchboard counters per stream (publishes, drops to
    /// back-pressure, live subscriptions).
    pub stream_stats: Vec<illixr_core::TopicStats>,
    /// Span/flow recorder (disabled unless [`ExperimentConfig::trace`]).
    pub tracer: illixr_core::obs::Tracer,
    /// Histogram/gauge registry (disabled unless
    /// [`ExperimentConfig::trace`]). When enabled it holds `exec.*` /
    /// `response.*` per-component latency histograms, `mtp.*` per-stage
    /// decompositions and `topic.*` switchboard gauges.
    pub metrics: illixr_core::obs::Metrics,
    /// Every completion of the `mtp` chain
    /// (imu → imu_integrator → timewarp) judged against
    /// [`ExperimentConfig::chain_deadline`].
    pub chain_outcomes: Vec<ChainOutcome>,
    /// Final degradation level of the scheduling policy (0 unless the
    /// adaptive governor escalated).
    pub degradation_level: u32,
    /// Jobs the policy refused at release (shed by the governor).
    pub shed_jobs: u64,
    /// The run's supervisor: per-plugin health, panic counts and
    /// panic→recovery latencies (disabled unless
    /// [`ExperimentConfig::supervision`] is set, in which case crashed
    /// plugins stay dead but are still counted).
    pub supervisor: Arc<Supervisor>,
    /// Determinism-boundary recording (present when
    /// [`ExperimentConfig::record_boundary`] was set).
    pub boundary_trace: Option<Trace>,
    /// Placement-plan label for the run (`"all_local"` without a
    /// declared plan).
    pub placement_label: String,
    /// Side the `vio` cut ended the run on ([`Side::Device`] for
    /// non-placed runs).
    pub vio_final_side: Side,
    /// Every cut-point migration the placement controller performed,
    /// in decision order (empty without an adaptive plan).
    pub migrations: Vec<Migration>,
}

impl ExperimentResult {
    /// Stats for one component (None if it never ran).
    pub fn stats(&self, component: &str) -> Option<ComponentStats> {
        self.telemetry.stats(component)
    }

    /// Fig 5 quantity: relative CPU-cycle share per component.
    ///
    /// CPU-class components contribute their full modeled time; GPU-class
    /// components (application, reprojection) contribute the CPU-side
    /// driver work that feeds the GPU, modeled as a fixed fraction of
    /// their GPU time — this is what makes reprojection a sub-10 % CPU
    /// consumer in Fig 5 despite owning the display path.
    pub fn cpu_shares(&self) -> Vec<(String, f64)> {
        const DRIVER_CPU_FRACTION: f64 = 0.18;
        let timing = timing_model(self.platform);
        let mut shares: Vec<(String, f64)> = COMPONENTS
            .iter()
            .filter_map(|&name| {
                let stats = self.telemetry.stats(name)?;
                let busy = stats.total_cpu.as_secs_f64();
                let cpu_side = match timing.entry(name).map(|e| e.class) {
                    Some(CostClass::Gpu) => busy * DRIVER_CPU_FRACTION,
                    _ => busy,
                };
                Some((name.to_owned(), cpu_side))
            })
            .collect();
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        if total > 0.0 {
            for (_, s) in &mut shares {
                *s /= total;
            }
        }
        shares
    }

    /// MTP mean ± std in milliseconds (Table IV).
    pub fn mtp_ms(&self) -> Option<MeanStd> {
        let samples: Vec<f64> = self.mtp.iter().map(|s| s.total().as_secs_f64() * 1e3).collect();
        MeanStd::of(&samples)
    }

    /// Deadline-miss rate of one tracked chain. Chain ids follow
    /// registration order: the `mtp` chain is [`MTP_CHAIN`]; placement
    /// runs add [`VISUAL_DEVICE_CHAIN`] and [`VISUAL_EDGE_CHAIN`].
    /// `None` when the chain completed nothing.
    pub fn chain_miss_rate(&self, chain: ChainId) -> Option<f64> {
        let mut total = 0usize;
        let mut missed = 0usize;
        for o in self.chain_outcomes.iter().filter(|o| o.chain == chain) {
            total += 1;
            missed += o.missed as usize;
        }
        (total > 0).then(|| missed as f64 / total as f64)
    }

    /// Display-pose judder (RMS second difference, meters) — the
    /// quantitative stand-in for §IV-A3's visual-examination finding
    /// that constrained platforms show "perceptibly increased judder".
    pub fn pose_judder(&self) -> Option<f64> {
        illixr_qoe::video::pose_judder(&self.displayed_poses)
    }
}

/// Builds the per-platform timing model for the integrated components.
///
/// Base costs are desktop-calibrated to the magnitudes of paper Fig 4
/// (VIO ≈ 5–25 ms, everything else ≤ ~2 ms, application scaled by scene
/// complexity through its work factor).
pub fn timing_model(platform: Platform) -> TimingModel {
    let mut m = TimingModel::new(platform);
    m.insert("camera", CostEntry::from_millis(0.8, CostClass::Cpu, 0.12));
    m.insert("imu", CostEntry::from_millis(0.04, CostClass::Cpu, 0.10));
    m.insert("vio", CostEntry::from_millis(11.0, CostClass::Cpu, 0.16));
    m.insert("imu_integrator", CostEntry::from_millis(0.14, CostClass::Cpu, 0.22));
    m.insert("application", CostEntry::from_millis(6.3, CostClass::Gpu, 0.10));
    m.insert("timewarp", CostEntry::from_millis(0.85, CostClass::Gpu, 0.14));
    m.insert("audio_encoding", CostEntry::from_millis(0.75, CostClass::Cpu, 0.06));
    m.insert("audio_playback", CostEntry::from_millis(1.15, CostClass::Cpu, 0.06));
    // Extended-configuration components (standalone in the paper's
    // integrated runs; see ExperimentConfig::extended).
    m.insert("eye_tracking", CostEntry::from_millis(4.5, CostClass::Gpu, 0.10));
    m.insert("scene_reconstruction", CostEntry::from_millis(16.0, CostClass::Gpu, 0.15));
    // The edge replica of VIO: a server-class box runs the same frame
    // roughly 3× faster than the device build (compute only — link
    // transfer is added by the placement layer).
    m.insert("vio@edge", CostEntry::from_millis(3.85, CostClass::Cpu, 0.16));
    m
}

// --- Device/edge placement of the `vio` cut-point --------------------

/// Chain id of the `mtp` chain (always registered first).
pub const MTP_CHAIN: ChainId = 0;
/// Chain id of camera → device-side VIO (placement runs only).
pub const VISUAL_DEVICE_CHAIN: ChainId = 1;
/// Chain id of camera → edge-side VIO (placement runs only).
pub const VISUAL_EDGE_CHAIN: ChainId = 2;

/// Modeled uplink payload per offloaded VIO frame: compressed stereo
/// features, not raw images.
const EDGE_JOB_BYTES: u64 = 64_000;
/// Modeled downlink payload: one pose estimate.
const EDGE_POSE_BYTES: u64 = 256;
/// Round-trip level the placement controller judges link probes
/// against: above this, shipping the frame costs more than edge
/// compute saves, so frames count as placement misses.
const RTT_BUDGET: Duration = Duration::from_millis(60);
/// Deadline of the `visual_device`/`visual_edge` chains (camera
/// release → fresh VIO pose).
const VISUAL_DEADLINE: Duration = Duration::from_millis(33);
/// Staleness of the fused pose the IMU integrator absorbs for free.
const STALENESS_GRACE: Duration = Duration::from_millis(150);
/// Fraction of the staleness past the grace the integrator re-spends
/// each pass re-propagating the widened IMU window from the old
/// anchor (compensating a stale fused pose costs real device work).
const STALENESS_STALL_FRACTION: f64 = 0.125;
/// Cap on one pass's re-propagation stall. Deliberately a few IMU
/// periods, not more: the integrator is `Critical` and a larger stall
/// would starve the (lower-class) camera task outright, wedging the
/// perception path instead of degrading it.
const STALENESS_STALL_CAP: Duration = Duration::from_millis(8);
/// Boundary stream placement decisions are recorded on.
const PLACE_STREAM: &str = "place/vio";
/// Salt folding the run seed into the link-probe RNG stream.
const PLACE_RNG_SALT: u64 = 0x9E1C_E17A_CE5B_0001;

/// Locks a mutex, surviving poisoning from a contained plugin panic.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Shared state of an active placement run: which side owns the `vio`
/// cut right now, the analytic link model, and (for adaptive plans)
/// the controller migrating the cut at deterministic decision epochs.
struct PlacementState {
    side: Side,
    ctl: Option<PlacementController>,
    profile: LinkProfile,
    fault: Arc<FaultPlan>,
    rng: SplitMix64,
    /// This frame's round-trip estimate. The probe and the transfer
    /// model share one draw per camera frame, so the draw count is
    /// independent of which side runs and replays stay exact.
    frame_rtt: Duration,
    /// Completion time of the freshest VIO pose that has already
    /// landed, from either side.
    pose_fresh_ns: u64,
    /// Completion times announced at dispatch but still in flight; a
    /// pose only counts as fresh once its completion time has passed
    /// (an outage-spanning edge job must not look fresh mid-outage).
    pose_pending: Vec<u64>,
}

impl PlacementState {
    fn new(
        plan: &PlacementPlan,
        config: PlacementConfig,
        profile: LinkProfile,
        fault: Arc<FaultPlan>,
        seed: u64,
    ) -> Self {
        let initial = plan.side_of("vio");
        let ctl = plan.is_adaptive("vio").then(|| PlacementController::new(initial, config));
        let nominal = profile.serialization(Direction::Uplink, EDGE_JOB_BYTES)
            + profile.serialization(Direction::Downlink, EDGE_POSE_BYTES)
            + 2 * profile.base_latency;
        Self {
            side: initial,
            ctl,
            profile,
            fault,
            rng: SplitMix64::new(seed ^ PLACE_RNG_SALT),
            frame_rtt: nominal,
            pose_fresh_ns: 0,
            pose_pending: Vec::new(),
        }
    }

    /// Promotes pending pose completions that have landed by `now_ns`.
    fn settle_poses(&mut self, now_ns: u64) {
        let mut i = 0;
        while i < self.pose_pending.len() {
            if self.pose_pending[i] <= now_ns {
                let done = self.pose_pending.swap_remove(i);
                self.pose_fresh_ns = self.pose_fresh_ns.max(done);
            } else {
                i += 1;
            }
        }
    }

    fn outage_until(&self, now_ns: u64) -> Option<u64> {
        if self.fault.is_quiet() {
            return None;
        }
        self.fault.link(Direction::Uplink.label()).outage_until(now_ns)
    }

    /// One round trip at `now`: serialization both ways plus jittered
    /// propagation, scaled by any active `LinkJitterSpike` window.
    fn sample_rtt(&mut self, now_ns: u64) -> Duration {
        let ser = self.profile.serialization(Direction::Uplink, EDGE_JOB_BYTES)
            + self.profile.serialization(Direction::Downlink, EDGE_POSE_BYTES);
        let draw = if self.profile.jitter_sigma > 0.0 {
            self.rng.next_lognormal(self.profile.jitter_sigma)
        } else {
            1.0
        };
        let spike = if self.fault.is_quiet() {
            1.0
        } else {
            self.fault.link(Direction::Uplink.label()).jitter_scale(now_ns)
        };
        ser + Duration::from_secs_f64(2.0 * self.profile.base_latency.as_secs_f64() * draw * spike)
    }

    /// Per-camera-frame controller tick, run from the device-side
    /// adapter (the earlier of the two vio releases each frame): draw
    /// the frame's link probe, feed the controller, and close any due
    /// decision epochs. Live decisions are recorded on `place/vio`;
    /// under replay the recorded decision stream drives
    /// [`PlacementController::force`] instead, so replayed migrations
    /// are exact by construction.
    fn tick(&mut self, now: Time, boundary: &Boundary) {
        let now_ns = now.as_nanos();
        let outage = self.outage_until(now_ns).is_some();
        self.frame_rtt = self.sample_rtt(now_ns);
        let Some(ctl) = self.ctl.as_mut() else { return };
        let replay = boundary.source().filter(|src| src.has_stream(PLACE_STREAM)).cloned();
        if let Some(src) = replay {
            while let Some((tag, payload)) = src.next_due(PLACE_STREAM, now_ns) {
                let to = std::str::from_utf8(&payload)
                    .ok()
                    .and_then(Side::parse)
                    .expect("corrupt placement decision record");
                boundary.record(PLACE_STREAM, tag, payload);
                ctl.force(tag, to);
            }
        } else {
            let healthy = !outage && self.frame_rtt <= RTT_BUDGET;
            ctl.observe(!healthy);
            ctl.observe_link(healthy);
            if let Some(m) = ctl.on_epoch(now_ns) {
                boundary.record(PLACE_STREAM, m.at_ns, m.to.label().as_bytes().to_vec());
            }
        }
        self.side = ctl.side();
    }

    /// Cost shaping for the edge-side vio task: compute plus this
    /// frame's transfer, deferred past any scheduled uplink outage.
    /// The realized transfer also feeds the controller — the active
    /// path's own lateness is its second signal beside the probe.
    fn edge_cost(&mut self, compute: Duration, start: Time) -> Duration {
        let now_ns = start.as_nanos();
        let stall = self
            .outage_until(now_ns)
            .map(|end| Duration::from_nanos(end.saturating_sub(now_ns)))
            .unwrap_or(Duration::ZERO);
        let transfer = stall + self.frame_rtt;
        if let Some(ctl) = self.ctl.as_mut() {
            // Harmless under replay: forced decisions override windows.
            ctl.observe(transfer > RTT_BUDGET);
        }
        compute + transfer
    }

    /// Cost shaping for the IMU integrator under an active placement:
    /// when the fused pose goes stale (the cut-point's VIO stopped
    /// landing), each pass re-propagates the widened IMU window from
    /// the old anchor, stalling the device core proportionally to the
    /// staleness. This is what makes losing the edge genuinely hurt an
    /// all-offload plan: the stalls crowd out the sensor tasks on the
    /// shared core, and the dropped IMU samples are never recovered.
    fn integrator_cost(&mut self, cost: Duration, start: Time) -> Duration {
        self.settle_poses(start.as_nanos());
        let staleness = Duration::from_nanos(start.as_nanos().saturating_sub(self.pose_fresh_ns));
        let past = staleness.saturating_sub(STALENESS_GRACE);
        if past.is_zero() {
            return cost;
        }
        let stall = Duration::from_secs_f64(
            (past.as_secs_f64() * STALENESS_STALL_FRACTION).min(STALENESS_STALL_CAP.as_secs_f64()),
        );
        cost + stall
    }

    /// Notes a VIO pose (either side) due to complete at `done_ns`.
    fn note_pose(&mut self, done_ns: u64) {
        self.pose_pending.push(done_ns);
    }
}

/// One side of a placed `vio` cut. Both sides share the real
/// [`VioPlugin`]; only the adapter whose side currently owns the cut
/// runs it, the other reports a skipped iteration — which the engine
/// treats as free (no cost, no chain publication).
struct PlacedVio {
    label: &'static str,
    my_side: Side,
    inner: Arc<Mutex<VioPlugin>>,
    state: Arc<Mutex<PlacementState>>,
}

impl Plugin for PlacedVio {
    fn name(&self) -> &str {
        self.label
    }

    fn start(&mut self, ctx: &PluginContext) {
        // The engine starts both adapters; the shared inner plugin
        // must subscribe exactly once (the device side wins).
        if self.my_side == Side::Device {
            lock(&self.inner).start(ctx);
        }
    }

    fn iterate(&mut self, ctx: &PluginContext) -> IterationReport {
        if self.my_side == Side::Device {
            // The device adapter releases first each frame and owns
            // the controller tick, so a migration decided this frame
            // already gates the edge adapter's release.
            lock(&self.state).tick(ctx.clock.now(), &ctx.boundary);
        }
        if lock(&self.state).side != self.my_side {
            return IterationReport::skipped();
        }
        lock(&self.inner).iterate(ctx)
    }

    fn stop(&mut self) {
        if self.my_side == Side::Device {
            lock(&self.inner).stop();
        }
    }
}

/// Runs integrated experiments.
#[derive(Debug, Default)]
pub struct IntegratedExperiment;

impl IntegratedExperiment {
    /// Runs one `(app, platform)` experiment.
    pub fn run(config: &ExperimentConfig) -> ExperimentResult {
        let telemetry = Arc::new(RecordLogger::new());
        let spec = config.platform.spec();
        let cpu_cores = config.cpu_cores_override.unwrap_or(spec.cpu_cores);
        let mut engine = SimEngine::new(cpu_cores, spec.gpu_slots, telemetry.clone());
        engine.set_policy(config.policy.build());
        let clock = engine.clock();
        let (tracer, metrics) = if config.trace {
            (illixr_core::obs::tracer_for(Arc::new(clock.clone())), Metrics::new())
        } else {
            (Tracer::disabled(), Metrics::disabled())
        };
        engine.set_obs(tracer.clone(), metrics.clone());
        let mut builder = RuntimeBuilder::new(Arc::new(clock.clone()))
            .with_obs(tracer.clone(), metrics.clone())
            .with_telemetry(telemetry.clone())
            .with_fault_plan(config.fault_plan.clone())
            .with_placement(config.placement.clone());
        if let Some(policy) = config.supervision {
            builder = builder.with_supervision(policy);
        }
        // A replayed run must reproduce the recording, so its sensor
        // seed — and, when re-recording for the identity check, its
        // trace header — come from the recorded header, not `config`.
        let seed = config.replay.as_ref().map(|s| s.header().seed).unwrap_or(config.seed);
        let recorder = config.record_boundary.then(|| match &config.replay {
            Some(src) => TraceRecorder::new(src.header().seed, src.header().config_hash),
            None => TraceRecorder::new(config.seed, config.config_hash()),
        });
        if let Some(rec) = &recorder {
            builder = builder.with_recorder(rec.clone());
        }
        if let Some(src) = &config.replay {
            builder = builder.with_trace(src.clone());
        }
        let ctx = builder.build();
        let timing = timing_model(config.platform);
        let sys = &config.system;

        // Placement of the vio cut (plans that keep vio device-side
        // take the exact pre-placement code path: no extra tasks, no
        // extra RNG draws, no chain additions).
        let place_state: Option<Arc<Mutex<PlacementState>>> =
            config.placement_active().then(|| {
                Arc::new(Mutex::new(PlacementState::new(
                    &config.placement,
                    config.placement_config,
                    config.link_profile,
                    config.fault_plan.clone(),
                    seed,
                )))
            });

        // --- Sensor substrate ------------------------------------------
        let trajectory = Trajectory::walking(seed);
        let world = Arc::new(LandmarkWorld::lab(seed));
        let cam = PinholeCamera::qvga();
        let rig = StereoRig::zed_mini(cam);
        let init = ImuState::from_pose(
            Time::ZERO,
            trajectory.pose(Time::ZERO),
            trajectory.velocity(Time::ZERO),
        );

        // --- Plugins -----------------------------------------------------
        let camera = SyntheticCameraPlugin::new(trajectory.clone(), world.clone(), rig);
        let imu =
            SyntheticImuPlugin::new(trajectory.clone(), ImuNoise::default(), sys.imu_hz, seed);
        let vio = VioPlugin::new(VioConfig::fast(cam), init);
        let integrator = ImuIntegratorPlugin::new(init);
        let app = ApplicationPlugin::new(config.app, seed, sys.eye_width, sys.eye_height);
        let timewarp = TimewarpPlugin::new(
            ReprojectionConfig::rotational(
                sys.fov_rad(),
                sys.eye_width as f64 / sys.eye_height as f64,
            ),
            DistortionParams::default(),
        );
        let audio_enc = AudioEncodingPlugin::with_default_scene(seed);
        let audio_play = AudioPlaybackPlugin::new();

        // Reprojection is scheduled "as late as possible before vsync"
        // (§II-B): release at vsync − reserve, deadline at vsync.
        let tw_reserve_s = timing.mean_cost("timewarp", 1.0).as_secs_f64() * 2.0;
        let display_period = sys.display_period();
        let tw_reserve =
            Duration::from_secs_f64(tw_reserve_s.min(display_period.as_secs_f64() * 0.8));
        let tw_offset = display_period.saturating_sub(tw_reserve);

        let load_factor = config.load_factor;
        // Optional per-task cost shaping applied after the timing
        // model and load factor (placement uses it to add link
        // transfer to the edge task and staleness work to the
        // integrator). `None` leaves the cost untouched.
        type CostShape = Box<dyn FnMut(Duration, Time) -> Duration>;
        let add = |engine: &mut SimEngine,
                   plugin: Box<dyn Plugin>,
                   resource: Resource,
                   period: Duration,
                   offset: Duration,
                   deadline: Duration,
                   priority: u8,
                   class: PriorityClass,
                   shape: Option<CostShape>| {
            let mut plugin = plugin;
            let mut shape = shape;
            plugin.start(&ctx);
            let name = plugin.name().to_owned();
            ctx.supervisor.register(&name, 0);
            let timing = timing.clone();
            let ctx = ctx.clone();
            // Crash-injection state for this task: how many scheduled
            // PluginCrash windows have fired, and whether the plugin is
            // waiting out a restart backoff (or dead for good).
            let mut crashes_fired: u32 = 0;
            let mut restart_at_ns: Option<u64> = None;
            let mut dead = false;
            engine.add_task(
                TaskSpec {
                    name: name.clone(),
                    resource,
                    period,
                    offset,
                    deadline,
                    drop_if_busy: true,
                    priority,
                    class,
                    preemptive: priority >= 10,
                    preempt_latency: if priority >= 10 {
                        Duration::from_secs_f64(spec.gpu_preempt_ms / 1e3)
                    } else {
                        Duration::ZERO
                    },
                },
                Box::new(move |d| {
                    let skipped =
                        ExecOutcome { cost: Duration::ZERO, work_factor: 0.0, did_work: false };
                    if dead {
                        return skipped;
                    }
                    let now_ns = d.start.as_nanos();
                    if let Some(at) = restart_at_ns {
                        if now_ns < at {
                            return skipped;
                        }
                        // Backoff elapsed in simulated time: restart.
                        restart_at_ns = None;
                        plugin.start(&ctx);
                    }
                    // A scheduled PluginCrash window that has opened since
                    // the last fire panics this invocation; a real plugin
                    // panic is contained the same way.
                    let crash = ctx.boundary.crash_due(
                        &ctx.fault,
                        &name,
                        d.release.as_nanos(),
                        crashes_fired,
                    );
                    let outcome = if crash {
                        crashes_fired += 1;
                        None
                    } else {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            plugin.iterate(&ctx)
                        }))
                        .ok()
                    };
                    let report = match outcome {
                        Some(report) => report,
                        None => {
                            match ctx.supervisor.on_panic(&name, now_ns) {
                                Some(backoff) => {
                                    restart_at_ns = Some(now_ns + backoff.as_nanos() as u64);
                                }
                                None => dead = true,
                            }
                            return skipped;
                        }
                    };
                    if report.did_work {
                        if let Some(recovery_ns) = ctx.supervisor.note_progress(&name, now_ns) {
                            ctx.metrics.record_ns("supervisor.recovery", recovery_ns);
                        }
                    }
                    let base = timing.cost(&name, d.invocation, report.work_factor);
                    let cost = if load_factor == 1.0 {
                        base
                    } else {
                        Duration::from_secs_f64(base.as_secs_f64() * load_factor)
                    };
                    let cost = match shape.as_mut() {
                        Some(f) if report.did_work => f(cost, d.start),
                        _ => cost,
                    };
                    ExecOutcome { cost, work_factor: report.work_factor, did_work: report.did_work }
                }),
            )
        };

        let cam_period = sys.camera_period();
        let imu_period = sys.imu_period();
        let audio_period = sys.audio_period();
        let camera_id = add(
            &mut engine,
            Box::new(camera),
            Resource::Cpu,
            cam_period,
            Duration::ZERO,
            cam_period,
            0,
            PriorityClass::Perception,
            None,
        );
        let imu_id = add(
            &mut engine,
            Box::new(imu),
            Resource::Cpu,
            imu_period,
            Duration::ZERO,
            imu_period,
            2,
            PriorityClass::Critical,
            None,
        );
        // VIO releases just after the camera so the frame is
        // available. Under an active placement the plugin is shared by
        // a device-side CPU task and an edge-side task on the remote
        // pool; exactly one of them runs it each frame.
        let vio_ids = match &place_state {
            None => {
                add(
                    &mut engine,
                    Box::new(vio),
                    Resource::Cpu,
                    cam_period,
                    Duration::from_micros(100),
                    cam_period,
                    0,
                    PriorityClass::Perception,
                    None,
                );
                None
            }
            Some(state) => {
                let inner = Arc::new(Mutex::new(vio));
                let device = PlacedVio {
                    label: "vio",
                    my_side: Side::Device,
                    inner: inner.clone(),
                    state: state.clone(),
                };
                let edge = PlacedVio {
                    label: "vio@edge",
                    my_side: Side::Edge,
                    inner,
                    state: state.clone(),
                };
                let note_pose: CostShape = {
                    let state = state.clone();
                    Box::new(move |cost, start| {
                        lock(&state).note_pose(start.as_nanos() + cost.as_nanos() as u64);
                        cost
                    })
                };
                let device_id = add(
                    &mut engine,
                    Box::new(device),
                    Resource::Cpu,
                    cam_period,
                    Duration::from_micros(100),
                    cam_period,
                    0,
                    PriorityClass::Perception,
                    Some(note_pose),
                );
                let edge_shape: CostShape = {
                    let state = state.clone();
                    Box::new(move |cost, start| {
                        let mut s = lock(&state);
                        let total = s.edge_cost(cost, start);
                        s.note_pose(start.as_nanos() + total.as_nanos() as u64);
                        total
                    })
                };
                // The edge task releases after the capture has had time
                // to finish on the device core (the uplink ships a
                // completed frame, not a concurrent one); releasing any
                // earlier would let the remote pool dispatch against
                // the previous frame's chain origin.
                let edge_id = add(
                    &mut engine,
                    Box::new(edge),
                    Resource::Remote,
                    cam_period,
                    Duration::from_millis(6),
                    cam_period,
                    0,
                    PriorityClass::Perception,
                    Some(edge_shape),
                );
                Some((device_id, edge_id))
            }
        };
        let integrator_shape: Option<CostShape> = place_state.as_ref().map(|state| {
            let state = state.clone();
            Box::new(move |cost: Duration, start: Time| lock(&state).integrator_cost(cost, start))
                as CostShape
        });
        let integrator_id = add(
            &mut engine,
            Box::new(integrator),
            Resource::Cpu,
            imu_period,
            Duration::from_micros(50),
            imu_period,
            2,
            PriorityClass::Critical,
            integrator_shape,
        );
        add(
            &mut engine,
            Box::new(app),
            Resource::Gpu,
            display_period,
            Duration::ZERO,
            display_period,
            0,
            PriorityClass::Visual,
            None,
        );
        // The compositor runs at high GPU priority, like every real
        // XR runtime (it must never starve behind the application).
        let timewarp_id = add(
            &mut engine,
            Box::new(timewarp),
            Resource::Gpu,
            display_period,
            tw_offset,
            tw_reserve,
            10,
            PriorityClass::Critical,
            None,
        );
        add(
            &mut engine,
            Box::new(audio_enc),
            Resource::Cpu,
            audio_period,
            Duration::ZERO,
            audio_period,
            1,
            PriorityClass::Audio,
            None,
        );
        add(
            &mut engine,
            Box::new(audio_play),
            Resource::Cpu,
            audio_period,
            Duration::from_micros(200),
            audio_period,
            1,
            PriorityClass::Audio,
            None,
        );

        // The motion-to-photon chain: a fresh IMU sample feeds the
        // integrator whose pose the compositor reprojects with. The
        // chain deadline is the end-to-end budget from sensor sample
        // to the warped frame leaving the compositor.
        engine.add_chain(ChainSpec {
            name: "mtp".to_owned(),
            members: vec![imu_id, integrator_id, timewarp_id],
            deadline_ns: config.chain_deadline.as_nanos() as u64,
        });

        // Placed runs also track the perception path per side: camera
        // release → fresh VIO pose. The inactive side's vio task
        // aborts its invocations, so each frame completes exactly one
        // of the two chains.
        if let Some((device_id, edge_id)) = vio_ids {
            engine.add_chain(ChainSpec {
                name: "visual_device".to_owned(),
                members: vec![camera_id, device_id],
                deadline_ns: VISUAL_DEADLINE.as_nanos() as u64,
            });
            engine.add_chain(ChainSpec {
                name: "visual_edge".to_owned(),
                members: vec![camera_id, edge_id],
                deadline_ns: VISUAL_DEADLINE.as_nanos() as u64,
            });
        }

        if config.extended {
            // Eye tracking at the display rate, scene reconstruction at
            // the camera rate — both on the GPU, contending with the
            // application and compositor.
            let eye = illixr_eyetrack::plugin::EyeTrackingPlugin::new();
            let scene = illixr_reconstruction::plugin::SceneReconstructionPlugin::new(
                world.clone(),
                rig,
                trajectory.clone(),
            );
            add(
                &mut engine,
                Box::new(eye),
                Resource::Gpu,
                display_period,
                Duration::from_micros(400),
                display_period,
                1,
                PriorityClass::BestEffort,
                None,
            );
            add(
                &mut engine,
                Box::new(scene),
                Resource::Gpu,
                cam_period,
                Duration::from_micros(500),
                cam_period,
                0,
                PriorityClass::BestEffort,
                None,
            );
        }

        // Observe warped frames for the MTP calculation.
        let warped = ctx
            .switchboard
            .topic::<WarpedFrame>(DISPLAY_STREAM)
            .expect("stream")
            .sync_reader(1 << 15);

        engine.run_for(config.duration);

        // --- Motion-to-photon latency -----------------------------------
        // Records and warped frames are appended in the same dispatch
        // order; pair them up.
        let calc = MtpCalculator::new(display_period);
        let records = telemetry.records("timewarp");
        let frames = warped.drain();
        let mtp: Vec<MtpSample> = records
            .iter()
            .zip(frames.iter())
            .map(|(r, f)| calc.sample(f.display_pose.timestamp, r.start, r.end))
            .collect();
        let displayed_poses: Vec<illixr_math::Pose> =
            frames.iter().map(|f| f.display_pose.pose).collect();

        // Per-stage MTP decomposition (sense→warp→swap); the stage
        // histograms sum exactly to `mtp.total` by construction.
        if metrics.is_enabled() {
            for s in &mtp {
                metrics.record("mtp.imu_age", s.imu_age);
                metrics.record("mtp.reprojection", s.reprojection);
                metrics.record("mtp.swap", s.swap);
                metrics.record("mtp.total", s.total());
            }
            illixr_core::obs::export_topic_gauges(&ctx.switchboard, &metrics, "");
            illixr_core::obs::export_supervisor_gauges(&ctx.supervisor, &metrics);
        }
        if tracer.is_enabled() {
            for s in &mtp {
                let vsync = s.display_vsync.as_nanos();
                let total = s.total().as_nanos() as u64;
                tracer.record_span_args(
                    "mtp",
                    "mtp",
                    vsync.saturating_sub(total),
                    vsync,
                    &[
                        ("imu_age_us", format!("{}", s.imu_age.as_micros())),
                        ("reprojection_us", format!("{}", s.reprojection.as_micros())),
                        ("swap_us", format!("{}", s.swap.as_micros())),
                    ],
                );
            }
        }

        // --- Utilization and power --------------------------------------
        let dur_s = config.duration.as_secs_f64();
        let mut cpu_busy = 0.0;
        let mut gpu_busy = 0.0;
        for name in COMPONENTS {
            let Some(stats) = telemetry.stats(name) else { continue };
            let busy = stats.total_cpu.as_secs_f64();
            match timing.entry(name).map(|e| e.class) {
                Some(CostClass::Gpu) => gpu_busy += busy,
                _ => cpu_busy += busy,
            }
        }
        let cpu_util = (cpu_busy / (cpu_cores as f64 * dur_s)).min(1.0);
        let gpu_util = (gpu_busy / (spec.gpu_slots as f64 * dur_s)).min(1.0);
        let power = PowerModel::new(config.platform).breakdown_from_compute(cpu_util, gpu_util);
        let energy_joules = PowerModel::energy_joules(&power, dur_s);

        let (vio_final_side, migrations) = match &place_state {
            Some(state) => {
                let s = lock(state);
                (s.side, s.ctl.as_ref().map(|c| c.migrations().to_vec()).unwrap_or_default())
            }
            None => (Side::Device, Vec::new()),
        };

        ExperimentResult {
            app: config.app,
            platform: config.platform,
            duration: config.duration,
            telemetry,
            mtp,
            displayed_poses,
            cpu_util,
            gpu_util,
            power,
            energy_joules,
            stream_stats: ctx.switchboard.stats(),
            tracer,
            metrics,
            chain_outcomes: engine.chain_outcomes().to_vec(),
            degradation_level: engine.degradation_level(),
            shed_jobs: engine.shed_jobs(),
            supervisor: ctx.supervisor.clone(),
            boundary_trace: recorder.map(|rec| rec.snapshot()),
            placement_label: config.placement.label(),
            vio_final_side,
            migrations,
        }
    }
}

/// Offline image-quality experiment (Table V): compares the final
/// reprojected image of the *actual* system (VIO-estimated poses, with
/// platform-induced frame drops and pose staleness) against the
/// *idealized* system (ground-truth poses), reporting SSIM and 1−FLIP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageQualityResult {
    /// SSIM mean ± std over the sampled frames.
    pub ssim: MeanStd,
    /// 1−FLIP mean ± std (1 = identical, like the paper reports).
    pub one_minus_flip: MeanStd,
    /// Fraction of camera frames the platform's VIO dropped.
    pub vio_drop_rate: f64,
}

/// Runs the Table V experiment for one app/platform.
pub fn image_quality(
    app: Application,
    platform: Platform,
    seed: u64,
    duration_s: f64,
) -> ImageQualityResult {
    use illixr_sensors::dataset::SyntheticDataset;
    use illixr_vio::msckf::Msckf;

    let ds = SyntheticDataset::vicon_room_like(seed, duration_s);
    let cam = PinholeCamera::qvga();
    let rig = StereoRig::zed_mini(cam);
    let timing = timing_model(platform);
    let cam_period = SystemConfig::default().camera_period().as_secs_f64();

    // Run VIO over the dataset, dropping frames whenever the modeled
    // execution on this platform is still busy at the next release —
    // the §IV-A3 mechanism ("many missed deadlines, which could not be
    // fully compensated").
    let gt0 = &ds.ground_truth[0];
    let init = ImuState::from_pose(gt0.timestamp, gt0.pose, gt0.velocity);
    let mut filter = Msckf::new(VioConfig::fast(cam), init);
    let mut imu_idx = 0;
    let mut busy_until = 0.0f64;
    let mut dropped = 0usize;
    let mut estimates: Vec<(Time, illixr_math::Pose)> = Vec::new();
    for (k, &cam_t) in ds.camera_times.iter().enumerate() {
        while imu_idx < ds.imu.len() && ds.imu[imu_idx].timestamp <= cam_t {
            filter.process_imu(ds.imu[imu_idx]);
            imu_idx += 1;
        }
        let t = cam_t.as_secs_f64();
        if t < busy_until {
            dropped += 1;
            continue; // platform still chewing on the previous frame
        }
        let (left, right) = ds.render_frame(&rig, k);
        let frame = illixr_sensors::types::StereoFrame {
            timestamp: cam_t,
            left: Arc::new(left),
            right: Arc::new(right),
            seq: k as u64,
        };
        let out = filter.process_frame(&frame, None);
        let work = (out.tracked_features as f64).max(6.0) / 30.0;
        let cost = timing.cost("vio", k as u64, work).as_secs_f64();
        busy_until = t + cost.max(cam_period * 0.1);
        estimates.push((cam_t, out.state.pose));
    }

    // Pose staleness on this platform: one display period plus the
    // modeled warp cost (the MTP mechanism applied to the offline path).
    let display_period = SystemConfig::default().display_period().as_secs_f64();
    let staleness = display_period + 2.0 * timing.mean_cost("timewarp", 1.0).as_secs_f64();

    // Sample display instants and compare final images.
    let mut scene = app.build(seed);
    let mut ssim_vals = Vec::new();
    let mut flip_vals = Vec::new();
    let reproj_cfg = ReprojectionConfig::rotational(1.57, 1.0);
    let (w, h) = (96, 96);
    let mut raster = illixr_render::raster::Rasterizer::new(w, h);
    let sample_times: Vec<f64> = {
        let end = ds.duration().as_secs_f64();
        let n = 8;
        (1..=n).map(|i| end * i as f64 / (n + 1) as f64).collect()
    };
    for &t in &sample_times {
        let t_render = Time::from_secs_f64((t - display_period).max(0.0));
        let t_display = Time::from_secs_f64(t);
        // Idealized: ground-truth render + ground-truth display pose.
        let gt_render = ds.ground_truth_pose(t_render);
        let gt_display = ds.ground_truth_pose(t_display);
        // Actual: the latest VIO estimate at (t − staleness), held since.
        let est_at = |query: f64| -> illixr_math::Pose {
            let qt = Time::from_secs_f64(query.max(0.0));
            match estimates.iter().rev().find(|(et, _)| *et <= qt) {
                Some((et, pose)) => {
                    // Propagate the estimate forward with ground-truth
                    // *relative* motion (the IMU integrator's job) —
                    // leaving VIO drift as the error source.
                    let rel = ds.ground_truth_pose(*et).relative_to(&ds.ground_truth_pose(qt));
                    pose.compose(&rel)
                }
                None => ds.ground_truth_pose(qt),
            }
        };
        let act_render = est_at(t_render.as_secs_f64() - staleness);
        let act_display = est_at(t - staleness);

        scene.animate_to(t);
        let mut render_image = |pose: &illixr_math::Pose| -> RgbImage {
            scene.render(&mut raster, pose, 1.57, 1.0);
            raster.take_framebuffer()
        };
        let ideal_rendered = render_image(&gt_render);
        let actual_rendered = render_image(&act_render);
        let ideal_final = illixr_visual::reprojection::reproject(
            &ideal_rendered,
            &gt_render,
            &gt_display,
            &reproj_cfg,
        );
        let actual_final = illixr_visual::reprojection::reproject(
            &actual_rendered,
            &act_render,
            &act_display,
            &reproj_cfg,
        );
        ssim_vals.push(ssim(&ideal_final.to_luma(), &actual_final.to_luma()) as f64);
        flip_vals.push(1.0 - flip(&ideal_final, &actual_final) as f64);
    }

    ImageQualityResult {
        ssim: MeanStd::of(&ssim_vals).expect("sampled at least one frame"),
        one_minus_flip: MeanStd::of(&flip_vals).expect("sampled at least one frame"),
        vio_drop_rate: dropped as f64 / ds.camera_times.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desktop_platformer_meets_targets() {
        let result = IntegratedExperiment::run(&ExperimentConfig::quick(
            Application::Platformer,
            Platform::Desktop,
        ));
        let vio = result.stats("vio").unwrap();
        let tw = result.stats("timewarp").unwrap();
        let audio = result.stats("audio_playback").unwrap();
        // Paper Fig 3a: desktop meets essentially all targets for
        // Platformer.
        assert!(vio.achieved_hz > 13.0, "vio {} Hz", vio.achieved_hz);
        assert!(tw.achieved_hz > 100.0, "timewarp {} Hz", tw.achieved_hz);
        assert!(audio.achieved_hz > 44.0, "audio {} Hz", audio.achieved_hz);
        assert_eq!(vio.drops, 0);
    }

    #[test]
    fn jetson_lp_degrades_visual_pipeline_but_not_audio() {
        let lp = IntegratedExperiment::run(&ExperimentConfig::quick(
            Application::Sponza,
            Platform::JetsonLP,
        ));
        let desktop = IntegratedExperiment::run(&ExperimentConfig::quick(
            Application::Sponza,
            Platform::Desktop,
        ));
        // Paper Fig 3c: Jetson-LP audio still meets target, visual
        // pipeline severely degraded.
        let lp_audio = lp.stats("audio_playback").unwrap();
        assert!(lp_audio.achieved_hz > 44.0, "audio degraded: {} Hz", lp_audio.achieved_hz);
        let lp_app = lp.stats("application").unwrap();
        let d_app = desktop.stats("application").unwrap();
        assert!(
            lp_app.achieved_hz < 0.5 * d_app.achieved_hz,
            "LP app {} Hz vs desktop {} Hz",
            lp_app.achieved_hz,
            d_app.achieved_hz
        );
        assert!(lp_app.drops > 0, "LP application should drop frames");
    }

    #[test]
    fn mtp_grows_with_constrained_platform() {
        let d = IntegratedExperiment::run(&ExperimentConfig::quick(
            Application::Platformer,
            Platform::Desktop,
        ));
        let lp = IntegratedExperiment::run(&ExperimentConfig::quick(
            Application::Platformer,
            Platform::JetsonLP,
        ));
        let d_mtp = d.mtp_ms().expect("desktop produced MTP samples");
        let lp_mtp = lp.mtp_ms().expect("jetson-lp produced MTP samples");
        // Paper Table IV: desktop ≈ 3 ms, Jetson-LP ≈ 11 ms for
        // Platformer.
        assert!(d_mtp.mean < 8.0, "desktop MTP {} ms", d_mtp.mean);
        assert!(lp_mtp.mean > d_mtp.mean, "LP {} vs desktop {}", lp_mtp.mean, d_mtp.mean);
    }

    #[test]
    fn energy_integrates_power_over_the_run() {
        let r = IntegratedExperiment::run(&ExperimentConfig::quick(
            Application::ArDemo,
            Platform::JetsonHP,
        ));
        let expected = r.power.total() * r.duration.as_secs_f64();
        assert!((r.energy_joules - expected).abs() < 1e-9);
        assert!(r.energy_joules > 0.0);
    }

    #[test]
    fn power_ordering_matches_fig6() {
        let d = IntegratedExperiment::run(&ExperimentConfig::quick(
            Application::Sponza,
            Platform::Desktop,
        ));
        let hp = IntegratedExperiment::run(&ExperimentConfig::quick(
            Application::Sponza,
            Platform::JetsonHP,
        ));
        let lp = IntegratedExperiment::run(&ExperimentConfig::quick(
            Application::Sponza,
            Platform::JetsonLP,
        ));
        assert!(d.power.total() > 10.0 * hp.power.total());
        assert!(hp.power.total() > lp.power.total());
        // SoC+Sys majority on Jetson-LP.
        let frac = (lp.power.soc + lp.power.sys) / lp.power.total();
        assert!(frac > 0.5, "SoC+Sys share {frac}");
    }

    #[test]
    fn vio_and_app_dominate_cpu_shares_on_desktop() {
        let r = IntegratedExperiment::run(&ExperimentConfig::quick(
            Application::Sponza,
            Platform::Desktop,
        ));
        let shares = r.cpu_shares();
        let get =
            |name: &str| shares.iter().find(|(n, _)| n == name).map(|(_, s)| *s).unwrap_or(0.0);
        // Fig 5: VIO and the application are the largest CPU consumers
        // (application cycles here stand in for its CPU-side cost).
        assert!(get("vio") > 0.2, "vio share {}", get("vio"));
        assert!(get("vio") + get("application") > 0.4);
    }

    #[test]
    fn constrained_platforms_show_more_judder() {
        // §IV-A3 visual examination: "Jetson-HP showed perceptibly
        // increased judder" — quantified with the pose-judder metric.
        let d = IntegratedExperiment::run(&ExperimentConfig::quick(
            Application::Sponza,
            Platform::Desktop,
        ));
        let lp = IntegratedExperiment::run(&ExperimentConfig::quick(
            Application::Sponza,
            Platform::JetsonLP,
        ));
        let jd = d.pose_judder().expect("desktop displayed frames");
        let jlp = lp.pose_judder().expect("jetson-lp displayed frames");
        assert!(jlp > jd, "LP judder {jlp} should exceed desktop {jd}");
    }

    #[test]
    fn extended_configuration_stresses_the_gpu() {
        let base = IntegratedExperiment::run(&ExperimentConfig::quick(
            Application::Platformer,
            Platform::JetsonHP,
        ));
        let ext = IntegratedExperiment::run(
            &ExperimentConfig::quick(Application::Platformer, Platform::JetsonHP)
                .with_extended_components(),
        );
        // The new components actually ran…
        assert!(ext.stats("eye_tracking").unwrap().invocations > 0);
        assert!(ext.stats("scene_reconstruction").unwrap().invocations > 0);
        assert!(base.stats("eye_tracking").is_none());
        // …and §V-A's warning holds: the application gets further from
        // its target.
        let base_app = base.stats("application").unwrap().achieved_hz;
        let ext_app = ext.stats("application").unwrap().achieved_hz;
        assert!(ext_app < base_app, "extended {ext_app} vs base {base_app}");
    }

    #[test]
    fn results_are_deterministic() {
        let cfg = ExperimentConfig::quick(Application::ArDemo, Platform::JetsonHP);
        let a = IntegratedExperiment::run(&cfg);
        let b = IntegratedExperiment::run(&cfg);
        assert_eq!(a.telemetry.records("vio"), b.telemetry.records("vio"));
        assert_eq!(a.mtp.len(), b.mtp.len());
        assert_eq!(a.power.total(), b.power.total());
    }

    #[test]
    fn recorded_run_replays_bit_identically() {
        use illixr_core::boundary::TraceSource;
        use std::sync::Arc as StdArc;

        let cfg =
            ExperimentConfig::quick(Application::ArDemo, Platform::JetsonHP).with_boundary_record();
        let recorded = IntegratedExperiment::run(&cfg);
        let trace = recorded.boundary_trace.clone().expect("recording enabled");
        assert!(trace.record_count() > 0, "boundary saw traffic");

        // Replay with a *different* seed in the config: everything the
        // run derives from the boundary must come from the trace.
        let replay_cfg = ExperimentConfig::quick(Application::ArDemo, Platform::JetsonHP)
            .with_seed(cfg.seed ^ 0xDEAD_BEEF)
            .with_boundary_record()
            .with_trace_source(TraceSource::new(StdArc::new(trace.clone())));
        let replayed = IntegratedExperiment::run(&replay_cfg);

        assert_eq!(
            recorded.telemetry.records("vio"),
            replayed.telemetry.records("vio"),
            "replayed VIO telemetry diverged"
        );
        assert_eq!(recorded.mtp, replayed.mtp, "replayed MTP samples diverged");
        let rerec = replayed.boundary_trace.expect("re-recording enabled");
        assert_eq!(rerec.encode(), trace.encode(), "re-recorded trace not byte-identical");
    }

    #[test]
    fn all_local_placement_matches_default_run() {
        let base = ExperimentConfig::quick(Application::ArDemo, Platform::JetsonHP);
        let default_run = IntegratedExperiment::run(&base);
        for plan in [PlacementPlan::all_local(), PlacementPlan::pinned("vio", Side::Device)] {
            let placed = base.clone().with_placement(plan);
            assert_eq!(placed.config_hash(), base.config_hash(), "device-side plans keep the hash");
            let run = IntegratedExperiment::run(&placed);
            assert_eq!(default_run.telemetry.records("vio"), run.telemetry.records("vio"));
            assert_eq!(default_run.mtp, run.mtp);
            assert_eq!(run.placement_label, "all_local");
            assert_eq!(run.vio_final_side, Side::Device);
            assert!(run.migrations.is_empty());
        }
    }

    #[test]
    fn adaptive_placement_rides_out_an_uplink_outage() {
        use illixr_core::fault::{FaultKind, FaultWindow};

        let outage = (800_000_000u64, 1_400_000_000u64);
        let mut cfg = ExperimentConfig::quick(Application::Platformer, Platform::Desktop)
            .with_load_factor(2.0)
            .with_cpu_cores(1)
            .with_fault_plan(FaultPlan::new(9).with_window(FaultWindow::new(
                FaultKind::LinkOutage,
                Direction::Uplink.label(),
                outage.0,
                outage.1,
                1.0,
            )))
            .with_placement(PlacementPlan::adaptive("vio", Side::Edge));
        cfg.duration = Duration::from_secs_f64(3.5);

        let run = IntegratedExperiment::run(&cfg);
        assert_eq!(run.placement_label, "vio=adaptive@edge");
        let m = &run.migrations;
        assert_eq!(m.len(), 2, "one escalation + one restore: {m:?}");
        assert_eq!((m[0].from, m[0].to), (Side::Edge, Side::Device));
        assert!(
            m[0].at_ns >= outage.0 && m[0].at_ns <= outage.1,
            "escalated inside the outage: {}",
            m[0].at_ns
        );
        let budget = cfg.placement_config.recovery_budget_ns();
        assert_eq!((m[1].from, m[1].to), (Side::Device, Side::Edge));
        assert!(
            m[1].at_ns > outage.1 && m[1].at_ns <= outage.1 + budget,
            "restored within the governor budget: {} vs {}",
            m[1].at_ns,
            outage.1 + budget
        );
        assert_eq!(run.vio_final_side, Side::Edge);
        // Both visual chains completed work (the cut really moved).
        assert!(run.chain_miss_rate(VISUAL_DEVICE_CHAIN).is_some());
        assert!(run.chain_miss_rate(VISUAL_EDGE_CHAIN).is_some());

        // Same seed, same decisions, same samples — bit identical.
        let rerun = IntegratedExperiment::run(&cfg);
        assert_eq!(run.migrations, rerun.migrations);
        assert_eq!(run.mtp, rerun.mtp);
        assert_eq!(run.telemetry.records("vio@edge"), rerun.telemetry.records("vio@edge"));
    }
}
