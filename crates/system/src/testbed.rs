//! Live-mode execution: the full plugin graph on real threads and the
//! wall clock — how the testbed runs when you actually want to *use* it
//! rather than model a platform.

use std::sync::Arc;
use std::time::Duration;

use illixr_audio::plugins::{AudioEncodingPlugin, AudioPlaybackPlugin};
use illixr_core::clock::WallClock;
use illixr_core::plugin::{Plugin, PluginContext, RuntimeBuilder};
use illixr_core::supervisor::SupervisionPolicy;
use illixr_core::threadloop::{RuntimeHandles, ThreadloopBuilder};
use illixr_core::Time;
use illixr_render::apps::Application;
use illixr_render::plugin::ApplicationPlugin;
use illixr_sensors::camera::{PinholeCamera, StereoRig};
use illixr_sensors::imu::ImuNoise;
use illixr_sensors::plugins::{SyntheticCameraPlugin, SyntheticImuPlugin};
use illixr_sensors::trajectory::Trajectory;
use illixr_sensors::world::LandmarkWorld;
use illixr_vio::integrator::ImuState;
use illixr_vio::msckf::VioConfig;
use illixr_vio::plugins::{ImuIntegratorPlugin, VioPlugin};
use illixr_visual::distortion::DistortionParams;
use illixr_visual::plugins::TimewarpPlugin;
use illixr_visual::reprojection::ReprojectionConfig;

use crate::config::SystemConfig;

/// A running live testbed.
pub struct LiveTestbed {
    ctx: PluginContext,
    handles: RuntimeHandles,
    plugins: usize,
}

impl std::fmt::Debug for LiveTestbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LiveTestbed({} plugins)", self.plugins)
    }
}

impl LiveTestbed {
    /// Starts the full integrated configuration (§III-B: Table II
    /// components minus scene reconstruction / eye tracking / hologram)
    /// for `app` at the Table III rates.
    ///
    /// Rates can be derated by `rate_scale` (< 1 slows every component
    /// proportionally — handy for running on weak CI machines).
    pub fn start(app: Application, config: SystemConfig, seed: u64, rate_scale: f64) -> Self {
        assert!(rate_scale > 0.0 && rate_scale <= 1.0, "rate scale must be in (0, 1]");
        let ctx = RuntimeBuilder::new(Arc::new(WallClock::new()))
            .with_supervision(SupervisionPolicy::default())
            .build();
        let trajectory = Trajectory::walking(seed);
        let world = Arc::new(LandmarkWorld::lab(seed));
        let cam = PinholeCamera::qvga();
        let rig = StereoRig::zed_mini(cam);
        let init = ImuState::from_pose(
            Time::ZERO,
            trajectory.pose(Time::ZERO),
            trajectory.velocity(Time::ZERO),
        );

        let scaled = |d: Duration| Duration::from_secs_f64(d.as_secs_f64() / rate_scale);
        let mut builder = ThreadloopBuilder::new();
        let mut plugins = 0usize;
        let mut spawn = |plugin: Box<dyn Plugin>, period: Duration| {
            plugins += 1;
            builder = std::mem::take(&mut builder).task(plugin, period);
        };
        spawn(
            Box::new(SyntheticCameraPlugin::new(trajectory.clone(), world, rig)),
            scaled(config.camera_period()),
        );
        spawn(
            Box::new(SyntheticImuPlugin::new(
                trajectory.clone(),
                ImuNoise::default(),
                config.imu_hz * rate_scale,
                seed,
            )),
            scaled(config.imu_period()),
        );
        spawn(Box::new(VioPlugin::new(VioConfig::fast(cam), init)), scaled(config.camera_period()));
        spawn(Box::new(ImuIntegratorPlugin::new(init)), scaled(config.imu_period()));
        spawn(
            Box::new(ApplicationPlugin::new(app, seed, config.eye_width, config.eye_height)),
            scaled(config.display_period()),
        );
        spawn(
            Box::new(TimewarpPlugin::new(
                ReprojectionConfig::rotational(
                    config.fov_rad(),
                    config.eye_width as f64 / config.eye_height as f64,
                ),
                DistortionParams::default(),
            )),
            scaled(config.display_period()),
        );
        spawn(
            Box::new(AudioEncodingPlugin::with_default_scene(seed)),
            scaled(config.audio_period()),
        );
        spawn(Box::new(AudioPlaybackPlugin::new()), scaled(config.audio_period()));

        let handles = builder.spawn(&ctx);
        Self { ctx, handles, plugins }
    }

    /// The runtime context (switchboard, telemetry) for observers.
    pub fn context(&self) -> &PluginContext {
        &self.ctx
    }

    /// Lets the system run for `duration` of wall time.
    pub fn run_for(&self, duration: Duration) {
        std::thread::sleep(duration);
    }

    /// Stops all plugins.
    pub fn shutdown(self) {
        self.handles.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_sensors::types::{streams, PoseEstimate};
    use illixr_visual::plugins::{WarpedFrame, DISPLAY_STREAM};

    /// A smoke test of the live path: heavy components at derated rates.
    #[test]
    fn live_testbed_produces_display_frames() {
        let testbed = LiveTestbed::start(
            Application::ArDemo,
            SystemConfig { eye_width: 48, eye_height: 48, ..Default::default() },
            7,
            0.25,
        );
        let frames = testbed
            .context()
            .switchboard
            .topic::<WarpedFrame>(DISPLAY_STREAM)
            .expect("stream")
            .sync_reader(1024);
        let poses = testbed
            .context()
            .switchboard
            .topic::<PoseEstimate>(streams::FAST_POSE)
            .expect("stream")
            .async_reader();
        testbed.run_for(Duration::from_millis(1200));
        let n = frames.drain().len();
        let have_pose = poses.latest().is_some();
        let telemetry = testbed.context().telemetry.clone();
        testbed.shutdown();
        assert!(n > 3, "only {n} display frames in 1.2 s");
        assert!(have_pose, "no fast pose was ever published");
        assert!(telemetry.stats("vio").is_some());
        assert!(telemetry.stats("audio_playback").is_some());
    }
}
