//! The integrated ILLIXR-rs system.
//!
//! Assembles the plugins of all three pipelines (perception, visual,
//! audio) behind the runtime, in the two execution modes the testbed
//! supports:
//!
//! * [`testbed`] — **live mode**: one OS thread per plugin at the
//!   Table III rates on the wall clock (what the paper runs on real
//!   hardware);
//! * [`experiment`] — **simulated mode**: the same plugins on the
//!   discrete-event engine with per-platform timing/power models, which
//!   is how one machine reproduces the desktop / Jetson-HP / Jetson-LP
//!   comparisons of §IV deterministically;
//! * [`openxr`] — a minimal OpenXR-style application interface
//!   (`wait_frame` / `locate_views` / `submit_frame`), the Monado role
//!   in the paper's stack;
//! * [`config`] — the tuned system parameters of Table III and the
//!   device aspirations of Table I.

pub mod config;
pub mod experiment;
pub mod offload;
pub mod openxr;
pub mod registry;
pub mod testbed;

pub use config::{SystemConfig, TableIRequirements};
pub use experiment::{ExperimentConfig, ExperimentResult, IntegratedExperiment};
pub use offload::{OffloadLink, OffloadedPlugin};
pub use openxr::{XrFrameState, XrInstance, XrSession};
pub use registry::{standard_registry, RegistryEnvironment};
pub use testbed::LiveTestbed;
