//! A minimal OpenXR-style application interface.
//!
//! The paper's applications talk to ILLIXR exclusively through the
//! OpenXR API, provided by Monado with ILLIXR as its device driver
//! (§II-B). This module reproduces that architectural boundary: an
//! application never touches plugins or streams directly — it creates an
//! [`XrInstance`], begins an [`XrSession`], and runs the canonical
//! OpenXR frame loop:
//!
//! ```text
//! loop {
//!     let state = session.wait_frame();
//!     session.begin_frame();
//!     let views = session.locate_views(state.predicted_display_time);
//!     // … render both eyes with those poses …
//!     session.end_frame(state, left, right, pose_used);
//! }
//! ```

use std::sync::Arc;

use illixr_core::plugin::PluginContext;
use illixr_core::switchboard::{AsyncReader, Writer};
use illixr_core::Time;
use illixr_image::RgbImage;
use illixr_math::{Pose, Vec3};
use illixr_render::plugin::{RenderedFrame, EYEBUFFER_STREAM, IPD};
use illixr_sensors::types::{streams, PoseEstimate};

use crate::config::SystemConfig;

/// The XR runtime entry point (one per process in real OpenXR).
#[derive(Debug)]
pub struct XrInstance {
    ctx: PluginContext,
    config: SystemConfig,
}

/// Frame pacing information returned by [`XrSession::wait_frame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XrFrameState {
    /// When the frame being rendered is predicted to reach the display.
    pub predicted_display_time: Time,
    /// The display refresh period.
    pub predicted_display_period: std::time::Duration,
}

/// Per-eye view poses for rendering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XrView {
    /// Eye pose in the world (tracking) space.
    pub pose: Pose,
    /// Vertical field of view, radians.
    pub fov_y: f64,
}

impl XrInstance {
    /// Creates an instance bound to a runtime context.
    pub fn create(ctx: PluginContext, config: SystemConfig) -> Self {
        Self { ctx, config }
    }

    /// Begins a session (acquires the pose stream and frame submission
    /// queue).
    pub fn begin_session(&self) -> XrSession {
        XrSession {
            pose_reader: self
                .ctx
                .switchboard
                .topic::<PoseEstimate>(streams::FAST_POSE)
                .expect("stream")
                .async_reader(),
            frame_writer: self
                .ctx
                .switchboard
                .topic::<RenderedFrame>(EYEBUFFER_STREAM)
                .expect("stream")
                .writer(),
            clock: self.ctx.clock.clone(),
            config: self.config,
            frame_index: 0,
        }
    }
}

/// An active XR session: the application's only handle onto the system.
pub struct XrSession {
    pose_reader: AsyncReader<PoseEstimate>,
    frame_writer: Writer<RenderedFrame>,
    clock: Arc<dyn illixr_core::Clock>,
    config: SystemConfig,
    frame_index: u64,
}

impl std::fmt::Debug for XrSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XrSession(frame {})", self.frame_index)
    }
}

impl XrSession {
    /// Blocks (conceptually) until the runtime wants the next frame and
    /// returns its pacing info.
    pub fn wait_frame(&mut self) -> XrFrameState {
        let now = self.clock.now();
        let period = self.config.display_period();
        XrFrameState { predicted_display_time: now + period, predicted_display_period: period }
    }

    /// Marks the start of rendering (a no-op marker, as in OpenXR).
    pub fn begin_frame(&mut self) {
        self.frame_index += 1;
    }

    /// Returns the predicted view poses for both eyes at `display_time`.
    ///
    /// Uses the freshest tracked pose, linearly extrapolated by its
    /// velocity to the display time — the pose prediction the paper's
    /// footnote 3 describes.
    pub fn locate_views(&self, display_time: Time) -> [XrView; 2] {
        let est = self.pose_reader.latest().map(|e| e.data).unwrap_or_else(PoseEstimate::identity);
        let dt = (display_time - est.timestamp).as_secs_f64();
        let predicted = Pose::new(est.pose.position + est.velocity * dt, est.pose.orientation);
        let eye = |offset: f64| XrView {
            pose: Pose::new(
                predicted.transform_point(Vec3::new(offset, 0.0, 0.0)),
                predicted.orientation,
            ),
            fov_y: self.config.fov_rad(),
        };
        [eye(-IPD / 2.0), eye(IPD / 2.0)]
    }

    /// Submits the rendered eye buffers for the frame.
    pub fn end_frame(
        &mut self,
        state: XrFrameState,
        left: Arc<RgbImage>,
        right: Arc<RgbImage>,
        render_pose: Pose,
    ) {
        let now = self.clock.now();
        let _ = state;
        self.frame_writer.put(RenderedFrame {
            render_pose: PoseEstimate { timestamp: now, pose: render_pose, velocity: Vec3::ZERO },
            submit_time: now,
            left,
            right,
        });
    }

    /// Frames submitted so far.
    pub fn frame_count(&self) -> u64 {
        self.frame_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_core::plugin::RuntimeBuilder;
    use illixr_core::SimClock;
    use illixr_math::Quat;

    fn setup() -> (PluginContext, SimClock) {
        let clock = SimClock::new();
        (RuntimeBuilder::new(Arc::new(clock.clone())).build(), clock)
    }

    #[test]
    fn frame_loop_submits_frames() {
        let (ctx, clock) = setup();
        let frames = ctx
            .switchboard
            .topic::<RenderedFrame>(EYEBUFFER_STREAM)
            .expect("stream")
            .sync_reader(8);
        let instance = XrInstance::create(ctx.clone(), SystemConfig::default());
        let mut session = instance.begin_session();
        clock.advance_to(Time::from_millis(100));
        let state = session.wait_frame();
        assert!(state.predicted_display_time > Time::from_millis(100));
        session.begin_frame();
        let views = session.locate_views(state.predicted_display_time);
        assert_eq!(views.len(), 2);
        let img = Arc::new(RgbImage::new(8, 8));
        session.end_frame(state, img.clone(), img, views[0].pose);
        assert_eq!(session.frame_count(), 1);
        assert_eq!(frames.drain().len(), 1);
    }

    #[test]
    fn locate_views_uses_latest_pose_with_prediction() {
        let (ctx, clock) = setup();
        let instance = XrInstance::create(ctx.clone(), SystemConfig::default());
        let session = instance.begin_session();
        ctx.switchboard.topic::<PoseEstimate>(streams::FAST_POSE).expect("stream").writer().put(
            PoseEstimate {
                timestamp: Time::from_millis(10),
                pose: Pose::new(Vec3::new(1.0, 0.0, 0.0), Quat::IDENTITY),
                velocity: Vec3::new(0.5, 0.0, 0.0),
            },
        );
        clock.advance_to(Time::from_millis(10));
        // Predicting 100 ms ahead moves the eye by 5 cm.
        let views = session.locate_views(Time::from_millis(110));
        let center = (views[0].pose.position + views[1].pose.position) / 2.0;
        assert!((center.x - 1.05).abs() < 1e-9, "center {center}");
        // Eyes separated by the IPD.
        let sep = (views[1].pose.position - views[0].pose.position).norm();
        assert!((sep - IPD).abs() < 1e-12);
    }

    #[test]
    fn views_identity_before_tracking() {
        let (ctx, _clock) = setup();
        let instance = XrInstance::create(ctx, SystemConfig::default());
        let session = instance.begin_session();
        let views = session.locate_views(Time::from_millis(50));
        let center = (views[0].pose.position + views[1].pose.position) / 2.0;
        assert!(center.norm() < 1e-12);
    }
}
