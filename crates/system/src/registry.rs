//! The standard plugin registry: every stock component implementation,
//! constructible by name.
//!
//! The paper's artifact selects plugin implementations per run from YAML
//! configs (`ILLIXR/configs/${app}.yaml`); this registry is the ILLIXR-rs
//! equivalent — a name → constructor table covering each Table II
//! component and its alternatives, so a pipeline can be assembled from a
//! list of strings.
//!
//! Naming convention: `component/variant`, e.g. `"vio/msckf-fast"`,
//! `"integrator/rk4"`, `"timewarp/translational"`.

use std::sync::Arc;

use illixr_audio::plugins::{AudioEncodingPlugin, AudioPlaybackPlugin};
use illixr_core::plugin::PluginRegistry;
use illixr_core::Time;
use illixr_eyetrack::plugin::EyeTrackingPlugin;
use illixr_reconstruction::plugin::SceneReconstructionPlugin;
use illixr_render::apps::Application;
use illixr_render::plugin::ApplicationPlugin;
use illixr_sensors::camera::{PinholeCamera, StereoRig};
use illixr_sensors::dataset::SyntheticDataset;
use illixr_sensors::imu::ImuNoise;
use illixr_sensors::plugins::{OfflineImuCameraPlugin, SyntheticCameraPlugin, SyntheticImuPlugin};
use illixr_sensors::trajectory::Trajectory;
use illixr_sensors::world::LandmarkWorld;
use illixr_vio::integrator::{ImuState, Scheme};
use illixr_vio::msckf::VioConfig;
use illixr_vio::plugins::{GroundTruthPosePlugin, ImuIntegratorPlugin, VioPlugin};
use illixr_visual::distortion::DistortionParams;
use illixr_visual::hologram::HologramConfig;
use illixr_visual::plugins::{HologramPlugin, TimewarpPlugin};
use illixr_visual::reprojection::ReprojectionConfig;

use crate::config::SystemConfig;

/// Shared inputs the stock constructors need (trajectory, world, rig,
/// initial state, …).
#[derive(Debug, Clone)]
pub struct RegistryEnvironment {
    /// Head trajectory driving the synthetic sensors.
    pub trajectory: Trajectory,
    /// The observed world.
    pub world: Arc<LandmarkWorld>,
    /// Stereo camera rig.
    pub rig: StereoRig,
    /// System parameters (rates, resolutions).
    pub system: SystemConfig,
    /// Workload application.
    pub app: Application,
    /// RNG seed.
    pub seed: u64,
}

impl RegistryEnvironment {
    /// A ready-to-use environment.
    pub fn new(app: Application, seed: u64) -> Self {
        Self {
            trajectory: Trajectory::walking(seed),
            world: Arc::new(LandmarkWorld::lab(seed)),
            rig: StereoRig::zed_mini(PinholeCamera::qvga()),
            system: SystemConfig::default(),
            app,
            seed,
        }
    }

    fn initial_state(&self) -> ImuState {
        ImuState::from_pose(
            Time::ZERO,
            self.trajectory.pose(Time::ZERO),
            self.trajectory.velocity(Time::ZERO),
        )
    }
}

/// Builds the registry of every stock plugin implementation.
///
/// Registered names:
///
/// | component | variants |
/// |---|---|
/// | camera | `camera/synthetic`, `camera_imu/offline` |
/// | imu | `imu/synthetic` |
/// | vio | `vio/msckf-fast`, `vio/msckf-accurate`, `vio/frame-to-frame` |
/// | integrator | `integrator/rk4`, `integrator/midpoint` |
/// | pose | `pose/ground-truth` |
/// | application | `application/scene` |
/// | timewarp | `timewarp/rotational`, `timewarp/translational` |
/// | hologram | `hologram/weighted-gs` |
/// | audio | `audio/encoding`, `audio/playback` |
/// | extras | `eye_tracking/ritnet-like`, `scene_reconstruction/surfel` |
pub fn standard_registry(env: &RegistryEnvironment) -> PluginRegistry {
    let mut reg = PluginRegistry::new();

    let e = env.clone();
    reg.register("camera/synthetic", move |_| {
        Box::new(SyntheticCameraPlugin::new(e.trajectory.clone(), e.world.clone(), e.rig))
    });
    let e = env.clone();
    reg.register("camera_imu/offline", move |_| {
        let ds = Arc::new(SyntheticDataset::vicon_room_like(e.seed, 10.0));
        Box::new(OfflineImuCameraPlugin::new(ds, e.rig))
    });
    let e = env.clone();
    reg.register("imu/synthetic", move |_| {
        Box::new(SyntheticImuPlugin::new(
            e.trajectory.clone(),
            ImuNoise::default(),
            e.system.imu_hz,
            e.seed,
        ))
    });
    let e = env.clone();
    reg.register("vio/msckf-fast", move |_| {
        Box::new(VioPlugin::new(VioConfig::fast(e.rig.camera), e.initial_state()))
    });
    let e = env.clone();
    reg.register("vio/msckf-accurate", move |_| {
        Box::new(VioPlugin::new(VioConfig::accurate(e.rig.camera), e.initial_state()))
    });
    let e = env.clone();
    reg.register("vio/frame-to-frame", move |_| {
        Box::new(illixr_vio::plugins::AlternativeVioPlugin::new(
            illixr_vio::alternative::FrameToFrameConfig::default(),
            e.rig,
            e.initial_state(),
        ))
    });
    let e = env.clone();
    reg.register("integrator/rk4", move |_| {
        Box::new(ImuIntegratorPlugin::new(e.initial_state()).with_scheme(Scheme::Rk4))
    });
    let e = env.clone();
    reg.register("integrator/midpoint", move |_| {
        Box::new(ImuIntegratorPlugin::new(e.initial_state()).with_scheme(Scheme::Midpoint))
    });
    let e = env.clone();
    reg.register("pose/ground-truth", move |_| {
        Box::new(GroundTruthPosePlugin::new(e.trajectory.clone()))
    });
    let e = env.clone();
    reg.register("application/scene", move |_| {
        Box::new(ApplicationPlugin::new(e.app, e.seed, e.system.eye_width, e.system.eye_height))
    });
    let e = env.clone();
    reg.register("timewarp/rotational", move |_| {
        Box::new(TimewarpPlugin::new(
            ReprojectionConfig::rotational(
                e.system.fov_rad(),
                e.system.eye_width as f64 / e.system.eye_height as f64,
            ),
            DistortionParams::default(),
        ))
    });
    let e = env.clone();
    reg.register("timewarp/translational", move |_| {
        Box::new(TimewarpPlugin::new(
            ReprojectionConfig::translational(
                e.system.fov_rad(),
                e.system.eye_width as f64 / e.system.eye_height as f64,
                2.0,
            ),
            DistortionParams::default(),
        ))
    });
    reg.register("hologram/weighted-gs", |_| {
        Box::new(HologramPlugin::new(HologramConfig::default()))
    });
    let e = env.clone();
    reg.register("audio/encoding", move |_| {
        Box::new(AudioEncodingPlugin::with_default_scene(e.seed))
    });
    reg.register("audio/playback", |_| Box::new(AudioPlaybackPlugin::new()));
    reg.register("eye_tracking/ritnet-like", |_| Box::new(EyeTrackingPlugin::new()));
    let e = env.clone();
    reg.register("scene_reconstruction/surfel", move |_| {
        Box::new(SceneReconstructionPlugin::new(e.world.clone(), e.rig, e.trajectory.clone()))
    });
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_core::plugin::RuntimeBuilder;
    use illixr_core::SimClock;
    use illixr_sensors::types::{streams, PoseEstimate};

    #[test]
    fn every_registered_plugin_builds_and_starts() {
        let env = RegistryEnvironment::new(Application::ArDemo, 3);
        let reg = standard_registry(&env);
        let names = reg.names();
        assert!(names.len() >= 16, "registry has {} entries", names.len());
        let ctx = RuntimeBuilder::new(Arc::new(SimClock::new())).build();
        for name in names {
            let mut plugin = reg.build(&name, &ctx).expect("registered name builds");
            plugin.start(&ctx);
            assert!(!plugin.name().is_empty());
        }
    }

    #[test]
    fn pipeline_assembled_from_names_produces_poses() {
        let env = RegistryEnvironment::new(Application::Platformer, 5);
        let reg = standard_registry(&env);
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        let mut pipeline: Vec<_> =
            ["camera/synthetic", "imu/synthetic", "vio/msckf-fast", "integrator/rk4"]
                .iter()
                .map(|n| reg.build(n, &ctx).expect("stock plugin"))
                .collect();
        for p in &mut pipeline {
            p.start(&ctx);
        }
        let fast = ctx
            .switchboard
            .topic::<PoseEstimate>(streams::FAST_POSE)
            .expect("stream")
            .async_reader();
        for k in 1..20u64 {
            clock.advance_to(Time::from_millis(k * 67));
            for p in &mut pipeline {
                p.iterate(&ctx);
            }
        }
        assert!(fast.latest().is_some(), "names-only pipeline produced no poses");
    }

    #[test]
    fn unknown_name_returns_none() {
        let env = RegistryEnvironment::new(Application::Sponza, 1);
        let reg = standard_registry(&env);
        let ctx = RuntimeBuilder::new(Arc::new(SimClock::new())).build();
        assert!(reg.build("vio/does-not-exist", &ctx).is_none());
    }
}
