//! The application renderer: a from-scratch software rasterizer plus the
//! four XR applications of paper §III-C.
//!
//! In ILLIXR the "application" is everything above the OpenXR API — a
//! Godot game engine running Sponza, Materials, Platformer or a custom
//! AR demo. It renders the *eye buffers* that the visual pipeline then
//! reprojects. This crate reproduces that role:
//!
//! * [`mesh`] — vertex/triangle meshes with procedural primitives;
//! * [`raster`] — an MVP-transform + z-buffered Gouraud rasterizer
//!   (the GPU-graphics stand-in);
//! * [`apps`] — the four applications, graded by rendering complexity
//!   exactly like the paper's (Sponza most intensive, AR Demo least),
//!   with Platformer carrying simple physics/collision animation;
//! * [`plugin`] — the `application` plugin: samples the latest
//!   `fast_pose` (asynchronous dependence, Fig 2), renders a stereo eye
//!   buffer and submits it on the `eyebuffer` stream.

pub mod apps;
pub mod mesh;
pub mod plugin;
pub mod raster;

pub use apps::{AppScene, Application};
pub use mesh::{Mesh, Vertex};
pub use plugin::{ApplicationPlugin, RenderedFrame, EYEBUFFER_STREAM};
pub use raster::Rasterizer;
