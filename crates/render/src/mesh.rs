//! Triangle meshes and procedural primitives.

use illixr_math::{Mat4, Vec3};

/// A mesh vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vertex {
    /// Object-space position.
    pub position: Vec3,
    /// Object-space normal.
    pub normal: Vec3,
    /// Base color (linear RGB).
    pub color: [f32; 3],
}

/// An indexed triangle mesh.
#[derive(Debug, Clone, Default)]
pub struct Mesh {
    /// Vertices.
    pub vertices: Vec<Vertex>,
    /// Triangle index triples.
    pub indices: Vec<[u32; 3]>,
}

impl Mesh {
    /// Creates an empty mesh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.indices.len()
    }

    /// Appends another mesh transformed by `transform`.
    pub fn append(&mut self, other: &Mesh, transform: &Mat4) {
        let base = self.vertices.len() as u32;
        for v in &other.vertices {
            self.vertices.push(Vertex {
                position: transform.transform_point(v.position),
                normal: transform.transform_vector(v.normal).normalized(),
                color: v.color,
            });
        }
        for idx in &other.indices {
            self.indices.push([idx[0] + base, idx[1] + base, idx[2] + base]);
        }
    }

    /// An axis-aligned box of the given half-extents.
    pub fn cuboid(half: Vec3, color: [f32; 3]) -> Self {
        let mut mesh = Self::new();
        let faces: [(Vec3, Vec3, Vec3); 6] = [
            (Vec3::UNIT_Z, Vec3::UNIT_X, Vec3::UNIT_Y),
            (-Vec3::UNIT_Z, -Vec3::UNIT_X, Vec3::UNIT_Y),
            (Vec3::UNIT_X, -Vec3::UNIT_Z, Vec3::UNIT_Y),
            (-Vec3::UNIT_X, Vec3::UNIT_Z, Vec3::UNIT_Y),
            (Vec3::UNIT_Y, Vec3::UNIT_X, -Vec3::UNIT_Z),
            (-Vec3::UNIT_Y, Vec3::UNIT_X, Vec3::UNIT_Z),
        ];
        for (n, u, v) in faces {
            let c = n.component_mul(half);
            let uu = u.component_mul(half);
            let vv = v.component_mul(half);
            let base = mesh.vertices.len() as u32;
            for (su, sv) in [(-1.0, -1.0), (1.0, -1.0), (1.0, 1.0), (-1.0, 1.0)] {
                mesh.vertices.push(Vertex { position: c + uu * su + vv * sv, normal: n, color });
            }
            mesh.indices.push([base, base + 1, base + 2]);
            mesh.indices.push([base, base + 2, base + 3]);
        }
        mesh
    }

    /// A UV sphere.
    pub fn sphere(radius: f64, rings: usize, sectors: usize, color: [f32; 3]) -> Self {
        assert!(rings >= 2 && sectors >= 3, "sphere tessellation too coarse");
        let mut mesh = Self::new();
        for r in 0..=rings {
            let phi = std::f64::consts::PI * r as f64 / rings as f64;
            for s in 0..=sectors {
                let theta = 2.0 * std::f64::consts::PI * s as f64 / sectors as f64;
                let n = Vec3::new(phi.sin() * theta.cos(), phi.cos(), phi.sin() * theta.sin());
                mesh.vertices.push(Vertex { position: n * radius, normal: n, color });
            }
        }
        let stride = (sectors + 1) as u32;
        for r in 0..rings as u32 {
            for s in 0..sectors as u32 {
                let a = r * stride + s;
                let b = a + stride;
                mesh.indices.push([a, b, a + 1]);
                mesh.indices.push([a + 1, b, b + 1]);
            }
        }
        mesh
    }

    /// A vertical cylinder (for columns).
    pub fn cylinder(radius: f64, height: f64, sectors: usize, color: [f32; 3]) -> Self {
        assert!(sectors >= 3, "cylinder tessellation too coarse");
        let mut mesh = Self::new();
        let half = height / 2.0;
        for s in 0..=sectors {
            let theta = 2.0 * std::f64::consts::PI * s as f64 / sectors as f64;
            let n = Vec3::new(theta.cos(), 0.0, theta.sin());
            mesh.vertices.push(Vertex {
                position: n * radius + Vec3::new(0.0, -half, 0.0),
                normal: n,
                color,
            });
            mesh.vertices.push(Vertex {
                position: n * radius + Vec3::new(0.0, half, 0.0),
                normal: n,
                color,
            });
        }
        for s in 0..sectors as u32 {
            let a = 2 * s;
            mesh.indices.push([a, a + 2, a + 1]);
            mesh.indices.push([a + 1, a + 2, a + 3]);
        }
        mesh
    }

    /// A horizontal plane (floor) at y=0 spanning ±half with a grid of
    /// `cells²` quads (so lighting interpolates nicely).
    pub fn floor(half: f64, cells: usize, color: [f32; 3]) -> Self {
        let cells = cells.max(1);
        let mut mesh = Self::new();
        let step = 2.0 * half / cells as f64;
        for i in 0..=cells {
            for j in 0..=cells {
                mesh.vertices.push(Vertex {
                    position: Vec3::new(-half + i as f64 * step, 0.0, -half + j as f64 * step),
                    normal: Vec3::UNIT_Y,
                    color,
                });
            }
        }
        let stride = (cells + 1) as u32;
        for i in 0..cells as u32 {
            for j in 0..cells as u32 {
                let a = i * stride + j;
                mesh.indices.push([a, a + 1, a + stride]);
                mesh.indices.push([a + 1, a + stride + 1, a + stride]);
            }
        }
        mesh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuboid_has_12_triangles() {
        let m = Mesh::cuboid(Vec3::splat(1.0), [1.0, 0.0, 0.0]);
        assert_eq!(m.triangle_count(), 12);
        assert_eq!(m.vertices.len(), 24);
    }

    #[test]
    fn sphere_vertices_on_radius() {
        let m = Mesh::sphere(2.0, 8, 12, [1.0; 3]);
        for v in &m.vertices {
            assert!((v.position.norm() - 2.0).abs() < 1e-9);
            assert!((v.normal.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn append_transforms_positions() {
        let mut a = Mesh::new();
        let b = Mesh::cuboid(Vec3::splat(0.5), [0.0, 1.0, 0.0]);
        let t = Mat4::from_rotation_translation(
            illixr_math::Mat3::identity(),
            Vec3::new(10.0, 0.0, 0.0),
        );
        a.append(&b, &t);
        assert_eq!(a.triangle_count(), 12);
        assert!(a.vertices.iter().all(|v| v.position.x > 9.0));
    }

    #[test]
    fn floor_triangle_count_scales_with_cells() {
        let m = Mesh::floor(5.0, 4, [0.5; 3]);
        assert_eq!(m.triangle_count(), 4 * 4 * 2);
    }

    #[test]
    fn indices_in_range() {
        for m in [
            Mesh::cuboid(Vec3::splat(1.0), [1.0; 3]),
            Mesh::sphere(1.0, 6, 8, [1.0; 3]),
            Mesh::cylinder(0.5, 2.0, 10, [1.0; 3]),
            Mesh::floor(1.0, 3, [1.0; 3]),
        ] {
            let n = m.vertices.len() as u32;
            assert!(m.indices.iter().all(|t| t.iter().all(|&i| i < n)));
        }
    }
}
