//! The four XR applications (paper §III-C), graded by rendering
//! complexity: **Sponza** (high-poly architectural atrium) > **Materials**
//! (PBR-style sphere gallery) > **Platformer** (maze with moving
//! "enemies", physics + collisions) > **AR Demo** (a few sparse virtual
//! objects with an animated ball).

use illixr_math::{Mat3, Mat4, Pose, Quat, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mesh::Mesh;
use crate::raster::{DrawStats, Rasterizer};

/// The four applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Application {
    /// The Sponza atrium — most graphics-intensive.
    Sponza,
    /// Material-test spheres.
    Materials,
    /// A platformer maze with moving enemies.
    Platformer,
    /// The custom sparse AR demo.
    ArDemo,
}

impl Application {
    /// All four, most to least demanding (the paper's plotting order).
    pub const ALL: [Application; 4] =
        [Application::Sponza, Application::Materials, Application::Platformer, Application::ArDemo];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Application::Sponza => "Sponza",
            Application::Materials => "Materials",
            Application::Platformer => "Platformer",
            Application::ArDemo => "AR Demo",
        }
    }

    /// Relative rendering cost vs. Platformer ≈ 1 (drives the timing
    /// model; ordering matches the paper's complexity grading).
    pub fn render_cost_factor(self) -> f64 {
        match self {
            Application::Sponza => 3.2,
            Application::Materials => 2.1,
            Application::Platformer => 1.0,
            Application::ArDemo => 0.35,
        }
    }

    /// Builds the application's scene.
    pub fn build(self, seed: u64) -> AppScene {
        AppScene::new(self, seed)
    }
}

impl std::fmt::Display for Application {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A movable object with toy physics (Platformer enemies, AR ball).
#[derive(Debug, Clone)]
struct Dynamic {
    mesh_index: usize,
    position: Vec3,
    velocity: Vec3,
    bounds: Vec3,
    bounce: bool,
}

/// An application's renderable scene with animation state.
#[derive(Debug)]
pub struct AppScene {
    app: Application,
    /// Static geometry, pre-merged into one mesh for cache-friendly draw.
    static_mesh: Mesh,
    /// Dynamic object meshes.
    dynamic_meshes: Vec<Mesh>,
    dynamics: Vec<Dynamic>,
    time: f64,
}

impl AppScene {
    /// Builds the scene for `app`.
    pub fn new(app: Application, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA55);
        let mut static_mesh = Mesh::new();
        let mut dynamic_meshes = Vec::new();
        let mut dynamics = Vec::new();
        match app {
            Application::Sponza => {
                // Atrium: floor, colonnades of fluted columns, arches
                // (spheres), upper gallery boxes — high triangle count.
                static_mesh.append(&Mesh::floor(10.0, 16, [0.55, 0.5, 0.45]), &Mat4::identity());
                for i in 0..12 {
                    for side in [-1.0f64, 1.0] {
                        let x = -8.0 + i as f64 * 1.5;
                        let col = Mesh::cylinder(0.25, 4.0, 32, [0.8, 0.75, 0.65]);
                        let t = translation(Vec3::new(x, 2.0, side * 3.0));
                        static_mesh.append(&col, &t);
                        let cap = Mesh::sphere(0.35, 12, 16, [0.75, 0.7, 0.6]);
                        static_mesh.append(&cap, &translation(Vec3::new(x, 4.2, side * 3.0)));
                    }
                }
                for i in 0..10 {
                    let gallery = Mesh::cuboid(Vec3::new(0.7, 0.4, 0.5), [0.6, 0.45, 0.35]);
                    static_mesh
                        .append(&gallery, &translation(Vec3::new(-7.0 + i as f64 * 1.6, 5.0, 0.0)));
                }
                // Arch bosses along the nave centerline.
                for i in 0..12 {
                    let arch = Mesh::sphere(0.3, 10, 12, [0.72, 0.68, 0.58]);
                    static_mesh
                        .append(&arch, &translation(Vec3::new(-8.0 + i as f64 * 1.5, 4.8, 0.0)));
                }
                // Hanging banners (thin boxes) for fill-rate load.
                for i in 0..6 {
                    let banner = Mesh::cuboid(Vec3::new(0.4, 1.2, 0.02), [0.7, 0.15, 0.1]);
                    static_mesh
                        .append(&banner, &translation(Vec3::new(-5.0 + i as f64 * 2.0, 3.0, 0.0)));
                }
            }
            Application::Materials => {
                static_mesh.append(&Mesh::floor(6.0, 8, [0.3, 0.3, 0.32]), &Mat4::identity());
                // A 4×3 gallery of high-tessellation spheres with varied
                // "materials" (base colors standing in for PBR variants).
                for i in 0..4 {
                    for j in 0..3 {
                        let color =
                            [0.3 + 0.2 * i as f32, 0.25 + 0.2 * j as f32, 0.9 - 0.2 * i as f32];
                        let sphere = Mesh::sphere(0.5, 16, 24, color);
                        let t = translation(Vec3::new(
                            -2.2 + i as f64 * 1.5,
                            1.0,
                            -1.5 + j as f64 * 1.5,
                        ));
                        static_mesh.append(&sphere, &t);
                    }
                }
            }
            Application::Platformer => {
                static_mesh.append(&Mesh::floor(8.0, 12, [0.35, 0.4, 0.3]), &Mat4::identity());
                // Maze walls.
                for i in 0..20 {
                    let w = Mesh::cuboid(Vec3::new(1.0, 0.6, 0.15), [0.5, 0.5, 0.55]);
                    let t = translation(Vec3::new(
                        rng.gen_range(-6.0..6.0),
                        0.6,
                        rng.gen_range(-6.0..6.0),
                    ));
                    let _ = i;
                    static_mesh.append(&w, &t);
                }
                // Crab-like enemies: animated boxes that patrol and
                // bounce off the maze bounds (the physics/collision
                // showcase).
                for _ in 0..6 {
                    let mesh = Mesh::cuboid(Vec3::new(0.3, 0.2, 0.25), [0.8, 0.2, 0.15]);
                    dynamic_meshes.push(mesh);
                    dynamics.push(Dynamic {
                        mesh_index: dynamic_meshes.len() - 1,
                        position: Vec3::new(
                            rng.gen_range(-5.0..5.0),
                            0.3,
                            rng.gen_range(-5.0..5.0),
                        ),
                        velocity: Vec3::new(
                            rng.gen_range(-1.0..1.0),
                            0.0,
                            rng.gen_range(-1.0..1.0),
                        ),
                        bounds: Vec3::new(6.0, 0.0, 6.0),
                        bounce: false,
                    });
                }
            }
            Application::ArDemo => {
                // Sparse: one table-like box, a couple of virtual
                // objects, and an animated bouncing ball.
                static_mesh.append(
                    &Mesh::cuboid(Vec3::new(0.8, 0.05, 0.5), [0.4, 0.3, 0.2]),
                    &translation(Vec3::new(0.0, 0.8, -1.5)),
                );
                static_mesh.append(
                    &Mesh::cuboid(Vec3::new(0.1, 0.1, 0.1), [0.2, 0.6, 0.9]),
                    &translation(Vec3::new(-0.3, 1.0, -1.5)),
                );
                let ball = Mesh::sphere(0.08, 10, 12, [0.95, 0.8, 0.1]);
                dynamic_meshes.push(ball);
                dynamics.push(Dynamic {
                    mesh_index: 0,
                    position: Vec3::new(0.3, 1.4, -1.5),
                    velocity: Vec3::new(0.0, 0.0, 0.0),
                    bounds: Vec3::new(0.0, 0.9, 0.0),
                    bounce: true,
                });
            }
        }
        Self { app, static_mesh, dynamic_meshes, dynamics, time: 0.0 }
    }

    /// Which application this scene belongs to.
    pub fn application(&self) -> Application {
        self.app
    }

    /// Total triangles in the scene.
    pub fn triangle_count(&self) -> usize {
        self.static_mesh.triangle_count()
            + self
                .dynamics
                .iter()
                .map(|d| self.dynamic_meshes[d.mesh_index].triangle_count())
                .sum::<usize>()
    }

    /// Advances animation/physics to absolute time `t` seconds.
    pub fn animate_to(&mut self, t: f64) {
        let dt = (t - self.time).max(0.0);
        self.time = t;
        if dt == 0.0 {
            return;
        }
        for d in &mut self.dynamics {
            if d.bounce {
                // Gravity ball bouncing on a plane at y = bounds.y.
                d.velocity.y -= 9.8 * dt;
                d.position += d.velocity * dt;
                if d.position.y < d.bounds.y {
                    d.position.y = d.bounds.y;
                    d.velocity.y = d.velocity.y.abs() * 0.9 + 0.35;
                }
            } else {
                // Patrol: integrate and reflect at the arena bounds
                // (collision response).
                d.position += d.velocity * dt;
                for axis in [0usize, 2] {
                    if d.position[axis].abs() > d.bounds[axis] {
                        d.position[axis] = d.position[axis].clamp(-d.bounds[axis], d.bounds[axis]);
                        d.velocity[axis] = -d.velocity[axis];
                    }
                }
            }
        }
    }

    /// Renders the scene from an eye pose into `raster`.
    ///
    /// Returns aggregate draw statistics (the work-factor source).
    pub fn render(
        &self,
        raster: &mut Rasterizer,
        eye_pose: &Pose,
        fov_y: f64,
        aspect: f64,
    ) -> DrawStats {
        let clear = if self.app == Application::ArDemo {
            [0.05, 0.05, 0.06] // AR: mostly passthrough-black
        } else {
            [0.35, 0.55, 0.8] // sky
        };
        raster.clear(clear);
        // The eye looks along its −Z axis (OpenGL convention); the view
        // matrix is simply the inverse of the eye pose.
        let proj = Mat4::perspective(fov_y, aspect, 0.1, 100.0);
        let view = eye_pose.to_matrix().rigid_inverse();
        let vp = proj * view;
        let mut total = DrawStats::default();
        let s = raster.draw(&self.static_mesh, &Mat4::identity(), &vp);
        accumulate(&mut total, s);
        for d in &self.dynamics {
            let model = translation(d.position) * rotation_y(self.time * 1.3);
            let s = raster.draw(&self.dynamic_meshes[d.mesh_index], &model, &vp);
            accumulate(&mut total, s);
        }
        total
    }

    /// Position of the first dynamic object (tests/demo telemetry).
    pub fn first_dynamic_position(&self) -> Option<Vec3> {
        self.dynamics.first().map(|d| d.position)
    }
}

fn accumulate(total: &mut DrawStats, s: DrawStats) {
    total.triangles_in += s.triangles_in;
    total.triangles_rasterized += s.triangles_rasterized;
    total.fragments += s.fragments;
}

fn translation(t: Vec3) -> Mat4 {
    Mat4::from_rotation_translation(Mat3::identity(), t)
}

fn rotation_y(angle: f64) -> Mat4 {
    Quat::from_axis_angle(Vec3::UNIT_Y, angle).to_rotation_matrix().to_homogeneous()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexity_ordering_matches_paper() {
        let counts: Vec<usize> =
            Application::ALL.iter().map(|a| a.build(1).triangle_count()).collect();
        assert!(counts[0] > counts[1], "Sponza > Materials: {counts:?}");
        assert!(counts[1] > counts[2], "Materials > Platformer: {counts:?}");
        assert!(counts[2] > counts[3], "Platformer > AR Demo: {counts:?}");
        // Sponza is "high polygon count": several thousand triangles.
        assert!(counts[0] > 5_000, "sponza tris {}", counts[0]);
        assert!(counts[3] < 500, "ar demo tris {}", counts[3]);
    }

    #[test]
    fn all_apps_render_fragments() {
        for app in Application::ALL {
            let mut scene = app.build(2);
            scene.animate_to(0.5);
            let mut r = Rasterizer::new(96, 96);
            // Eye at human height looking forward along -Z... our pose
            // convention: camera at origin looking -Z.
            let eye = Pose::new(Vec3::new(0.0, 1.6, 4.0), Quat::IDENTITY);
            let stats = scene.render(&mut r, &eye, 1.2, 1.0);
            // The AR demo is deliberately sparse; everything else fills
            // a good chunk of the 96×96 buffer.
            let floor = if app == Application::ArDemo { 50 } else { 500 };
            assert!(stats.fragments > floor, "{app} rendered {} fragments", stats.fragments);
        }
    }

    #[test]
    fn platformer_enemies_move_and_stay_in_bounds() {
        let mut scene = Application::Platformer.build(3);
        let p0 = scene.first_dynamic_position().unwrap();
        for k in 1..200 {
            scene.animate_to(k as f64 * 0.1);
            let p = scene.first_dynamic_position().unwrap();
            assert!(p.x.abs() <= 6.0 + 1e-9 && p.z.abs() <= 6.0 + 1e-9, "escaped: {p}");
        }
        let p1 = scene.first_dynamic_position().unwrap();
        assert!((p1 - p0).norm() > 0.1, "enemy never moved");
    }

    #[test]
    fn ar_ball_bounces() {
        let mut scene = Application::ArDemo.build(4);
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for k in 0..300 {
            scene.animate_to(k as f64 * 0.02);
            let y = scene.first_dynamic_position().unwrap().y;
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        assert!(min_y >= 0.9 - 1e-9, "ball fell through the table: {min_y}");
        assert!(max_y > min_y + 0.1, "ball never bounced");
    }

    #[test]
    fn render_view_depends_on_pose() {
        let mut scene = Application::Materials.build(5);
        scene.animate_to(0.0);
        let mut r1 = Rasterizer::new(64, 64);
        let mut r2 = Rasterizer::new(64, 64);
        scene.render(&mut r1, &Pose::new(Vec3::new(0.0, 1.0, 4.0), Quat::IDENTITY), 1.2, 1.0);
        scene.render(
            &mut r2,
            &Pose::new(Vec3::new(1.0, 1.0, 4.0), Quat::from_axis_angle(Vec3::UNIT_Y, 0.2)),
            1.2,
            1.0,
        );
        assert!(r1.framebuffer().mean_abs_diff(r2.framebuffer()) > 0.005);
    }
}
