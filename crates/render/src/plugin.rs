//! The `application` plugin: the game-engine stand-in.
//!
//! Samples the freshest `fast_pose` (asynchronous dependence, Fig 2),
//! renders left/right eye buffers and submits them on the `eyebuffer`
//! stream — exactly the role a Godot application plays above the OpenXR
//! interface in the paper. Reprojection later warps these buffers to an
//! even fresher pose.

use std::sync::Arc;

use illixr_core::plugin::{IterationReport, Plugin, PluginContext};
use illixr_core::switchboard::{AsyncReader, Writer};
use illixr_core::Time;
use illixr_image::RgbImage;
use illixr_math::Vec3;
use illixr_sensors::types::{streams, PoseEstimate};

use crate::apps::{AppScene, Application};
use crate::raster::Rasterizer;

/// Stream carrying submitted eye buffers.
pub const EYEBUFFER_STREAM: &str = "eyebuffer";

/// Interpupillary distance, meters.
pub const IPD: f64 = 0.064;

/// A stereo frame submitted by the application.
#[derive(Debug, Clone)]
pub struct RenderedFrame {
    /// The pose the frame was rendered with (its timestamp is the pose's
    /// sensor time — reprojection uses this to compute staleness).
    pub render_pose: PoseEstimate,
    /// When rendering finished (frame submission time).
    pub submit_time: Time,
    /// Left eye buffer.
    pub left: Arc<RgbImage>,
    /// Right eye buffer.
    pub right: Arc<RgbImage>,
}

/// The plugin.
pub struct ApplicationPlugin {
    scene: AppScene,
    raster: Rasterizer,
    eye_width: usize,
    eye_height: usize,
    fov_y: f64,
    pose_reader: Option<AsyncReader<PoseEstimate>>,
    frame_writer: Option<Writer<RenderedFrame>>,
    nominal_fragments: f64,
}

impl ApplicationPlugin {
    /// Creates the plugin for `app` with per-eye resolution
    /// `eye_width × eye_height`.
    pub fn new(app: Application, seed: u64, eye_width: usize, eye_height: usize) -> Self {
        Self {
            scene: app.build(seed),
            raster: Rasterizer::new(eye_width, eye_height),
            eye_width,
            eye_height,
            fov_y: 1.57, // ~90° (paper Table III field-of-view 90)
            pose_reader: None,
            frame_writer: None,
            nominal_fragments: (eye_width * eye_height) as f64,
        }
    }

    /// The application being rendered.
    pub fn application(&self) -> Application {
        self.scene.application()
    }
}

impl Plugin for ApplicationPlugin {
    fn name(&self) -> &str {
        "application"
    }

    fn start(&mut self, ctx: &PluginContext) {
        self.pose_reader = Some(
            ctx.switchboard
                .topic::<PoseEstimate>(streams::FAST_POSE)
                .expect("stream")
                .async_reader(),
        );
        self.frame_writer = Some(
            ctx.switchboard.topic::<RenderedFrame>(EYEBUFFER_STREAM).expect("stream").writer(),
        );
    }

    fn iterate(&mut self, ctx: &PluginContext) -> IterationReport {
        // Asynchronous pose read: freshest available estimate; render
        // with identity until tracking comes up.
        let pose_est = self
            .pose_reader
            .as_ref()
            .expect("start() must run before iterate()")
            .latest()
            .map(|e| e.data)
            .unwrap_or_else(PoseEstimate::identity);
        let now = ctx.clock.now();
        self.scene.animate_to(now.as_secs_f64());
        let aspect = self.eye_width as f64 / self.eye_height as f64;

        let render_eye = |offset: f64, raster: &mut Rasterizer| {
            let mut eye_pose = pose_est.pose;
            eye_pose.position = pose_est.pose.transform_point(Vec3::new(offset, 0.0, 0.0));
            self.scene.render(raster, &eye_pose, self.fov_y, aspect)
        };
        let stats_l = render_eye(-IPD / 2.0, &mut self.raster);
        let left = Arc::new(self.raster.take_framebuffer());
        let stats_r = render_eye(IPD / 2.0, &mut self.raster);
        let right = Arc::new(self.raster.take_framebuffer());

        self.frame_writer.as_ref().expect("start() must run before iterate()").put(RenderedFrame {
            render_pose: pose_est,
            submit_time: now,
            left,
            right,
        });
        // Work factor: scene-dependent base cost plus view-dependent
        // fill-rate variation.
        let frag_factor =
            (stats_l.fragments + stats_r.fragments) as f64 / (2.0 * self.nominal_fragments);
        let work = self.scene.application().render_cost_factor() * (0.7 + 0.6 * frag_factor);
        IterationReport::with_work(work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_core::plugin::RuntimeBuilder;
    use illixr_core::SimClock;
    use illixr_math::{Pose, Quat};

    #[test]
    fn renders_and_submits_stereo_frames() {
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        let frames = ctx
            .switchboard
            .topic::<RenderedFrame>(EYEBUFFER_STREAM)
            .expect("stream")
            .sync_reader(8);
        let pose_writer =
            ctx.switchboard.topic::<PoseEstimate>(streams::FAST_POSE).expect("stream").writer();
        let mut plugin = ApplicationPlugin::new(Application::ArDemo, 1, 64, 64);
        plugin.start(&ctx);
        pose_writer.put(PoseEstimate {
            timestamp: Time::from_millis(10),
            pose: Pose::new(Vec3::new(0.0, 1.6, 2.0), Quat::IDENTITY),
            velocity: Vec3::ZERO,
        });
        clock.advance_to(Time::from_millis(16));
        let report = plugin.iterate(&ctx);
        assert!(report.did_work);
        let frame = frames.try_recv().expect("frame submitted");
        assert_eq!(frame.render_pose.timestamp, Time::from_millis(10));
        assert_eq!(frame.submit_time, Time::from_millis(16));
        assert_eq!(frame.left.width(), 64);
        // Stereo parallax: the two eyes differ.
        assert!(frame.left.mean_abs_diff(&frame.right) > 1e-5);
    }

    #[test]
    fn renders_identity_pose_before_tracking() {
        let ctx = RuntimeBuilder::new(Arc::new(SimClock::new())).build();
        let frames = ctx
            .switchboard
            .topic::<RenderedFrame>(EYEBUFFER_STREAM)
            .expect("stream")
            .sync_reader(8);
        let mut plugin = ApplicationPlugin::new(Application::Platformer, 2, 48, 48);
        plugin.start(&ctx);
        plugin.iterate(&ctx);
        let frame = frames.try_recv().unwrap();
        assert_eq!(frame.render_pose.pose, Pose::IDENTITY);
    }

    #[test]
    fn sponza_costs_more_work_than_ardemo() {
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        let mut sponza = ApplicationPlugin::new(Application::Sponza, 3, 64, 64);
        let mut ar = ApplicationPlugin::new(Application::ArDemo, 3, 64, 64);
        sponza.start(&ctx);
        ar.start(&ctx);
        let ws = sponza.iterate(&ctx).work_factor;
        let wa = ar.iterate(&ctx).work_factor;
        assert!(ws > 2.0 * wa, "sponza {ws} vs ardemo {wa}");
    }
}
