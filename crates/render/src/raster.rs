//! A z-buffered Gouraud-shading software rasterizer — the GPU-graphics
//! substrate of the application and (indirectly) of reprojection's input.

use illixr_image::RgbImage;
use illixr_math::{Mat4, Vec3, Vec4};

use crate::mesh::Mesh;

/// Render statistics for one draw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrawStats {
    /// Triangles submitted.
    pub triangles_in: usize,
    /// Triangles surviving clipping/culling.
    pub triangles_rasterized: usize,
    /// Fragments shaded (z-test passes).
    pub fragments: usize,
}

/// The rasterizer: owns a color and depth buffer.
#[derive(Debug)]
pub struct Rasterizer {
    width: usize,
    height: usize,
    color: RgbImage,
    depth: Vec<f32>,
    /// Directional light (world space, normalized).
    pub light_dir: Vec3,
    /// Ambient light intensity.
    pub ambient: f32,
}

impl Rasterizer {
    /// Creates a rasterizer with the given framebuffer size.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "framebuffer must be non-empty");
        Self {
            width,
            height,
            color: RgbImage::new(width, height),
            depth: vec![f32::INFINITY; width * height],
            light_dir: Vec3::new(0.4, 1.0, 0.3).normalized(),
            ambient: 0.25,
        }
    }

    /// Clears color (to `clear_color`) and depth.
    pub fn clear(&mut self, clear_color: [f32; 3]) {
        for p in self.color.as_mut_slice() {
            *p = clear_color;
        }
        for d in &mut self.depth {
            *d = f32::INFINITY;
        }
    }

    /// The current color buffer.
    pub fn framebuffer(&self) -> &RgbImage {
        &self.color
    }

    /// Consumes the rasterizer's framebuffer (cheap handoff to the
    /// visual pipeline).
    pub fn take_framebuffer(&mut self) -> RgbImage {
        std::mem::replace(&mut self.color, RgbImage::new(self.width, self.height))
    }

    /// Draws a mesh with the given model and view-projection matrices.
    pub fn draw(&mut self, mesh: &Mesh, model: &Mat4, view_proj: &Mat4) -> DrawStats {
        let mvp = *view_proj * *model;
        let mut stats = DrawStats { triangles_in: mesh.triangle_count(), ..Default::default() };
        // Transform + shade vertices.
        struct Shaded {
            clip: Vec4,
            lit: [f32; 3],
        }
        let shaded: Vec<Shaded> = mesh
            .vertices
            .iter()
            .map(|v| {
                let clip = mvp * v.position.extend(1.0);
                let n_world = model.transform_vector(v.normal).normalized();
                let diffuse = n_world.dot(self.light_dir).max(0.0) as f32;
                let l = self.ambient + (1.0 - self.ambient) * diffuse;
                Shaded { clip, lit: [v.color[0] * l, v.color[1] * l, v.color[2] * l] }
            })
            .collect();
        for tri in &mesh.indices {
            let (a, b, c) =
                (&shaded[tri[0] as usize], &shaded[tri[1] as usize], &shaded[tri[2] as usize]);
            // Near-plane reject (no clipping — scenes keep geometry in
            // front of the camera).
            if a.clip.w <= 1e-6 || b.clip.w <= 1e-6 || c.clip.w <= 1e-6 {
                continue;
            }
            let pa = self.to_screen(a.clip);
            let pb = self.to_screen(b.clip);
            let pc = self.to_screen(c.clip);
            // Back-face cull (counter-clockwise front faces in screen
            // space, y down → negative area is front).
            let area = (pb.0 - pa.0) * (pc.1 - pa.1) - (pb.1 - pa.1) * (pc.0 - pa.0);
            if area.abs() < 1e-9 {
                continue;
            }
            stats.triangles_rasterized += 1;
            stats.fragments += self.fill_triangle((pa, a.lit), (pb, b.lit), (pc, c.lit), area);
        }
        stats
    }

    /// Clip → screen: returns `(x, y, depth)`.
    fn to_screen(&self, clip: Vec4) -> (f64, f64, f64) {
        let ndc = clip.project();
        ((ndc.x + 1.0) * 0.5 * self.width as f64, (1.0 - ndc.y) * 0.5 * self.height as f64, ndc.z)
    }

    #[allow(clippy::type_complexity)]
    fn fill_triangle(
        &mut self,
        (pa, ca): ((f64, f64, f64), [f32; 3]),
        (pb, cb): ((f64, f64, f64), [f32; 3]),
        (pc, cc): ((f64, f64, f64), [f32; 3]),
        area: f64,
    ) -> usize {
        let min_x = pa.0.min(pb.0).min(pc.0).floor().max(0.0) as usize;
        let max_x = (pa.0.max(pb.0).max(pc.0).ceil() as usize).min(self.width.saturating_sub(1));
        let min_y = pa.1.min(pb.1).min(pc.1).floor().max(0.0) as usize;
        let max_y = (pa.1.max(pb.1).max(pc.1).ceil() as usize).min(self.height.saturating_sub(1));
        let inv_area = 1.0 / area;
        let mut fragments = 0;
        for y in min_y..=max_y {
            for x in min_x..=max_x {
                let px = x as f64 + 0.5;
                let py = y as f64 + 0.5;
                // Barycentric coordinates.
                let w0 = ((pb.0 - px) * (pc.1 - py) - (pb.1 - py) * (pc.0 - px)) * inv_area;
                let w1 = ((pc.0 - px) * (pa.1 - py) - (pc.1 - py) * (pa.0 - px)) * inv_area;
                let w2 = 1.0 - w0 - w1;
                if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                    continue;
                }
                let z = (w0 * pa.2 + w1 * pb.2 + w2 * pc.2) as f32;
                let idx = y * self.width + x;
                if z >= self.depth[idx] {
                    continue;
                }
                self.depth[idx] = z;
                let color = [
                    (w0 as f32 * ca[0] + w1 as f32 * cb[0] + w2 as f32 * cc[0]).clamp(0.0, 1.0),
                    (w0 as f32 * ca[1] + w1 as f32 * cb[1] + w2 as f32 * cc[1]).clamp(0.0, 1.0),
                    (w0 as f32 * ca[2] + w1 as f32 * cb[2] + w2 as f32 * cc[2]).clamp(0.0, 1.0),
                ];
                self.color.set(x, y, color);
                fragments += 1;
            }
        }
        fragments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Mesh;
    use illixr_math::Mat4;

    fn view_proj() -> Mat4 {
        let proj = Mat4::perspective(std::f64::consts::FRAC_PI_2, 1.0, 0.1, 100.0);
        let view = Mat4::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::UNIT_Y);
        proj * view
    }

    #[test]
    fn cube_renders_pixels() {
        let mut r = Rasterizer::new(64, 64);
        r.clear([0.0; 3]);
        let cube = Mesh::cuboid(Vec3::splat(1.0), [1.0, 0.0, 0.0]);
        let stats = r.draw(&cube, &Mat4::identity(), &view_proj());
        assert!(stats.triangles_rasterized > 0);
        assert!(stats.fragments > 50);
        // Center pixel shows the red cube.
        let c = r.framebuffer().get(32, 32);
        assert!(c[0] > 0.1 && c[1] == 0.0, "center {c:?}");
    }

    #[test]
    fn depth_test_orders_objects() {
        let mut r = Rasterizer::new(64, 64);
        r.clear([0.0; 3]);
        let vp = view_proj();
        let far_cube = Mesh::cuboid(Vec3::splat(1.5), [0.0, 1.0, 0.0]);
        let near_cube = Mesh::cuboid(Vec3::splat(0.5), [1.0, 0.0, 0.0]);
        // Draw near first, then far: far must not overwrite the center.
        let near_model = Mat4::from_rotation_translation(
            illixr_math::Mat3::identity(),
            Vec3::new(0.0, 0.0, 2.0),
        );
        r.draw(&near_cube, &near_model, &vp);
        r.draw(&far_cube, &Mat4::identity(), &vp);
        let c = r.framebuffer().get(32, 32);
        assert!(c[0] > c[1], "near (red) cube should win the z-test: {c:?}");
    }

    #[test]
    fn geometry_behind_camera_is_rejected() {
        let mut r = Rasterizer::new(32, 32);
        r.clear([0.0; 3]);
        let cube = Mesh::cuboid(Vec3::splat(1.0), [1.0; 3]);
        let behind = Mat4::from_rotation_translation(
            illixr_math::Mat3::identity(),
            Vec3::new(0.0, 0.0, 20.0),
        );
        let stats = r.draw(&cube, &behind, &view_proj());
        assert_eq!(stats.fragments, 0);
    }

    #[test]
    fn lighting_darkens_faces_away_from_light() {
        let mut r = Rasterizer::new(64, 64);
        r.light_dir = Vec3::UNIT_Y; // light from above
        r.clear([0.0; 3]);
        let cube = Mesh::cuboid(Vec3::splat(1.0), [1.0, 1.0, 1.0]);
        // Tilt the camera to see the top face vs a side face.
        let proj = Mat4::perspective(std::f64::consts::FRAC_PI_2, 1.0, 0.1, 100.0);
        let view = Mat4::look_at(Vec3::new(3.0, 3.0, 3.0), Vec3::ZERO, Vec3::UNIT_Y);
        r.draw(&cube, &Mat4::identity(), &(proj * view));
        // Sample many pixels; brightest should be ~1.0 (top face), and
        // there must be darker lit side faces too.
        let pixels: Vec<f32> =
            r.framebuffer().as_slice().iter().map(|p| p[0]).filter(|&v| v > 0.0).collect();
        let max = pixels.iter().cloned().fold(0.0f32, f32::max);
        let min = pixels.iter().cloned().fold(1.0f32, f32::min);
        assert!(max > 0.9, "max {max}");
        assert!(min < 0.5, "min {min}");
    }

    #[test]
    fn clear_resets_buffers() {
        let mut r = Rasterizer::new(16, 16);
        r.clear([0.0; 3]);
        let cube = Mesh::cuboid(Vec3::splat(1.0), [1.0; 3]);
        r.draw(&cube, &Mat4::identity(), &view_proj());
        r.clear([0.2, 0.3, 0.4]);
        assert_eq!(r.framebuffer().get(8, 8), [0.2, 0.3, 0.4]);
    }
}
