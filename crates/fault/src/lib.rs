//! Deterministic fault injection for the ILLIXR testbed.
//!
//! The paper's evaluation (§IV) measures the happy path; real XR
//! deployments see sensor dropouts, network outages and component
//! crashes, and the QoE question is how the *system* — admission
//! control, scheduling, degradation — absorbs them. This crate supplies
//! the controlled-perturbation half of that experiment: a seeded
//! [`FaultPlan`] describing exactly which faults strike which targets
//! and when, such that two runs with the same plan observe bit-identical
//! fault sequences.
//!
//! * **[`plan`]** — [`FaultPlan`], [`FaultWindow`], [`FaultKind`]:
//!   scheduled fault windows plus intensity-scaled stochastic faults,
//!   all decisions stateless hashes of `(seed, kind, target, event)`.
//! * **[`views`]** — [`SensorFaults`] / [`LinkFaults`]: the domain
//!   queries the wiring points ask (drop this frame? outage until
//!   when? duplicate this message?).
//! * **[`rng`]** — the stateless SplitMix64-mixer underneath.
//!
//! Like `illixr-obs` and `illixr-sched`, this crate sits *below*
//! `illixr-core`: it knows nothing about plugins, switchboards or
//! `Time` — all timestamps are raw `u64` nanoseconds — so the runtime,
//! the offload bridges and the multi-session server can all consume
//! one fault vocabulary.

pub mod plan;
pub mod rng;
pub mod views;

pub use plan::{FaultKind, FaultPlan, FaultWindow, StochasticRates, NS_PER_SEC};
pub use views::{LinkFaults, SensorFaults};
