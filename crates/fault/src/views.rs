//! Typed per-target views over a [`FaultPlan`].
//!
//! Wiring points don't want to reason about windows and trials; they
//! ask domain questions — "is this frame dropped?", "what is the link's
//! jitter multiplier right now?". [`SensorFaults`] and [`LinkFaults`]
//! are cheap borrowed views answering those questions for one named
//! target, combining scheduled windows with the stochastic trials.

use crate::plan::{FaultKind, FaultPlan};

/// Sensor-side fault queries for one target (e.g. `"camera"`, `"imu"`).
#[derive(Clone, Copy, Debug)]
pub struct SensorFaults<'a> {
    plan: &'a FaultPlan,
    target: &'a str,
}

impl<'a> SensorFaults<'a> {
    pub(crate) fn new(plan: &'a FaultPlan, target: &'a str) -> Self {
        Self { plan, target }
    }

    /// True when camera frame `seq` at `now_ns` must be dropped
    /// (scheduled `CameraDrop` window or stochastic drop).
    pub fn drop_frame(&self, now_ns: u64, seq: u64) -> bool {
        self.plan.active_window(FaultKind::CameraDrop, self.target, now_ns).is_some()
            || self.plan.trial(
                FaultKind::CameraDrop,
                self.target,
                seq,
                self.plan.rates().camera_drop,
            )
    }

    /// True while the camera is frozen (must republish its last frame).
    pub fn frozen(&self, now_ns: u64) -> bool {
        self.plan.active_window(FaultKind::CameraFreeze, self.target, now_ns).is_some()
    }

    /// True when IMU sample `seq` at `now_ns` is swallowed.
    pub fn imu_gap(&self, now_ns: u64, seq: u64) -> bool {
        self.plan.active_window(FaultKind::ImuGap, self.target, now_ns).is_some()
            || self.plan.trial(FaultKind::ImuGap, self.target, seq, self.plan.rates().imu_gap)
    }

    /// Accelerometer bias to add at `now_ns` (m/s²; 0 outside any
    /// `ImuBiasJump` window).
    pub fn bias(&self, now_ns: u64) -> f64 {
        self.plan
            .active_window(FaultKind::ImuBiasJump, self.target, now_ns)
            .map_or(0.0, |w| w.magnitude)
    }

    /// Extra zero-mean noise amplitude for sample `seq` at `now_ns`:
    /// `(scale − 1) · perturbation`, where the scale comes from an
    /// active `ImuNoiseBurst` window (0 outside one).
    pub fn noise(&self, now_ns: u64, seq: u64) -> f64 {
        match self.plan.active_window(FaultKind::ImuNoiseBurst, self.target, now_ns) {
            Some(w) if w.magnitude > 1.0 => {
                (w.magnitude - 1.0) * self.plan.perturb(FaultKind::ImuNoiseBurst, self.target, seq)
            }
            _ => 0.0,
        }
    }
}

/// Link-side fault queries for one target (e.g. `"vio@remote"`,
/// `"server_link"`).
#[derive(Clone, Copy, Debug)]
pub struct LinkFaults<'a> {
    plan: &'a FaultPlan,
    target: &'a str,
}

impl<'a> LinkFaults<'a> {
    pub(crate) fn new(plan: &'a FaultPlan, target: &'a str) -> Self {
        Self { plan, target }
    }

    /// When the outage covering `now_ns` ends, or `None` while the link
    /// is up. Deliveries stall until the returned instant.
    pub fn outage_until(&self, now_ns: u64) -> Option<u64> {
        self.plan.active_window(FaultKind::LinkOutage, self.target, now_ns).map(|w| w.end_ns)
    }

    /// Jitter/latency multiplier at `now_ns` (1.0 while nominal).
    pub fn jitter_scale(&self, now_ns: u64) -> f64 {
        self.plan
            .active_window(FaultKind::LinkJitterSpike, self.target, now_ns)
            .map_or(1.0, |w| w.magnitude.max(1.0))
    }

    /// True when message `seq` is delivered twice.
    pub fn duplicate(&self, seq: u64) -> bool {
        self.plan.trial(
            FaultKind::LinkDuplicate,
            self.target,
            seq,
            self.plan.rates().link_duplicate,
        )
    }

    /// True when message `seq` is delivered after its successor.
    pub fn reorder(&self, seq: u64) -> bool {
        self.plan.trial(FaultKind::LinkReorder, self.target, seq, self.plan.rates().link_reorder)
    }
}

impl FaultPlan {
    /// Sensor-fault view for `target`.
    pub fn sensor<'a>(&'a self, target: &'a str) -> SensorFaults<'a> {
        SensorFaults::new(self, target)
    }

    /// Link-fault view for `target`.
    pub fn link<'a>(&'a self, target: &'a str) -> LinkFaults<'a> {
        LinkFaults::new(self, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultWindow, NS_PER_SEC};

    #[test]
    fn quiet_views_are_no_ops() {
        let p = FaultPlan::quiet();
        let s = p.sensor("camera");
        assert!(!s.drop_frame(0, 0) && !s.frozen(0) && !s.imu_gap(0, 0));
        assert_eq!(s.bias(0), 0.0);
        assert_eq!(s.noise(0, 0), 0.0);
        let l = p.link("uplink");
        assert!(l.outage_until(0).is_none());
        assert_eq!(l.jitter_scale(0), 1.0);
        assert!(!l.duplicate(0) && !l.reorder(0));
    }

    #[test]
    fn scheduled_views_fire_inside_their_windows() {
        let p = FaultPlan::scheduled(4, 1.0, 10 * NS_PER_SEC);
        let outage =
            p.windows().iter().find(|w| w.kind == FaultKind::LinkOutage).expect("outage window");
        let mid = (outage.start_ns + outage.end_ns) / 2;
        assert_eq!(p.link("any_link").outage_until(mid), Some(outage.end_ns));
        assert!(p.link("any_link").outage_until(outage.end_ns).is_none());

        let freeze =
            p.windows().iter().find(|w| w.kind == FaultKind::CameraFreeze).expect("freeze window");
        assert!(p.sensor("camera").frozen(freeze.start_ns));
        assert!(!p.sensor("imu").frozen(freeze.start_ns), "freeze targets the camera only");

        let bias =
            p.windows().iter().find(|w| w.kind == FaultKind::ImuBiasJump).expect("bias window");
        assert!(p.sensor("imu").bias((bias.start_ns + bias.end_ns) / 2) > 0.0);
        assert_eq!(p.sensor("imu").bias(bias.end_ns), 0.0);
    }

    #[test]
    fn noise_burst_is_zero_mean_and_bounded() {
        let p = FaultPlan::new(9).with_window(FaultWindow::new(
            FaultKind::ImuNoiseBurst,
            "imu",
            0,
            1000,
            3.0,
        ));
        let s = p.sensor("imu");
        let samples: Vec<f64> = (0..2000).map(|seq| s.noise(10, seq)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.1, "noise mean {mean}");
        assert!(samples.iter().all(|v| v.abs() <= 2.0), "|noise| ≤ magnitude − 1");
        assert!(samples.iter().any(|v| v.abs() > 0.5), "noise actually perturbs");
    }

    #[test]
    fn stochastic_link_faults_are_per_seq_deterministic() {
        let p = FaultPlan::scheduled(21, 1.0, NS_PER_SEC);
        let l = p.link("vio@remote");
        let dup: Vec<u64> = (0..2000).filter(|&s| l.duplicate(s)).collect();
        let dup2: Vec<u64> = (0..2000).filter(|&s| l.duplicate(s)).collect();
        assert_eq!(dup, dup2);
        assert!(!dup.is_empty(), "4% duplicate rate over 2000 messages must fire");
        // Different targets draw from different streams.
        let other: Vec<u64> = (0..2000).filter(|&s| p.link("server_link").duplicate(s)).collect();
        assert_ne!(dup, other);
    }
}
