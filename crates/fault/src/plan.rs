//! The fault plan: *what* goes wrong, *where*, and *when*.
//!
//! A [`FaultPlan`] combines two deterministic fault sources:
//!
//! * **Scheduled windows** — explicit `[start, end)` intervals during
//!   which one [`FaultKind`] afflicts one target (a plugin, stream or
//!   link name). Windows model macro events: a Wi-Fi outage, a camera
//!   freezing, a component crashing at a known instant.
//! * **Stochastic faults** — per-event Bernoulli trials whose
//!   probabilities scale with the plan's `intensity`. Trials are
//!   stateless hashes of `(seed, kind, target, event index)` (see
//!   [`crate::rng`]), so the same plan produces the same faults
//!   regardless of query order or count.
//!
//! A plan with zero intensity and no windows is a guaranteed no-op:
//! every query returns the no-fault answer, which is what keeps the
//! default runtime path bit-identical to a build without fault
//! injection at all.

use crate::rng;

/// One second in the plan's raw-nanosecond time base.
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// The kinds of fault the plan can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A camera frame is dropped (never published).
    CameraDrop,
    /// The camera repeats its last frame instead of a fresh one.
    CameraFreeze,
    /// An IMU sample is swallowed (sensor gap).
    ImuGap,
    /// A constant accelerometer bias is added (magnitude = m/s²).
    ImuBiasJump,
    /// Sensor noise is amplified (magnitude = extra deviation scale).
    ImuNoiseBurst,
    /// A link delivers nothing until the window closes.
    LinkOutage,
    /// Link jitter/latency is multiplied by the magnitude.
    LinkJitterSpike,
    /// A link message is delivered twice.
    LinkDuplicate,
    /// A link message is delivered after its successor.
    LinkReorder,
    /// A plugin panics at its next iteration inside the window.
    PluginCrash,
    /// An engine shard worker dies at its next batch inside the window
    /// (target `shard/{N}`, or empty for every shard). The sessions on
    /// that shard are quarantined until failover recovers them.
    WorkerCrash,
}

impl FaultKind {
    /// Stable label for telemetry tracks and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::CameraDrop => "camera_drop",
            FaultKind::CameraFreeze => "camera_freeze",
            FaultKind::ImuGap => "imu_gap",
            FaultKind::ImuBiasJump => "imu_bias_jump",
            FaultKind::ImuNoiseBurst => "imu_noise_burst",
            FaultKind::LinkOutage => "link_outage",
            FaultKind::LinkJitterSpike => "link_jitter_spike",
            FaultKind::LinkDuplicate => "link_duplicate",
            FaultKind::LinkReorder => "link_reorder",
            FaultKind::PluginCrash => "plugin_crash",
            FaultKind::WorkerCrash => "worker_crash",
        }
    }

    fn salt(self) -> u64 {
        // Distinct fixed salts keep the per-kind hash streams disjoint.
        match self {
            FaultKind::CameraDrop => 0xCAD0,
            FaultKind::CameraFreeze => 0xCAF1,
            FaultKind::ImuGap => 0x16A2,
            FaultKind::ImuBiasJump => 0x16B3,
            FaultKind::ImuNoiseBurst => 0x16C4,
            FaultKind::LinkOutage => 0x7105,
            FaultKind::LinkJitterSpike => 0x7116,
            FaultKind::LinkDuplicate => 0x7127,
            FaultKind::LinkReorder => 0x7138,
            FaultKind::PluginCrash => 0xC0A9,
            FaultKind::WorkerCrash => 0x3CAF,
        }
    }
}

/// A scheduled fault: `kind` afflicts `target` during `[start, end)`.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultWindow {
    /// What goes wrong.
    pub kind: FaultKind,
    /// The afflicted plugin/stream/link name; empty matches any target.
    pub target: String,
    /// Window start, inclusive, nanoseconds.
    pub start_ns: u64,
    /// Window end, exclusive, nanoseconds.
    pub end_ns: u64,
    /// Kind-specific strength (bias in m/s², jitter multiplier,
    /// per-event probability, …). Windows with no natural strength
    /// use 1.0.
    pub magnitude: f64,
}

impl FaultWindow {
    /// Builds a window.
    pub fn new(kind: FaultKind, target: &str, start_ns: u64, end_ns: u64, magnitude: f64) -> Self {
        Self { kind, target: target.to_owned(), start_ns, end_ns, magnitude }
    }

    /// True while `now_ns` is inside the window.
    pub fn active(&self, now_ns: u64) -> bool {
        self.start_ns <= now_ns && now_ns < self.end_ns
    }

    /// True when the window applies to `target` (empty = wildcard).
    pub fn applies_to(&self, target: &str) -> bool {
        self.target.is_empty() || self.target == target
    }
}

/// Per-event fault probabilities, all scaled by the plan intensity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StochasticRates {
    /// Probability a camera frame is dropped.
    pub camera_drop: f64,
    /// Probability an IMU sample is swallowed.
    pub imu_gap: f64,
    /// Probability a link message is duplicated.
    pub link_duplicate: f64,
    /// Probability a link message is reordered past its successor.
    pub link_reorder: f64,
}

impl StochasticRates {
    /// All-zero rates: no stochastic faults.
    pub const ZERO: Self =
        Self { camera_drop: 0.0, imu_gap: 0.0, link_duplicate: 0.0, link_reorder: 0.0 };

    /// The canonical rates at intensity 1.0, used by
    /// [`FaultPlan::scheduled`].
    pub fn nominal(intensity: f64) -> Self {
        Self {
            camera_drop: 0.15 * intensity,
            imu_gap: 0.05 * intensity,
            link_duplicate: 0.04 * intensity,
            link_reorder: 0.04 * intensity,
        }
    }
}

/// A complete, deterministic fault schedule for one run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    intensity: f64,
    rates: StochasticRates,
    windows: Vec<FaultWindow>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::quiet()
    }
}

impl FaultPlan {
    /// The no-op plan: zero intensity, no windows. Every query returns
    /// the no-fault answer.
    pub fn quiet() -> Self {
        Self { seed: 0, intensity: 0.0, rates: StochasticRates::ZERO, windows: Vec::new() }
    }

    /// An empty plan seeded for stochastic faults; add windows and
    /// rates with the builder methods.
    pub fn new(seed: u64) -> Self {
        Self { seed, intensity: 1.0, rates: StochasticRates::ZERO, windows: Vec::new() }
    }

    /// Adds a scheduled window.
    pub fn with_window(mut self, window: FaultWindow) -> Self {
        self.windows.push(window);
        self
    }

    /// Sets the per-event stochastic rates.
    pub fn with_rates(mut self, rates: StochasticRates) -> Self {
        self.rates = rates;
        self
    }

    /// Scales how aggressively the stochastic faults fire; windows are
    /// unaffected. An intensity of exactly 0 disables stochastic
    /// faults entirely.
    pub fn with_intensity(mut self, intensity: f64) -> Self {
        self.intensity = intensity.max(0.0);
        self
    }

    /// The canonical stress plan for a run of `duration_ns`: nominal
    /// stochastic rates scaled by `intensity`, a mid-run link outage, a
    /// camera freeze, an IMU bias jump with a noise burst, a link
    /// jitter spike, a `vio` crash and an `imu_integrator` crash — every
    /// window placed at a fixed fraction of the run so plans for equal
    /// `(seed, intensity, duration)` are identical. Intensity ≤ 0
    /// returns the quiet plan.
    ///
    /// The two crash targets probe different failure surfaces: `vio` is
    /// the heavyweight plugin (its death degrades pose *accuracy*),
    /// while `imu_integrator` sits mid-chain in the motion-to-photon
    /// path (its death freezes the chain's published origin, so an
    /// unsupervised runtime misses every subsequent chain deadline).
    pub fn scheduled(seed: u64, intensity: f64, duration_ns: u64) -> Self {
        if intensity <= 0.0 {
            return Self::quiet();
        }
        let at = |frac: f64| (duration_ns as f64 * frac) as u64;
        let span = |from: f64, width: f64| (at(from), at(from) + (at(width).max(1)));
        let (o_start, o_end) = span(0.30, 0.04 * intensity.min(2.0));
        let (f_start, f_end) = span(0.50, 0.03 * intensity.min(2.0));
        let (b_start, b_end) = span(0.60, 0.10);
        let (n_start, n_end) = span(0.40, 0.05);
        let (j_start, j_end) = span(0.20, 0.08);
        let crash_at = at(0.35);
        let integ_crash_at = at(0.45);
        Self {
            seed,
            intensity,
            rates: StochasticRates::nominal(intensity),
            windows: vec![
                FaultWindow::new(FaultKind::LinkOutage, "", o_start, o_end, 1.0),
                FaultWindow::new(FaultKind::CameraFreeze, "camera", f_start, f_end, 1.0),
                FaultWindow::new(FaultKind::ImuBiasJump, "imu", b_start, b_end, 0.25 * intensity),
                FaultWindow::new(
                    FaultKind::ImuNoiseBurst,
                    "imu",
                    n_start,
                    n_end,
                    1.0 + 3.0 * intensity,
                ),
                FaultWindow::new(
                    FaultKind::LinkJitterSpike,
                    "",
                    j_start,
                    j_end,
                    1.0 + 5.0 * intensity,
                ),
                FaultWindow::new(FaultKind::PluginCrash, "vio", crash_at, crash_at + 1, 1.0),
                FaultWindow::new(
                    FaultKind::PluginCrash,
                    "imu_integrator",
                    integ_crash_at,
                    integ_crash_at + 1,
                    1.0,
                ),
            ],
        }
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The stochastic-fault intensity.
    pub fn intensity(&self) -> f64 {
        self.intensity
    }

    /// The scheduled windows.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// The effective stochastic rates (already intensity-independent:
    /// scaling happens at trial time).
    pub fn rates(&self) -> &StochasticRates {
        &self.rates
    }

    /// True when the plan can never inject anything — the fast path the
    /// runtime checks before consulting any fault logic.
    pub fn is_quiet(&self) -> bool {
        self.windows.is_empty() && (self.intensity == 0.0 || self.rates == StochasticRates::ZERO)
    }

    /// The first active window of `kind` for `target` at `now_ns`.
    pub fn active_window(
        &self,
        kind: FaultKind,
        target: &str,
        now_ns: u64,
    ) -> Option<&FaultWindow> {
        self.windows.iter().find(|w| w.kind == kind && w.applies_to(target) && w.active(now_ns))
    }

    /// A deterministic Bernoulli trial for event `seq` of `kind` at
    /// `target`, with probability `p · intensity` clamped to `[0, 1]`.
    pub(crate) fn trial(&self, kind: FaultKind, target: &str, seq: u64, p: f64) -> bool {
        if self.intensity <= 0.0 || p <= 0.0 {
            return false;
        }
        let key = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ kind.salt().rotate_left(17)
            ^ rng::hash_str(target)
            ^ rng::mix(seq);
        rng::chance(key, (p * self.intensity).min(1.0))
    }

    /// A deterministic bounded perturbation in `[-1, 1]` for event
    /// `seq` of `kind` at `target` (noise bursts use it).
    pub(crate) fn perturb(&self, kind: FaultKind, target: &str, seq: u64) -> f64 {
        let key = self.seed ^ kind.salt().rotate_left(29) ^ rng::hash_str(target) ^ rng::mix(seq);
        rng::signed_unit(key)
    }

    /// How many [`FaultKind::PluginCrash`] windows for `plugin` have
    /// opened by `now_ns`. This is the counting primitive behind
    /// [`FaultPlan::crash_due`]; use that for the fire/don't-fire
    /// decision.
    pub fn crash_count_through(&self, plugin: &str, now_ns: u64) -> u32 {
        self.windows
            .iter()
            .filter(|w| {
                w.kind == FaultKind::PluginCrash && w.applies_to(plugin) && w.start_ns <= now_ns
            })
            .count() as u32
    }

    /// True when `plugin` owes a panic at `release_ns`: the number of
    /// crash windows opened so far exceeds `fired`, the caller's count
    /// of panics already delivered. One panic per opened window — the
    /// same contract `Boundary::crash_due` records and replays (see the
    /// `illixr-trace` crate docs for the crash-record replay contract).
    pub fn crash_due(&self, plugin: &str, release_ns: u64, fired: u32) -> bool {
        self.crash_count_through(plugin, release_ns) > fired
    }

    /// Deprecated spelling of [`FaultPlan::crash_count_through`]. The
    /// name clashed with `Boundary::crash_due` (a *predicate*) while
    /// returning a *count*; the split names make the contract explicit.
    #[deprecated(
        since = "0.1.0",
        note = "use `crash_count_through` (count) or `crash_due` \
                                          (predicate) instead"
    )]
    pub fn crashes_due(&self, plugin: &str, now_ns: u64) -> u32 {
        self.crash_count_through(plugin, now_ns)
    }

    /// How many [`FaultKind::WorkerCrash`] windows for `target` (an
    /// engine shard, named `shard/{N}`; empty window targets match
    /// every shard) have opened by `now_ns`. The engine kills the
    /// worker once per opened window, mirroring the plugin-crash
    /// fired-count discipline.
    pub fn worker_crashes_due(&self, target: &str, now_ns: u64) -> u32 {
        self.windows
            .iter()
            .filter(|w| {
                w.kind == FaultKind::WorkerCrash && w.applies_to(target) && w.start_ns <= now_ns
            })
            .count() as u32
    }

    /// Whether any [`FaultKind::WorkerCrash`] window exists at all —
    /// the engine only arms its failover machinery when one does (or
    /// when failover was configured explicitly).
    pub fn has_worker_crashes(&self) -> bool {
        self.windows.iter().any(|w| w.kind == FaultKind::WorkerCrash)
    }

    /// One deterministic line per window plus the stochastic rates —
    /// the artifact header fault_sweep embeds so same-seed reruns can
    /// be compared bit for bit.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(
            out,
            "fault_plan seed={} intensity={:.3} windows={}",
            self.seed,
            self.intensity,
            self.windows.len()
        )
        .expect("write to String cannot fail");
        for w in &self.windows {
            writeln!(
                out,
                "  {} target={} start_ms={:.3} end_ms={:.3} magnitude={:.3}",
                w.kind.label(),
                if w.target.is_empty() { "*" } else { &w.target },
                w.start_ns as f64 / 1e6,
                w.end_ns as f64 / 1e6,
                w.magnitude,
            )
            .expect("write to String cannot fail");
        }
        writeln!(
            out,
            "  rates camera_drop={:.4} imu_gap={:.4} link_duplicate={:.4} link_reorder={:.4}",
            self.rates.camera_drop,
            self.rates.imu_gap,
            self.rates.link_duplicate,
            self.rates.link_reorder,
        )
        .expect("write to String cannot fail");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_answers_no_to_everything() {
        let p = FaultPlan::quiet();
        assert!(p.is_quiet());
        assert!(!p.trial(FaultKind::CameraDrop, "camera", 7, 1.0));
        assert!(p.active_window(FaultKind::LinkOutage, "link", 0).is_none());
        assert_eq!(p.crash_count_through("vio", u64::MAX), 0);
        assert!(!p.crash_due("vio", u64::MAX, 0));
        assert_eq!(p.worker_crashes_due("shard/0", u64::MAX), 0);
    }

    #[test]
    fn zero_intensity_scheduled_plan_is_quiet() {
        let p = FaultPlan::scheduled(99, 0.0, 30 * NS_PER_SEC);
        assert!(p.is_quiet());
        assert_eq!(p, FaultPlan::quiet());
    }

    #[test]
    fn scheduled_plans_are_reproducible() {
        let a = FaultPlan::scheduled(7, 0.5, 10 * NS_PER_SEC);
        let b = FaultPlan::scheduled(7, 0.5, 10 * NS_PER_SEC);
        assert_eq!(a, b);
        assert_eq!(a.summary(), b.summary());
        let c = FaultPlan::scheduled(8, 0.5, 10 * NS_PER_SEC);
        // Same windows (placement is fraction-based) but different
        // stochastic stream.
        let fired = |p: &FaultPlan| {
            (0..1000).filter(|&s| p.trial(FaultKind::CameraDrop, "camera", s, 0.5)).count()
        };
        assert_ne!(fired(&a), 0);
        let seqs_a: Vec<u64> =
            (0..1000).filter(|&s| a.trial(FaultKind::CameraDrop, "camera", s, 0.5)).collect();
        let seqs_c: Vec<u64> =
            (0..1000).filter(|&s| c.trial(FaultKind::CameraDrop, "camera", s, 0.5)).collect();
        assert_ne!(seqs_a, seqs_c, "different seeds must fire different events");
    }

    #[test]
    fn windows_respect_target_and_interval() {
        let p = FaultPlan::new(1).with_window(FaultWindow::new(
            FaultKind::LinkOutage,
            "uplink",
            100,
            200,
            1.0,
        ));
        assert!(p.active_window(FaultKind::LinkOutage, "uplink", 150).is_some());
        assert!(p.active_window(FaultKind::LinkOutage, "uplink", 200).is_none());
        assert!(p.active_window(FaultKind::LinkOutage, "downlink", 150).is_none());
        let any = FaultPlan::new(1).with_window(FaultWindow::new(
            FaultKind::LinkOutage,
            "",
            100,
            200,
            1.0,
        ));
        assert!(any.active_window(FaultKind::LinkOutage, "downlink", 150).is_some());
    }

    #[test]
    fn crash_count_is_monotone_in_time() {
        let p = FaultPlan::new(3)
            .with_window(FaultWindow::new(FaultKind::PluginCrash, "vio", 100, 101, 1.0))
            .with_window(FaultWindow::new(FaultKind::PluginCrash, "vio", 500, 501, 1.0));
        assert_eq!(p.crash_count_through("vio", 0), 0);
        assert_eq!(p.crash_count_through("vio", 100), 1);
        assert_eq!(p.crash_count_through("vio", 499), 1);
        assert_eq!(p.crash_count_through("vio", 500), 2);
        assert_eq!(p.crash_count_through("timewarp", 500), 0);
        // The predicate fires exactly once per opened window.
        assert!(p.crash_due("vio", 100, 0));
        assert!(!p.crash_due("vio", 100, 1));
        assert!(p.crash_due("vio", 500, 1));
        assert!(!p.crash_due("vio", 500, 2));
    }

    #[test]
    fn worker_crash_windows_count_per_shard() {
        let p = FaultPlan::new(4)
            .with_window(FaultWindow::new(FaultKind::WorkerCrash, "shard/3", 100, 101, 1.0))
            .with_window(FaultWindow::new(FaultKind::WorkerCrash, "", 500, 501, 1.0));
        assert_eq!(p.worker_crashes_due("shard/3", 0), 0);
        assert_eq!(p.worker_crashes_due("shard/3", 100), 1);
        assert_eq!(p.worker_crashes_due("shard/0", 100), 0);
        // The wildcard window hits every shard.
        assert_eq!(p.worker_crashes_due("shard/3", 500), 2);
        assert_eq!(p.worker_crashes_due("shard/0", 500), 1);
        // Worker crashes never count as plugin crashes, or vice versa.
        assert_eq!(p.crash_count_through("shard/3", u64::MAX), 0);
    }

    #[test]
    fn trials_scale_with_intensity() {
        let lo = FaultPlan::scheduled(5, 0.2, NS_PER_SEC);
        let hi = FaultPlan::scheduled(5, 1.0, NS_PER_SEC);
        let count = |p: &FaultPlan| {
            (0..5000).filter(|&s| p.trial(FaultKind::CameraDrop, "camera", s, 0.15)).count()
        };
        assert!(count(&hi) > 2 * count(&lo), "hi {} vs lo {}", count(&hi), count(&lo));
    }

    #[test]
    fn summary_mentions_every_window() {
        let p = FaultPlan::scheduled(11, 0.7, 20 * NS_PER_SEC);
        let s = p.summary();
        for w in p.windows() {
            assert!(s.contains(w.kind.label()), "summary missing {}", w.kind.label());
        }
    }
}
