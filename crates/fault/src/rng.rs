//! Stateless pseudo-randomness for fault decisions.
//!
//! Every stochastic fault decision is a pure function of
//! `(plan seed, fault kind, target, event index)`: the plan hashes the
//! tuple through a SplitMix64 finalizer and compares the result against
//! the configured probability. Statelessness is what makes fault
//! injection composable with determinism — a consumer may query the
//! same decision zero, one or many times, in any order, from any
//! thread, and always observe the same answer, so instrumenting a run
//! (which changes how often code paths execute) can never change which
//! faults fire.

/// The SplitMix64 output function: a strong 64-bit mixer.
#[inline]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string, for hashing target names into the key.
#[inline]
pub fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A uniform sample in `[0, 1)` derived from the mixed key.
#[inline]
pub fn unit(key: u64) -> f64 {
    // 53 bits of mantissa, the standard u64 → f64 construction.
    (mix(key) >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic Bernoulli trial: true with probability `p`.
#[inline]
pub fn chance(key: u64, p: f64) -> bool {
    p > 0.0 && unit(key) < p
}

/// A deterministic sample in `[-1, 1]`, for bounded perturbations.
#[inline]
pub fn signed_unit(key: u64) -> f64 {
    unit(key) * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_stable_and_spreads() {
        assert_eq!(mix(0), mix(0));
        assert_ne!(mix(1), mix(2));
        // Avalanche smoke test: flipping one input bit flips many output bits.
        let d = (mix(7) ^ mix(7 | 1 << 40)).count_ones();
        assert!(d > 16, "only {d} bits differ");
    }

    #[test]
    fn unit_is_in_range_and_deterministic() {
        for k in 0..1000 {
            let u = unit(k);
            assert!((0.0..1.0).contains(&u));
            assert_eq!(u, unit(k));
        }
    }

    #[test]
    fn chance_edges() {
        assert!(!chance(42, 0.0));
        assert!(chance(42, 1.0));
        let hits = (0..10_000).filter(|&k| chance(k, 0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 hit {hits}/10000");
    }

    #[test]
    fn hash_str_distinguishes_targets() {
        assert_ne!(hash_str("camera"), hash_str("imu"));
        assert_eq!(hash_str("vio"), hash_str("vio"));
    }
}
