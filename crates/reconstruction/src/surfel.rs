//! Surfel map (ElasticFusion-style backend): a flat list of oriented
//! disks merged with incoming depth data, plus a periodic global
//! refinement pass whose cost grows with map size — the source of the
//! paper's reconstruction-time growth and loop-closure spikes (§IV-B).

use illixr_math::{Pose, Vec3};
use illixr_sensors::camera::PinholeCamera;

use crate::maps::{NormalMap, VertexMap};

/// One surfel: an oriented disk with a confidence counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Surfel {
    /// World position.
    pub position: Vec3,
    /// Unit normal (world frame).
    pub normal: Vec3,
    /// Disk radius, meters.
    pub radius: f64,
    /// Confidence (number of supporting observations).
    pub confidence: f64,
    /// Frame index of the last update.
    pub last_seen: u64,
}

/// The surfel map.
#[derive(Debug, Clone, Default)]
pub struct SurfelMap {
    surfels: Vec<Surfel>,
    frame: u64,
    /// Accumulated refinement passes (loop-closure stand-ins).
    refinements: u64,
}

impl SurfelMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of surfels in the map.
    pub fn len(&self) -> usize {
        self.surfels.len()
    }

    /// True when the map is empty.
    pub fn is_empty(&self) -> bool {
        self.surfels.is_empty()
    }

    /// The surfels.
    pub fn surfels(&self) -> &[Surfel] {
        &self.surfels
    }

    /// Number of global refinement passes performed.
    pub fn refinements(&self) -> u64 {
        self.refinements
    }

    /// Fuses a frame's vertex/normal maps (camera frame) taken at
    /// `cam_pose` into the map: existing surfels near a measurement are
    /// averaged toward it; unexplained measurements spawn new surfels.
    ///
    /// Subsamples the input with `stride` to bound map growth.
    pub fn fuse(
        &mut self,
        vertices: &VertexMap,
        normals: &NormalMap,
        cam: &PinholeCamera,
        cam_pose: &Pose,
        stride: usize,
    ) {
        let stride = stride.max(1);
        self.frame += 1;
        let (w, h) = (cam.width, cam.height);
        assert_eq!(vertices.len(), w * h, "vertex map size mismatch");
        // Project existing surfels into this frame for association.
        // (Brute-force projective association; ElasticFusion uses GPU
        // index maps — same semantics.)
        let world_to_cam = cam_pose.inverse();
        let mut index_map: Vec<Option<usize>> = vec![None; w * h];
        for (i, s) in self.surfels.iter().enumerate() {
            let p_cam = world_to_cam.transform_point(s.position);
            if p_cam.z <= 0.05 {
                continue;
            }
            if let Some(px) = cam.project(p_cam) {
                let idx = px.y as usize * w + px.x as usize;
                // Keep the nearest surfel per pixel.
                let better = match index_map[idx] {
                    None => true,
                    Some(j) => {
                        let other = world_to_cam.transform_point(self.surfels[j].position);
                        p_cam.z < other.z
                    }
                };
                if better {
                    index_map[idx] = Some(i);
                }
            }
        }
        for y in (0..h).step_by(stride) {
            for x in (0..w).step_by(stride) {
                let idx = y * w + x;
                let (Some(v), Some(n)) = (vertices[idx], normals[idx]) else { continue };
                let p_world = cam_pose.transform_point(v);
                let n_world = cam_pose.transform_vector(n);
                let radius = (v.z * stride as f64 / cam.fx).max(0.002);
                match index_map[idx] {
                    Some(i) if (self.surfels[i].position - p_world).norm() < 0.1 => {
                        let s = &mut self.surfels[i];
                        let c = s.confidence;
                        s.position = (s.position * c + p_world) / (c + 1.0);
                        let n_avg = s.normal * c + n_world;
                        s.normal = n_avg.normalized();
                        s.radius = (s.radius * c + radius) / (c + 1.0);
                        s.confidence = c + 1.0;
                        s.last_seen = self.frame;
                    }
                    _ => {
                        self.surfels.push(Surfel {
                            position: p_world,
                            normal: n_world,
                            radius,
                            confidence: 1.0,
                            last_seen: self.frame,
                        });
                    }
                }
            }
        }
    }

    /// Global map refinement — the loop-closure stand-in. Touches every
    /// surfel (deformation-graph style smoothing toward high-confidence
    /// neighbours), so its cost is `O(map size)`, an order of magnitude
    /// above a normal frame once the map has grown.
    pub fn refine(&mut self) {
        self.refinements += 1;
        if self.surfels.len() < 2 {
            return;
        }
        // Deterministic pseudo-neighbour smoothing pass: each surfel is
        // pulled slightly toward the running centroid of its spatial
        // bucket, and stale low-confidence surfels are pruned.
        let mut sum = Vec3::ZERO;
        for s in &self.surfels {
            sum += s.position;
        }
        let centroid = sum / self.surfels.len() as f64;
        for s in &mut self.surfels {
            // Weight inversely with confidence: well-observed surfels
            // barely move.
            let alpha = 1e-4 / (1.0 + s.confidence);
            s.position = s.position.lerp(centroid, alpha);
        }
        let frame = self.frame;
        self.surfels.retain(|s| s.confidence >= 2.0 || frame.saturating_sub(s.last_seen) < 30);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maps::{normal_map, vertex_map, DepthFrame};

    fn cam() -> PinholeCamera {
        PinholeCamera { fx: 60.0, fy: 60.0, cx: 32.0, cy: 24.0, width: 64, height: 48 }
    }

    fn wall_maps(c: &PinholeCamera, z: f32) -> (VertexMap, NormalMap) {
        let depth = DepthFrame::from_fn(c.width, c.height, |_, _| z);
        let v = vertex_map(&depth, c);
        let n = normal_map(&v, c.width, c.height);
        (v, n)
    }

    #[test]
    fn fuse_creates_surfels() {
        let c = cam();
        let (v, n) = wall_maps(&c, 2.0);
        let mut map = SurfelMap::new();
        map.fuse(&v, &n, &c, &Pose::IDENTITY, 4);
        assert!(map.len() > 50, "only {} surfels", map.len());
    }

    #[test]
    fn refusing_same_view_merges_not_duplicates() {
        let c = cam();
        let (v, n) = wall_maps(&c, 2.0);
        let mut map = SurfelMap::new();
        map.fuse(&v, &n, &c, &Pose::IDENTITY, 4);
        let after_first = map.len();
        for _ in 0..3 {
            map.fuse(&v, &n, &c, &Pose::IDENTITY, 4);
        }
        // Some growth at edges is fine, wholesale duplication is not.
        assert!(map.len() < after_first * 2, "{} vs {}", map.len(), after_first);
        // Confidences grew.
        assert!(map.surfels().iter().any(|s| s.confidence > 2.0));
    }

    #[test]
    fn surfels_sit_on_the_wall() {
        let c = cam();
        let (v, n) = wall_maps(&c, 2.0);
        let mut map = SurfelMap::new();
        map.fuse(&v, &n, &c, &Pose::IDENTITY, 4);
        for s in map.surfels() {
            assert!((s.position.z - 2.0).abs() < 0.01, "surfel at z {}", s.position.z);
        }
    }

    #[test]
    fn new_viewpoint_adds_coverage() {
        let c = cam();
        let (v, n) = wall_maps(&c, 2.0);
        let mut map = SurfelMap::new();
        map.fuse(&v, &n, &c, &Pose::IDENTITY, 4);
        let before = map.len();
        let moved = Pose::new(Vec3::new(1.0, 0.0, 0.0), illixr_math::Quat::IDENTITY);
        map.fuse(&v, &n, &c, &moved, 4);
        assert!(map.len() > before, "no new surfels from a new viewpoint");
    }

    #[test]
    fn refine_preserves_confident_surfels() {
        let c = cam();
        let (v, n) = wall_maps(&c, 2.0);
        let mut map = SurfelMap::new();
        for _ in 0..3 {
            map.fuse(&v, &n, &c, &Pose::IDENTITY, 4);
        }
        let before = map.len();
        map.refine();
        assert_eq!(map.refinements(), 1);
        // Confident wall surfels survive.
        assert!(map.len() as f64 > before as f64 * 0.5);
        for s in map.surfels() {
            assert!((s.position.z - 2.0).abs() < 0.05);
        }
    }
}
