//! The `scene_reconstruction` plugin.
//!
//! The paper runs scene reconstruction standalone (OpenXR had no scene
//! interface for applications, §III-B); the plugin renders synthetic
//! depth from the landmark world along a trajectory and publishes map
//! updates on the `scene` stream.

use std::sync::Arc;

use illixr_core::plugin::{IterationReport, Plugin, PluginContext};
use illixr_core::switchboard::Writer;
use illixr_core::telemetry::TaskTimer;
use illixr_math::Pose;
use illixr_sensors::camera::StereoRig;
use illixr_sensors::trajectory::Trajectory;
use illixr_sensors::world::LandmarkWorld;

use crate::pipeline::{SceneOutput, ScenePipeline};

/// Stream name for scene updates.
pub const SCENE_STREAM: &str = "scene";

/// A published map update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneUpdate {
    /// Estimated camera pose for the fused frame.
    pub pose: Pose,
    /// Map size after fusion.
    pub map_size: usize,
    /// Whether a global refinement ran.
    pub refined: bool,
}

/// The plugin.
pub struct SceneReconstructionPlugin {
    world: Arc<LandmarkWorld>,
    rig: StereoRig,
    trajectory: Trajectory,
    pipeline: ScenePipeline,
    writer: Option<Writer<SceneUpdate>>,
    timer: Arc<TaskTimer>,
    baseline_map: usize,
}

impl SceneReconstructionPlugin {
    /// Creates the plugin with an ElasticFusion-like surfel pipeline.
    pub fn new(world: Arc<LandmarkWorld>, rig: StereoRig, trajectory: Trajectory) -> Self {
        let initial = trajectory.pose(illixr_core::Time::ZERO);
        Self {
            pipeline: ScenePipeline::elastic_fusion_like(rig.camera, initial),
            world,
            rig,
            trajectory,
            writer: None,
            timer: Arc::new(TaskTimer::new()),
            baseline_map: 0,
        }
    }

    /// Task-level timing (Table VI instrumentation).
    pub fn task_timer(&self) -> Arc<TaskTimer> {
        self.timer.clone()
    }
}

impl Plugin for SceneReconstructionPlugin {
    fn name(&self) -> &str {
        "scene_reconstruction"
    }

    fn start(&mut self, ctx: &PluginContext) {
        self.writer =
            Some(ctx.switchboard.topic::<SceneUpdate>(SCENE_STREAM).expect("stream").writer());
    }

    fn iterate(&mut self, ctx: &PluginContext) -> IterationReport {
        let t = ctx.clock.now();
        let truth = self.trajectory.pose(t);
        let depth = self.world.render_depth(&self.rig, &truth);
        let out: SceneOutput = self.pipeline.process(&depth, None, Some(&self.timer));
        self.writer.as_ref().expect("start() must run before iterate()").put(SceneUpdate {
            pose: out.pose,
            map_size: out.map_size,
            refined: out.refined,
        });
        // Work grows with map size (the paper's steady runtime increase);
        // refinement frames spike an order of magnitude.
        if self.baseline_map == 0 {
            self.baseline_map = out.map_size.max(1);
        }
        let growth = out.map_size as f64 / self.baseline_map as f64;
        let work = if out.refined { growth * 8.0 } else { growth };
        IterationReport::with_work(work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_core::plugin::RuntimeBuilder;
    use illixr_core::{SimClock, Time};
    use illixr_math::Vec3;
    use illixr_sensors::camera::PinholeCamera;

    #[test]
    fn plugin_publishes_scene_updates_with_growing_map() {
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        let reader =
            ctx.switchboard.topic::<SceneUpdate>(SCENE_STREAM).expect("stream").sync_reader(64);
        let cam = PinholeCamera { fx: 60.0, fy: 60.0, cx: 32.0, cy: 24.0, width: 64, height: 48 };
        let world = Arc::new(LandmarkWorld::new(60, Vec3::new(4.0, 2.5, 4.0), 2));
        let mut plugin =
            SceneReconstructionPlugin::new(world, StereoRig::zed_mini(cam), Trajectory::gentle(2));
        plugin.start(&ctx);
        for k in 0..6 {
            clock.advance_to(Time::from_millis(k * 120));
            let report = plugin.iterate(&ctx);
            assert!(report.did_work);
        }
        let updates = reader.drain();
        assert_eq!(updates.len(), 6);
        assert!(updates.last().unwrap().map_size >= updates.first().unwrap().map_size);
    }

    #[test]
    fn refinement_spikes_work_factor() {
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        let cam = PinholeCamera { fx: 60.0, fy: 60.0, cx: 32.0, cy: 24.0, width: 64, height: 48 };
        let world = Arc::new(LandmarkWorld::new(60, Vec3::new(4.0, 2.5, 4.0), 5));
        let mut plugin =
            SceneReconstructionPlugin::new(world, StereoRig::zed_mini(cam), Trajectory::gentle(5));
        plugin.pipeline.set_refine_interval(3);
        plugin.start(&ctx);
        let mut works = Vec::new();
        for k in 0..6 {
            clock.advance_to(Time::from_millis(k * 120));
            works.push(plugin.iterate(&ctx).work_factor);
        }
        // Frames 3 and 6 (indices 2, 5) refined → big spikes.
        assert!(works[2] > 4.0 * works[1], "expected spike, works={works:?}");
    }
}
