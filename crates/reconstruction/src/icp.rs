//! Point-to-plane ICP pose estimation (the "pose estimation" task of
//! Table VI — "iterative closest point; photometric error; geometric
//! error; reduction").

use illixr_math::{Cholesky, DMatrix, Pose, Quat, Vec3};

use crate::maps::{NormalMap, VertexMap};

/// Result of an ICP solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IcpResult {
    /// The refined camera-to-world pose.
    pub pose: Pose,
    /// Mean absolute point-to-plane residual (meters) at convergence.
    pub residual: f64,
    /// Number of correspondences in the final iteration.
    pub correspondences: usize,
}

/// Aligns a live vertex map against a model (predicted) vertex/normal
/// map using projective data association and the small-angle
/// point-to-plane linearization.
///
/// * `live` — camera-frame vertices from the new depth frame;
/// * `model_v`, `model_n` — camera-frame vertices/normals predicted from
///   the map at `initial_pose` (e.g. by TSDF raycast);
/// * `initial_pose` — the pose prediction (previous pose or IMU prior).
///
/// Returns `None` when too few correspondences exist.
pub fn icp_point_to_plane(
    live: &VertexMap,
    model_v: &VertexMap,
    model_n: &NormalMap,
    width: usize,
    initial_pose: &Pose,
    iterations: usize,
) -> Option<IcpResult> {
    icp_point_to_plane_gated(live, model_v, model_n, width, initial_pose, iterations, 0.4, 0.25)
}

/// [`icp_point_to_plane`] with explicit plausibility gates: the total
/// correction (and each iteration step) must stay below the given
/// translation bounds (meters). Frame-rate odometry uses tight gates —
/// real inter-frame motion is centimeters — which keeps the solver from
/// confidently sliding along directions the scene does not constrain.
#[allow(clippy::too_many_arguments)]
pub fn icp_point_to_plane_gated(
    live: &VertexMap,
    model_v: &VertexMap,
    model_n: &NormalMap,
    width: usize,
    initial_pose: &Pose,
    iterations: usize,
    max_total_translation: f64,
    max_step_translation: f64,
) -> Option<IcpResult> {
    assert_eq!(live.len(), model_v.len(), "map size mismatch");
    assert_eq!(live.len(), model_n.len(), "map size mismatch");
    // `delta` maps live camera frame → model camera frame; both maps are
    // in the *same* camera frame under projective association, so delta
    // starts at identity and stays small.
    let mut delta = Pose::IDENTITY;
    let mut residual = f64::INFINITY;
    let mut used = 0;
    for _ in 0..iterations {
        let mut ata = DMatrix::zeros(6, 6);
        let mut atb = DMatrix::zeros(6, 1);
        let mut err_sum = 0.0;
        used = 0;
        for idx in 0..live.len() {
            let (Some(p_live), Some(q), Some(n)) = (live[idx], model_v[idx], model_n[idx]) else {
                continue;
            };
            let _ = width;
            let p = delta.transform_point(p_live);
            // Gate gross outliers.
            if (p - q).norm() > 0.3 {
                continue;
            }
            let r = n.dot(q - p);
            // J = [ (p × n)ᵀ , nᵀ ] for x = (ω, t).
            let c = p.cross(n);
            let j = [c.x, c.y, c.z, n.x, n.y, n.z];
            for a in 0..6 {
                for b in 0..6 {
                    ata[(a, b)] += j[a] * j[b];
                }
                atb[(a, 0)] += j[a] * r;
            }
            err_sum += r.abs();
            used += 1;
        }
        if used < 30 {
            return None;
        }
        residual = err_sum / used as f64;
        // Tikhonov damping proportional to the system scale: directions
        // the scene does not constrain (e.g. sliding along a single
        // plane) stay put instead of drifting down the null space.
        let mean_diag = (0..6).map(|i| ata[(i, i)]).sum::<f64>() / 6.0;
        let lambda = (1e-3 * mean_diag).max(1e-9);
        for i in 0..6 {
            ata[(i, i)] += lambda;
        }
        let chol = Cholesky::new(&ata).ok()?;
        let x = chol.solve(&atb);
        let omega = Vec3::new(x[(0, 0)], x[(1, 0)], x[(2, 0)]);
        let t = Vec3::new(x[(3, 0)], x[(4, 0)], x[(5, 0)]);
        if !omega.is_finite() || !t.is_finite() {
            return None;
        }
        // Reject implausible per-iteration steps (frame-to-frame motion
        // is centimeters at XR rates).
        if t.norm() > max_step_translation || omega.norm() > 0.5 {
            return None;
        }
        let inc = Pose::new(t, Quat::from_rotation_vector(omega));
        delta = inc.compose(&delta);
        if omega.norm() + t.norm() < 1e-8 {
            break;
        }
    }
    // Final sanity: the total correction must stay small.
    if delta.position.norm() > max_total_translation || delta.orientation.angle() > 0.8 {
        return None;
    }
    // Compose the correction into the world pose: live-frame points map
    // to world via initial_pose ∘ delta.
    Some(IcpResult { pose: initial_pose.compose(&delta), residual, correspondences: used })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maps::{normal_map, vertex_map, DepthFrame};
    use illixr_sensors::camera::PinholeCamera;

    fn cam() -> PinholeCamera {
        PinholeCamera { fx: 80.0, fy: 80.0, cx: 40.0, cy: 30.0, width: 80, height: 60 }
    }

    /// Depth of a tilted plane n·p = d seen from the identity camera.
    fn plane_depth(cam: &PinholeCamera, n: Vec3, d: f64) -> DepthFrame {
        DepthFrame::from_fn(cam.width, cam.height, |x, y| {
            let ray = cam.unproject(illixr_math::Vec2::new(x as f64, y as f64));
            // Solve n·(ray * s) = d for the z-coordinate: s = d / (n·ray);
            // depth image stores z = s (ray has z = 1).
            let denom = n.dot(ray);
            if denom.abs() < 1e-6 {
                0.0
            } else {
                (d / denom) as f32
            }
        })
    }

    /// A corner scene (two perpendicular walls) gives ICP full 6-DoF
    /// constraints.
    fn corner_depth(cam: &PinholeCamera, offset: Vec3) -> DepthFrame {
        DepthFrame::from_fn(cam.width, cam.height, |x, y| {
            let ray = cam.unproject(illixr_math::Vec2::new(x as f64, y as f64));
            // Wall A: z = 3 - offset.z ; Wall B: x = 1.2 - offset.x ;
            // floor: y = 0.8 - offset.y. Take nearest positive hit.
            let mut best = f32::INFINITY;
            let za = 3.0 - offset.z;
            if ray.z > 1e-6 {
                let s = za / ray.z;
                if s > 0.1 {
                    best = best.min(s as f32);
                }
            }
            let xb = 1.2 - offset.x;
            if ray.x > 1e-6 {
                let s = xb / ray.x;
                let z = s * ray.z;
                if s > 0.1 && z > 0.1 {
                    best = best.min(s as f32);
                }
            }
            let yf = 0.8 - offset.y;
            if ray.y > 1e-6 {
                let s = yf / ray.y;
                if s > 0.1 {
                    best = best.min(s as f32);
                }
            }
            if best.is_finite() {
                best * 1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn recovers_small_translation() {
        let c = cam();
        let model_depth = corner_depth(&c, Vec3::ZERO);
        let moved = Vec3::new(0.02, 0.01, 0.03);
        let live_depth = corner_depth(&c, moved);
        let model_v = vertex_map(&model_depth, &c);
        let model_n = normal_map(&model_v, c.width, c.height);
        let live_v = vertex_map(&live_depth, &c);
        let result =
            icp_point_to_plane(&live_v, &model_v, &model_n, c.width, &Pose::IDENTITY, 12).unwrap();
        // The camera moved by `moved`, so live points are closer; the
        // recovered pose should translate by ≈ moved.
        let t = result.pose.position;
        assert!((t - moved).norm() < 0.01, "recovered {t}, expected {moved}");
        assert!(result.residual < 0.005, "residual {}", result.residual);
    }

    #[test]
    fn identity_when_aligned() {
        let c = cam();
        let depth = corner_depth(&c, Vec3::ZERO);
        let v = vertex_map(&depth, &c);
        let n = normal_map(&v, c.width, c.height);
        let result = icp_point_to_plane(&v, &v, &n, c.width, &Pose::IDENTITY, 5).unwrap();
        assert!(result.pose.position.norm() < 1e-6);
        assert!(result.pose.orientation.angle() < 1e-6);
    }

    #[test]
    fn single_plane_constrains_normal_direction_only() {
        let c = cam();
        let n = Vec3::new(0.0, 0.0, 1.0);
        let model_depth = plane_depth(&c, n, 2.0);
        let live_depth = plane_depth(&c, n, 1.95); // camera moved 5 cm forward
        let model_v = vertex_map(&model_depth, &c);
        let model_n = normal_map(&model_v, c.width, c.height);
        let live_v = vertex_map(&live_depth, &c);
        let result =
            icp_point_to_plane(&live_v, &model_v, &model_n, c.width, &Pose::IDENTITY, 10).unwrap();
        // Along-normal motion is recovered; in-plane drift may be
        // unconstrained, so only check z.
        assert!((result.pose.position.z - 0.05).abs() < 0.01, "z {}", result.pose.position.z);
    }

    #[test]
    fn too_few_points_returns_none() {
        let live: VertexMap = vec![None; 100];
        let model_v: VertexMap = vec![None; 100];
        let model_n: NormalMap = vec![None; 100];
        assert!(icp_point_to_plane(&live, &model_v, &model_n, 10, &Pose::IDENTITY, 5).is_none());
    }

    #[test]
    fn initial_pose_is_composed() {
        let c = cam();
        let depth = corner_depth(&c, Vec3::ZERO);
        let v = vertex_map(&depth, &c);
        let n = normal_map(&v, c.width, c.height);
        let prior = Pose::new(Vec3::new(1.0, 2.0, 3.0), Quat::from_axis_angle(Vec3::UNIT_Y, 0.3));
        let result = icp_point_to_plane(&v, &v, &n, c.width, &prior, 3).unwrap();
        assert!(result.pose.translation_distance(&prior) < 1e-6);
    }
}
