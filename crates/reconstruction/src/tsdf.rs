//! TSDF voxel volume (KinectFusion-style map backend): integration
//! ("map fusion") and raycasting ("surfel prediction" in the task
//! accounting).

use illixr_math::{Pose, Vec3};
use illixr_sensors::camera::PinholeCamera;

use crate::maps::{DepthFrame, NormalMap, VertexMap};

/// A truncated signed distance field over a regular voxel grid.
#[derive(Debug, Clone)]
pub struct TsdfVolume {
    dims: [usize; 3],
    voxel_size: f64,
    origin: Vec3,
    truncation: f64,
    tsdf: Vec<f32>,
    weight: Vec<f32>,
}

impl TsdfVolume {
    /// Creates a volume of `dims` voxels with the given voxel size,
    /// whose minimum corner sits at `origin`.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero or `voxel_size <= 0`.
    pub fn new(dims: [usize; 3], voxel_size: f64, origin: Vec3) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "volume dims must be positive");
        assert!(voxel_size > 0.0, "voxel size must be positive");
        let n = dims[0] * dims[1] * dims[2];
        Self {
            dims,
            voxel_size,
            origin,
            truncation: voxel_size * 4.0,
            tsdf: vec![1.0; n],
            weight: vec![0.0; n],
        }
    }

    /// A volume covering a `2·half_extent` room centred at the origin
    /// with `res³` voxels.
    pub fn room(half_extent: Vec3, res: usize) -> Self {
        let size = 2.0 * half_extent.max_abs() * 1.1;
        let voxel = size / res as f64;
        Self::new([res; 3], voxel, Vec3::splat(-size / 2.0))
    }

    /// Number of voxels with non-zero integration weight.
    pub fn occupied_voxels(&self) -> usize {
        self.weight.iter().filter(|&&w| w > 0.0).count()
    }

    #[inline]
    fn index(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.dims[1] + y) * self.dims[0] + x
    }

    /// World position of a voxel center.
    fn voxel_center(&self, x: usize, y: usize, z: usize) -> Vec3 {
        self.origin
            + Vec3::new(
                (x as f64 + 0.5) * self.voxel_size,
                (y as f64 + 0.5) * self.voxel_size,
                (z as f64 + 0.5) * self.voxel_size,
            )
    }

    /// Integrates a depth frame taken from `cam_pose` (camera-to-world).
    ///
    /// The classic KinectFusion projective update: each voxel projects
    /// into the frame, the SDF along the ray is updated with a weighted
    /// running average.
    pub fn integrate(&mut self, depth: &DepthFrame, cam: &PinholeCamera, cam_pose: &Pose) {
        let world_to_cam = cam_pose.inverse();
        for z in 0..self.dims[2] {
            for y in 0..self.dims[1] {
                for x in 0..self.dims[0] {
                    let p_world = self.voxel_center(x, y, z);
                    let p_cam = world_to_cam.transform_point(p_world);
                    if p_cam.z <= 0.05 {
                        continue;
                    }
                    let Some(px) = cam.project(p_cam) else { continue };
                    let d_meas = depth.get(px.x as usize, px.y as usize) as f64;
                    if d_meas <= 0.0 {
                        continue;
                    }
                    let sdf = d_meas - p_cam.z;
                    if sdf < -self.truncation {
                        continue; // occluded: no information
                    }
                    let tsdf_new = (sdf / self.truncation).clamp(-1.0, 1.0) as f32;
                    let idx = self.index(x, y, z);
                    let w_old = self.weight[idx];
                    let w_new = (w_old + 1.0).min(64.0);
                    self.tsdf[idx] = (self.tsdf[idx] * w_old + tsdf_new) / (w_old + 1.0);
                    self.weight[idx] = w_new;
                }
            }
        }
    }

    /// Trilinear TSDF sample at a world point; `None` outside the volume
    /// or in unobserved space.
    pub fn sample(&self, p: Vec3) -> Option<f64> {
        let g = (p - self.origin) / self.voxel_size - Vec3::splat(0.5);
        let (x0, y0, z0) = (g.x.floor() as isize, g.y.floor() as isize, g.z.floor() as isize);
        if x0 < 0
            || y0 < 0
            || z0 < 0
            || x0 as usize + 1 >= self.dims[0]
            || y0 as usize + 1 >= self.dims[1]
            || z0 as usize + 1 >= self.dims[2]
        {
            return None;
        }
        let (fx, fy, fz) = (g.x - x0 as f64, g.y - y0 as f64, g.z - z0 as f64);
        let mut acc = 0.0;
        let mut wsum = 0.0;
        for dz in 0..2usize {
            for dy in 0..2usize {
                for dx in 0..2usize {
                    let idx =
                        self.index((x0 as usize) + dx, (y0 as usize) + dy, (z0 as usize) + dz);
                    if self.weight[idx] <= 0.0 {
                        return None;
                    }
                    let w = (if dx == 1 { fx } else { 1.0 - fx })
                        * (if dy == 1 { fy } else { 1.0 - fy })
                        * (if dz == 1 { fz } else { 1.0 - fz });
                    acc += w * self.tsdf[idx] as f64;
                    wsum += w;
                }
            }
        }
        Some(acc / wsum.max(1e-12))
    }

    /// Raycasts the volume from `cam_pose`, producing predicted vertex
    /// and normal maps (the model the next frame's ICP aligns against).
    pub fn raycast(
        &self,
        cam: &PinholeCamera,
        cam_pose: &Pose,
        max_depth: f64,
    ) -> (VertexMap, NormalMap) {
        let (w, h) = (cam.width, cam.height);
        let mut vmap: VertexMap = vec![None; w * h];
        let step = self.voxel_size;
        for py in 0..h {
            for px in 0..w {
                let ray_cam =
                    cam.unproject(illixr_math::Vec2::new(px as f64, py as f64)).normalized();
                let ray_world = cam_pose.transform_vector(ray_cam);
                let origin = cam_pose.position;
                // March until a sign change from + to −.
                let mut t = 0.3;
                let mut prev: Option<(f64, f64)> = None; // (t, tsdf)
                while t < max_depth {
                    let p = origin + ray_world * t;
                    match self.sample(p) {
                        Some(v) => {
                            if let Some((tp, vp)) = prev {
                                if vp > 0.0 && v <= 0.0 {
                                    // Linear interpolation of the zero crossing.
                                    let tz = tp + (t - tp) * vp / (vp - v);
                                    let hit = origin + ray_world * tz;
                                    // Store the *camera-frame* vertex to
                                    // match the live frame's vertex map.
                                    let hit_cam = cam_pose.inverse().transform_point(hit);
                                    vmap[py * w + px] = Some(hit_cam);
                                    break;
                                }
                            }
                            prev = Some((t, v));
                            // Skip proportionally to distance when far.
                            t += (v.abs() * self.truncation).max(step * 0.5);
                        }
                        None => {
                            prev = None;
                            t += step;
                        }
                    }
                }
            }
        }
        let nmap = crate::maps::normal_map(&vmap, w, h);
        (vmap, nmap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> PinholeCamera {
        PinholeCamera { fx: 60.0, fy: 60.0, cx: 32.0, cy: 24.0, width: 64, height: 48 }
    }

    /// A flat wall at z = `wall_z` in front of an identity camera.
    fn wall_depth(wall_z: f32) -> DepthFrame {
        // Depth along the optical axis is constant for a frontal plane
        // (perspective depth = z, not range).
        DepthFrame::from_fn(64, 48, |_, _| wall_z)
    }

    #[test]
    fn integrate_marks_surface_voxels() {
        let mut vol = TsdfVolume::new([32, 32, 32], 0.125, Vec3::new(-2.0, -2.0, 0.0));
        vol.integrate(&wall_depth(2.0), &cam(), &Pose::IDENTITY);
        assert!(vol.occupied_voxels() > 100);
        // TSDF at the wall should be ~0, in front of it positive.
        let on_wall = vol.sample(Vec3::new(0.0, 0.0, 2.0)).unwrap();
        let in_front = vol.sample(Vec3::new(0.0, 0.0, 1.6)).unwrap();
        assert!(on_wall.abs() < 0.3, "wall tsdf {on_wall}");
        assert!(in_front > 0.5, "free space tsdf {in_front}");
    }

    #[test]
    fn raycast_recovers_wall_depth() {
        let mut vol = TsdfVolume::new([64, 64, 64], 0.0625, Vec3::new(-2.0, -2.0, 0.0));
        let c = cam();
        vol.integrate(&wall_depth(2.0), &c, &Pose::IDENTITY);
        let (vmap, _n) = vol.raycast(&c, &Pose::IDENTITY, 5.0);
        let center = vmap[24 * 64 + 32].expect("center ray must hit the wall");
        assert!((center.z - 2.0).abs() < 0.08, "raycast depth {}", center.z);
    }

    #[test]
    fn repeated_integration_reinforces() {
        let mut vol = TsdfVolume::new([32, 32, 32], 0.125, Vec3::new(-2.0, -2.0, 0.0));
        let c = cam();
        for _ in 0..5 {
            vol.integrate(&wall_depth(2.0), &c, &Pose::IDENTITY);
        }
        let v1 = vol.sample(Vec3::new(0.0, 0.0, 2.0)).unwrap();
        assert!(v1.abs() < 0.3);
    }

    #[test]
    fn sample_outside_is_none() {
        let vol = TsdfVolume::new([8, 8, 8], 0.5, Vec3::ZERO);
        assert!(vol.sample(Vec3::new(-1.0, 0.0, 0.0)).is_none());
        assert!(vol.sample(Vec3::new(100.0, 0.0, 0.0)).is_none());
        // Inside but unobserved:
        assert!(vol.sample(Vec3::new(2.0, 2.0, 2.0)).is_none());
    }

    #[test]
    fn room_constructor_covers_extent() {
        let vol = TsdfVolume::room(Vec3::new(4.0, 2.5, 4.0), 64);
        // A point near the wall should be inside the grid (observed or
        // not, sampling must not panic).
        let _ = vol.sample(Vec3::new(3.9, 0.0, 0.0));
    }
}
