//! Scene reconstruction: dense 3-D mapping from depth frames.
//!
//! Reproduces the ElasticFusion/KinectFusion component of Table II with
//! the task structure of Table VI:
//!
//! | paper task | module |
//! |---|---|
//! | camera processing (bilateral filter, invalid-depth rejection) | [`maps`] |
//! | image processing (vertex/normal map generation) | [`maps`] |
//! | pose estimation (point-to-plane ICP) | [`icp`] |
//! | surfel prediction (raycast of the model) | [`tsdf`], [`surfel`] |
//! | map fusion | [`tsdf`], [`surfel`] |
//!
//! Two map backends are provided — a TSDF voxel volume
//! (KinectFusion-style) and a surfel map (ElasticFusion-style) — behind
//! the same [`pipeline::ScenePipeline`]. The surfel map performs a
//! periodic global refinement pass whose cost grows with map size,
//! reproducing the paper's observation that reconstruction time "keeps
//! steadily increasing due to the increasing size of its map" with
//! loop-closure spikes an order of magnitude above the mean (§IV-B).

pub mod icp;
pub mod maps;
pub mod pipeline;
pub mod plugin;
pub mod surfel;
pub mod tsdf;

pub use icp::{icp_point_to_plane, icp_point_to_plane_gated};
pub use maps::{normal_map, vertex_map, DepthFrame, NormalMap, VertexMap};
pub use pipeline::{MapBackend, ScenePipeline};
pub use plugin::SceneReconstructionPlugin;
pub use surfel::SurfelMap;
pub use tsdf::TsdfVolume;
