//! The scene-reconstruction pipeline: the five Table VI tasks wired
//! together over a choice of map backend.

use illixr_core::telemetry::TaskTimer;
use illixr_math::{Pose, Vec3};
use illixr_sensors::camera::PinholeCamera;

use crate::icp::icp_point_to_plane_gated;
use crate::maps::{normal_map, preprocess_depth, vertex_map, DepthFrame};
use crate::surfel::SurfelMap;
use crate::tsdf::TsdfVolume;

/// Which dense map representation backs the pipeline.
#[derive(Debug)]
pub enum MapBackend {
    /// KinectFusion-style TSDF volume.
    Tsdf(TsdfVolume),
    /// ElasticFusion-style surfel map.
    Surfel(SurfelMap),
}

/// Output of processing one depth frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneOutput {
    /// Estimated camera-to-world pose of this frame.
    pub pose: Pose,
    /// Current map size (occupied voxels or surfel count).
    pub map_size: usize,
    /// True when this frame triggered a global refinement pass.
    pub refined: bool,
    /// ICP residual (0 when ICP was skipped, e.g. the first frame).
    pub icp_residual: f64,
}

/// The pipeline.
#[derive(Debug)]
pub struct ScenePipeline {
    cam: PinholeCamera,
    backend: MapBackend,
    pose: Pose,
    frame: u64,
    /// Run a global refinement every this many frames (surfel backend).
    refine_interval: u64,
    /// Surfel fusion stride.
    stride: usize,
}

impl ScenePipeline {
    /// Creates a pipeline with the given backend and initial pose.
    pub fn new(cam: PinholeCamera, backend: MapBackend, initial_pose: Pose) -> Self {
        Self { cam, backend, pose: initial_pose, frame: 0, refine_interval: 25, stride: 4 }
    }

    /// A surfel pipeline covering a room (the default ElasticFusion-like
    /// configuration starred in Table II).
    pub fn elastic_fusion_like(cam: PinholeCamera, initial_pose: Pose) -> Self {
        Self::new(cam, MapBackend::Surfel(SurfelMap::new()), initial_pose)
    }

    /// A KinectFusion-like TSDF pipeline for a room of `half_extent`.
    pub fn kinect_fusion_like(cam: PinholeCamera, half_extent: Vec3, initial_pose: Pose) -> Self {
        Self::new(cam, MapBackend::Tsdf(TsdfVolume::room(half_extent, 64)), initial_pose)
    }

    /// Sets the global-refinement cadence (frames between passes).
    ///
    /// # Panics
    ///
    /// Panics when `frames` is zero.
    pub fn set_refine_interval(&mut self, frames: u64) {
        assert!(frames > 0, "refine interval must be positive");
        self.refine_interval = frames;
    }

    /// The current pose estimate.
    pub fn pose(&self) -> &Pose {
        &self.pose
    }

    /// Current map size.
    pub fn map_size(&self) -> usize {
        match &self.backend {
            MapBackend::Tsdf(v) => v.occupied_voxels(),
            MapBackend::Surfel(m) => m.len(),
        }
    }

    /// Processes one depth frame, optionally with an external pose prior
    /// (e.g. from VIO); without one, the previous pose is the prior
    /// (pure ICP odometry).
    pub fn process(
        &mut self,
        depth: &DepthFrame,
        pose_prior: Option<Pose>,
        timer: Option<&TaskTimer>,
    ) -> SceneOutput {
        self.frame += 1;
        let prior = pose_prior.unwrap_or(self.pose);

        // Camera processing: bilateral filter + invalid-depth rejection.
        let filtered = {
            let _g = timer.map(|t| t.scope("camera processing"));
            preprocess_depth(depth)
        };

        // Image processing: vertex + normal map generation.
        let (live_v, live_n) = {
            let _g = timer.map(|t| t.scope("image processing"));
            let v = vertex_map(&filtered, &self.cam);
            let n = normal_map(&v, self.cam.width, self.cam.height);
            (v, n)
        };

        // Surfel prediction: predict the model view at the prior pose.
        let model = {
            let _g = timer.map(|t| t.scope("surfel prediction"));
            match &self.backend {
                MapBackend::Tsdf(vol) => {
                    if self.frame == 1 {
                        None
                    } else {
                        Some(vol.raycast(&self.cam, &prior, 12.0))
                    }
                }
                MapBackend::Surfel(_) => {
                    // ElasticFusion predicts from the surfel index map;
                    // we reuse the previous live frame via the TSDF-free
                    // path: the previous maps are not retained, so we
                    // predict from surfels by splatting. For simplicity
                    // and the same dataflow, splat surfels here.
                    if self.frame == 1 {
                        None
                    } else {
                        Some(self.splat_surfels(&prior))
                    }
                }
            }
        };

        // Pose estimation: point-to-plane ICP against the prediction.
        let mut residual = 0.0;
        {
            let _g = timer.map(|t| t.scope("pose estimation"));
            if let Some((model_v, model_n)) = &model {
                // Frame-rate odometry: inter-frame motion is centimeters,
                // so gate the correction accordingly (10 cm total, 5 cm
                // per iteration). Gated-out solves fall back to the prior.
                if let Some(result) = icp_point_to_plane_gated(
                    &live_v,
                    model_v,
                    model_n,
                    self.cam.width,
                    &prior,
                    10,
                    0.10,
                    0.05,
                ) {
                    self.pose = result.pose;
                    residual = result.residual;
                } else {
                    self.pose = prior; // tracking failure: trust the prior
                }
            } else {
                self.pose = prior;
            }
        }

        // Map fusion.
        {
            let _g = timer.map(|t| t.scope("map fusion"));
            match &mut self.backend {
                MapBackend::Tsdf(vol) => vol.integrate(&filtered, &self.cam, &self.pose),
                MapBackend::Surfel(map) => {
                    map.fuse(&live_v, &live_n, &self.cam, &self.pose, self.stride)
                }
            }
        }

        // Periodic global refinement (loop-closure stand-in).
        let refined = if self.frame.is_multiple_of(self.refine_interval) {
            let _g = timer.map(|t| t.scope("map fusion"));
            if let MapBackend::Surfel(map) = &mut self.backend {
                map.refine();
                true
            } else {
                false
            }
        } else {
            false
        };

        SceneOutput { pose: self.pose, map_size: self.map_size(), refined, icp_residual: residual }
    }

    /// Splat surfels into a predicted vertex/normal map at `pose`
    /// (the surfel-backend model prediction).
    fn splat_surfels(&self, pose: &Pose) -> (crate::maps::VertexMap, crate::maps::NormalMap) {
        let (w, h) = (self.cam.width, self.cam.height);
        let mut vmap: crate::maps::VertexMap = vec![None; w * h];
        let mut depth_buf = vec![f64::INFINITY; w * h];
        let world_to_cam = pose.inverse();
        if let MapBackend::Surfel(map) = &self.backend {
            for s in map.surfels() {
                let p_cam = world_to_cam.transform_point(s.position);
                if p_cam.z <= 0.05 {
                    continue;
                }
                let Some(px) = self.cam.project(p_cam) else { continue };
                // Splat radius in pixels.
                let r_px = (s.radius * self.cam.fx / p_cam.z).ceil().max(1.0) as i64;
                let (cx, cy) = (px.x as i64, px.y as i64);
                for dy in -r_px..=r_px {
                    for dx in -r_px..=r_px {
                        let (x, y) = (cx + dx, cy + dy);
                        if x < 0 || y < 0 || x >= w as i64 || y >= h as i64 {
                            continue;
                        }
                        let idx = y as usize * w + x as usize;
                        if p_cam.z < depth_buf[idx] {
                            depth_buf[idx] = p_cam.z;
                            vmap[idx] = Some(p_cam);
                        }
                    }
                }
            }
        }
        let nmap = normal_map(&vmap, w, h);
        (vmap, nmap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_core::Time;
    use illixr_sensors::camera::StereoRig;
    use illixr_sensors::trajectory::Trajectory;
    use illixr_sensors::world::LandmarkWorld;

    fn small_cam() -> PinholeCamera {
        PinholeCamera { fx: 60.0, fy: 60.0, cx: 32.0, cy: 24.0, width: 64, height: 48 }
    }

    fn scene_setup() -> (LandmarkWorld, StereoRig, Trajectory) {
        (
            LandmarkWorld::new(60, Vec3::new(4.0, 2.5, 4.0), 3),
            StereoRig::zed_mini(small_cam()),
            Trajectory::gentle(3),
        )
    }

    #[test]
    fn surfel_pipeline_tracks_gentle_motion() {
        let (world, rig, traj) = scene_setup();
        let mut pipe = ScenePipeline::elastic_fusion_like(small_cam(), traj.pose(Time::ZERO));
        let mut worst = 0.0f64;
        for k in 0..12 {
            let t = Time::from_millis(k * 100);
            let truth = traj.pose(t);
            let depth = world.render_depth(&rig, &truth);
            let out = pipe.process(&depth, None, None);
            let err = out.pose.translation_distance(&truth);
            worst = worst.max(err);
        }
        assert!(worst < 0.25, "worst pose error {worst} m");
    }

    #[test]
    fn map_grows_over_frames() {
        let (world, rig, traj) = scene_setup();
        let mut pipe = ScenePipeline::elastic_fusion_like(small_cam(), traj.pose(Time::ZERO));
        let mut sizes = Vec::new();
        for k in 0..8 {
            let t = Time::from_millis(k * 150);
            let depth = world.render_depth(&rig, &traj.pose(t));
            let out = pipe.process(&depth, Some(traj.pose(t)), None);
            sizes.push(out.map_size);
        }
        assert!(sizes[7] > sizes[0], "map did not grow: {sizes:?}");
    }

    #[test]
    fn refinement_fires_periodically() {
        let (world, rig, traj) = scene_setup();
        let mut pipe = ScenePipeline::elastic_fusion_like(small_cam(), traj.pose(Time::ZERO));
        pipe.set_refine_interval(5);
        let mut refined_frames = Vec::new();
        for k in 0..11 {
            let t = Time::from_millis(k * 100);
            let depth = world.render_depth(&rig, &traj.pose(t));
            let out = pipe.process(&depth, Some(traj.pose(t)), None);
            if out.refined {
                refined_frames.push(k);
            }
        }
        assert_eq!(refined_frames, vec![4, 9]); // frames 5 and 10 (1-based)
    }

    #[test]
    fn tsdf_backend_accumulates_and_tracks() {
        let (world, rig, traj) = scene_setup();
        let mut pipe = ScenePipeline::kinect_fusion_like(
            small_cam(),
            Vec3::new(4.0, 2.5, 4.0),
            traj.pose(Time::ZERO),
        );
        for k in 0..4 {
            let t = Time::from_millis(k * 150);
            let truth = traj.pose(t);
            let depth = world.render_depth(&rig, &truth);
            let out = pipe.process(&depth, None, None);
            assert!(out.pose.translation_distance(&truth) < 0.3);
        }
        assert!(pipe.map_size() > 500, "tsdf occupied {}", pipe.map_size());
    }

    #[test]
    fn task_timer_covers_table_vi_tasks() {
        let (world, rig, traj) = scene_setup();
        let timer = TaskTimer::new();
        let mut pipe = ScenePipeline::elastic_fusion_like(small_cam(), traj.pose(Time::ZERO));
        for k in 0..3 {
            let t = Time::from_millis(k * 100);
            let depth = world.render_depth(&rig, &traj.pose(t));
            pipe.process(&depth, None, Some(&timer));
        }
        let names: Vec<String> = timer.shares().into_iter().map(|(n, _)| n).collect();
        for expected in [
            "camera processing",
            "image processing",
            "pose estimation",
            "surfel prediction",
            "map fusion",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing '{expected}' in {names:?}");
        }
    }
}
