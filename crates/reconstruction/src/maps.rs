//! Depth preprocessing: bilateral filtering, vertex and normal maps
//! (the "camera processing" and "image processing" tasks of Table VI).

use illixr_image::{bilateral_filter, GrayImage};
use illixr_math::Vec3;
use illixr_sensors::camera::PinholeCamera;

/// A depth image in meters; `<= 0` marks invalid pixels.
pub type DepthFrame = GrayImage;

/// Per-pixel camera-frame 3-D points (`None` where depth is invalid).
pub type VertexMap = Vec<Option<Vec3>>;

/// Per-pixel unit normals (`None` where undefined).
pub type NormalMap = Vec<Option<Vec3>>;

/// Bilateral-filters a depth frame, rejecting invalid depths — the
/// ElasticFusion camera-processing stage.
pub fn preprocess_depth(depth: &DepthFrame) -> DepthFrame {
    bilateral_filter(depth, 1.5, 0.08, 0.0)
}

/// Back-projects a depth frame into a camera-frame vertex map.
pub fn vertex_map(depth: &DepthFrame, cam: &PinholeCamera) -> VertexMap {
    let (w, h) = (depth.width(), depth.height());
    assert_eq!((w, h), (cam.width, cam.height), "depth size must match intrinsics");
    let mut out = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            let d = depth.get(x, y) as f64;
            if d <= 0.0 {
                out.push(None);
            } else {
                let ray = cam.unproject(illixr_math::Vec2::new(x as f64, y as f64));
                out.push(Some(ray * d));
            }
        }
    }
    out
}

/// Computes normals from a vertex map by central differences.
pub fn normal_map(vertices: &VertexMap, width: usize, height: usize) -> NormalMap {
    assert_eq!(vertices.len(), width * height, "vertex map size mismatch");
    let at = |x: usize, y: usize| vertices[y * width + x];
    let mut out = vec![None; vertices.len()];
    for y in 1..height - 1 {
        for x in 1..width - 1 {
            let (Some(right), Some(left), Some(down), Some(up)) =
                (at(x + 1, y), at(x - 1, y), at(x, y + 1), at(x, y - 1))
            else {
                continue;
            };
            let n = (right - left).cross(down - up);
            let norm = n.norm();
            if norm > 1e-12 {
                out[y * width + x] = Some(n / norm);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> PinholeCamera {
        PinholeCamera { fx: 100.0, fy: 100.0, cx: 32.0, cy: 24.0, width: 64, height: 48 }
    }

    fn flat_wall(depth_m: f32) -> DepthFrame {
        DepthFrame::from_fn(64, 48, |_, _| depth_m)
    }

    #[test]
    fn vertex_map_center_pixel_on_axis() {
        let vm = vertex_map(&flat_wall(2.0), &cam());
        let center = vm[24 * 64 + 32].unwrap();
        assert!((center - Vec3::new(0.0, 0.0, 2.0)).norm() < 1e-9);
    }

    #[test]
    fn vertex_map_respects_invalid_depth() {
        let mut d = flat_wall(2.0);
        d.set(10, 10, 0.0);
        let vm = vertex_map(&d, &cam());
        assert!(vm[10 * 64 + 10].is_none());
        assert!(vm[11 * 64 + 11].is_some());
    }

    #[test]
    fn normals_of_frontal_wall_point_at_camera() {
        let vm = vertex_map(&flat_wall(3.0), &cam());
        let nm = normal_map(&vm, 64, 48);
        let n = nm[20 * 64 + 20].unwrap();
        // A z=const plane has normal ±Z; sign depends on winding.
        assert!(n.z.abs() > 0.99, "normal {n}");
    }

    #[test]
    fn preprocess_smooths_but_keeps_invalid() {
        let mut d = flat_wall(2.0);
        d.set(5, 5, 0.0);
        // Salt noise.
        d.set(20, 20, 2.3);
        let filtered = preprocess_depth(&d);
        assert_eq!(filtered.get(5, 5), 0.0);
        assert!((filtered.get(20, 20) - 2.0).abs() < 0.35);
    }

    #[test]
    #[should_panic]
    fn size_mismatch_panics() {
        let d = DepthFrame::new(10, 10);
        let _ = vertex_map(&d, &cam());
    }
}
