//! The recording half of the boundary.
//!
//! A [`TraceRecorder`] is a cheap-to-clone handle over one shared
//! record store; every wiring point (sensor plugins, link bridges,
//! crash checks) holds a clone and appends `(stream, tag_ns, payload)`
//! events. Stream identity is the *first-record order* — deterministic
//! because the simulation itself is — so a snapshot of the same run
//! encodes to the same bytes every time.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::format::{Trace, TraceRecord};

#[derive(Debug)]
struct Inner {
    seed: u64,
    config_hash: u64,
    /// Streams in first-record order; the map gives O(1) append.
    streams: Vec<(String, Vec<TraceRecord>)>,
    index: HashMap<String, usize>,
}

/// Shared, cloneable boundary recorder.
///
/// A scoped clone (see [`TraceRecorder::scoped`]) prefixes every
/// stream name, which is how one recorder serves N server sessions
/// without stream collisions (`s0/imu`, `s1/imu`, …).
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    inner: Arc<Mutex<Inner>>,
    prefix: String,
}

impl TraceRecorder {
    pub fn new(seed: u64, config_hash: u64) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Inner {
                seed,
                config_hash,
                streams: Vec::new(),
                index: HashMap::new(),
            })),
            prefix: String::new(),
        }
    }

    /// A handle onto the same store that prepends `prefix` to every
    /// stream name it records. Scopes nest (`scoped("s3/")` on an
    /// already-scoped handle concatenates).
    pub fn scoped(&self, prefix: &str) -> Self {
        Self { inner: self.inner.clone(), prefix: format!("{}{prefix}", self.prefix) }
    }

    /// Append one boundary event.
    pub fn record(&self, stream: &str, tag_ns: u64, payload: Vec<u8>) {
        let mut inner = self.inner.lock().unwrap();
        let key = if self.prefix.is_empty() {
            stream.to_string()
        } else {
            format!("{}{stream}", self.prefix)
        };
        let idx = match inner.index.get(&key) {
            Some(&i) => i,
            None => {
                let i = inner.streams.len();
                inner.streams.push((key.clone(), Vec::new()));
                inner.index.insert(key, i);
                i
            }
        };
        inner.streams[idx].1.push(TraceRecord { tag_ns, payload });
    }

    /// Copy the current contents out as an immutable [`Trace`].
    pub fn snapshot(&self) -> Trace {
        let inner = self.inner.lock().unwrap();
        let mut trace = Trace::new(inner.seed, inner.config_hash);
        trace.streams = inner.streams.clone();
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_keep_first_record_order() {
        let rec = TraceRecorder::new(7, 9);
        rec.record("imu", 10, vec![1]);
        rec.record("camera", 20, vec![2]);
        rec.record("imu", 30, vec![3]);
        let t = rec.snapshot();
        assert_eq!(t.header.seed, 7);
        assert_eq!(t.header.config_hash, 9);
        let names: Vec<_> = t.streams.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["imu", "camera"]);
        assert_eq!(t.stream("imu").unwrap().len(), 2);
    }

    #[test]
    fn scoped_clones_share_the_store_and_prefix_names() {
        let rec = TraceRecorder::new(0, 0);
        let s0 = rec.scoped("s0/");
        let nested = s0.scoped("link/");
        s0.record("imu", 1, vec![]);
        nested.record("uplink", 2, vec![]);
        rec.record("global", 3, vec![]);
        let t = rec.snapshot();
        let names: Vec<_> = t.streams.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["s0/imu", "s0/link/uplink", "global"]);
    }
}
