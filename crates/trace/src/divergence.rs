//! Divergence reports: *where* two traces disagree, not just *that*
//! they do.
//!
//! Golden replay tests compare a recorded trace to a re-recorded one;
//! on mismatch a bare `assert_eq!` over megabytes of bytes is
//! undiagnosable. [`first_divergence`] walks both traces in stream
//! order and pins the first disagreement to a `(stream, tag_ns)`
//! coordinate plus a reason, which the runtime layers format together
//! with switchboard topic stats into a human-readable report.

use std::fmt;

use crate::format::Trace;

/// The first point at which two traces disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// Header fields differ (seed / config hash / schema).
    Header { field: &'static str, recorded: u64, replayed: u64 },
    /// One trace has a stream the other lacks (or stream order differs).
    StreamSet { index: usize, recorded: Option<String>, replayed: Option<String> },
    /// One stream has more records than the other.
    RecordCount { stream: String, recorded: usize, replayed: usize },
    /// A record disagrees: the coordinates of the first mismatch.
    Record {
        stream: String,
        index: usize,
        recorded_tag_ns: u64,
        replayed_tag_ns: u64,
        payloads_differ: bool,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Header { field, recorded, replayed } => {
                write!(f, "header.{field}: recorded {recorded:#x} vs replayed {replayed:#x}")
            }
            Divergence::StreamSet { index, recorded, replayed } => write!(
                f,
                "stream set differs at position {index}: recorded {:?} vs replayed {:?}",
                recorded, replayed
            ),
            Divergence::RecordCount { stream, recorded, replayed } => {
                write!(f, "stream {stream:?}: {recorded} recorded vs {replayed} replayed records")
            }
            Divergence::Record {
                stream,
                index,
                recorded_tag_ns,
                replayed_tag_ns,
                payloads_differ,
            } => {
                if recorded_tag_ns != replayed_tag_ns {
                    write!(
                        f,
                        "first divergence at ({stream:?}, record {index}): tag {recorded_tag_ns} ns vs {replayed_tag_ns} ns"
                    )
                } else {
                    debug_assert!(payloads_differ);
                    write!(
                        f,
                        "first divergence at ({stream:?}, tag {recorded_tag_ns} ns, record {index}): payloads differ"
                    )
                }
            }
        }
    }
}

/// Locate the first disagreement between a recorded trace and its
/// replayed re-recording, or `None` if they are identical.
pub fn first_divergence(recorded: &Trace, replayed: &Trace) -> Option<Divergence> {
    let (ra, rb) = (&recorded.header, &replayed.header);
    if ra.schema_version != rb.schema_version {
        return Some(Divergence::Header {
            field: "schema_version",
            recorded: ra.schema_version as u64,
            replayed: rb.schema_version as u64,
        });
    }
    if ra.seed != rb.seed {
        return Some(Divergence::Header { field: "seed", recorded: ra.seed, replayed: rb.seed });
    }
    if ra.config_hash != rb.config_hash {
        return Some(Divergence::Header {
            field: "config_hash",
            recorded: ra.config_hash,
            replayed: rb.config_hash,
        });
    }
    let max_streams = recorded.streams.len().max(replayed.streams.len());
    for i in 0..max_streams {
        let a = recorded.streams.get(i);
        let b = replayed.streams.get(i);
        match (a, b) {
            (Some((na, recs_a)), Some((nb, recs_b))) => {
                if na != nb {
                    return Some(Divergence::StreamSet {
                        index: i,
                        recorded: Some(na.clone()),
                        replayed: Some(nb.clone()),
                    });
                }
                for (j, (rec_a, rec_b)) in recs_a.iter().zip(recs_b.iter()).enumerate() {
                    if rec_a != rec_b {
                        return Some(Divergence::Record {
                            stream: na.clone(),
                            index: j,
                            recorded_tag_ns: rec_a.tag_ns,
                            replayed_tag_ns: rec_b.tag_ns,
                            payloads_differ: rec_a.payload != rec_b.payload,
                        });
                    }
                }
                if recs_a.len() != recs_b.len() {
                    return Some(Divergence::RecordCount {
                        stream: na.clone(),
                        recorded: recs_a.len(),
                        replayed: recs_b.len(),
                    });
                }
            }
            (a, b) => {
                return Some(Divergence::StreamSet {
                    index: i,
                    recorded: a.map(|(n, _)| n.clone()),
                    replayed: b.map(|(n, _)| n.clone()),
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceRecord;

    fn base() -> Trace {
        let mut t = Trace::new(1, 2);
        t.streams.push((
            "imu".into(),
            vec![
                TraceRecord { tag_ns: 10, payload: vec![1] },
                TraceRecord { tag_ns: 20, payload: vec![2] },
            ],
        ));
        t
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        assert_eq!(first_divergence(&base(), &base()), None);
    }

    #[test]
    fn pins_the_first_differing_record() {
        let mut b = base();
        b.streams[0].1[1].payload = vec![9];
        let d = first_divergence(&base(), &b).unwrap();
        assert_eq!(
            d,
            Divergence::Record {
                stream: "imu".into(),
                index: 1,
                recorded_tag_ns: 20,
                replayed_tag_ns: 20,
                payloads_differ: true,
            }
        );
        assert!(d.to_string().contains("tag 20 ns"));
    }

    #[test]
    fn reports_count_and_stream_set_mismatches() {
        let mut b = base();
        b.streams[0].1.pop();
        assert_eq!(
            first_divergence(&base(), &b),
            Some(Divergence::RecordCount { stream: "imu".into(), recorded: 2, replayed: 1 })
        );
        let mut c = base();
        c.streams.push(("camera".into(), vec![]));
        assert_eq!(
            first_divergence(&base(), &c),
            Some(Divergence::StreamSet {
                index: 1,
                recorded: None,
                replayed: Some("camera".into())
            })
        );
    }

    #[test]
    fn header_mismatch_wins_over_record_mismatch() {
        let mut b = base();
        b.header.seed = 99;
        b.streams[0].1[0].payload = vec![7];
        assert!(matches!(
            first_divergence(&base(), &b),
            Some(Divergence::Header { field: "seed", .. })
        ));
    }
}
