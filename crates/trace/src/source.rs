//! The replaying half of the boundary.
//!
//! A [`TraceSource`] wraps an immutable [`Trace`] with one cursor per
//! stream and an optional [`SessionTransform`]. Wiring points poll
//! [`TraceSource::next_due`] with the current simulated time and get
//! back each recorded input exactly once, in recording order, at its
//! (transformed) tag — the replay-side mirror of
//! [`TraceRecorder::record`](crate::recorder::TraceRecorder::record).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::format::{Trace, TraceHeader, TraceRecord};
use crate::transform::SessionTransform;

/// Cursor-per-stream replay handle over a shared trace.
///
/// Clones share cursors (a stream is consumed once per source family);
/// scoped clones resolve `stream` against `prefix + stream`, mirroring
/// [`TraceRecorder::scoped`](crate::recorder::TraceRecorder::scoped).
#[derive(Debug, Clone)]
pub struct TraceSource {
    trace: Arc<Trace>,
    transform: SessionTransform,
    cursors: Arc<Mutex<HashMap<String, usize>>>,
    prefix: String,
}

impl TraceSource {
    pub fn new(trace: Arc<Trace>) -> Self {
        Self::with_transform(trace, SessionTransform::IDENTITY)
    }

    /// A source whose tags (and payload deltas, via
    /// [`TraceSource::transform`]) are mapped into a synthetic
    /// session's timeline.
    pub fn with_transform(trace: Arc<Trace>, transform: SessionTransform) -> Self {
        Self {
            trace,
            transform,
            cursors: Arc::new(Mutex::new(HashMap::new())),
            prefix: String::new(),
        }
    }

    /// A handle onto the same trace and cursors that resolves stream
    /// names under `prefix` (how per-session streams of a recorded
    /// multi-session run are replayed).
    pub fn scoped(&self, prefix: &str) -> Self {
        Self {
            trace: self.trace.clone(),
            transform: self.transform,
            cursors: self.cursors.clone(),
            prefix: format!("{}{prefix}", self.prefix),
        }
    }

    pub fn header(&self) -> TraceHeader {
        self.trace.header
    }

    pub fn transform(&self) -> SessionTransform {
        self.transform
    }

    /// The underlying trace (for divergence reports and re-recording).
    pub fn trace(&self) -> &Arc<Trace> {
        &self.trace
    }

    /// Last untransformed tag across all streams: the recorded span,
    /// used to size fan-out runs so sessions don't outlive their input.
    pub fn span_ns(&self) -> u64 {
        self.trace
            .streams
            .iter()
            .filter_map(|(_, records)| records.last().map(|r| r.tag_ns))
            .max()
            .unwrap_or(0)
    }

    fn records(&self, stream: &str) -> Option<&[TraceRecord]> {
        let key = if self.prefix.is_empty() {
            stream.to_string()
        } else {
            format!("{}{stream}", self.prefix)
        };
        self.trace.stream(&key)
    }

    /// Pop the next record of `stream` whose transformed tag is
    /// `<= now_ns`, returning `(transformed_tag, payload)`. Returns
    /// `None` when the stream is exhausted or its next record is still
    /// in the future.
    pub fn next_due(&self, stream: &str, now_ns: u64) -> Option<(u64, Vec<u8>)> {
        let records = self.records(stream)?;
        let key = if self.prefix.is_empty() {
            stream.to_string()
        } else {
            format!("{}{stream}", self.prefix)
        };
        let mut cursors = self.cursors.lock().unwrap();
        let cursor = cursors.entry(key).or_insert(0);
        let rec = records.get(*cursor)?;
        let tag = self.transform.apply(rec.tag_ns);
        if tag > now_ns {
            return None;
        }
        *cursor += 1;
        Some((tag, rec.payload.clone()))
    }

    /// Number of records of `stream` whose transformed tag is
    /// `<= now_ns`, independent of cursor state. Tags are recorded in
    /// monotone simulated time and transforms are monotone, so this is
    /// a partition point.
    pub fn count_through(&self, stream: &str, now_ns: u64) -> u64 {
        let Some(records) = self.records(stream) else { return 0 };
        records.partition_point(|r| self.transform.apply(r.tag_ns) <= now_ns) as u64
    }

    /// Whether `stream` exists in the trace (with this source's
    /// prefix applied).
    pub fn has_stream(&self, stream: &str) -> bool {
        self.records(stream).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceRecord;

    fn trace() -> Arc<Trace> {
        let mut t = Trace::new(1, 2);
        t.streams.push((
            "imu".into(),
            vec![
                TraceRecord { tag_ns: 100, payload: vec![1] },
                TraceRecord { tag_ns: 200, payload: vec![2] },
                TraceRecord { tag_ns: 300, payload: vec![3] },
            ],
        ));
        t.streams.push(("s1/imu".into(), vec![TraceRecord { tag_ns: 150, payload: vec![9] }]));
        Arc::new(t)
    }

    #[test]
    fn pops_each_record_once_in_order() {
        let src = TraceSource::new(trace());
        assert_eq!(src.next_due("imu", 50), None);
        assert_eq!(src.next_due("imu", 250), Some((100, vec![1])));
        assert_eq!(src.next_due("imu", 250), Some((200, vec![2])));
        assert_eq!(src.next_due("imu", 250), None);
        assert_eq!(src.next_due("imu", 300), Some((300, vec![3])));
        assert_eq!(src.next_due("imu", u64::MAX), None);
        assert_eq!(src.count_through("imu", 250), 2);
        assert_eq!(src.span_ns(), 300);
    }

    #[test]
    fn transform_shifts_due_times_and_counts() {
        let t = SessionTransform { offset_ns: 1_000, dilation: 2.0 };
        let src = TraceSource::with_transform(trace(), t);
        // First record is due at 1_000 + 2·100 = 1_200.
        assert_eq!(src.next_due("imu", 1_199), None);
        assert_eq!(src.next_due("imu", 1_200), Some((1_200, vec![1])));
        assert_eq!(src.count_through("imu", 1_400), 2);
    }

    #[test]
    fn scoped_source_resolves_prefixed_streams() {
        let src = TraceSource::new(trace());
        let s1 = src.scoped("s1/");
        assert!(s1.has_stream("imu"));
        assert!(!s1.has_stream("camera"));
        assert_eq!(s1.next_due("imu", 200), Some((150, vec![9])));
        // The unscoped stream's cursor is untouched.
        assert_eq!(src.next_due("imu", 200), Some((100, vec![1])));
    }
}
