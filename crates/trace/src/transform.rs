//! Fan-out transforms: one recorded session → N synthetic sessions.
//!
//! Each synthetic session replays the same trace through a
//! [`SessionTransform`] — a phase offset (sessions don't start in
//! lockstep) plus a time dilation (users don't move at identical
//! rates). Tags *and* intra-payload time deltas are scaled by the same
//! dilation so payload timestamps keep tracking delivery times and
//! derived metrics (pose age, motion-to-photon) stay meaningful;
//! payload *values* (gyro, accel, poses) are deliberately left
//! untouched, a fidelity tradeoff that keeps the generator a pure
//! byte-replayer.
//!
//! Derivation is a stateless SplitMix64 hash of `(seed, index)`, so a
//! fan-out is reproducible across reruns and machines; session 0 is
//! always the identity so the original run is a member of every fleet
//! it generates.

/// Per-session time transform applied at replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionTransform {
    /// Phase offset added after dilation, in nanoseconds.
    pub offset_ns: u64,
    /// Time-dilation factor applied to tags and payload deltas.
    pub dilation: f64,
}

impl SessionTransform {
    pub const IDENTITY: Self = Self { offset_ns: 0, dilation: 1.0 };

    pub fn is_identity(&self) -> bool {
        *self == Self::IDENTITY
    }

    /// Transform a recorded tag into this session's timeline:
    /// `tag' = offset + round(dilation · tag)`.
    pub fn apply(&self, tag_ns: u64) -> u64 {
        if self.is_identity() {
            return tag_ns;
        }
        self.offset_ns.saturating_add((self.dilation * tag_ns as f64).round() as u64)
    }

    /// Scale an intra-payload time delta (e.g. payload timestamp minus
    /// record tag) by the session's dilation.
    pub fn scale_delta(&self, delta_ns: i64) -> i64 {
        if self.is_identity() {
            return delta_ns;
        }
        (self.dilation * delta_ns as f64).round() as i64
    }
}

impl Default for SessionTransform {
    fn default() -> Self {
        Self::IDENTITY
    }
}

/// SplitMix64: the same stateless mixer `illixr-fault` uses for its
/// trial hashes (duplicated here because this crate sits below it).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from a hash of `(seed, index, salt)`.
fn unit(seed: u64, index: u64, salt: u64) -> f64 {
    let h = splitmix64(splitmix64(seed ^ salt).wrapping_add(index));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic transform for synthetic session `index` of a fan-out.
///
/// * `max_jitter_ns` — phase offsets are uniform in `[0, max_jitter_ns)`.
/// * `dilation_spread` — dilations are uniform in
///   `[1 - spread, 1 + spread)` (clamped to stay positive).
///
/// Session 0 is always [`SessionTransform::IDENTITY`].
pub fn fan_out_transform(
    seed: u64,
    index: usize,
    max_jitter_ns: u64,
    dilation_spread: f64,
) -> SessionTransform {
    if index == 0 {
        return SessionTransform::IDENTITY;
    }
    let index = index as u64;
    let offset_ns = (unit(seed, index, 0x6A17) * max_jitter_ns as f64) as u64;
    let spread = dilation_spread.clamp(0.0, 0.5);
    let dilation = 1.0 - spread + 2.0 * spread * unit(seed, index, 0xD11A);
    SessionTransform { offset_ns, dilation }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_exact_even_for_huge_tags() {
        let id = SessionTransform::IDENTITY;
        assert_eq!(id.apply(u64::MAX), u64::MAX);
        assert_eq!(id.scale_delta(i64::MIN + 1), i64::MIN + 1);
    }

    #[test]
    fn session_zero_is_identity_and_others_are_stable() {
        assert!(fan_out_transform(99, 0, 1_000_000, 0.2).is_identity());
        let a = fan_out_transform(99, 7, 1_000_000, 0.2);
        let b = fan_out_transform(99, 7, 1_000_000, 0.2);
        assert_eq!(a, b);
        assert!(a.offset_ns < 1_000_000);
        assert!(a.dilation > 0.8 && a.dilation < 1.2);
        // Different indices land on different transforms.
        assert_ne!(a, fan_out_transform(99, 8, 1_000_000, 0.2));
    }

    #[test]
    fn dilation_scales_tags_and_deltas_consistently() {
        let t = SessionTransform { offset_ns: 500, dilation: 2.0 };
        assert_eq!(t.apply(1_000), 2_500);
        assert_eq!(t.scale_delta(-300), -600);
    }
}
