//! Bounds-checked little-endian byte codec primitives.
//!
//! The trace container and every payload codec (IMU samples, camera
//! records, link deliveries) are built from these two types. All reads
//! are checked: a truncated or corrupt buffer surfaces as a
//! [`CodecError`] carrying the offending offset, never a panic or a
//! silently short value.

use std::fmt;

/// A failed decode: the reader ran past the end of the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset at which the read was attempted.
    pub offset: usize,
    /// Number of bytes the read needed.
    pub needed: usize,
    /// Number of bytes actually remaining.
    pub remaining: usize,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "truncated buffer: needed {} bytes at offset {}, only {} remaining",
            self.needed, self.offset, self.remaining
        )
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian writer over a growable byte vector.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Floats are serialized via their IEEE-754 bit pattern so a
    /// round-trip is exact for every value, including NaNs.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// Checked little-endian cursor over a borrowed byte slice.
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current cursor offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left between the cursor and the end of the buffer.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError { offset: self.pos, needed: n, remaining: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn take_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take_bytes(2)?.try_into().unwrap()))
    }

    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take_bytes(4)?.try_into().unwrap()))
    }

    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_bytes(8)?.try_into().unwrap()))
    }

    pub fn take_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take_bytes(8)?.try_into().unwrap()))
    }

    pub fn take_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.take_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 7);
        w.put_i64(-42);
        w.put_f64(-0.125);
        w.put_f64(f64::NAN);
        w.put_bytes(b"tail");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u16().unwrap(), 0xBEEF);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.take_i64().unwrap(), -42);
        assert_eq!(r.take_f64().unwrap(), -0.125);
        assert!(r.take_f64().unwrap().is_nan());
        assert_eq!(r.take_bytes(4).unwrap(), b"tail");
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_read_reports_offset_and_need() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        r.take_u16().unwrap();
        let err = r.take_u64().unwrap_err();
        assert_eq!(err, CodecError { offset: 2, needed: 8, remaining: 1 });
        assert!(err.to_string().contains("offset 2"));
    }
}
