//! The on-disk checkpoint container: `ILXC`, the snapshot sibling of
//! the `ILXT` trace.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic        4 bytes   "ILXC"
//! version      u32       CHECKPOINT_SCHEMA_VERSION
//! seed         u64       world/config seed of the checkpointed run
//! config_hash  u64       FNV-1a hash of the run configuration
//! tag_ns       u64       simulated time the snapshot was captured at
//! entry_count  u32
//! per entry:
//!   name_len   u16
//!   name       name_len bytes of UTF-8 (e.g. "s3/session")
//!   len        u32       payload length
//!   payload    len bytes (opaque to the container)
//! ```
//!
//! The entry payloads are opaque here for the same reason trace record
//! payloads are: the codec lives with the type that owns the state (the
//! server's session snapshot codec), not with the container. What the
//! container *does* own is identity and integrity: the same FNV
//! config-hash discipline as [`crate::format::Trace`], a schema version
//! that is bumped on any layout change, and a strict decoder that
//! rejects bad magic, unknown versions, truncation and trailing bytes
//! with typed errors. A checkpoint that half-decodes would restore a
//! half-truth, so nothing structurally suspect is accepted — the
//! failover path downgrades a corrupt checkpoint to restart-only
//! recovery instead of guessing.
//!
//! # Crash-record replay contract
//!
//! Checkpoints compose with the crash records the boundary writes into
//! `ILXT` traces. The contract, shared by `FaultPlan::crash_due` and
//! `Boundary::crash_due`:
//!
//! * **Recording** — each scheduled crash that fires is appended to the
//!   stream `crash/<plugin>` at its release tag, one empty-payload
//!   record per firing. The plan's count of windows opened through time
//!   `t` (`FaultPlan::crash_count_through`) minus the caller's
//!   fired-count decides whether the next firing is due.
//! * **Replay** — a replaying boundary consults *only* the recorded
//!   `crash/` stream (counting records through the release tag), never
//!   the replay side's plan, so a recorded run reproduces its crashes —
//!   and nothing else — whatever plan the replay carries.
//! * **Checkpoint/restore** — a snapshot taken at `tag_ns` implies
//!   every crash record with tag ≤ `tag_ns` has been delivered;
//!   catch-up replay re-applies only later records.

use std::fmt;

use crate::codec::{ByteReader, ByteWriter, CodecError};

/// File magic: "ILXC" (ILLIXR Checkpoint).
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"ILXC";

/// Current checkpoint schema version. Bump on any layout change —
/// decoders reject unknown versions rather than guessing (a checkpoint
/// is a *measurement* of run state, not a document).
pub const CHECKPOINT_SCHEMA_VERSION: u32 = 1;

/// Decode failure modes. Mirrors [`crate::format::TraceError`]:
/// anything structurally suspect is rejected with a typed error the
/// failover path can match on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer does not start with the `ILXC` magic.
    BadMagic { found: [u8; 4] },
    /// Header version this decoder does not understand.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The buffer ended mid-structure.
    Truncated(CodecError),
    /// An entry name was not valid UTF-8.
    BadEntryName { entry_index: usize },
    /// Bytes remained after the last declared entry.
    TrailingBytes { remaining: usize },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic { found } => {
                write!(f, "bad checkpoint magic {found:?}, expected {CHECKPOINT_MAGIC:?}")
            }
            CheckpointError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported checkpoint schema version {found} (this build reads {supported})"
                )
            }
            CheckpointError::Truncated(e) => write!(f, "truncated checkpoint: {e}"),
            CheckpointError::BadEntryName { entry_index } => {
                write!(f, "entry {entry_index} has a non-UTF-8 name")
            }
            CheckpointError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after the last entry")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        CheckpointError::Truncated(e)
    }
}

/// A decoded (or about-to-be-encoded) checkpoint: identity header plus
/// named opaque state entries.
///
/// Entries keep insertion order — part of the format's determinism
/// contract (re-encoding a decoded checkpoint is byte-identical).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Schema version this checkpoint was written with.
    pub schema_version: u32,
    /// Seed of the checkpointed run.
    pub seed: u64,
    /// Hash of the run configuration, for provenance and mismatch
    /// rejection at restore time.
    pub config_hash: u64,
    /// Simulated time the snapshot was captured at, nanoseconds.
    pub tag_ns: u64,
    /// Named state payloads (e.g. `"s3/session"` → session snapshot
    /// bytes). Opaque to the container.
    pub entries: Vec<(String, Vec<u8>)>,
}

impl Checkpoint {
    /// An empty checkpoint with the given identity.
    pub fn new(seed: u64, config_hash: u64, tag_ns: u64) -> Self {
        Self {
            schema_version: CHECKPOINT_SCHEMA_VERSION,
            seed,
            config_hash,
            tag_ns,
            entries: Vec::new(),
        }
    }

    /// The payload of one named entry, if present.
    pub fn entry(&self, name: &str) -> Option<&[u8]> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, p)| p.as_slice())
    }

    /// Serialize to the container layout documented at module level.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(&CHECKPOINT_MAGIC);
        w.put_u32(self.schema_version);
        w.put_u64(self.seed);
        w.put_u64(self.config_hash);
        w.put_u64(self.tag_ns);
        w.put_u32(self.entries.len() as u32);
        for (name, payload) in &self.entries {
            w.put_u16(name.len() as u16);
            w.put_bytes(name.as_bytes());
            w.put_u32(payload.len() as u32);
            w.put_bytes(payload);
        }
        w.into_bytes()
    }

    /// Strict decode: magic, version, structure and exact length are
    /// all enforced.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let magic: [u8; 4] = r.take_bytes(4)?.try_into().unwrap();
        if magic != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic { found: magic });
        }
        let schema_version = r.take_u32()?;
        if schema_version != CHECKPOINT_SCHEMA_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: schema_version,
                supported: CHECKPOINT_SCHEMA_VERSION,
            });
        }
        let seed = r.take_u64()?;
        let config_hash = r.take_u64()?;
        let tag_ns = r.take_u64()?;
        let entry_count = r.take_u32()? as usize;
        // Capacity is clamped so a corrupt count cannot trigger a huge
        // allocation before the reads below catch it.
        let mut entries = Vec::with_capacity(entry_count.min(1 << 16));
        for entry_index in 0..entry_count {
            let name_len = r.take_u16()? as usize;
            let name = std::str::from_utf8(r.take_bytes(name_len)?)
                .map_err(|_| CheckpointError::BadEntryName { entry_index })?
                .to_string();
            let len = r.take_u32()? as usize;
            let payload = r.take_bytes(len)?.to_vec();
            entries.push((name, payload));
        }
        if !r.is_empty() {
            return Err(CheckpointError::TrailingBytes { remaining: r.remaining() });
        }
        Ok(Self { schema_version, seed, config_hash, tag_ns, entries })
    }

    /// Human-readable index: identity line plus one row per entry.
    /// Committed next to fixtures so a binary checkpoint is reviewable.
    pub fn index_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "checkpoint v{} seed={:#018x} config_hash={:#018x} tag_ns={}\n",
            self.schema_version, self.seed, self.config_hash, self.tag_ns
        ));
        out.push_str("entry, payload_bytes\n");
        for (name, payload) in &self.entries {
            out.push_str(&format!("{name}, {}\n", payload.len()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Checkpoint {
        let mut c = Checkpoint::new(42, 0xABCD, 2_000_000_000);
        c.entries.push(("s0/session".into(), vec![1, 2, 3, 4]));
        c.entries.push(("s1/session".into(), vec![]));
        c.entries.push(("s2/session".into(), vec![9; 80]));
        c
    }

    #[test]
    fn encode_decode_round_trips() {
        let c = sample();
        let bytes = c.encode();
        let back = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(back, c);
        // Re-encoding a decoded checkpoint is byte-identical.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert!(matches!(Checkpoint::decode(&bytes), Err(CheckpointError::BadMagic { .. })));
    }

    #[test]
    fn rejects_unsupported_version() {
        let mut bytes = sample().encode();
        bytes[4] = 0xFF;
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::UnsupportedVersion { found, .. })
                if found != CHECKPOINT_SCHEMA_VERSION
        ));
    }

    #[test]
    fn rejects_every_truncation_point() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            let err = Checkpoint::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Truncated(_) | CheckpointError::BadMagic { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert_eq!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn entry_lookup_finds_by_name() {
        let c = sample();
        assert_eq!(c.entry("s0/session"), Some(&[1u8, 2, 3, 4][..]));
        assert!(c.entry("s9/session").is_none());
    }

    #[test]
    fn index_text_lists_every_entry() {
        let idx = sample().index_text();
        assert!(idx.contains("s0/session, 4"));
        assert!(idx.contains("s2/session, 80"));
        assert!(idx.contains("tag_ns=2000000000"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Arbitrary entry contents survive an encode→decode round trip
        // exactly, and the encoding is canonical.
        #[test]
        fn arbitrary_checkpoints_round_trip(
            seed in 0u64..u64::MAX,
            config_hash in 0u64..u64::MAX,
            tag_ns in 0u64..u64::MAX,
            entries in proptest::collection::vec(
                (0usize..8, proptest::collection::vec(0u8..u8::MAX, 0..64)),
                0..6,
            ),
        ) {
            let checkpoint = Checkpoint {
                schema_version: CHECKPOINT_SCHEMA_VERSION,
                seed,
                config_hash,
                tag_ns,
                entries: entries
                    .into_iter()
                    .enumerate()
                    .map(|(i, (kind, payload))| (format!("s{i}/state-{kind}"), payload))
                    .collect(),
            };
            let bytes = checkpoint.encode();
            let back = Checkpoint::decode(&bytes).unwrap();
            prop_assert_eq!(&back, &checkpoint);
            prop_assert_eq!(back.encode(), bytes);
        }

        // Corrupting any single byte of the fixed-layout header region
        // never panics: it either still decodes (the byte was benign,
        // e.g. inside seed/config_hash/tag) or yields a typed error.
        #[test]
        fn corrupt_header_bytes_never_panic(pos in 0usize..32, val in 0u8..u8::MAX) {
            let mut bytes = sample().encode();
            if pos < bytes.len() {
                bytes[pos] = val;
            }
            let _ = Checkpoint::decode(&bytes);
        }
    }
}
