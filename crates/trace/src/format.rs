//! The on-disk trace container.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic        4 bytes   "ILXT"
//! version      u32       SCHEMA_VERSION
//! seed         u64       world/config seed of the recorded run
//! config_hash  u64       FNV-1a hash of the recording configuration
//! stream_count u32
//! per stream:
//!   name_len   u16
//!   name       name_len bytes of UTF-8
//!   records    u64       record count
//!   per record:
//!     tag_ns   u64       boundary timestamp (simulated nanoseconds)
//!     len      u32       payload length
//!     payload  len bytes (opaque to the container)
//! ```
//!
//! Versioning policy: the schema version is bumped on any layout
//! change; decoders reject unknown versions rather than guessing
//! (replay correctness beats forward compatibility — a trace is a
//! *measurement*, not a document).

use std::fmt;

use crate::codec::{ByteReader, ByteWriter, CodecError};

/// File magic: "ILXT" (ILLIXR Trace).
pub const MAGIC: [u8; 4] = *b"ILXT";

/// Current container schema version. Bump on any layout change.
pub const SCHEMA_VERSION: u32 = 1;

/// Identity of a recorded run: enough to tell at replay time whether
/// the trace plausibly matches the configuration it is fed into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    pub schema_version: u32,
    /// Seed of the recorded run (drives world/trajectory regeneration
    /// at replay time).
    pub seed: u64,
    /// Hash of the recording-side configuration, for provenance and
    /// mismatch warnings.
    pub config_hash: u64,
}

/// One boundary event: a tagged opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated-time nanosecond tag at which the input crossed the
    /// boundary.
    pub tag_ns: u64,
    /// Payload bytes; the codec lives with the type that owns the
    /// stream, not with the container.
    pub payload: Vec<u8>,
}

/// Decode failure modes. Anything structurally suspect is rejected —
/// a trace that half-decodes would replay as a half-truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The buffer does not start with the `ILXT` magic.
    BadMagic { found: [u8; 4] },
    /// Header version this decoder does not understand.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The buffer ended mid-structure.
    Truncated(CodecError),
    /// A stream name was not valid UTF-8.
    BadStreamName { stream_index: usize },
    /// Bytes remained after the last declared record.
    TrailingBytes { remaining: usize },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic { found } => {
                write!(f, "bad trace magic {found:?}, expected {MAGIC:?}")
            }
            TraceError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported trace schema version {found} (this build reads {supported})")
            }
            TraceError::Truncated(e) => write!(f, "truncated trace: {e}"),
            TraceError::BadStreamName { stream_index } => {
                write!(f, "stream {stream_index} has a non-UTF-8 name")
            }
            TraceError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after the last record")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<CodecError> for TraceError {
    fn from(e: CodecError) -> Self {
        TraceError::Truncated(e)
    }
}

/// A decoded (or snapshot) trace: header plus per-stream record lists.
///
/// Streams keep their first-record order, and records within a stream
/// keep recording order — both are part of the format's determinism
/// contract (re-encoding a decoded trace is byte-identical).
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    pub header: TraceHeader,
    pub streams: Vec<(String, Vec<TraceRecord>)>,
}

impl Trace {
    /// An empty trace with the given identity.
    pub fn new(seed: u64, config_hash: u64) -> Self {
        Self {
            header: TraceHeader { schema_version: SCHEMA_VERSION, seed, config_hash },
            streams: Vec::new(),
        }
    }

    /// Records of one stream, if present.
    pub fn stream(&self, name: &str) -> Option<&[TraceRecord]> {
        self.streams.iter().find(|(n, _)| n == name).map(|(_, r)| r.as_slice())
    }

    /// Total record count across all streams.
    pub fn record_count(&self) -> usize {
        self.streams.iter().map(|(_, r)| r.len()).sum()
    }

    /// Serialize to the container layout documented at module level.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(&MAGIC);
        w.put_u32(self.header.schema_version);
        w.put_u64(self.header.seed);
        w.put_u64(self.header.config_hash);
        w.put_u32(self.streams.len() as u32);
        for (name, records) in &self.streams {
            w.put_u16(name.len() as u16);
            w.put_bytes(name.as_bytes());
            w.put_u64(records.len() as u64);
            for rec in records {
                w.put_u64(rec.tag_ns);
                w.put_u32(rec.payload.len() as u32);
                w.put_bytes(&rec.payload);
            }
        }
        w.into_bytes()
    }

    /// Strict decode: magic, version, structure and exact length are
    /// all enforced.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        let mut r = ByteReader::new(bytes);
        let magic: [u8; 4] = r.take_bytes(4)?.try_into().unwrap();
        if magic != MAGIC {
            return Err(TraceError::BadMagic { found: magic });
        }
        let schema_version = r.take_u32()?;
        if schema_version != SCHEMA_VERSION {
            return Err(TraceError::UnsupportedVersion {
                found: schema_version,
                supported: SCHEMA_VERSION,
            });
        }
        let seed = r.take_u64()?;
        let config_hash = r.take_u64()?;
        let stream_count = r.take_u32()? as usize;
        let mut streams = Vec::with_capacity(stream_count);
        for stream_index in 0..stream_count {
            let name_len = r.take_u16()? as usize;
            let name = std::str::from_utf8(r.take_bytes(name_len)?)
                .map_err(|_| TraceError::BadStreamName { stream_index })?
                .to_string();
            let record_count = r.take_u64()? as usize;
            // Capacity is clamped so a corrupt count cannot trigger a
            // huge allocation before the reads below catch it.
            let mut records = Vec::with_capacity(record_count.min(1 << 16));
            for _ in 0..record_count {
                let tag_ns = r.take_u64()?;
                let len = r.take_u32()? as usize;
                let payload = r.take_bytes(len)?.to_vec();
                records.push(TraceRecord { tag_ns, payload });
            }
            streams.push((name, records));
        }
        if !r.is_empty() {
            return Err(TraceError::TrailingBytes { remaining: r.remaining() });
        }
        Ok(Self { header: TraceHeader { schema_version, seed, config_hash }, streams })
    }

    /// Human-readable index: one row per stream with record count,
    /// payload bytes and tag span. Committed next to fixtures so a
    /// binary trace is reviewable.
    pub fn index_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace v{} seed={:#018x} config_hash={:#018x}\n",
            self.header.schema_version, self.header.seed, self.header.config_hash
        ));
        out.push_str("stream, records, payload_bytes, first_tag_ns, last_tag_ns\n");
        for (name, records) in &self.streams {
            let bytes: usize = records.iter().map(|r| r.payload.len()).sum();
            let first = records.first().map(|r| r.tag_ns).unwrap_or(0);
            let last = records.last().map(|r| r.tag_ns).unwrap_or(0);
            out.push_str(&format!("{name}, {}, {bytes}, {first}, {last}\n", records.len()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Trace {
        let mut t = Trace::new(42, 0xABCD);
        t.streams.push((
            "imu".into(),
            vec![
                TraceRecord { tag_ns: 1_000, payload: vec![1, 2, 3] },
                TraceRecord { tag_ns: 3_000, payload: vec![] },
            ],
        ));
        t.streams
            .push(("camera".into(), vec![TraceRecord { tag_ns: 2_000, payload: vec![9; 80] }]));
        t
    }

    #[test]
    fn encode_decode_round_trips() {
        let t = sample();
        let bytes = t.encode();
        let back = Trace::decode(&bytes).unwrap();
        assert_eq!(back, t);
        // Re-encoding a decoded trace is byte-identical.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert!(matches!(Trace::decode(&bytes), Err(TraceError::BadMagic { .. })));
    }

    #[test]
    fn rejects_unsupported_version() {
        let mut bytes = sample().encode();
        bytes[4] = 0xFF;
        assert!(matches!(
            Trace::decode(&bytes),
            Err(TraceError::UnsupportedVersion { found, .. }) if found != SCHEMA_VERSION
        ));
    }

    #[test]
    fn rejects_every_truncation_point() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            let err = Trace::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, TraceError::Truncated(_) | TraceError::BadMagic { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert_eq!(Trace::decode(&bytes), Err(TraceError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn index_text_lists_every_stream() {
        let idx = sample().index_text();
        assert!(idx.contains("imu, 2, 3, 1000, 3000"));
        assert!(idx.contains("camera, 1, 80, 2000, 2000"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Arbitrary stream/record contents survive an encode→decode
        // round trip exactly, and the encoding is canonical.
        #[test]
        fn arbitrary_traces_round_trip(
            seed in 0u64..u64::MAX,
            config_hash in 0u64..u64::MAX,
            streams in proptest::collection::vec(
                (
                    0usize..6,
                    proptest::collection::vec(
                        (0u64..u64::MAX, proptest::collection::vec(0u8..u8::MAX, 0..32)),
                        0..8,
                    ),
                ),
                0..5,
            ),
        ) {
            let trace = Trace {
                header: TraceHeader { schema_version: SCHEMA_VERSION, seed, config_hash },
                streams: streams
                    .into_iter()
                    .enumerate()
                    .map(|(i, (kind, recs))| {
                        (
                            format!("s{i}/stream-{kind}"),
                            recs.into_iter()
                                .map(|(tag_ns, payload)| TraceRecord { tag_ns, payload })
                                .collect(),
                        )
                    })
                    .collect(),
            };
            let bytes = trace.encode();
            let back = Trace::decode(&bytes).unwrap();
            prop_assert_eq!(&back, &trace);
            prop_assert_eq!(back.encode(), bytes);
        }
    }
}
