//! Record/replay determinism boundary for the ILLIXR testbed.
//!
//! The testbed's runs are already same-seed deterministic; this crate
//! makes them *portable* in time. Following the Boomerang rule —
//! record every physical input (value + tag) at the boundary, replay
//! the recorded values instead of regenerating them — a recorded run
//! can be reproduced bit-for-bit without the generators, the fault
//! RNG, or the original configuration of either. One recorded session
//! can then be fanned out into N synthetic sessions via deterministic
//! per-session phase-jitter and time-dilation transforms, turning a
//! single trace into a scalable load generator.
//!
//! * **[`mod@format`]** — [`Trace`], [`TraceHeader`], [`TraceRecord`]: the
//!   versioned, length-prefixed binary container and its text index.
//! * **[`checkpoint`]** — [`Checkpoint`]: the `ILXC` snapshot sibling
//!   of the trace container — versioned, length-prefixed, strictly
//!   decoded session-state snapshots for crash-consistent failover,
//!   plus the crash-record replay contract docs.
//! * **[`codec`]** — bounds-checked little-endian primitives shared by
//!   the container and the payload codecs living next to the types
//!   they serialize.
//! * **[`recorder`]** — [`TraceRecorder`]: a cloneable sink the wiring
//!   points call with `(stream, tag_ns, payload)`.
//! * **[`source`]** — [`TraceSource`]: cursor-per-stream replay with an
//!   optional [`SessionTransform`] applied to every tag.
//! * **[`transform`]** — [`SessionTransform`] and the deterministic
//!   fan-out derivation (session 0 is always the identity).
//! * **[`divergence`]** — first-diverging-record reports so golden
//!   tests fail with `(stream, tag_ns)` coordinates, not a bare assert.
//!
//! Like `illixr-obs`, `illixr-sched` and `illixr-fault`, this crate
//! sits *below* `illixr-core`: all timestamps are raw `u64`
//! nanoseconds and all payloads opaque bytes, so sensors, links and
//! the multi-session server share one trace vocabulary.

pub mod checkpoint;
pub mod codec;
pub mod divergence;
pub mod format;
pub mod recorder;
pub mod source;
pub mod transform;

pub use checkpoint::{Checkpoint, CheckpointError, CHECKPOINT_SCHEMA_VERSION};
pub use codec::{ByteReader, ByteWriter, CodecError};
pub use divergence::{first_divergence, Divergence};
pub use format::{Trace, TraceError, TraceHeader, TraceRecord, SCHEMA_VERSION};
pub use recorder::TraceRecorder;
pub use source::TraceSource;
pub use transform::{fan_out_transform, SessionTransform};
