//! The adaptive degradation governor: EDF plus graceful degradation.
//!
//! The governor watches chain outcomes over a sliding window. When the
//! windowed miss rate stays above an escalation threshold it climbs a
//! fixed degradation ladder; when the miss rate stays below a (lower)
//! restoration threshold for several consecutive windows it climbs
//! back down. The gap between the two thresholds plus the
//! consecutive-window requirement is the hysteresis that prevents
//! level flapping at the overload boundary.
//!
//! The ladder (cumulative — each level includes the ones below):
//!
//! | level | action |
//! |-------|--------|
//! | 0 | nominal: plain EDF |
//! | 1 | halve `Perception` and `Visual` rates (shed odd-numbered releases) |
//! | 2 | + work-factor shortcut: scale `Perception`/`Visual` cost by `shortcut_scale` |
//! | 3 | + drop `Audio` and `BestEffort` jobs entirely |
//!
//! `Critical` jobs are never touched: they are the tail of the
//! motion-to-photon chain, and shedding them converts lateness into
//! absence.

use crate::chain::ChainOutcome;
use crate::policy::{Edf, Policy};
use crate::task::{PriorityClass, ReadyJob};

/// Tuning for the governor's control loop.
#[derive(Clone, Copy, Debug)]
pub struct GovernorConfig {
    /// Chain outcomes per control window.
    pub window: u32,
    /// Escalate one level when a window's miss rate exceeds this.
    pub escalate_miss_rate: f64,
    /// A window counts toward restoration when its miss rate is below this.
    pub restore_miss_rate: f64,
    /// Consecutive clean windows required to step down one level.
    pub restore_windows: u32,
    /// Highest ladder level.
    pub max_level: u32,
    /// Cost multiplier applied to shortcut-capable classes at level ≥ 2.
    pub shortcut_scale: f64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        Self {
            window: 16,
            escalate_miss_rate: 0.25,
            restore_miss_rate: 0.05,
            restore_windows: 4,
            max_level: 3,
            shortcut_scale: 0.75,
        }
    }
}

/// EDF with the degradation ladder. Wraps a plain [`Edf`] selector;
/// all governor behaviour lives in the `admit`/`cost_scale`/
/// `on_chain_outcome` hooks.
pub struct AdaptiveGovernor {
    config: GovernorConfig,
    edf: Edf,
    level: u32,
    /// Outcomes and misses accumulated in the current window.
    window_total: u32,
    window_missed: u32,
    /// Consecutive clean windows observed at the current level.
    clean_windows: u32,
    /// Total jobs shed by admission control, by cause.
    shed_rate: u64,
    shed_class: u64,
    /// Level transitions as (outcome index, new level), for telemetry.
    transitions: Vec<(u64, u32)>,
    outcomes_seen: u64,
}

impl AdaptiveGovernor {
    pub fn new(config: GovernorConfig) -> Self {
        Self {
            config,
            edf: Edf,
            level: 0,
            window_total: 0,
            window_missed: 0,
            clean_windows: 0,
            shed_rate: 0,
            shed_class: 0,
            transitions: Vec::new(),
            outcomes_seen: 0,
        }
    }

    /// Jobs shed by rate-halving (level ≥ 1).
    pub fn shed_rate_jobs(&self) -> u64 {
        self.shed_rate
    }

    /// Jobs shed by class-dropping (level ≥ 3).
    pub fn shed_class_jobs(&self) -> u64 {
        self.shed_class
    }

    /// Level transitions as `(chain-outcome index, new level)`.
    pub fn transitions(&self) -> &[(u64, u32)] {
        &self.transitions
    }

    /// Highest level reached so far.
    pub fn max_level_reached(&self) -> u32 {
        self.transitions.iter().map(|&(_, l)| l).max().unwrap_or(0)
    }

    fn close_window(&mut self) {
        let rate = self.window_missed as f64 / self.window_total.max(1) as f64;
        if rate > self.config.escalate_miss_rate {
            self.clean_windows = 0;
            if self.level < self.config.max_level {
                self.level += 1;
                self.transitions.push((self.outcomes_seen, self.level));
            }
        } else if rate < self.config.restore_miss_rate {
            if self.level > 0 {
                self.clean_windows += 1;
                if self.clean_windows >= self.config.restore_windows {
                    self.level -= 1;
                    self.clean_windows = 0;
                    self.transitions.push((self.outcomes_seen, self.level));
                }
            }
        } else {
            // Between the thresholds: the hysteresis band — hold.
            self.clean_windows = 0;
        }
        self.window_total = 0;
        self.window_missed = 0;
    }
}

impl Policy for AdaptiveGovernor {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn select(&mut self, ready: &[ReadyJob]) -> usize {
        self.edf.select(ready)
    }

    fn admit(&mut self, job: &ReadyJob) -> bool {
        match job.class {
            PriorityClass::Critical => true,
            PriorityClass::Perception | PriorityClass::Visual => {
                // Level ≥ 1: halve the rate by shedding odd releases.
                if self.level >= 1 && job.seq % 2 == 1 {
                    self.shed_rate += 1;
                    false
                } else {
                    true
                }
            }
            PriorityClass::Audio | PriorityClass::BestEffort => {
                // Level ≥ 3: drop the class entirely.
                if self.level >= 3 {
                    self.shed_class += 1;
                    false
                } else {
                    true
                }
            }
        }
    }

    fn cost_scale(&self, class: PriorityClass) -> f64 {
        if self.level >= 2 && matches!(class, PriorityClass::Perception | PriorityClass::Visual) {
            self.config.shortcut_scale
        } else {
            1.0
        }
    }

    fn on_chain_outcome(&mut self, outcome: &ChainOutcome) {
        self.outcomes_seen += 1;
        self.window_total += 1;
        if outcome.missed {
            self.window_missed += 1;
        }
        if self.window_total >= self.config.window {
            self.close_window();
        }
    }

    /// Watchdog-driven escalation: climb one level immediately and
    /// restart the current window, without waiting for chain misses to
    /// accumulate — a degraded plugin's chains may never complete at
    /// all, which is exactly when miss-rate feedback goes blind.
    fn escalate(&mut self) {
        self.clean_windows = 0;
        self.window_total = 0;
        self.window_missed = 0;
        if self.level < self.config.max_level {
            self.level += 1;
            self.transitions.push((self.outcomes_seen, self.level));
        }
    }

    fn level(&self) -> u32 {
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(missed: bool) -> ChainOutcome {
        ChainOutcome {
            chain: 0,
            origin_ns: 0,
            end_ns: 1,
            latency_ns: 1,
            deadline_ns: if missed { 0 } else { 10 },
            missed,
        }
    }

    fn job(class: PriorityClass, seq: u64) -> ReadyJob {
        ReadyJob { task: 0, seq, release_ns: 0, deadline_ns: 100, priority: 0, class }
    }

    fn feed(g: &mut AdaptiveGovernor, missed: usize, hit: usize) {
        for _ in 0..missed {
            g.on_chain_outcome(&outcome(true));
        }
        for _ in 0..hit {
            g.on_chain_outcome(&outcome(false));
        }
    }

    #[test]
    fn escalates_one_level_per_bad_window() {
        let mut g = AdaptiveGovernor::new(GovernorConfig::default());
        assert_eq!(g.level(), 0);
        feed(&mut g, 8, 8); // 50% miss rate > 25%
        assert_eq!(g.level(), 1);
        feed(&mut g, 8, 8);
        assert_eq!(g.level(), 2);
        feed(&mut g, 8, 8);
        assert_eq!(g.level(), 3);
        feed(&mut g, 16, 0); // capped at max_level
        assert_eq!(g.level(), 3);
        assert_eq!(g.max_level_reached(), 3);
    }

    #[test]
    fn watchdog_escalation_bumps_level_and_resets_window() {
        let mut g = AdaptiveGovernor::new(GovernorConfig::default());
        g.escalate();
        assert_eq!(g.level(), 1);
        g.escalate();
        g.escalate();
        g.escalate(); // capped at max_level
        assert_eq!(g.level(), 3);
        assert_eq!(g.transitions().len(), 3);
        // The restarted window still restores hysteretically.
        for _ in 0..4 {
            feed(&mut g, 0, 16);
        }
        assert_eq!(g.level(), 2);
    }

    #[test]
    fn restores_hysteretically_after_consecutive_clean_windows() {
        let cfg = GovernorConfig::default();
        let mut g = AdaptiveGovernor::new(cfg);
        feed(&mut g, 16, 0);
        assert_eq!(g.level(), 1);
        // Three clean windows: not yet enough (restore_windows = 4).
        for _ in 0..3 {
            feed(&mut g, 0, 16);
        }
        assert_eq!(g.level(), 1);
        feed(&mut g, 0, 16);
        assert_eq!(g.level(), 0);
    }

    #[test]
    fn miss_rate_in_hysteresis_band_holds_level_and_resets_streak() {
        let mut g = AdaptiveGovernor::new(GovernorConfig::default());
        feed(&mut g, 16, 0);
        assert_eq!(g.level(), 1);
        for _ in 0..3 {
            feed(&mut g, 0, 16); // clean streak of 3
        }
        feed(&mut g, 2, 14); // 12.5%: between 5% and 25% — resets streak
        for _ in 0..3 {
            feed(&mut g, 0, 16);
        }
        assert_eq!(g.level(), 1, "streak must restart after an in-band window");
        feed(&mut g, 0, 16);
        assert_eq!(g.level(), 0);
    }

    #[test]
    fn ladder_sheds_by_class_and_never_touches_critical() {
        let mut g = AdaptiveGovernor::new(GovernorConfig::default());
        // Level 0: everything admitted.
        assert!(g.admit(&job(PriorityClass::Perception, 1)));
        assert!(g.admit(&job(PriorityClass::Audio, 1)));

        feed(&mut g, 16, 0); // → level 1
        assert!(g.admit(&job(PriorityClass::Perception, 0)), "even seq kept");
        assert!(!g.admit(&job(PriorityClass::Perception, 1)), "odd seq shed");
        assert!(!g.admit(&job(PriorityClass::Visual, 3)));
        assert!(g.admit(&job(PriorityClass::Audio, 1)), "audio survives level 1");
        assert!(g.admit(&job(PriorityClass::Critical, 1)));
        assert_eq!(g.cost_scale(PriorityClass::Perception), 1.0);

        feed(&mut g, 16, 0); // → level 2
        assert_eq!(g.cost_scale(PriorityClass::Perception), 0.75);
        assert_eq!(g.cost_scale(PriorityClass::Visual), 0.75);
        assert_eq!(g.cost_scale(PriorityClass::Critical), 1.0);
        assert_eq!(g.cost_scale(PriorityClass::Audio), 1.0);

        feed(&mut g, 16, 0); // → level 3
        assert!(!g.admit(&job(PriorityClass::Audio, 0)));
        assert!(!g.admit(&job(PriorityClass::BestEffort, 2)));
        assert!(g.admit(&job(PriorityClass::Critical, 7)), "critical never shed");
        assert!(g.shed_rate_jobs() > 0);
        assert!(g.shed_class_jobs() > 0);
        assert_eq!(g.transitions(), &[(16, 1), (32, 2), (48, 3)]);
    }
}
