//! FNV-1a sharding of session ids onto a fixed worker-core pool.
//!
//! The multi-session server owns each session's state on exactly one
//! shard, so a shard's worker can mutate its sessions without locks
//! held across shards. The mapping must be (a) stable — the same id
//! lands on the same shard for the whole run — and (b) independent of
//! any runtime state, so that reports are invariant to the shard count
//! (the shard-invariance golden test). FNV-1a is the repo's standing
//! choice for cheap deterministic hashing (flow ids, config hashes).

/// FNV-1a over the little-endian bytes of `id`.
pub fn fnv1a_u32(id: u32) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.to_le_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A fixed-size shard map: `session id → shard index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
}

impl ShardMap {
    /// A map over `shards` shards (clamped to at least one).
    pub fn new(shards: usize) -> Self {
        Self { shards: shards.max(1) }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `session`.
    pub fn shard_of(&self, session: u32) -> usize {
        (fnv1a_u32(session) % self.shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_stable_and_in_range() {
        let map = ShardMap::new(7);
        for id in 0..1000 {
            let s = map.shard_of(id);
            assert!(s < 7);
            assert_eq!(s, map.shard_of(id), "mapping must be a pure function");
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let map = ShardMap::new(1);
        assert!((0..100).all(|id| map.shard_of(id) == 0));
        assert_eq!(ShardMap::new(0).shards(), 1, "zero shards clamps to one");
    }

    #[test]
    fn fnv_spreads_sequential_ids() {
        // Session ids are sequential; the hash must not funnel them
        // onto a few shards. Allow generous skew: no shard above 2× the
        // fair share at 1000 ids over 8 shards.
        let map = ShardMap::new(8);
        let mut counts = [0usize; 8];
        for id in 0..1000 {
            counts[map.shard_of(id)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "empty shard: {counts:?}");
        assert!(counts.iter().all(|&c| c < 250), "skewed shards: {counts:?}");
    }
}
