//! Device/edge placement plans and the adaptive placement controller.
//!
//! FleXR-style flexible pipeline distribution (PAPERS.md, arXiv
//! 2307.15574): an XR pipeline is cut at named *cut-points* (after
//! cameras, after feature tracking, after VIO …) and everything
//! downstream of a cut runs either [`Side::Device`] (on the headset)
//! or [`Side::Edge`] (behind a link). A [`PlacementPlan`] declares the
//! cuts; a [`PlacementController`] migrates one cut adaptively, fed by
//! the same chain-deadline outcomes the governor consumes plus a
//! link-health probe, with the governor's windowed-hysteresis shape
//! (escalate on a missed window, restore only after several
//! consecutive clean epochs) so placement flaps are bounded.
//!
//! **Decision-epoch determinism rule:** the controller is a pure
//! function of its call sequence — `observe`/`observe_link` feed the
//! current window, and decisions happen only inside `on_epoch`, at
//! epoch boundaries derived from the caller's deterministic clock.
//! There is no RNG and no wall-clock access, so a same-seed rerun
//! reproduces every migration bit-for-bit, and a recorded decision
//! stream can drive [`PlacementController::force`] during trace
//! replay. All timestamps are raw `u64` nanoseconds, as everywhere in
//! this crate.

/// Which side of the link a cut's downstream components run on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// On the headset/client.
    Device,
    /// On the edge server, behind a link.
    Edge,
}

impl Side {
    /// Short lowercase label for reports and boundary payloads.
    pub fn label(self) -> &'static str {
        match self {
            Side::Device => "device",
            Side::Edge => "edge",
        }
    }

    /// The opposite side (the migration target).
    pub fn other(self) -> Side {
        match self {
            Side::Device => Side::Edge,
            Side::Edge => Side::Device,
        }
    }

    /// Parse a label produced by [`Side::label`].
    pub fn parse(s: &str) -> Option<Side> {
        match s {
            "device" => Some(Side::Device),
            "edge" => Some(Side::Edge),
            _ => None,
        }
    }
}

/// One cut-point assignment within a [`PlacementPlan`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CutAssignment {
    /// Cut-point name — the component whose downstream work moves
    /// (e.g. `"vio"`).
    pub cut: String,
    /// Initial (and, for non-adaptive cuts, permanent) side.
    pub side: Side,
    /// When true, a [`PlacementController`] may migrate this cut at
    /// decision epochs.
    pub adaptive: bool,
}

/// A declared device/edge partitioning of the pipeline: zero or more
/// cut-point assignments. The empty plan is *all-local* — every
/// component on the device, the runtime's historical behaviour.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlacementPlan {
    cuts: Vec<CutAssignment>,
}

impl PlacementPlan {
    /// The behaviour-preserving default: no cuts, everything on-device.
    pub fn all_local() -> Self {
        Self::default()
    }

    /// A single cut pinned to `side` for the whole run.
    pub fn pinned(cut: &str, side: Side) -> Self {
        Self::default().with_cut(cut, side, false)
    }

    /// A single adaptive cut starting on `initial`; the controller may
    /// migrate it at decision epochs.
    pub fn adaptive(cut: &str, initial: Side) -> Self {
        Self::default().with_cut(cut, initial, true)
    }

    /// Adds (or replaces) one cut assignment.
    pub fn with_cut(mut self, cut: &str, side: Side, adaptive: bool) -> Self {
        self.cuts.retain(|c| c.cut != cut);
        self.cuts.push(CutAssignment { cut: cut.to_owned(), side, adaptive });
        self
    }

    /// All cut assignments, in declaration order.
    pub fn cuts(&self) -> &[CutAssignment] {
        &self.cuts
    }

    /// The assignment for `cut`, if declared.
    pub fn assignment(&self, cut: &str) -> Option<&CutAssignment> {
        self.cuts.iter().find(|c| c.cut == cut)
    }

    /// Initial side of `cut` ([`Side::Device`] when undeclared).
    pub fn side_of(&self, cut: &str) -> Side {
        self.assignment(cut).map_or(Side::Device, |c| c.side)
    }

    /// Whether `cut` is declared adaptive.
    pub fn is_adaptive(&self, cut: &str) -> bool {
        self.assignment(cut).is_some_and(|c| c.adaptive)
    }

    /// True when the plan changes nothing: no cut leaves the device
    /// and none is adaptive. Such a plan must be bit-identical to no
    /// plan at all.
    pub fn is_all_local(&self) -> bool {
        self.cuts.iter().all(|c| c.side == Side::Device && !c.adaptive)
    }

    /// Stable label for config hashes and report rows, e.g.
    /// `all_local` or `vio=adaptive@edge`.
    pub fn label(&self) -> String {
        if self.is_all_local() {
            return "all_local".to_owned();
        }
        let mut parts = Vec::new();
        for c in &self.cuts {
            if c.adaptive {
                parts.push(format!("{}=adaptive@{}", c.cut, c.side.label()));
            } else {
                parts.push(format!("{}={}", c.cut, c.side.label()));
            }
        }
        parts.join(",")
    }
}

/// Tuning for the placement controller's decision epochs. Mirrors the
/// governor's hysteresis ladder ([`crate::governor::GovernorConfig`]):
/// escalate on one bad window, restore only after several consecutive
/// clean epochs, so a flapping link cannot cause migration storms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlacementConfig {
    /// Decision-epoch period in nanoseconds. Decisions happen only at
    /// multiples of this period (the determinism rule).
    pub epoch_ns: u64,
    /// Migrate away from the current side when the epoch's active-path
    /// miss rate exceeds this.
    pub escalate_miss_rate: f64,
    /// Restoring to the preferred side additionally requires the
    /// epoch's miss rate at or below this.
    pub restore_miss_rate: f64,
    /// Consecutive clean epochs (healthy link probe + in-band miss
    /// rate) required before migrating back to the preferred side.
    pub restore_epochs: u32,
    /// Minimum active-path samples in an epoch before its miss rate is
    /// trusted; sparser epochs neither escalate nor count clean.
    pub min_samples: u32,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        Self {
            epoch_ns: 250_000_000,
            escalate_miss_rate: 0.25,
            restore_miss_rate: 0.05,
            restore_epochs: 4,
            min_samples: 3,
        }
    }
}

impl PlacementConfig {
    /// Worst-case time from the moment the preferred side becomes
    /// healthy again to the restore migration — the controller's
    /// recovery budget (one epoch to observe health plus the clean
    /// streak).
    pub fn recovery_budget_ns(&self) -> u64 {
        self.epoch_ns.saturating_mul(self.restore_epochs as u64 + 1)
    }
}

/// One placement migration decision, taken at a decision epoch (or
/// forced by a replayed decision stream).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Migration {
    /// Virtual time of the decision epoch, nanoseconds.
    pub at_ns: u64,
    /// Epoch index (0-based since controller construction).
    pub epoch: u64,
    /// Side the cut ran on before the decision.
    pub from: Side,
    /// Side the cut runs on from this epoch on.
    pub to: Side,
}

/// Adaptive placement for one cut-point.
///
/// Feed it the active path's deadline outcomes ([`observe`]) and a
/// link-health probe ([`observe_link`]); call [`on_epoch`] with the
/// current virtual time from any deterministic periodic hook. The
/// controller escalates away from its preferred side when the active
/// path misses, and restores only after [`PlacementConfig::restore_epochs`]
/// consecutive clean, link-healthy epochs.
///
/// [`observe`]: PlacementController::observe
/// [`observe_link`]: PlacementController::observe_link
/// [`on_epoch`]: PlacementController::on_epoch
#[derive(Debug)]
pub struct PlacementController {
    config: PlacementConfig,
    /// Restore target: the side the plan prefers when healthy.
    preferred: Side,
    side: Side,
    epoch: u64,
    next_epoch_ns: u64,
    window_total: u32,
    window_missed: u32,
    /// Latest link-probe verdict (true = healthy). Defaults healthy so
    /// a probe-less setup can still restore on clean windows.
    link_healthy: bool,
    clean_streak: u32,
    migrations: Vec<Migration>,
}

impl PlacementController {
    pub fn new(initial: Side, config: PlacementConfig) -> Self {
        Self {
            config,
            preferred: initial,
            side: initial,
            epoch: 0,
            next_epoch_ns: config.epoch_ns,
            window_total: 0,
            window_missed: 0,
            link_healthy: true,
            clean_streak: 0,
            migrations: Vec::new(),
        }
    }

    /// The side the cut currently runs on.
    pub fn side(&self) -> Side {
        self.side
    }

    /// The plan's preferred (restore-target) side.
    pub fn preferred(&self) -> Side {
        self.preferred
    }

    /// Every migration decided so far, in decision order.
    pub fn migrations(&self) -> &[Migration] {
        &self.migrations
    }

    /// Record one active-path outcome (a chain completion or an RTT
    /// sample judged against its deadline) into the current window.
    pub fn observe(&mut self, missed: bool) {
        self.window_total += 1;
        if missed {
            self.window_missed += 1;
        }
    }

    /// Record the latest link-health probe. While the cut sits on its
    /// fallback side the active path no longer exercises the link, so
    /// restore decisions lean on this signal.
    pub fn observe_link(&mut self, healthy: bool) {
        self.link_healthy = healthy;
    }

    /// Apply a replayed migration decision verbatim (trace replay
    /// drives placement from the recorded stream instead of deciding).
    /// The epoch counter is fast-forwarded to the decision time first,
    /// so a forced migration carries the same epoch index the live
    /// decision did and replayed logs compare bit-identical.
    pub fn force(&mut self, at_ns: u64, to: Side) {
        if self.config.epoch_ns > 0 {
            while at_ns >= self.next_epoch_ns {
                self.next_epoch_ns += self.config.epoch_ns;
                self.epoch += 1;
            }
        }
        if to != self.side {
            let m = Migration { at_ns, epoch: self.epoch.saturating_sub(1), from: self.side, to };
            self.side = to;
            self.migrations.push(m);
        }
    }

    /// Close any decision epochs due at `now_ns`, returning the
    /// migration decided (at most one per call: windows after the
    /// first carry no samples). Call from any hook that fires at least
    /// once per epoch; intermediate calls are cheap no-ops.
    pub fn on_epoch(&mut self, now_ns: u64) -> Option<Migration> {
        let mut decided = None;
        while now_ns >= self.next_epoch_ns {
            let at_ns = self.next_epoch_ns;
            self.next_epoch_ns += self.config.epoch_ns;
            let decision = self.close_window(at_ns);
            if decision.is_some() {
                decided = decision;
            }
        }
        decided
    }

    fn close_window(&mut self, at_ns: u64) -> Option<Migration> {
        let total = self.window_total;
        let missed = self.window_missed;
        self.window_total = 0;
        self.window_missed = 0;
        self.epoch += 1;
        let trusted = total >= self.config.min_samples;
        let rate = if total == 0 { 0.0 } else { missed as f64 / total as f64 };

        if self.side == self.preferred {
            // Escalate: one bad window moves the cut to its fallback.
            if trusted && rate > self.config.escalate_miss_rate {
                self.clean_streak = 0;
                return Some(self.migrate(at_ns, self.side.other()));
            }
        } else {
            // Restore: require a healthy link probe and an in-band
            // window, several epochs in a row (the hysteresis ladder).
            let clean = self.link_healthy && (!trusted || rate <= self.config.restore_miss_rate);
            if clean {
                self.clean_streak += 1;
                if self.clean_streak >= self.config.restore_epochs {
                    self.clean_streak = 0;
                    return Some(self.migrate(at_ns, self.preferred));
                }
            } else {
                self.clean_streak = 0;
            }
        }
        None
    }

    fn migrate(&mut self, at_ns: u64, to: Side) -> Migration {
        let m = Migration { at_ns, epoch: self.epoch - 1, from: self.side, to };
        self.side = to;
        self.migrations.push(m);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PlacementConfig {
        PlacementConfig { epoch_ns: 100, restore_epochs: 2, min_samples: 2, ..Default::default() }
    }

    #[test]
    fn all_local_plan_is_trivial() {
        assert!(PlacementPlan::all_local().is_all_local());
        assert!(PlacementPlan::pinned("vio", Side::Device).is_all_local());
        assert!(!PlacementPlan::pinned("vio", Side::Edge).is_all_local());
        assert!(!PlacementPlan::adaptive("vio", Side::Device).is_all_local());
        assert_eq!(PlacementPlan::all_local().label(), "all_local");
        assert_eq!(PlacementPlan::adaptive("vio", Side::Edge).label(), "vio=adaptive@edge");
        assert_eq!(PlacementPlan::all_local().side_of("vio"), Side::Device);
    }

    #[test]
    fn with_cut_replaces_earlier_assignment() {
        let plan = PlacementPlan::pinned("vio", Side::Edge).with_cut("vio", Side::Device, true);
        assert_eq!(plan.cuts().len(), 1);
        assert!(plan.is_adaptive("vio"));
        assert_eq!(plan.side_of("vio"), Side::Device);
    }

    #[test]
    fn side_round_trips_labels() {
        for side in [Side::Device, Side::Edge] {
            assert_eq!(Side::parse(side.label()), Some(side));
            assert_eq!(side.other().other(), side);
        }
        assert_eq!(Side::parse("moon"), None);
    }

    #[test]
    fn bad_window_escalates_once() {
        let mut c = PlacementController::new(Side::Edge, cfg());
        for _ in 0..4 {
            c.observe(true);
        }
        assert!(c.on_epoch(50).is_none(), "no decision before the epoch boundary");
        let m = c.on_epoch(100).expect("escalates at the boundary");
        assert_eq!((m.from, m.to), (Side::Edge, Side::Device));
        assert_eq!(c.side(), Side::Device);
        // A second bad window while already on the fallback does not flap.
        for _ in 0..4 {
            c.observe(true);
        }
        assert!(c.on_epoch(200).is_none());
        assert_eq!(c.migrations().len(), 1);
    }

    #[test]
    fn restore_needs_consecutive_clean_epochs_and_a_healthy_link() {
        let mut c = PlacementController::new(Side::Edge, cfg());
        for _ in 0..4 {
            c.observe(true);
        }
        c.on_epoch(100).expect("escalate");
        // Unhealthy probe: clean windows do not count.
        c.observe_link(false);
        c.on_epoch(200);
        c.on_epoch(300);
        assert_eq!(c.side(), Side::Device);
        // Healthy again: two clean epochs restore (restore_epochs = 2).
        c.observe_link(true);
        assert!(c.on_epoch(400).is_none());
        let m = c.on_epoch(500).expect("restore after the streak");
        assert_eq!((m.from, m.to), (Side::Device, Side::Edge));
        assert!(c.on_epoch(600).is_none(), "stable after restore");
    }

    #[test]
    fn sparse_windows_do_not_escalate() {
        let mut c = PlacementController::new(Side::Edge, cfg());
        c.observe(true); // 1 sample < min_samples = 2
        assert!(c.on_epoch(100).is_none());
        assert_eq!(c.side(), Side::Edge);
    }

    #[test]
    fn decisions_are_deterministic() {
        let run = || {
            let mut c = PlacementController::new(Side::Edge, cfg());
            for t in 1..50u64 {
                c.observe(t % 3 == 0);
                c.observe_link(t % 7 != 0);
                c.on_epoch(t * 20);
            }
            c.migrations().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn force_applies_replayed_decisions_verbatim() {
        let mut c = PlacementController::new(Side::Edge, PlacementConfig::default());
        c.force(1_000, Side::Device);
        c.force(1_000, Side::Device); // idempotent
        c.force(9_000, Side::Edge);
        assert_eq!(c.migrations().len(), 2);
        assert_eq!(c.side(), Side::Edge);
    }

    #[test]
    fn recovery_budget_covers_the_restore_ladder() {
        let c = PlacementConfig::default();
        assert_eq!(c.recovery_budget_ns(), c.epoch_ns * (c.restore_epochs as u64 + 1));
    }
}
