//! Bounded lock-free SPSC rings (and a sharded MPSC composition).
//!
//! The multi-session server's hot path moves emissions from shard
//! workers back to the coordinator. A mutex-protected queue would put
//! every worker through one lock per message; a classic Lamport ring
//! needs only one atomic load and one atomic store per side, and its
//! bounded capacity gives natural backpressure: a full ring makes the
//! producer wait (spin + yield), it never drops or reorders.
//!
//! Invariants (checked by the unit tests):
//!
//! * **no loss** — every pushed value is popped exactly once, even when
//!   the producer overruns capacity and has to block;
//! * **no reorder** — values arrive in push order (the ring is FIFO);
//! * **no leak** — values still in flight when both endpoints drop are
//!   dropped exactly once.
//!
//! [`mpsc_ring`] composes one SPSC lane per producer with a single
//! consumer that drains lanes in index order — many producers, one
//! consumer, still lock-free, and deterministic *given* a deterministic
//! assignment of messages to lanes (the server tags every message with
//! its batch index and reorders on the consumer side, so lane-drain
//! interleaving never affects results).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared state of one SPSC ring. `slots.len() == capacity + 1`: one
/// slot is kept empty so `head == tail` unambiguously means "empty".
struct RingShared<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the consumer will read. Written by the consumer only.
    head: AtomicUsize,
    /// Next slot the producer will write. Written by the producer only.
    tail: AtomicUsize,
}

// SAFETY: the producer side only writes slots the consumer has not yet
// claimed and vice versa; the head/tail release/acquire pair orders the
// slot accesses. `T: Send` is required because values cross threads.
unsafe impl<T: Send> Sync for RingShared<T> {}
unsafe impl<T: Send> Send for RingShared<T> {}

impl<T> RingShared<T> {
    fn advance(&self, idx: usize) -> usize {
        let next = idx + 1;
        if next == self.slots.len() {
            0
        } else {
            next
        }
    }
}

impl<T> Drop for RingShared<T> {
    fn drop(&mut self) {
        // Sole owner at this point: drop whatever is still in flight.
        let mut head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        while head != tail {
            // SAFETY: slots in [head, tail) hold initialized values
            // that were never popped.
            unsafe { (*self.slots[head].get()).assume_init_drop() };
            head = self.advance(head);
        }
    }
}

/// Producer endpoint of a bounded SPSC ring. Not cloneable: exactly one
/// producer.
pub struct RingProducer<T> {
    shared: Arc<RingShared<T>>,
}

/// Consumer endpoint of a bounded SPSC ring. Not cloneable: exactly one
/// consumer.
pub struct RingConsumer<T> {
    shared: Arc<RingShared<T>>,
}

/// Creates a bounded SPSC ring holding at most `capacity` values.
pub fn spsc_ring<T: Send>(capacity: usize) -> (RingProducer<T>, RingConsumer<T>) {
    let capacity = capacity.max(1);
    let slots = (0..capacity + 1).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let shared =
        Arc::new(RingShared { slots, head: AtomicUsize::new(0), tail: AtomicUsize::new(0) });
    (RingProducer { shared: Arc::clone(&shared) }, RingConsumer { shared })
}

impl<T: Send> RingProducer<T> {
    /// Values the ring can hold.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len() - 1
    }

    /// Attempts to enqueue `value`; on a full ring returns it back to
    /// the caller unchanged. Never blocks, never drops.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let tail = self.shared.tail.load(Ordering::Relaxed);
        let next = self.shared.advance(tail);
        if next == self.shared.head.load(Ordering::Acquire) {
            return Err(value); // full
        }
        // SAFETY: slot `tail` is empty (not in [head, tail)) and only
        // this producer writes it.
        unsafe { (*self.shared.slots[tail].get()).write(value) };
        self.shared.tail.store(next, Ordering::Release);
        Ok(())
    }

    /// Enqueues `value`, spinning (with yields) while the ring is full.
    /// Backpressure without loss: the value goes in, in order, once the
    /// consumer makes room.
    pub fn push_blocking(&mut self, value: T) {
        let mut value = value;
        let mut spins = 0u32;
        loop {
            match self.push(value) {
                Ok(()) => return,
                Err(v) => value = v,
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

impl<T: Send> RingConsumer<T> {
    /// Dequeues the oldest value, or `None` when the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let head = self.shared.head.load(Ordering::Relaxed);
        if head == self.shared.tail.load(Ordering::Acquire) {
            return None; // empty
        }
        // SAFETY: slot `head` was initialized by the producer's write
        // before the Release store we just Acquired.
        let value = unsafe { (*self.shared.slots[head].get()).assume_init_read() };
        self.shared.head.store(self.shared.advance(head), Ordering::Release);
        Some(value)
    }

    /// Pops everything currently visible, in FIFO order.
    pub fn drain(&mut self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(v) = self.pop() {
            out.push(v);
        }
        out
    }
}

/// Consumer over `n` SPSC lanes: drains lanes in index order. Pair with
/// per-lane [`RingProducer`]s from [`mpsc_ring`].
pub struct MpscConsumer<T> {
    lanes: Vec<RingConsumer<T>>,
}

/// Creates an MPSC ring as `lanes` independent SPSC lanes of
/// `capacity` each: one producer endpoint per lane, one consumer
/// draining them all.
pub fn mpsc_ring<T: Send>(
    lanes: usize,
    capacity: usize,
) -> (Vec<RingProducer<T>>, MpscConsumer<T>) {
    let (producers, consumers) = (0..lanes.max(1)).map(|_| spsc_ring(capacity)).unzip();
    (producers, MpscConsumer { lanes: consumers })
}

impl<T: Send> MpscConsumer<T> {
    /// Pops one value, scanning lanes in index order.
    pub fn pop(&mut self) -> Option<T> {
        self.lanes.iter_mut().find_map(|l| l.pop())
    }

    /// Pops everything currently visible, lane by lane in index order.
    pub fn drain_into(&mut self, out: &mut Vec<T>) {
        for lane in &mut self.lanes {
            while let Some(v) = lane.pop() {
                out.push(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut tx, mut rx) = spsc_ring(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(rx.drain(), vec![0, 1, 2, 3]);
        assert!(rx.pop().is_none());
    }

    #[test]
    fn full_ring_returns_the_value_instead_of_dropping_it() {
        let (mut tx, mut rx) = spsc_ring(2);
        tx.push(10).unwrap();
        tx.push(11).unwrap();
        assert_eq!(tx.push(12), Err(12), "full ring must hand the value back");
        assert_eq!(rx.pop(), Some(10));
        tx.push(12).unwrap();
        assert_eq!(rx.drain(), vec![11, 12]);
    }

    /// The satellite's backpressure claim: a producer overrunning a
    /// tiny ring from another thread loses nothing and reorders
    /// nothing.
    #[test]
    fn no_loss_or_reorder_at_queue_full_backpressure() {
        const N: u64 = 100_000;
        let (mut tx, mut rx) = spsc_ring(8);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.push_blocking(i);
            }
        });
        let mut expected = 0u64;
        while expected < N {
            if let Some(v) = rx.pop() {
                assert_eq!(v, expected, "reordered under backpressure");
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(rx.pop().is_none());
    }

    #[test]
    fn in_flight_values_drop_exactly_once() {
        let strong = Arc::new(());
        let (mut tx, rx) = spsc_ring(8);
        for _ in 0..5 {
            tx.push(Arc::clone(&strong)).unwrap();
        }
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&strong), 1, "ring leaked or double-dropped values");
    }

    #[test]
    fn mpsc_lanes_preserve_per_lane_order() {
        let (mut txs, mut rx) = mpsc_ring(3, 4);
        for (lane, tx) in txs.iter_mut().enumerate() {
            for i in 0..3 {
                tx.push((lane, i)).unwrap();
            }
        }
        let mut got = Vec::new();
        rx.drain_into(&mut got);
        assert_eq!(got.len(), 9);
        for lane in 0..3 {
            let per_lane: Vec<_> =
                got.iter().filter(|(l, _)| *l == lane).map(|(_, i)| *i).collect();
            assert_eq!(per_lane, vec![0, 1, 2], "lane {lane} reordered");
        }
    }
}
