//! The periodic task model.
//!
//! Each plugin iteration is a *job*: the `k`-th release of a periodic
//! task, carrying an absolute release time, an absolute deadline, a
//! static priority and a [`PriorityClass`] that the degradation ladder
//! uses to decide what to shed first. All timestamps are raw `u64`
//! nanoseconds in whatever clock basis the caller uses (sim virtual
//! time or live monotonic time); this crate never converts bases.

/// Identifies a task within one scheduler instance. Assigned densely
/// from zero in registration order, so it doubles as a vector index.
pub type TaskId = usize;

/// Semantic class of a task, ordered by how early the degradation
/// ladder is allowed to touch it (later variants are shed sooner).
///
/// The ordering is deliberate: `Critical < Visual < Perception <
/// Audio < BestEffort` in shedding eagerness. `Critical` work (IMU
/// sampling, pose integration, reprojection) is never shed — it is
/// the tail of the motion-to-photon chain and dropping it converts a
/// late frame into no frame at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PriorityClass {
    /// IMU sampling, pose integration, reprojection: never shed.
    Critical,
    /// Application rendering: rate-halved at level 1, shortcut at 2.
    Visual,
    /// Camera + VIO: rate-halved at level 1, shortcut at level 2.
    Perception,
    /// Audio encode/playback: dropped entirely at level 3.
    Audio,
    /// Eye tracking, scene reconstruction: dropped entirely at level 3.
    BestEffort,
}

impl PriorityClass {
    /// Short lowercase label for telemetry tracks.
    pub fn label(self) -> &'static str {
        match self {
            PriorityClass::Critical => "critical",
            PriorityClass::Visual => "visual",
            PriorityClass::Perception => "perception",
            PriorityClass::Audio => "audio",
            PriorityClass::BestEffort => "best_effort",
        }
    }
}

/// One released, not-yet-dispatched job: everything a [`crate::Policy`]
/// needs to pick the next job to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadyJob {
    /// The task this job belongs to.
    pub task: TaskId,
    /// Release index `k`: this is the `k`-th job of the task (0-based).
    pub seq: u64,
    /// Absolute release time in nanoseconds.
    pub release_ns: u64,
    /// Absolute deadline in nanoseconds (`release + relative deadline`).
    pub deadline_ns: u64,
    /// Static priority (higher runs first under rate-monotonic).
    pub priority: i32,
    /// Semantic class, consulted by the degradation governor.
    pub class: PriorityClass,
}

/// Absolute release time of the `k`-th job of a periodic task.
///
/// Computed in 128-bit arithmetic so that `period * k` cannot wrap:
/// the historical `period * k as u32` truncated `k` and wrapped after
/// ~4.3 billion iterations (for a 2 ms IMU period, under 100 days of
/// uptime — inside the paper's "always-on wearable" horizon). The
/// result saturates at `u64::MAX` rather than wrapping.
pub fn release_ns(origin_ns: u64, period_ns: u64, k: u64) -> u64 {
    let abs = origin_ns as u128 + period_ns as u128 * k as u128;
    abs.min(u64::MAX as u128) as u64
}

/// The lateness-correct deadline-miss predicate: a job misses iff it
/// *finishes after its absolute deadline*. CPU time is irrelevant — a
/// job that slept past its deadline missed it, and a job that burned
/// a full period of CPU but finished on time did not.
pub fn is_miss(end_ns: u64, release_ns: u64, deadline_rel_ns: u64) -> bool {
    end_ns > release_ns.saturating_add(deadline_rel_ns)
}

/// How late a job finished relative to its absolute deadline, in
/// nanoseconds; zero when it met the deadline.
pub fn lateness_ns(end_ns: u64, release_ns: u64, deadline_rel_ns: u64) -> u64 {
    end_ns.saturating_sub(release_ns.saturating_add(deadline_rel_ns))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_math_does_not_wrap_past_u32_iterations() {
        // 2 ms period, k beyond u32::MAX: the old `period * k as u32`
        // would truncate k and jump back near the origin.
        let period = 2_000_000u64;
        let k = u32::MAX as u64 + 5;
        let r = release_ns(1_000, period, k);
        assert_eq!(r, 1_000 + period * k);
        // Strictly monotone across the u32 boundary.
        assert!(release_ns(1_000, period, k) > release_ns(1_000, period, u32::MAX as u64));
    }

    #[test]
    fn release_math_saturates_instead_of_wrapping() {
        let r = release_ns(u64::MAX - 10, 1_000_000, u64::MAX);
        assert_eq!(r, u64::MAX);
    }

    #[test]
    fn miss_is_lateness_not_cpu_time() {
        // Finishing exactly at the deadline is NOT a miss.
        assert!(!is_miss(10_000, 5_000, 5_000));
        // One nanosecond past is.
        assert!(is_miss(10_001, 5_000, 5_000));
        assert_eq!(lateness_ns(10_001, 5_000, 5_000), 1);
        assert_eq!(lateness_ns(9_000, 5_000, 5_000), 0);
    }

    #[test]
    fn class_ordering_matches_shedding_eagerness() {
        assert!(PriorityClass::Critical < PriorityClass::Visual);
        assert!(PriorityClass::Visual < PriorityClass::Perception);
        assert!(PriorityClass::Perception < PriorityClass::Audio);
        assert!(PriorityClass::Audio < PriorityClass::BestEffort);
    }
}
