//! End-to-end chain deadlines.
//!
//! A *chain* is an ordered pipeline of tasks — e.g. `imu →
//! imu_integrator → reprojection` — with one end-to-end deadline: the
//! motion-to-photon budget. The tracker implements freshest-sample
//! (origin-stamp) propagation, the semantics XR pipelines actually
//! have: each stage consumes the *latest* output of its upstream
//! stage, so the chain latency of a tail completion is `tail end −
//! origin of the freshest upstream data it observed`.
//!
//! Propagation is snapshot-at-start: when a stage *starts*, it
//! captures the origin currently exposed by its predecessor (a head
//! stage's origin is its own release time); when it *finishes*, it
//! publishes that origin downstream. A tail finish emits a
//! [`ChainOutcome`]. This matches how a real pipeline reads its input
//! topic at iteration start and publishes at iteration end.

use crate::task::TaskId;

/// Index of a chain within one tracker, assigned in registration order.
pub type ChainId = usize;

/// A declared pipeline with an end-to-end deadline.
#[derive(Clone, Debug)]
pub struct ChainSpec {
    /// Chain name for telemetry (e.g. `"mtp"`).
    pub name: String,
    /// Member tasks in pipeline order, head first.
    pub members: Vec<TaskId>,
    /// End-to-end relative deadline in nanoseconds.
    pub deadline_ns: u64,
}

/// One tail completion of a chain: the chain's control signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainOutcome {
    /// Which chain completed.
    pub chain: ChainId,
    /// Origin timestamp of the freshest head sample that reached the
    /// tail, in nanoseconds.
    pub origin_ns: u64,
    /// When the tail stage finished, in nanoseconds.
    pub end_ns: u64,
    /// End-to-end latency: `end - origin`.
    pub latency_ns: u64,
    /// The chain's relative deadline, copied for convenience.
    pub deadline_ns: u64,
    /// Whether `latency > deadline` (lateness-correct: equality is a hit).
    pub missed: bool,
}

/// Per-stage propagation state within one chain.
#[derive(Clone, Copy, Debug)]
struct StageState {
    /// Origin snapshotted when the current in-flight job started, if any.
    in_flight: Option<u64>,
    /// Origin published by the last finished job, visible downstream.
    published: Option<u64>,
}

/// Tracks origin-stamp propagation for any number of chains. A task
/// may belong to at most one position per chain but may appear in
/// several chains; `on_start`/`on_finish` fan out to all memberships.
#[derive(Default)]
pub struct ChainTracker {
    specs: Vec<ChainSpec>,
    /// `stages[chain][position]` mirrors `specs[chain].members`.
    stages: Vec<Vec<StageState>>,
}

impl ChainTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a chain; returns its id. Chains with fewer than one
    /// member are ignored (returns the would-be id anyway so callers
    /// need not branch).
    pub fn add(&mut self, spec: ChainSpec) -> ChainId {
        let id = self.specs.len();
        self.stages.push(vec![StageState { in_flight: None, published: None }; spec.members.len()]);
        self.specs.push(spec);
        id
    }

    /// Registered chain specs, in registration order.
    pub fn specs(&self) -> &[ChainSpec] {
        &self.specs
    }

    /// True if `task` is a member of any registered chain.
    pub fn is_member(&self, task: TaskId) -> bool {
        self.specs.iter().any(|s| s.members.contains(&task))
    }

    /// A job of `task` started executing at `start_ns` (its release
    /// was `release_ns`). Snapshots the upstream origin for every
    /// chain position the task occupies.
    pub fn on_start(&mut self, task: TaskId, release_ns: u64, _start_ns: u64) {
        for (ci, spec) in self.specs.iter().enumerate() {
            for (pos, &member) in spec.members.iter().enumerate() {
                if member != task {
                    continue;
                }
                let origin = if pos == 0 {
                    // Head stage: the sample's origin is its release —
                    // the instant the motion it measures occurred.
                    Some(release_ns)
                } else {
                    // Downstream: consume the freshest published
                    // upstream origin; None until upstream produces.
                    self.stages[ci][pos - 1].published
                };
                self.stages[ci][pos].in_flight = origin;
            }
        }
    }

    /// The in-flight job of `task` finished at `end_ns`. Publishes
    /// its snapshotted origin downstream; tail finishes emit one
    /// [`ChainOutcome`] per chain (in chain-registration order, so
    /// the result is deterministic).
    pub fn on_finish(&mut self, task: TaskId, end_ns: u64) -> Vec<ChainOutcome> {
        let mut outcomes = Vec::new();
        for (ci, spec) in self.specs.iter().enumerate() {
            for (pos, &member) in spec.members.iter().enumerate() {
                if member != task {
                    continue;
                }
                let origin = self.stages[ci][pos].in_flight.take();
                if let Some(origin_ns) = origin {
                    self.stages[ci][pos].published = Some(origin_ns);
                    if pos + 1 == spec.members.len() {
                        let latency_ns = end_ns.saturating_sub(origin_ns);
                        outcomes.push(ChainOutcome {
                            chain: ci,
                            origin_ns,
                            end_ns,
                            latency_ns,
                            deadline_ns: spec.deadline_ns,
                            missed: latency_ns > spec.deadline_ns,
                        });
                    }
                }
            }
        }
        outcomes
    }

    /// The in-flight job of `task` was abandoned without doing work
    /// (e.g. the plugin returned `did_work = false`): discard its
    /// snapshot so stale origins are not published.
    pub fn on_abort(&mut self, task: TaskId) {
        for (ci, spec) in self.specs.iter().enumerate() {
            for (pos, &member) in spec.members.iter().enumerate() {
                if member == task {
                    self.stages[ci][pos].in_flight = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(members: &[TaskId], deadline_ns: u64) -> ChainSpec {
        ChainSpec { name: "test".into(), members: members.to_vec(), deadline_ns }
    }

    #[test]
    fn origin_propagates_head_to_tail() {
        let mut t = ChainTracker::new();
        t.add(chain(&[0, 1, 2], 10_000));
        // Head sample released at t=100, runs 100..200.
        t.on_start(0, 100, 100);
        assert!(t.on_finish(0, 200).is_empty(), "head finish emits nothing");
        // Middle stage starts at 300, sees head origin 100.
        t.on_start(1, 250, 300);
        assert!(t.on_finish(1, 400).is_empty());
        // Tail runs 500..600: chain latency = 600 - 100 = 500.
        t.on_start(2, 450, 500);
        let out = t.on_finish(2, 600);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].origin_ns, 100);
        assert_eq!(out[0].latency_ns, 500);
        assert!(!out[0].missed);
    }

    #[test]
    fn snapshot_at_start_ignores_fresher_upstream_finishing_mid_stage() {
        let mut t = ChainTracker::new();
        t.add(chain(&[0, 1], 1_000));
        t.on_start(0, 100, 100);
        t.on_finish(0, 150);
        // Tail starts at 200, snapshotting origin 100.
        t.on_start(1, 180, 200);
        // A fresher head sample completes while the tail is running …
        t.on_start(0, 300, 300);
        t.on_finish(0, 350);
        // … but the tail's outcome still carries the origin it read.
        let out = t.on_finish(1, 400);
        assert_eq!(out[0].origin_ns, 100);
        assert_eq!(out[0].latency_ns, 300);
    }

    #[test]
    fn tail_with_no_upstream_data_emits_nothing() {
        let mut t = ChainTracker::new();
        t.add(chain(&[0, 1], 1_000));
        // Tail runs before the head has ever published.
        t.on_start(1, 0, 10);
        assert!(t.on_finish(1, 20).is_empty());
    }

    #[test]
    fn miss_requires_latency_strictly_over_deadline() {
        let mut t = ChainTracker::new();
        t.add(chain(&[0], 500));
        t.on_start(0, 100, 100);
        let out = t.on_finish(0, 600); // latency exactly 500
        assert!(!out[0].missed);
        t.on_start(0, 700, 700);
        let out = t.on_finish(0, 1_201); // latency 501
        assert!(out[0].missed);
    }

    #[test]
    fn abort_discards_snapshot() {
        let mut t = ChainTracker::new();
        t.add(chain(&[0, 1], 1_000));
        t.on_start(0, 100, 100);
        t.on_abort(0); // did_work = false
        t.on_start(1, 200, 200);
        assert!(t.on_finish(1, 300).is_empty(), "no origin should have published");
    }

    #[test]
    fn task_in_two_chains_feeds_both() {
        let mut t = ChainTracker::new();
        t.add(chain(&[0, 1], 1_000));
        t.add(chain(&[0, 2], 2_000));
        t.on_start(0, 50, 50);
        t.on_finish(0, 60);
        t.on_start(1, 70, 70);
        t.on_start(2, 80, 80);
        assert_eq!(t.on_finish(1, 90)[0].origin_ns, 50);
        assert_eq!(t.on_finish(2, 95)[0].origin_ns, 50);
    }
}
