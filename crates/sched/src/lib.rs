//! Deadline-aware scheduling for the ILLIXR testbed.
//!
//! The paper names scheduling as the first research direction the
//! testbed should enable (§VI): its own runtime only offers fixed-rate
//! threadloops, and the QoE losses of §IV all trace back to deadline
//! misses along the IMU → VIO → reprojection chain. This crate supplies
//! the missing machinery as a small, dependency-free library:
//!
//! * **[`task`]** — the periodic task model: each plugin iteration is a
//!   released *job* with a period, a relative deadline, a priority
//!   class and a release index, plus overflow-safe release arithmetic
//!   and the lateness-correct deadline-miss definition
//!   (`end > release + deadline`, *not* `cpu > period`).
//! * **[`policy`]** — one [`Policy`] trait, three implementations:
//!   [`RateMonotonic`] (static priority, the runtime's historical
//!   behaviour), [`Edf`] (earliest absolute deadline first on a
//!   work-conserving pool) and [`AdaptiveGovernor`] (EDF plus graceful
//!   degradation under sustained chain-deadline misses).
//! * **[`chain`]** — end-to-end chain deadlines: a [`ChainTracker`]
//!   propagates the *origin* timestamp of the freshest upstream sample
//!   through a pipeline (e.g. `imu → imu_integrator → reprojection`)
//!   and emits one [`ChainOutcome`] per tail completion, which is how
//!   a motion-to-photon deadline becomes a schedulable quantity.
//! * **[`governor`]** — the degradation ladder: on sustained chain
//!   misses the governor sheds load in a fixed order (halve
//!   perception/visual rates, then take work-factor shortcuts, then
//!   drop eye-tracking/audio-class jobs) and restores hysteretically.
//! * **[`live`]** — a live-mode work-conserving worker pool that runs
//!   released jobs under any [`Policy`] on OS threads, replacing
//!   one-thread-per-plugin execution.
//! * **[`place`]** — device/edge placement: a [`PlacementPlan`]
//!   declares which pipeline cut-points run on-device vs behind a
//!   link, and a [`PlacementController`] migrates a cut at
//!   deterministic decision epochs using the governor's hysteresis
//!   shape, fed by chain outcomes and a link-health probe.
//! * **[`ring`]** / **[`shard`]** — the multi-session server's engine
//!   primitives: bounded SPSC/MPSC rings with lossless backpressure,
//!   and the deterministic FNV-1a session→shard map.
//!
//! Like `illixr-obs`, this crate sits *below* `illixr-core`: it knows
//! nothing about plugins, switchboards or `Time` — all timestamps are
//! raw `u64` nanoseconds — so the runtime, the experiment runner and
//! the multi-session server can all share one scheduling vocabulary.

pub mod chain;
pub mod governor;
pub mod live;
pub mod place;
pub mod policy;
pub mod ring;
pub mod shard;
pub mod task;

pub use chain::{ChainId, ChainOutcome, ChainSpec, ChainTracker};
pub use governor::{AdaptiveGovernor, GovernorConfig};
pub use place::{
    CutAssignment, Migration, PlacementConfig, PlacementController, PlacementPlan, Side,
};
pub use policy::{Edf, Policy, PolicyKind, RateMonotonic};
pub use ring::{mpsc_ring, spsc_ring, MpscConsumer, RingConsumer, RingProducer};
pub use shard::{fnv1a_u32, ShardMap};
pub use task::{is_miss, lateness_ns, release_ns, PriorityClass, ReadyJob, TaskId};
