//! The [`Policy`] trait and the two stateless policies.
//!
//! A policy answers one question — "of the ready jobs, which runs
//! next?" — plus three optional hooks the adaptive governor uses:
//! admission (shed a job at release time), cost scaling (work-factor
//! shortcuts) and chain-outcome feedback (the governor's control
//! input). Policies are deliberately synchronous and allocation-free
//! on the hot path so the sim engine stays deterministic and the live
//! pool's dispatch lock stays cheap.

use crate::chain::ChainOutcome;
use crate::governor::{AdaptiveGovernor, GovernorConfig};
use crate::task::{PriorityClass, ReadyJob};

/// A pluggable scheduling policy over released jobs.
///
/// `select` is the core decision; the remaining methods default to
/// "no admission control, no cost scaling, ignore feedback" so simple
/// policies stay one method long.
pub trait Policy: Send {
    /// Stable policy name for telemetry tracks and reports.
    fn name(&self) -> &'static str;

    /// Index into `ready` of the job to dispatch next. `ready` is
    /// never empty and is ordered by enqueue time (FIFO position), so
    /// "first among ties" preserves arrival order.
    fn select(&mut self, ready: &[ReadyJob]) -> usize;

    /// Admission control at release time: returning `false` sheds the
    /// job before it ever queues (counted as a drop, not a miss).
    fn admit(&mut self, _job: &ReadyJob) -> bool {
        true
    }

    /// Multiplier on a job's nominal cost — the governor lowers this
    /// below 1.0 for shortcut-capable classes at degradation level 2.
    fn cost_scale(&self, _class: PriorityClass) -> f64 {
        1.0
    }

    /// Feedback: one end-to-end chain completed (hit or missed its
    /// chain deadline). The governor's primary control input.
    fn on_chain_outcome(&mut self, _outcome: &ChainOutcome) {}

    /// Out-of-band escalation: a supervisor's stale-stream watchdog
    /// declared a plugin degraded, so the system should shed load *now*
    /// rather than wait for a window of chain misses. Non-degrading
    /// policies ignore it.
    fn escalate(&mut self) {}

    /// Current degradation level (0 = nominal). Non-governor policies
    /// are always at level 0.
    fn level(&self) -> u32 {
        0
    }
}

/// Which policy to build — the config-file-facing enum.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// Static-priority FIFO: the runtime's historical behaviour.
    #[default]
    RateMonotonic,
    /// Earliest absolute deadline first.
    Edf,
    /// EDF plus the adaptive degradation governor.
    Adaptive,
}

impl PolicyKind {
    /// Construct the policy with default tuning.
    pub fn build(self) -> Box<dyn Policy> {
        match self {
            PolicyKind::RateMonotonic => Box::new(RateMonotonic),
            PolicyKind::Edf => Box::new(Edf),
            PolicyKind::Adaptive => Box::new(AdaptiveGovernor::new(GovernorConfig::default())),
        }
    }

    /// Stable label for file stems and report rows.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::RateMonotonic => "rate_monotonic",
            PolicyKind::Edf => "edf",
            PolicyKind::Adaptive => "adaptive",
        }
    }

    /// Parse a config-file string (case-insensitive, accepts a few
    /// aliases). Returns `None` for unknown names.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "rate_monotonic" | "rm" | "fixed" => Some(PolicyKind::RateMonotonic),
            "edf" => Some(PolicyKind::Edf),
            "adaptive" | "governor" | "adaptive_governor" => Some(PolicyKind::Adaptive),
            _ => None,
        }
    }
}

/// Static-priority FIFO: highest `priority` wins, ties broken by
/// arrival order. With priorities assigned by rate (faster period =
/// higher priority) this is classic rate-monotonic scheduling, and it
/// reproduces the sim engine's historical dispatch rule exactly.
pub struct RateMonotonic;

impl Policy for RateMonotonic {
    fn name(&self) -> &'static str {
        "rate_monotonic"
    }

    fn select(&mut self, ready: &[ReadyJob]) -> usize {
        let mut best = 0;
        for (i, job) in ready.iter().enumerate().skip(1) {
            if job.priority > ready[best].priority {
                best = i;
            }
        }
        best
    }
}

/// Earliest absolute deadline first, ties broken by arrival order.
/// Optimal for preemptive uniprocessor scheduling (Liu & Layland);
/// here it runs non-preemptively per worker, which is the standard
/// work-conserving approximation.
pub struct Edf;

impl Policy for Edf {
    fn name(&self) -> &'static str {
        "edf"
    }

    fn select(&mut self, ready: &[ReadyJob]) -> usize {
        let mut best = 0;
        for (i, job) in ready.iter().enumerate().skip(1) {
            if job.deadline_ns < ready[best].deadline_ns {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(task: usize, priority: i32, deadline_ns: u64) -> ReadyJob {
        ReadyJob {
            task,
            seq: 0,
            release_ns: 0,
            deadline_ns,
            priority,
            class: PriorityClass::Critical,
        }
    }

    #[test]
    fn rate_monotonic_picks_highest_priority_fifo_on_ties() {
        let mut rm = RateMonotonic;
        let ready = [job(0, 1, 50), job(1, 3, 90), job(2, 3, 10)];
        // Task 1 and 2 tie on priority; task 1 arrived first.
        assert_eq!(rm.select(&ready), 1);
    }

    #[test]
    fn edf_picks_earliest_deadline_fifo_on_ties() {
        let mut edf = Edf;
        let ready = [job(0, 9, 70), job(1, 0, 30), job(2, 5, 30)];
        // Priority is irrelevant; tasks 1 and 2 tie on deadline, 1 first.
        assert_eq!(edf.select(&ready), 1);
    }

    #[test]
    fn kind_round_trips_labels_and_parse() {
        for kind in [PolicyKind::RateMonotonic, PolicyKind::Edf, PolicyKind::Adaptive] {
            assert_eq!(PolicyKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.build().level(), 0);
        }
        assert_eq!(PolicyKind::parse("rm"), Some(PolicyKind::RateMonotonic));
        assert_eq!(PolicyKind::parse("governor"), Some(PolicyKind::Adaptive));
        assert_eq!(PolicyKind::parse("nope"), None);
    }
}
