//! Live-mode execution primitive: a policy-driven ready queue for a
//! work-conserving worker pool.
//!
//! The sim engine embeds a [`Policy`] directly in its event loop; live
//! mode needs the same decision point across OS threads. [`JobQueue`]
//! is that point: producers (one dispatcher thread releasing periodic
//! jobs) `push` released jobs through the policy's admission hook, and
//! N worker threads `pop_blocking`, each pop asking the policy to
//! select among everything currently ready. The policy lives under the
//! queue lock, so its view of the ready set is always consistent —
//! which is exactly the work-conserving single-queue model EDF's
//! optimality argument assumes.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::policy::Policy;
use crate::task::{PriorityClass, ReadyJob};

struct QueueState {
    ready: VecDeque<ReadyJob>,
    policy: Box<dyn Policy>,
    closed: bool,
    shed: u64,
}

/// A shared ready queue whose pop order is decided by a [`Policy`].
/// Wrap in an `Arc` to share between a dispatcher and workers.
pub struct JobQueue {
    state: Mutex<QueueState>,
    available: Condvar,
}

impl JobQueue {
    pub fn new(policy: Box<dyn Policy>) -> Self {
        Self {
            state: Mutex::new(QueueState {
                ready: VecDeque::new(),
                policy,
                closed: false,
                shed: 0,
            }),
            available: Condvar::new(),
        }
    }

    /// Offer a released job. Returns `false` if the policy's admission
    /// control shed it (the caller should count a drop, not a miss).
    pub fn push(&self, job: ReadyJob) -> bool {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return false;
        }
        if !state.policy.admit(&job) {
            state.shed += 1;
            return false;
        }
        state.ready.push_back(job);
        drop(state);
        self.available.notify_one();
        true
    }

    /// Block until a job is ready (returning the policy's pick) or the
    /// queue is closed and drained (returning `None`).
    pub fn pop_blocking(&self) -> Option<ReadyJob> {
        let mut state = self.state.lock().unwrap();
        loop {
            if !state.ready.is_empty() {
                let QueueState { ready, policy, .. } = &mut *state;
                let idx = policy.select(ready.make_contiguous());
                return ready.remove(idx);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
    }

    /// Non-blocking pop, for drain loops and tests.
    pub fn try_pop(&self) -> Option<ReadyJob> {
        let mut state = self.state.lock().unwrap();
        if state.ready.is_empty() {
            return None;
        }
        let QueueState { ready, policy, .. } = &mut *state;
        let idx = policy.select(ready.make_contiguous());
        ready.remove(idx)
    }

    /// Close the queue: pushes are rejected, workers drain what is
    /// left and then observe `None`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }

    /// Jobs shed by admission control so far.
    pub fn shed_jobs(&self) -> u64 {
        self.state.lock().unwrap().shed
    }

    /// Current degradation level of the underlying policy.
    pub fn level(&self) -> u32 {
        self.state.lock().unwrap().policy.level()
    }

    /// Current cost multiplier the policy applies to `class`.
    pub fn cost_scale(&self, class: PriorityClass) -> f64 {
        self.state.lock().unwrap().policy.cost_scale(class)
    }

    /// Forwards a watchdog escalation to the policy (see
    /// [`Policy::escalate`]).
    pub fn escalate(&self) {
        self.state.lock().unwrap().policy.escalate();
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::policy::{Edf, PolicyKind};

    fn job(task: usize, deadline_ns: u64) -> ReadyJob {
        ReadyJob {
            task,
            seq: 0,
            release_ns: 0,
            deadline_ns,
            priority: 0,
            class: PriorityClass::Critical,
        }
    }

    #[test]
    fn pops_in_policy_order() {
        let q = JobQueue::new(Box::new(Edf));
        assert!(q.push(job(0, 300)));
        assert!(q.push(job(1, 100)));
        assert!(q.push(job(2, 200)));
        assert_eq!(q.try_pop().unwrap().task, 1);
        assert_eq!(q.try_pop().unwrap().task, 2);
        assert_eq!(q.try_pop().unwrap().task, 0);
        assert!(q.try_pop().is_none());
    }

    #[test]
    fn close_unblocks_workers_after_drain() {
        let q = Arc::new(JobQueue::new(PolicyKind::Edf.build()));
        q.push(job(0, 10));
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(j) = q.pop_blocking() {
                    got.push(j.task);
                }
                got
            })
        };
        q.close();
        assert_eq!(worker.join().unwrap(), vec![0]);
        assert!(!q.push(job(1, 10)), "closed queue rejects pushes");
    }

    #[test]
    fn workers_consume_everything_exactly_once() {
        let q = Arc::new(JobQueue::new(PolicyKind::Edf.build()));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut n = 0u32;
                    while q.pop_blocking().is_some() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for i in 0..100 {
            assert!(q.push(job(i, i as u64)));
        }
        q.close();
        let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 100);
    }
}
