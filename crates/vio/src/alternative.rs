//! An alternative head-tracking implementation: map-based frame-to-frame
//! visual-inertial odometry.
//!
//! Paper Table II lists two interchangeable VIO implementations —
//! OpenVINS (the starred MSCKF, [`crate::msckf`]) and Kimera-VIO. This
//! module fills the alternative slot with a structurally different
//! estimator, exercising the runtime's interchangeability claim with a
//! genuinely distinct algorithm rather than a parameter tweak:
//!
//! 1. stereo-triangulate features into a persistent world-anchored
//!    **local map** (depth from disparity at first sighting);
//! 2. each frame, predict the pose by IMU propagation (RK4);
//! 3. refine with **Gauss-Newton PnP**: minimize the reprojection error
//!    of tracked map points in the new left image;
//! 4. blend the IMU prediction and the visual solution with a
//!    complementary gain, and cull stale map points.
//!
//! Unlike the MSCKF it keeps no covariance and re-uses map points across
//! frames (drift accumulates through the map anchors instead of the
//! filter state) — the classic lightweight-odometry trade-off: on the
//! synthetic Vicon-Room-like data this tracker holds decimeter accuracy
//! where the MSCKF holds centimeters, at a fraction of the per-frame
//! cost (no covariance propagation, no windowed updates).

use std::collections::HashMap;

use illixr_core::telemetry::TaskTimer;
use illixr_math::{Cholesky, DMatrix, Pose, Quat, Vec3};
use illixr_sensors::camera::StereoRig;
use illixr_sensors::types::{ImuSample, StereoFrame};

use crate::frontend::{FrontEnd, FrontEndParams};
use crate::integrator::{propagate, ImuState, Scheme};

/// Configuration of the frame-to-frame tracker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameToFrameConfig {
    /// Front-end parameters.
    pub frontend: FrontEndParams,
    /// Gauss-Newton iterations per frame.
    pub gn_iterations: usize,
    /// Minimum map points tracked for a visual update; below this the
    /// frame is IMU-only.
    pub min_points: usize,
    /// Complementary blend toward the visual solution per frame, `(0,1]`.
    pub visual_gain: f64,
    /// Drop map points unseen for this many frames.
    pub max_point_age: u32,
    /// Minimum stereo disparity (pixels) to trust triangulated depth —
    /// small disparities give unusably noisy anchors.
    pub min_disparity_px: f64,
}

impl Default for FrameToFrameConfig {
    fn default() -> Self {
        // A deeper pyramid than the MSCKF front end: with no covariance
        // to gate mistracks, this tracker depends on KLT surviving fast
        // rotation, so spend more on tracking robustness.
        let mut frontend = FrontEndParams::default();
        frontend.klt.levels = 4;
        frontend.klt.window_radius = 5;
        Self {
            frontend,
            gn_iterations: 6,
            min_points: 8,
            visual_gain: 0.6,
            max_point_age: 30,
            min_disparity_px: 2.5,
        }
    }
}

/// A world-anchored map point, refined over repeated stereo sightings.
#[derive(Debug, Clone, Copy)]
struct MapPoint {
    position: Vec3,
    last_seen_frame: u64,
    /// Number of stereo observations folded into `position`.
    observations: f64,
}

/// The frame-to-frame visual-inertial tracker.
pub struct FrameToFrameVio {
    config: FrameToFrameConfig,
    rig: StereoRig,
    frontend: FrontEnd,
    map: HashMap<u64, MapPoint>,
    state: ImuState,
    imu_buffer: Vec<ImuSample>,
    frame_index: u64,
    /// Previous frame's refined pose + time, for the velocity update.
    prev_refined: Option<(illixr_core::Time, Pose)>,
}

impl std::fmt::Debug for FrameToFrameVio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FrameToFrameVio({} map points)", self.map.len())
    }
}

/// Result of processing one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameToFrameOutput {
    /// The updated state.
    pub state: ImuState,
    /// Map points used in the PnP solve (0 = IMU-only frame).
    pub points_used: usize,
    /// Current map size.
    pub map_size: usize,
}

impl FrameToFrameVio {
    /// Creates the tracker.
    pub fn new(config: FrameToFrameConfig, rig: StereoRig, initial: ImuState) -> Self {
        Self {
            frontend: FrontEnd::new(config.frontend),
            config,
            rig,
            map: HashMap::new(),
            state: initial,
            imu_buffer: Vec::new(),
            frame_index: 0,
            prev_refined: None,
        }
    }

    /// The current state estimate.
    pub fn state(&self) -> &ImuState {
        &self.state
    }

    /// Buffers an IMU sample.
    pub fn process_imu(&mut self, sample: ImuSample) {
        self.imu_buffer.push(sample);
    }

    /// Processes one stereo frame.
    pub fn process_frame(
        &mut self,
        frame: &StereoFrame,
        timer: Option<&TaskTimer>,
    ) -> FrameToFrameOutput {
        self.frame_index += 1;
        // --- IMU prediction ------------------------------------------
        {
            let _g = timer.map(|t| t.scope("imu prediction"));
            let samples: Vec<ImuSample> = self
                .imu_buffer
                .iter()
                .copied()
                .filter(|s| s.timestamp <= frame.timestamp)
                .collect();
            if let Some(last) = samples.last() {
                self.state = propagate(&self.state, &samples, Scheme::Rk4);
                let keep_from = *last;
                self.imu_buffer.retain(|s| s.timestamp > frame.timestamp);
                self.imu_buffer.insert(0, keep_from);
            }
            self.state.timestamp = frame.timestamp;
        }

        // --- Feature tracking -----------------------------------------
        let tracks = self.frontend.process(&frame.left, &frame.right, timer);

        // --- PnP refinement against the map -----------------------------
        let cam = self.rig.camera;
        let mut observations: Vec<(Vec3, Vec3)> = Vec::new(); // (map point, normalized obs ray)
        for t in &tracks {
            if let Some(mp) = self.map.get_mut(&t.id) {
                mp.last_seen_frame = self.frame_index;
                let norm =
                    Vec3::new((t.left.x - cam.cx) / cam.fx, (t.left.y - cam.cy) / cam.fy, 1.0);
                // Weight well-observed anchors more by duplicating their
                // constraint (cheap confidence weighting).
                let weight = (mp.observations.sqrt() as usize).clamp(1, 3);
                for _ in 0..weight {
                    observations.push((mp.position, norm));
                }
            }
        }
        let mut points_used = 0;
        if observations.len() >= self.config.min_points {
            let _g = timer.map(|t| t.scope("pnp refinement"));
            if let Some(visual_pose) =
                gauss_newton_pnp(&observations, &self.state.pose, self.config.gn_iterations)
            {
                points_used = observations.len();
                // Complementary blend: lean on vision, keep IMU smoothness.
                self.state.pose =
                    self.state.pose.interpolate(&visual_pose, self.config.visual_gain);
                // Velocity correction — without it the IMU-integrated
                // velocity drifts unbounded and eventually drags the pose
                // away faster than vision can pull it back.
                if let Some((prev_t, prev_pose)) = self.prev_refined {
                    let dt = (frame.timestamp - prev_t).as_secs_f64();
                    if dt > 1e-4 {
                        let visual_velocity = (self.state.pose.position - prev_pose.position) / dt;
                        self.state.velocity =
                            self.state.velocity.lerp(visual_velocity, self.config.visual_gain);
                    }
                }
                self.prev_refined = Some((frame.timestamp, self.state.pose));
            }
        }
        if points_used == 0 {
            // Vision outage: without a covariance to bound it, the
            // IMU-integrated velocity random-walks and would drag the
            // pose arbitrarily far. Leak it toward zero (bounded-error
            // prior: the user is in a room) and cap the speed.
            self.state.velocity *= 0.85;
        }
        let speed = self.state.velocity.norm();
        if speed > 3.0 {
            self.state.velocity *= 3.0 / speed;
        }

        // --- Map management ---------------------------------------------
        {
            let _g = timer.map(|t| t.scope("map management"));
            // Triangulate every stereo-matched track and fold it into the
            // map: new anchors are created, existing anchors are running
            // averages of all their sightings (stereo depth noise is
            // ~zero-mean, so anchors converge instead of staying frozen
            // at their first noisy estimate).
            for t in tracks.iter() {
                let Some(right) = t.right else { continue };
                let disparity = t.left.x - right.x;
                if disparity < self.config.min_disparity_px {
                    continue; // too far: depth noise would poison the map
                }
                let Some(depth) = self.rig.depth_from_disparity(disparity) else { continue };
                if !(0.3..20.0).contains(&depth) {
                    continue;
                }
                let ray = cam.unproject(illixr_math::Vec2::new(t.left.x, t.left.y));
                let p_cam = ray * depth;
                let p_world = self.state.pose.transform_point(p_cam);
                match self.map.get_mut(&t.id) {
                    Some(mp) => {
                        let n = mp.observations;
                        mp.position = (mp.position * n + p_world) / (n + 1.0);
                        mp.observations = n + 1.0;
                    }
                    None => {
                        self.map.insert(
                            t.id,
                            MapPoint {
                                position: p_world,
                                last_seen_frame: self.frame_index,
                                observations: 1.0,
                            },
                        );
                    }
                }
            }
            // Cull stale points.
            let horizon = self.frame_index.saturating_sub(self.config.max_point_age as u64);
            self.map.retain(|_, mp| mp.last_seen_frame >= horizon);
        }

        FrameToFrameOutput { state: self.state, points_used, map_size: self.map.len() }
    }
}

/// Gauss-Newton PnP: refines a camera-to-world pose so that each world
/// point reprojects onto its observed normalized ray.
///
/// Error-state convention matches the MSCKF:
/// `R_true = R_est · Exp([δθ]×)` with `p_c = Rᵀ (p_w − t)`.
fn gauss_newton_pnp(
    observations: &[(Vec3, Vec3)],
    initial: &Pose,
    iterations: usize,
) -> Option<Pose> {
    let mut pose = *initial;
    for _iter in 0..iterations {
        // Tight inlier gate anchored on the IMU prediction: the
        // prediction is centimeter-accurate over one frame, so any
        // feature more than ~6 px off is a front-end mistrack (a KLT
        // jump to a neighbouring blob) and must not enter the solve —
        // the role the MSCKF's chi² gate plays in the main VIO.
        let gate = 0.03;
        let mut h = DMatrix::zeros(6, 6);
        let mut g = DMatrix::zeros(6, 1);
        let r_wc = pose.orientation.to_rotation_matrix();
        let r_cw = r_wc.transpose();
        let mut used = 0;
        for &(p_w, obs_ray) in observations {
            let p_c = r_cw * (p_w - pose.position);
            if p_c.z < 0.05 {
                continue;
            }
            let (x, y, z) = (p_c.x, p_c.y, p_c.z);
            let res_u = obs_ray.x - x / z;
            let res_v = obs_ray.y - y / z;
            if res_u.abs() > gate || res_v.abs() > gate {
                continue;
            }
            let jpi = [[1.0 / z, 0.0, -x / (z * z)], [0.0, 1.0 / z, -y / (z * z)]];
            // ∂p_c/∂δθ = [p_c]× ; ∂p_c/∂δp = −R_cw.
            let dth = illixr_math::skew(p_c);
            let mut jrow = [[0.0f64; 6]; 2];
            #[allow(clippy::needless_range_loop)] // small fixed-size index math
            for (rr, jr) in jrow.iter_mut().enumerate() {
                for cc in 0..3 {
                    let mut acc_th = 0.0;
                    let mut acc_p = 0.0;
                    for k in 0..3 {
                        acc_th += jpi[rr][k] * dth.m[k][cc];
                        acc_p += jpi[rr][k] * (-r_cw.m[k][cc]);
                    }
                    jr[cc] = acc_th;
                    jr[3 + cc] = acc_p;
                }
            }
            let residuals = [res_u, res_v];
            for (jr, &res) in jrow.iter().zip(&residuals) {
                for a in 0..6 {
                    for b in 0..6 {
                        h[(a, b)] += jr[a] * jr[b];
                    }
                    g[(a, 0)] += jr[a] * res;
                }
            }
            used += 1;
        }
        if used < 6 {
            return None;
        }
        // Damped solve; residual Jacobian sign: res = z − π(p), and
        // ∂res/∂x = −J, so the GN step solves (JᵀJ) δ = Jᵀ res with the
        // Jacobians above already carrying the projection derivative.
        let mean_diag = (0..6).map(|i| h[(i, i)]).sum::<f64>() / 6.0;
        for i in 0..6 {
            h[(i, i)] += 1e-4 * mean_diag + 1e-12;
        }
        let chol = Cholesky::new(&h).ok()?;
        let step = chol.solve(&g);
        let dtheta = Vec3::new(step[(0, 0)], step[(1, 0)], step[(2, 0)]);
        let dp = Vec3::new(step[(3, 0)], step[(4, 0)], step[(5, 0)]);
        if !dtheta.is_finite() || !dp.is_finite() {
            return None;
        }
        // Clamp implausible steps instead of aborting (frame-rate
        // refinement: true corrections are centimeters).
        let (mut dp, mut dtheta) = (dp, dtheta);
        if dp.norm() > 0.2 {
            dp = dp * (0.2 / dp.norm());
        }
        if dtheta.norm() > 0.3 {
            dtheta = dtheta * (0.3 / dtheta.norm());
        }
        pose = Pose::new(
            pose.position + dp,
            (pose.orientation * Quat::from_rotation_vector(dtheta)).normalized(),
        );
        if dtheta.norm() + dp.norm() < 1e-10 {
            break;
        }
    }
    Some(pose)
}

#[cfg(test)]
mod tests {
    use super::*;

    use illixr_sensors::camera::PinholeCamera;
    use illixr_sensors::dataset::SyntheticDataset;
    use std::sync::Arc;

    #[test]
    fn pnp_recovers_small_pose_offset() {
        // Synthetic: 20 world points observed from a known camera; start
        // GN from a perturbed pose and require convergence back.
        let truth = Pose::new(Vec3::new(0.2, -0.1, 0.3), Quat::from_euler(0.2, -0.1, 0.05));
        let mut observations = Vec::new();
        for i in 0..20 {
            let p_w = Vec3::new((i % 5) as f64 - 2.0, (i / 5) as f64 - 1.5, 4.0 + (i % 3) as f64);
            let p_c = truth.inverse().transform_point(p_w);
            observations.push((p_w, Vec3::new(p_c.x / p_c.z, p_c.y / p_c.z, 1.0)));
        }
        let mut start = truth;
        start.position += Vec3::new(0.03, -0.02, 0.04);
        start.orientation = start.orientation * Quat::from_rotation_vector(Vec3::splat(0.01));
        let refined = gauss_newton_pnp(&observations, &start, 10).unwrap();
        assert!(
            refined.translation_distance(&truth) < 1e-6,
            "pos err {}",
            refined.translation_distance(&truth)
        );
        assert!(refined.rotation_distance(&truth) < 1e-6);
    }

    #[test]
    fn pnp_rejects_underconstrained_input() {
        let obs = vec![(Vec3::new(0.0, 0.0, 3.0), Vec3::new(0.0, 0.0, 1.0)); 3];
        assert!(gauss_newton_pnp(&obs, &Pose::IDENTITY, 5).is_none());
    }

    #[test]
    fn tracks_a_dataset_with_bounded_drift() {
        // Seed calibrated to a mid-difficulty trajectory under the
        // vendored third_party/rand generator.
        let ds = SyntheticDataset::vicon_room_like(21, 4.0);
        let rig = StereoRig::zed_mini(PinholeCamera::qvga());
        let gt0 = ds.ground_truth[0];
        let init = ImuState::from_pose(gt0.timestamp, gt0.pose, gt0.velocity);
        let mut vio = FrameToFrameVio::new(FrameToFrameConfig::default(), rig, init);
        let mut imu_idx = 0;
        let mut worst = 0.0f64;
        let mut any_visual = false;
        for (k, &t) in ds.camera_times.iter().enumerate() {
            while imu_idx < ds.imu.len() && ds.imu[imu_idx].timestamp <= t {
                vio.process_imu(ds.imu[imu_idx]);
                imu_idx += 1;
            }
            let (l, r) = ds.render_frame(&rig, k);
            let out = vio.process_frame(
                &StereoFrame { timestamp: t, left: Arc::new(l), right: Arc::new(r), seq: k as u64 },
                None,
            );
            any_visual |= out.points_used > 0;
            let err = out.state.pose.translation_distance(&ds.ground_truth_pose(t));
            worst = worst.max(err);
        }
        assert!(any_visual, "the PnP stage never fired");
        // This lightweight tracker's accuracy class is decimeters (drift
        // enters through map anchors created from already-drifted poses);
        // the MSCKF achieves centimeters on the same data. The bound here
        // guards robustness (no divergence), not parity.
        assert!(worst < 0.8, "worst drift {worst:.3} m over 4 s");
    }

    #[test]
    fn map_is_bounded_by_culling() {
        let ds = SyntheticDataset::vicon_room_like(31, 3.0);
        let rig = StereoRig::zed_mini(PinholeCamera::qvga());
        let gt0 = ds.ground_truth[0];
        let config = FrameToFrameConfig { max_point_age: 5, ..Default::default() };
        let mut vio = FrameToFrameVio::new(
            config,
            rig,
            ImuState::from_pose(gt0.timestamp, gt0.pose, gt0.velocity),
        );
        let mut imu_idx = 0;
        let mut max_map = 0;
        for (k, &t) in ds.camera_times.iter().enumerate() {
            while imu_idx < ds.imu.len() && ds.imu[imu_idx].timestamp <= t {
                vio.process_imu(ds.imu[imu_idx]);
                imu_idx += 1;
            }
            let (l, r) = ds.render_frame(&rig, k);
            let out = vio.process_frame(
                &StereoFrame { timestamp: t, left: Arc::new(l), right: Arc::new(r), seq: k as u64 },
                None,
            );
            max_map = max_map.max(out.map_size);
        }
        // Budget 60 features + short age → map stays small.
        assert!(max_map < 200, "map grew to {max_map}");
    }
}
