//! The `vio` and `imu_integrator` plugins (paper Fig 2: camera → VIO is
//! a synchronous dependence; IMU → integrator is synchronous; integrator
//! publishes the fast pose that reprojection reads asynchronously).

use std::sync::Arc;

use illixr_core::plugin::{IterationReport, Plugin, PluginContext};
use illixr_core::switchboard::{SyncReader, Writer};
use illixr_core::telemetry::TaskTimer;
use illixr_sensors::types::{streams, ImuSample, PoseEstimate, StereoFrame};

use crate::integrator::{ImuState, Scheme};
use crate::msckf::{Msckf, VioConfig};

/// The head-tracking plugin: consumes every camera frame and IMU sample,
/// publishes the slow accurate pose on `slow_pose`.
pub struct VioPlugin {
    filter: Msckf,
    camera_reader: Option<SyncReader<StereoFrame>>,
    imu_reader: Option<SyncReader<ImuSample>>,
    pose_writer: Option<Writer<PoseEstimate>>,
    timer: Arc<TaskTimer>,
    nominal_features: f64,
    /// A frame waiting for IMU coverage (frames must not be processed
    /// before IMU samples spanning their timestamp have arrived —
    /// essential when sensors arrive over a jittery link).
    pending_frame: Option<StereoFrame>,
    latest_imu: illixr_core::Time,
}

impl VioPlugin {
    /// Creates the plugin with the given filter configuration and
    /// initial state.
    pub fn new(config: VioConfig, initial: ImuState) -> Self {
        let nominal_features = config.frontend.max_features.max(1) as f64;
        Self {
            filter: Msckf::new(config, initial),
            camera_reader: None,
            imu_reader: None,
            pose_writer: None,
            timer: Arc::new(TaskTimer::new()),
            nominal_features,
            pending_frame: None,
            latest_imu: illixr_core::Time::ZERO,
        }
    }

    /// Task-level timing (Table VI instrumentation).
    pub fn task_timer(&self) -> Arc<TaskTimer> {
        self.timer.clone()
    }

    /// The current state estimate.
    pub fn state(&self) -> &ImuState {
        self.filter.state()
    }
}

impl Plugin for VioPlugin {
    fn name(&self) -> &str {
        "vio"
    }

    fn start(&mut self, ctx: &PluginContext) {
        // Synchronous dependences: VIO must see *every* camera frame and
        // IMU sample (Fig 2, solid arrows).
        self.camera_reader = Some(
            ctx.switchboard.topic::<StereoFrame>(streams::CAMERA).expect("stream").sync_reader(8),
        );
        self.imu_reader = Some(
            ctx.switchboard.topic::<ImuSample>(streams::IMU).expect("stream").sync_reader(2048),
        );
        self.pose_writer = Some(
            ctx.switchboard.topic::<PoseEstimate>(streams::SLOW_POSE).expect("stream").writer(),
        );
    }

    fn iterate(&mut self, _ctx: &PluginContext) -> IterationReport {
        // Drain all pending IMU samples into the filter.
        let imu = self.imu_reader.as_ref().expect("start() must run before iterate()");
        for s in imu.drain_iter() {
            self.latest_imu = self.latest_imu.max(s.data.timestamp);
            self.filter.process_imu(s.data);
        }
        // Process at most one camera frame per invocation (the component
        // runs at the camera rate). A frame is held until IMU samples
        // covering its timestamp have arrived, so delayed/jittery sensor
        // delivery (e.g. an offloaded link) never loses motion.
        if self.pending_frame.is_none() {
            let cam = self.camera_reader.as_ref().expect("start() must run before iterate()");
            self.pending_frame = cam.try_recv().map(|e| e.data.clone());
        }
        let ready = self.pending_frame.as_ref().is_some_and(|f| self.latest_imu >= f.timestamp);
        if !ready {
            return IterationReport::skipped();
        }
        let frame = self.pending_frame.take().expect("checked above");
        let out = self.filter.process_frame(&frame, Some(&self.timer));
        self.pose_writer.as_ref().expect("start() must run before iterate()").put(PoseEstimate {
            timestamp: frame.timestamp,
            pose: out.state.pose,
            velocity: out.state.velocity,
        });
        // Input-dependent work: tracked features plus update volume,
        // relative to the nominal budget.
        let work = (out.tracked_features as f64 + 2.0 * out.update_rows as f64 / 10.0)
            / self.nominal_features;
        IterationReport::with_work(work.max(0.2))
    }
}

/// The high-rate pose plugin: re-propagates the latest VIO state through
/// the IMU stream (RK4, Table II) and publishes `fast_pose`.
pub struct ImuIntegratorPlugin {
    scheme: Scheme,
    imu_reader: Option<SyncReader<ImuSample>>,
    slow_pose_reader: Option<illixr_core::switchboard::AsyncReader<PoseEstimate>>,
    fast_writer: Option<Writer<PoseEstimate>>,
    /// IMU history for re-propagation from the last VIO anchor.
    history: Vec<ImuSample>,
    state: ImuState,
    anchor_timestamp: illixr_core::Time,
}

impl ImuIntegratorPlugin {
    /// Creates the integrator (RK4 by default, like OpenVINS).
    pub fn new(initial: ImuState) -> Self {
        Self {
            scheme: Scheme::Rk4,
            imu_reader: None,
            slow_pose_reader: None,
            fast_writer: None,
            history: Vec::new(),
            state: initial,
            anchor_timestamp: illixr_core::Time::ZERO,
        }
    }

    /// Switches the integration scheme (plugin interchangeability).
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// The integrator's internal state for a failover snapshot:
    /// `(state, history, anchor_timestamp)`.
    pub fn snapshot_parts(&self) -> (ImuState, Vec<ImuSample>, illixr_core::Time) {
        (self.state, self.history.clone(), self.anchor_timestamp)
    }

    /// Restores a snapshot taken with
    /// [`ImuIntegratorPlugin::snapshot_parts`]. Nothing is published;
    /// the next `iterate` continues exactly where the snapshotted
    /// instance would have.
    pub fn restore_parts(
        &mut self,
        state: ImuState,
        history: Vec<ImuSample>,
        anchor_timestamp: illixr_core::Time,
    ) {
        self.state = state;
        self.history = history;
        self.anchor_timestamp = anchor_timestamp;
    }
}

impl Plugin for ImuIntegratorPlugin {
    fn name(&self) -> &str {
        "imu_integrator"
    }

    fn start(&mut self, ctx: &PluginContext) {
        self.imu_reader = Some(
            ctx.switchboard.topic::<ImuSample>(streams::IMU).expect("stream").sync_reader(2048),
        );
        self.slow_pose_reader = Some(
            ctx.switchboard
                .topic::<PoseEstimate>(streams::SLOW_POSE)
                .expect("stream")
                .async_reader(),
        );
        self.fast_writer = Some(
            ctx.switchboard.topic::<PoseEstimate>(streams::FAST_POSE).expect("stream").writer(),
        );
    }

    fn iterate(&mut self, _ctx: &PluginContext) -> IterationReport {
        // Collect new IMU samples.
        let imu = self.imu_reader.as_ref().expect("start() must run before iterate()");
        let mut new_samples = 0u32;
        for s in imu.drain_iter() {
            self.history.push(s.data);
            new_samples += 1;
        }
        if new_samples == 0 {
            return IterationReport::skipped();
        }
        // Re-anchor on a fresh VIO estimate (asynchronous dependence:
        // take the latest, Fig 2 dashed arrow).
        if let Some(anchor) = self.slow_pose_reader.as_ref().expect("started").latest() {
            if anchor.timestamp > self.anchor_timestamp {
                self.anchor_timestamp = anchor.timestamp;
                self.state = ImuState {
                    timestamp: anchor.timestamp,
                    pose: anchor.pose,
                    velocity: anchor.velocity,
                    gyro_bias: self.state.gyro_bias,
                    accel_bias: self.state.accel_bias,
                };
                // Drop history older than the anchor (keep one sample
                // before it as the integration left endpoint).
                let split = self.history.partition_point(|s| s.timestamp <= anchor.timestamp);
                if split > 1 {
                    self.history.drain(0..split - 1);
                }
            }
        }
        // Propagate from the anchor through the (remaining) history.
        self.state = crate::integrator::propagate(&self.state, &self.history, self.scheme);
        // Keep only the last sample as the next left endpoint.
        if self.history.len() > 1 {
            let last = *self.history.last().expect("non-empty");
            self.history.clear();
            self.history.push(last);
        }
        self.fast_writer.as_ref().expect("start() must run before iterate()").put(PoseEstimate {
            timestamp: self.state.timestamp,
            pose: self.state.pose,
            velocity: self.state.velocity,
        });
        IterationReport::with_work(new_samples as f64)
    }
}

/// The alternative head-tracking plugin (Table II's second VIO slot):
/// wraps [`crate::alternative::FrameToFrameVio`] behind exactly the same
/// streams as [`VioPlugin`], so the two estimators are drop-in
/// interchangeable.
pub struct AlternativeVioPlugin {
    tracker: crate::alternative::FrameToFrameVio,
    camera_reader: Option<SyncReader<StereoFrame>>,
    imu_reader: Option<SyncReader<ImuSample>>,
    pose_writer: Option<Writer<PoseEstimate>>,
    timer: Arc<TaskTimer>,
    pending_frame: Option<StereoFrame>,
    latest_imu: illixr_core::Time,
}

impl AlternativeVioPlugin {
    /// Creates the plugin.
    pub fn new(
        config: crate::alternative::FrameToFrameConfig,
        rig: illixr_sensors::camera::StereoRig,
        initial: ImuState,
    ) -> Self {
        Self {
            tracker: crate::alternative::FrameToFrameVio::new(config, rig, initial),
            camera_reader: None,
            imu_reader: None,
            pose_writer: None,
            timer: Arc::new(TaskTimer::new()),
            pending_frame: None,
            latest_imu: illixr_core::Time::ZERO,
        }
    }

    /// Task-level timing.
    pub fn task_timer(&self) -> Arc<TaskTimer> {
        self.timer.clone()
    }
}

impl Plugin for AlternativeVioPlugin {
    fn name(&self) -> &str {
        "vio"
    }

    fn start(&mut self, ctx: &PluginContext) {
        self.camera_reader = Some(
            ctx.switchboard.topic::<StereoFrame>(streams::CAMERA).expect("stream").sync_reader(8),
        );
        self.imu_reader = Some(
            ctx.switchboard.topic::<ImuSample>(streams::IMU).expect("stream").sync_reader(2048),
        );
        self.pose_writer = Some(
            ctx.switchboard.topic::<PoseEstimate>(streams::SLOW_POSE).expect("stream").writer(),
        );
    }

    fn iterate(&mut self, _ctx: &PluginContext) -> IterationReport {
        let imu = self.imu_reader.as_ref().expect("start() must run before iterate()");
        for s in imu.drain_iter() {
            self.latest_imu = self.latest_imu.max(s.data.timestamp);
            self.tracker.process_imu(s.data);
        }
        if self.pending_frame.is_none() {
            let cam = self.camera_reader.as_ref().expect("start() must run before iterate()");
            self.pending_frame = cam.try_recv().map(|e| e.data.clone());
        }
        let ready = self.pending_frame.as_ref().is_some_and(|f| self.latest_imu >= f.timestamp);
        if !ready {
            return IterationReport::skipped();
        }
        let frame = self.pending_frame.take().expect("checked above");
        let out = self.tracker.process_frame(&frame, Some(&self.timer));
        self.pose_writer.as_ref().expect("start() must run before iterate()").put(PoseEstimate {
            timestamp: frame.timestamp,
            pose: out.state.pose,
            velocity: out.state.velocity,
        });
        // Lightweight tracker: roughly half the nominal MSCKF work.
        IterationReport::with_work(0.4 + 0.2 * out.points_used as f64 / 60.0)
    }
}

/// Convenience: a fast-pose provider that publishes ground-truth poses —
/// the "idealized configuration" used for image-quality baselines
/// (§III-E).
pub struct GroundTruthPosePlugin {
    trajectory: illixr_sensors::trajectory::Trajectory,
    writer: Option<Writer<PoseEstimate>>,
}

impl GroundTruthPosePlugin {
    /// Creates the plugin.
    pub fn new(trajectory: illixr_sensors::trajectory::Trajectory) -> Self {
        Self { trajectory, writer: None }
    }
}

impl Plugin for GroundTruthPosePlugin {
    fn name(&self) -> &str {
        "gt_pose"
    }

    fn start(&mut self, ctx: &PluginContext) {
        self.writer = Some(
            ctx.switchboard.topic::<PoseEstimate>(streams::FAST_POSE).expect("stream").writer(),
        );
    }

    fn iterate(&mut self, ctx: &PluginContext) -> IterationReport {
        let t = ctx.clock.now();
        self.writer.as_ref().expect("start() must run before iterate()").put(PoseEstimate {
            timestamp: t,
            pose: self.trajectory.pose(t),
            velocity: self.trajectory.velocity(t),
        });
        IterationReport::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_core::plugin::RuntimeBuilder;
    use illixr_core::{SimClock, Time};
    use illixr_sensors::camera::{PinholeCamera, StereoRig};
    use illixr_sensors::dataset::SyntheticDataset;
    use illixr_sensors::plugins::OfflineImuCameraPlugin;
    use illixr_sensors::trajectory::Trajectory;

    /// Full perception pipeline: offline player → VIO → integrator.
    #[test]
    fn perception_pipeline_end_to_end() {
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        let ds = Arc::new(SyntheticDataset::vicon_room_like(17, 2.5));
        let rig = StereoRig::zed_mini(PinholeCamera::qvga());
        let gt0 = &ds.ground_truth[0];
        let init = ImuState::from_pose(gt0.timestamp, gt0.pose, gt0.velocity);

        let mut source = OfflineImuCameraPlugin::new(ds.clone(), rig);
        let mut vio = VioPlugin::new(VioConfig::fast(PinholeCamera::qvga()), init);
        let mut integ = ImuIntegratorPlugin::new(init);
        source.start(&ctx);
        vio.start(&ctx);
        integ.start(&ctx);

        let fast_pose = ctx
            .switchboard
            .topic::<PoseEstimate>(streams::FAST_POSE)
            .expect("stream")
            .async_reader();
        let slow_pose = ctx
            .switchboard
            .topic::<PoseEstimate>(streams::SLOW_POSE)
            .expect("stream")
            .async_reader();

        // Drive everything at the camera cadence (66.7 ms ticks).
        let steps = 36; // 2.4 s
        for k in 0..steps {
            clock.advance_to(Time::from_secs_f64(k as f64 / 15.0));
            source.iterate(&ctx);
            vio.iterate(&ctx);
            integ.iterate(&ctx);
        }

        let slow = slow_pose.latest().expect("VIO produced poses");
        let fast = fast_pose.latest().expect("integrator produced poses");
        assert!(fast.timestamp >= slow.timestamp, "fast pose should be at least as fresh");
        let t_end = fast.timestamp;
        let truth = ds.ground_truth_pose(t_end);
        let err = fast.pose.translation_distance(&truth);
        assert!(err < 0.6, "fast pose error {err:.3} m");
    }

    #[test]
    fn vio_holds_frames_until_imu_coverage() {
        use illixr_sensors::types::StereoFrame;
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        let init = ImuState::identity();
        let mut vio = VioPlugin::new(VioConfig::fast(PinholeCamera::qvga()), init);
        vio.start(&ctx);
        let img = Arc::new(illixr_image::GrayImage::new(320, 240));
        // A frame at t=100 ms with no IMU coverage yet → held.
        ctx.switchboard.topic::<StereoFrame>(streams::CAMERA).expect("stream").writer().put(
            StereoFrame {
                timestamp: Time::from_millis(100),
                left: img.clone(),
                right: img.clone(),
                seq: 0,
            },
        );
        assert!(!vio.iterate(&ctx).did_work, "frame processed without IMU coverage");
        // IMU up to 99 ms: still not covered.
        let imu_writer = ctx
            .switchboard
            .topic::<illixr_sensors::types::ImuSample>(streams::IMU)
            .expect("stream")
            .writer();
        imu_writer.put(illixr_sensors::types::ImuSample {
            timestamp: Time::from_millis(99),
            gyro: illixr_math::Vec3::ZERO,
            accel: illixr_math::Vec3::new(0.0, 9.80665, 0.0),
        });
        assert!(!vio.iterate(&ctx).did_work);
        // IMU reaching 101 ms → the frame is processed.
        imu_writer.put(illixr_sensors::types::ImuSample {
            timestamp: Time::from_millis(101),
            gyro: illixr_math::Vec3::ZERO,
            accel: illixr_math::Vec3::new(0.0, 9.80665, 0.0),
        });
        assert!(vio.iterate(&ctx).did_work, "covered frame must be processed");
    }

    #[test]
    fn integrator_skips_without_input() {
        let ctx = RuntimeBuilder::new(Arc::new(SimClock::new())).build();
        let mut integ = ImuIntegratorPlugin::new(ImuState::identity());
        integ.start(&ctx);
        assert!(!integ.iterate(&ctx).did_work);
    }

    #[test]
    fn ground_truth_plugin_publishes_exact_pose() {
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        let traj = Trajectory::walking(3);
        let mut p = GroundTruthPosePlugin::new(traj.clone());
        p.start(&ctx);
        let reader = ctx
            .switchboard
            .topic::<PoseEstimate>(streams::FAST_POSE)
            .expect("stream")
            .async_reader();
        clock.advance_to(Time::from_millis(500));
        p.iterate(&ctx);
        let est = reader.latest().unwrap();
        assert!(est.pose.translation_distance(&traj.pose(Time::from_millis(500))) < 1e-12);
    }
}
