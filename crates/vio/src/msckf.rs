//! The MSCKF back end (OpenVINS-style sliding-window filter).
//!
//! State: the current inertial state (orientation, position, velocity,
//! gyro/accel biases) plus a sliding window of cloned camera poses.
//! Camera features tracked by the [`crate::frontend`] are triangulated
//! across the window ("feature initialization") and applied as EKF
//! updates after projecting out the feature position via the left
//! null space of `H_f` ("MSCKF update"), with chi² gating and QR
//! measurement compression — the task structure of paper Table VI.
//!
//! Long-lived tracks that survive a full window are consumed and kept
//! alive with a fresh observation history ("SLAM update" in the task
//! accounting). Unlike OpenVINS we do not keep landmark positions in the
//! state vector; DESIGN.md documents this simplification.
//!
//! Error-state convention: body-side attitude error,
//! `R_true = R_est · Exp([δθ]×)`, with error vector ordering
//! `[δθ, δp, δv, δb_g, δb_a, (δθ_ci, δp_ci)*]`.

use std::collections::HashMap;

use illixr_core::telemetry::TaskTimer;
use illixr_core::Time;
use illixr_math::{skew, so3_exp, Cholesky, DMatrix, Pose, Qr, Quat, Vec2, Vec3};
use illixr_sensors::camera::PinholeCamera;
use illixr_sensors::types::{ImuSample, StereoFrame};

use crate::frontend::{FrontEnd, FrontEndParams};
use crate::integrator::{propagate_rk4, ImuState};
use crate::triangulate::{triangulate_feature, Observation};

/// Size of the inertial error block.
const IMU_DIM: usize = 15;
/// Size of one clone's error block.
const CLONE_DIM: usize = 6;

/// MSCKF configuration — the paper's §V-E ablation switches between
/// [`VioConfig::fast`] and [`VioConfig::accurate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VioConfig {
    /// Camera intrinsics for measurement normalization.
    pub camera: PinholeCamera,
    /// Front-end parameters (tracked-feature budget).
    pub frontend: FrontEndParams,
    /// Sliding-window length (number of pose clones).
    pub window_size: usize,
    /// Minimum observations before a feature can be used in an update.
    pub min_observations: usize,
    /// Pixel measurement noise (1σ, pixels).
    pub pixel_noise: f64,
    /// Gyro white-noise density (rad/s/√Hz).
    pub gyro_noise: f64,
    /// Accel white-noise density (m/s²/√Hz).
    pub accel_noise: f64,
    /// Gyro bias random walk.
    pub gyro_walk: f64,
    /// Accel bias random walk.
    pub accel_walk: f64,
}

impl VioConfig {
    /// The lower-accuracy, lower-cost configuration (fewer tracked
    /// points, shorter window) — §V-E's cheap setting.
    pub fn fast(camera: PinholeCamera) -> Self {
        Self {
            camera,
            frontend: FrontEndParams { max_features: 30, ..Default::default() },
            window_size: 6,
            min_observations: 4,
            pixel_noise: 1.0,
            gyro_noise: 8.7e-4,
            accel_noise: 1.4e-3,
            gyro_walk: 1.0e-5,
            accel_walk: 8.0e-5,
        }
    }

    /// The higher-accuracy configuration (§V-E: ~1.5× per-frame cost for
    /// lower trajectory error).
    pub fn accurate(camera: PinholeCamera) -> Self {
        Self {
            frontend: FrontEndParams { max_features: 70, ..Default::default() },
            window_size: 10,
            min_observations: 4,
            ..Self::fast(camera)
        }
    }
}

/// A cloned camera pose in the sliding window.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CloneState {
    id: u64,
    timestamp: Time,
    pose: Pose,
}

/// Output of processing one camera frame.
#[derive(Debug, Clone)]
pub struct VioOutput {
    /// The updated inertial state at the frame timestamp.
    pub state: ImuState,
    /// Number of features currently tracked.
    pub tracked_features: usize,
    /// Number of features consumed by MSCKF updates this frame.
    pub msckf_features: usize,
    /// Number of long-lived features consumed by SLAM-style updates.
    pub slam_features: usize,
    /// Total measurement rows applied this frame.
    pub update_rows: usize,
}

/// The filter.
pub struct Msckf {
    config: VioConfig,
    state: ImuState,
    clones: Vec<CloneState>,
    cov: DMatrix,
    frontend: FrontEnd,
    /// feature id → (clone id, normalized left observation).
    observations: HashMap<u64, Vec<(u64, Vec2)>>,
    next_clone_id: u64,
    imu_buffer: Vec<ImuSample>,
}

impl std::fmt::Debug for Msckf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Msckf({} clones, {} tracked features)",
            self.clones.len(),
            self.observations.len()
        )
    }
}

impl Msckf {
    /// Creates a filter at the given initial state.
    pub fn new(config: VioConfig, initial: ImuState) -> Self {
        let mut cov = DMatrix::zeros(IMU_DIM, IMU_DIM);
        // Initial uncertainty: near-exact pose (benchmark initialization),
        // loose velocity and biases.
        for i in 0..3 {
            cov[(i, i)] = 1e-5; // attitude
            cov[(3 + i, 3 + i)] = 1e-5; // position
            cov[(6 + i, 6 + i)] = 1e-2; // velocity
            cov[(9 + i, 9 + i)] = 1e-4; // gyro bias
            cov[(12 + i, 12 + i)] = 1e-2; // accel bias
        }
        Self {
            frontend: FrontEnd::new(config.frontend),
            config,
            state: initial,
            clones: Vec::new(),
            cov,
            observations: HashMap::new(),
            next_clone_id: 0,
            imu_buffer: Vec::new(),
        }
    }

    /// The current inertial state estimate.
    pub fn state(&self) -> &ImuState {
        &self.state
    }

    /// Buffers an IMU sample for the next propagation.
    pub fn process_imu(&mut self, sample: ImuSample) {
        self.imu_buffer.push(sample);
    }

    /// Processes one stereo frame: propagate → clone → track →
    /// initialize + update → marginalize.
    pub fn process_frame(&mut self, frame: &StereoFrame, timer: Option<&TaskTimer>) -> VioOutput {
        // --- Propagation + cloning ("other" in the task table) ----------
        {
            let _g = timer.map(|t| t.scope("other"));
            self.propagate_to(frame.timestamp);
            self.clone_state(frame.timestamp);
        }

        // --- Front end (detection + matching, timed internally) ---------
        let tracks = self.frontend.process(&frame.left, &frame.right, timer);
        let clone_id = self.clones.last().expect("clone_state just pushed").id;
        let cam = self.config.camera;
        let mut live_ids = Vec::with_capacity(tracks.len());
        for t in &tracks {
            let norm = Vec2::new((t.left.x - cam.cx) / cam.fx, (t.left.y - cam.cy) / cam.fy);
            self.observations.entry(t.id).or_default().push((clone_id, norm));
            live_ids.push(t.id);
        }

        // --- Select features for updates --------------------------------
        let min_obs = self.config.min_observations;
        let window = self.config.window_size;
        let mut msckf_ids = Vec::new();
        let mut slam_ids = Vec::new();
        for (&fid, obs) in &self.observations {
            let alive = live_ids.contains(&fid);
            if !alive && obs.len() >= min_obs {
                msckf_ids.push(fid); // lost track → MSCKF feature
            } else if alive && obs.len() >= window {
                slam_ids.push(fid); // long-lived track → SLAM-style update
            }
        }
        msckf_ids.sort_unstable();
        slam_ids.sort_unstable();

        // --- Feature initialization + updates ---------------------------
        let mut update_rows = 0;
        let mut used_msckf = 0;
        let mut used_slam = 0;
        let mut stacked_h: Option<DMatrix> = None;
        let mut stacked_r: Option<DMatrix> = None;
        for (ids, is_slam) in [(&msckf_ids, false), (&slam_ids, true)] {
            for &fid in ids.iter() {
                let obs = self.observations.get(&fid).cloned().unwrap_or_default();
                let feature = {
                    let _g = timer.map(|t| t.scope("feature initialization"));
                    self.initialize_feature(&obs)
                };
                if let Some(p_f) = feature {
                    let _g = timer
                        .map(|t| t.scope(if is_slam { "SLAM update" } else { "MSCKF update" }));
                    if let Some((h, r)) = self.feature_jacobians(&obs, p_f) {
                        if self.chi2_gate(&h, &r) {
                            update_rows += r.rows();
                            if is_slam {
                                used_slam += 1;
                            } else {
                                used_msckf += 1;
                            }
                            stacked_h = Some(match stacked_h {
                                Some(prev) => prev.vstack(&h),
                                None => h,
                            });
                            stacked_r = Some(match stacked_r {
                                Some(prev) => prev.vstack(&r),
                                None => r,
                            });
                        }
                    }
                }
                // Consume the observations. Dead tracks are removed;
                // live (SLAM) tracks restart with an *empty* history —
                // every consumed observation is correlated with the
                // state after the update, so re-using any of them in a
                // later triangulation would double-count information
                // and make the filter inconsistent.
                if is_slam {
                    if let Some(v) = self.observations.get_mut(&fid) {
                        v.clear();
                    }
                } else {
                    self.observations.remove(&fid);
                }
            }
        }
        if let (Some(h), Some(r)) = (stacked_h, stacked_r) {
            let _g = timer.map(|t| t.scope("MSCKF update"));
            self.apply_update(h, r);
        }

        // --- Marginalization --------------------------------------------
        {
            let _g = timer.map(|t| t.scope("marginalization"));
            self.marginalize();
        }

        VioOutput {
            state: self.state,
            tracked_features: tracks.len(),
            msckf_features: used_msckf,
            slam_features: used_slam,
            update_rows,
        }
    }

    /// Propagates the nominal state and covariance through buffered IMU
    /// samples up to `t`.
    fn propagate_to(&mut self, t: Time) {
        // Partition buffer: samples to integrate now vs. keep for later.
        let samples: Vec<ImuSample> =
            self.imu_buffer.iter().copied().filter(|s| s.timestamp <= t).collect();
        self.imu_buffer.retain(|s| s.timestamp > t);
        // Keep the last consumed sample as the left endpoint of the next
        // interval.
        if let Some(last) = samples.last() {
            self.imu_buffer.insert(0, *last);
        }
        for pair in samples.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if b.timestamp <= self.state.timestamp {
                continue;
            }
            let dt = (b.timestamp - a.timestamp).as_secs_f64();
            if dt <= 0.0 {
                continue;
            }
            let w = (a.gyro + b.gyro) * 0.5 - self.state.gyro_bias;
            let acc = (a.accel + b.accel) * 0.5 - self.state.accel_bias;
            let r_est = self.state.pose.orientation.to_rotation_matrix();

            // Nominal propagation (RK4).
            self.state = propagate_rk4(&self.state, a, b);

            // Covariance propagation, first order.
            let n = self.cov.rows();
            let mut phi_i = DMatrix::identity(IMU_DIM);
            let exp_neg = so3_exp(-(w * dt));
            for r in 0..3 {
                for c in 0..3 {
                    phi_i[(r, c)] = exp_neg.m[r][c];
                }
            }
            // δθ / δbg
            for i in 0..3 {
                phi_i[(i, 9 + i)] = -dt;
            }
            // δv / δθ = -R [a]× dt ; δv / δba = -R dt
            let va = (r_est * skew(acc)).scale(-dt);
            let vb = r_est.scale(-dt);
            for r in 0..3 {
                for c in 0..3 {
                    phi_i[(6 + r, c)] = va.m[r][c];
                    phi_i[(6 + r, 12 + c)] = vb.m[r][c];
                }
            }
            // δp / δv = I dt
            for i in 0..3 {
                phi_i[(3 + i, 6 + i)] = dt;
            }

            // P_II ← Φ P_II Φᵀ + Q ; P_IC ← Φ P_IC.
            let p_ii = self.cov.block(0, 0, IMU_DIM, IMU_DIM);
            let mut new_ii = &(&phi_i * &p_ii) * &phi_i.transpose();
            let (sg, sa) = (self.config.gyro_noise, self.config.accel_noise);
            let (wg, wa) = (self.config.gyro_walk, self.config.accel_walk);
            for i in 0..3 {
                new_ii[(i, i)] += sg * sg * dt;
                new_ii[(6 + i, 6 + i)] += sa * sa * dt;
                new_ii[(9 + i, 9 + i)] += wg * wg * dt;
                new_ii[(12 + i, 12 + i)] += wa * wa * dt;
                new_ii[(3 + i, 3 + i)] += 1e-12; // keep position PD
            }
            self.cov.set_block(0, 0, &new_ii);
            if n > IMU_DIM {
                let p_ic = self.cov.block(0, IMU_DIM, IMU_DIM, n - IMU_DIM);
                let new_ic = &phi_i * &p_ic;
                self.cov.set_block(0, IMU_DIM, &new_ic);
                self.cov.set_block(IMU_DIM, 0, &new_ic.transpose());
            }
            self.cov.symmetrize();
        }
        // Advance the nominal state to exactly t (constant-rate
        // extrapolation over the sub-sample remainder is negligible at
        // 500 Hz; we simply stamp the time).
        if self.state.timestamp < t {
            self.state.timestamp = t;
        }
    }

    /// Clones the current pose into the window and augments covariance.
    fn clone_state(&mut self, t: Time) {
        let id = self.next_clone_id;
        self.next_clone_id += 1;
        self.clones.push(CloneState { id, timestamp: t, pose: self.state.pose });
        let old_n = self.cov.rows();
        let new_n = old_n + CLONE_DIM;
        let mut new_cov = DMatrix::zeros(new_n, new_n);
        new_cov.set_block(0, 0, &self.cov);
        // J maps IMU errors to the new clone's errors: δθ_c = δθ, δp_c = δp.
        // Rows of the new block are J · P (J selects rows 0..3 and 3..6).
        let p_top = self.cov.block(0, 0, CLONE_DIM, old_n); // rows [δθ; δp]
        new_cov.set_block(old_n, 0, &p_top);
        new_cov.set_block(0, old_n, &p_top.transpose());
        let p_corner = self.cov.block(0, 0, CLONE_DIM, CLONE_DIM);
        new_cov.set_block(old_n, old_n, &p_corner);
        self.cov = new_cov;
    }

    /// Triangulates a feature from its observation history.
    fn initialize_feature(&self, obs: &[(u64, Vec2)]) -> Option<Vec3> {
        let mut views = Vec::with_capacity(obs.len());
        for &(cid, pt) in obs {
            let clone = self.clones.iter().find(|c| c.id == cid)?;
            views.push(Observation { cam_pose: clone.pose, point: pt });
        }
        if views.len() < 2 {
            return None;
        }
        triangulate_feature(&views)
    }

    /// Builds the null-space-projected Jacobian and residual for one
    /// feature.
    #[allow(clippy::needless_range_loop)] // small fixed-size index math
    fn feature_jacobians(&self, obs: &[(u64, Vec2)], p_f: Vec3) -> Option<(DMatrix, DMatrix)> {
        let n = self.cov.rows();
        let mut rows = Vec::new(); // (H_x row, H_f row, residual)
        for &(cid, z) in obs {
            let Some(idx) = self.clones.iter().position(|c| c.id == cid) else { continue };
            let clone = &self.clones[idx];
            let r_wc = clone.pose.orientation.to_rotation_matrix(); // body→world
            let r_cw = r_wc.transpose();
            let p_c = r_cw * (p_f - clone.pose.position);
            if p_c.z < 0.05 {
                continue;
            }
            let (x, y, zc) = (p_c.x, p_c.y, p_c.z);
            let res = Vec2::new(z.x - x / zc, z.y - y / zc);
            // J_π (2×3)
            let jpi = [[1.0 / zc, 0.0, -x / (zc * zc)], [0.0, 1.0 / zc, -y / (zc * zc)]];
            // ∂p_c/∂δθ_i = [p_c]× ; ∂p_c/∂δp_i = -R_cw ; ∂p_c/∂p_f = R_cw.
            let dth = skew(p_c);
            let col_base = IMU_DIM + idx * CLONE_DIM;
            let mut hx = vec![0.0; 2 * n];
            let mut hf = [[0.0; 3]; 2];
            for rr in 0..2 {
                for cc in 0..3 {
                    let mut acc_th = 0.0;
                    let mut acc_p = 0.0;
                    let mut acc_f = 0.0;
                    for k in 0..3 {
                        acc_th += jpi[rr][k] * dth.m[k][cc];
                        acc_p += jpi[rr][k] * (-r_cw.m[k][cc]);
                        acc_f += jpi[rr][k] * r_cw.m[k][cc];
                    }
                    hx[rr * n + col_base + cc] = acc_th;
                    hx[rr * n + col_base + 3 + cc] = acc_p;
                    hf[rr][cc] = acc_f;
                }
            }
            rows.push((hx, hf, res));
        }
        if rows.len() < 2 {
            return None;
        }
        let m = rows.len() * 2;
        let mut h_x = DMatrix::zeros(m, n);
        let mut h_f = DMatrix::zeros(m, 3);
        let mut r = DMatrix::zeros(m, 1);
        for (i, (hx, hf, res)) in rows.iter().enumerate() {
            for c in 0..n {
                h_x[(2 * i, c)] = hx[c];
                h_x[(2 * i + 1, c)] = hx[n + c];
            }
            for c in 0..3 {
                h_f[(2 * i, c)] = hf[0][c];
                h_f[(2 * i + 1, c)] = hf[1][c];
            }
            r[(2 * i, 0)] = res.x;
            r[(2 * i + 1, 0)] = res.y;
        }
        // Project onto the left null space of H_f: rows 3.. of QᵀH_x.
        if m <= 3 {
            return None;
        }
        let qr = Qr::new(&h_f).ok()?;
        let h0 = qr.q_transpose_mul(&h_x);
        let r0 = qr.q_transpose_mul(&r);
        let h = h0.block(3, 0, m - 3, n);
        let r = r0.block(3, 0, m - 3, 1);
        Some((h, r))
    }

    /// 95 % chi² gate on the projected residual.
    fn chi2_gate(&self, h: &DMatrix, r: &DMatrix) -> bool {
        let sigma = self.config.pixel_noise / self.config.camera.fx;
        let mut s = &(h * &self.cov) * &h.transpose();
        for i in 0..s.rows() {
            s[(i, i)] += sigma * sigma;
        }
        let Ok(chol) = Cholesky::new(&s) else { return false };
        let sol = chol.solve(r);
        let gamma = r.dot(&sol);
        gamma <= chi2_95(r.rows())
    }

    /// EKF update with QR compression and Joseph-form covariance update.
    fn apply_update(&mut self, mut h: DMatrix, mut r: DMatrix) {
        let n = self.cov.rows();
        // Measurement compression when over-determined.
        if h.rows() > n {
            if let Ok(qr) = Qr::new(&h) {
                let hc = qr.q_transpose_mul(&h);
                let rc = qr.q_transpose_mul(&r);
                h = hc.block(0, 0, n, n);
                r = rc.block(0, 0, n, 1);
            }
        }
        let sigma = self.config.pixel_noise / self.config.camera.fx;
        let noise = sigma * sigma;
        let ph_t = self.cov.mul_transpose(&h); // P Hᵀ (n × m)
        let mut s = &h * &ph_t; // H P Hᵀ
        for i in 0..s.rows() {
            s[(i, i)] += noise;
        }
        let Ok(chol) = Cholesky::new(&s) else { return };
        // K = P Hᵀ S⁻¹ → solve S Kᵀ = (P Hᵀ)ᵀ.
        let k_t = chol.solve(&ph_t.transpose());
        let k = k_t.transpose(); // n × m
        let dx = &k * &r;
        // Joseph form: P ← (I − K H) P (I − K H)ᵀ + K R Kᵀ.
        let mut ikh = DMatrix::identity(n);
        let kh = &k * &h;
        ikh = &ikh - &kh;
        let mut new_cov = &(&ikh * &self.cov) * &ikh.transpose();
        let krk = k.mul_transpose(&k).scale(noise);
        new_cov = &new_cov + &krk;
        new_cov.symmetrize();
        if !new_cov.is_finite() || !dx.is_finite() {
            return; // reject a numerically broken update
        }
        self.cov = new_cov;
        self.inject(&dx);
    }

    /// Applies an error-state correction to the nominal state.
    fn inject(&mut self, dx: &DMatrix) {
        let dtheta = Vec3::new(dx[(0, 0)], dx[(1, 0)], dx[(2, 0)]);
        let dp = Vec3::new(dx[(3, 0)], dx[(4, 0)], dx[(5, 0)]);
        let dv = Vec3::new(dx[(6, 0)], dx[(7, 0)], dx[(8, 0)]);
        let dbg = Vec3::new(dx[(9, 0)], dx[(10, 0)], dx[(11, 0)]);
        let dba = Vec3::new(dx[(12, 0)], dx[(13, 0)], dx[(14, 0)]);
        self.state.pose = Pose::new(
            self.state.pose.position + dp,
            (self.state.pose.orientation * Quat::from_rotation_vector(dtheta)).normalized(),
        );
        self.state.velocity += dv;
        self.state.gyro_bias += dbg;
        self.state.accel_bias += dba;
        for (i, clone) in self.clones.iter_mut().enumerate() {
            let base = IMU_DIM + i * CLONE_DIM;
            let cth = Vec3::new(dx[(base, 0)], dx[(base + 1, 0)], dx[(base + 2, 0)]);
            let cp = Vec3::new(dx[(base + 3, 0)], dx[(base + 4, 0)], dx[(base + 5, 0)]);
            clone.pose = Pose::new(
                clone.pose.position + cp,
                (clone.pose.orientation * Quat::from_rotation_vector(cth)).normalized(),
            );
        }
    }

    /// Drops the oldest clones beyond the window, with their covariance
    /// rows/columns and any observations that reference them.
    fn marginalize(&mut self) {
        while self.clones.len() > self.config.window_size {
            let victim = self.clones.remove(0);
            let base = IMU_DIM; // oldest clone sits first after the IMU block
            let idx: Vec<usize> = (base..base + CLONE_DIM).collect();
            self.cov = self.cov.remove_rows_cols(&idx);
            for obs in self.observations.values_mut() {
                obs.retain(|(cid, _)| *cid != victim.id);
            }
        }
        self.observations.retain(|_, v| !v.is_empty());
    }
}

/// Approximate 95th-percentile chi-square quantile (Wilson-Hilferty).
pub fn chi2_95(dof: usize) -> f64 {
    let k = dof.max(1) as f64;
    let z = 1.6449; // Φ⁻¹(0.95)
    let t = 1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt();
    k * t * t * t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrator::{propagate, Scheme};
    use illixr_sensors::camera::StereoRig;
    use illixr_sensors::dataset::SyntheticDataset;
    use std::sync::Arc;

    #[test]
    fn chi2_quantiles_are_sane() {
        // Known values: χ²₀.₉₅(1) ≈ 3.84, χ²₀.₉₅(10) ≈ 18.31.
        assert!((chi2_95(1) - 3.84).abs() < 0.15);
        assert!((chi2_95(10) - 18.31).abs() < 0.3);
        assert!(chi2_95(5) < chi2_95(20));
    }

    /// End-to-end: the filter tracks a noisy walking sequence far better
    /// than IMU dead reckoning.
    #[test]
    fn msckf_beats_dead_reckoning() {
        let seed = 21;
        let duration = 4.0;
        let ds = Arc::new(SyntheticDataset::vicon_room_like(seed, duration));
        let rig = StereoRig::zed_mini(PinholeCamera::qvga());
        let gt0 = &ds.ground_truth[0];
        let init = ImuState::from_pose(gt0.timestamp, gt0.pose, gt0.velocity);
        let mut filter = Msckf::new(VioConfig::fast(PinholeCamera::qvga()), init);

        let mut imu_idx = 0;
        for (k, &cam_t) in ds.camera_times.iter().enumerate() {
            while imu_idx < ds.imu.len() && ds.imu[imu_idx].timestamp <= cam_t {
                filter.process_imu(ds.imu[imu_idx]);
                imu_idx += 1;
            }
            let (left, right) = ds.render_frame(&rig, k);
            let frame = StereoFrame {
                timestamp: cam_t,
                left: Arc::new(left),
                right: Arc::new(right),
                seq: k as u64,
            };
            let out = filter.process_frame(&frame, None);
            assert!(out.state.pose.is_finite(), "filter diverged at frame {k}");
        }

        // Dead-reckoning baseline over the same noisy IMU stream.
        let dead = propagate(&init, &ds.imu, Scheme::Rk4);

        let end_t = *ds.camera_times.last().unwrap();
        let truth = ds.ground_truth_pose(end_t);
        let vio_err = filter.state().pose.translation_distance(&truth);
        let dead_err = dead.pose.translation_distance(&ds.ground_truth_pose(dead.timestamp));
        assert!(
            vio_err < dead_err,
            "VIO ({vio_err:.3} m) should beat dead reckoning ({dead_err:.3} m)"
        );
        assert!(vio_err < 0.5, "VIO drifted {vio_err:.3} m over {duration} s");
    }

    #[test]
    fn updates_actually_fire() {
        let ds = Arc::new(SyntheticDataset::vicon_room_like(33, 3.0));
        let rig = StereoRig::zed_mini(PinholeCamera::qvga());
        let gt0 = &ds.ground_truth[0];
        let init = ImuState::from_pose(gt0.timestamp, gt0.pose, gt0.velocity);
        let mut filter = Msckf::new(VioConfig::fast(PinholeCamera::qvga()), init);
        let mut imu_idx = 0;
        let mut total_updates = 0;
        for (k, &cam_t) in ds.camera_times.iter().enumerate() {
            while imu_idx < ds.imu.len() && ds.imu[imu_idx].timestamp <= cam_t {
                filter.process_imu(ds.imu[imu_idx]);
                imu_idx += 1;
            }
            let (left, right) = ds.render_frame(&rig, k);
            let frame = StereoFrame {
                timestamp: cam_t,
                left: Arc::new(left),
                right: Arc::new(right),
                seq: k as u64,
            };
            let out = filter.process_frame(&frame, None);
            total_updates += out.msckf_features + out.slam_features;
            assert!(out.tracked_features > 0, "no features tracked at frame {k}");
        }
        assert!(total_updates > 10, "only {total_updates} feature updates fired");
    }

    #[test]
    fn window_is_bounded() {
        let ds = Arc::new(SyntheticDataset::vicon_room_like(4, 2.0));
        let rig = StereoRig::zed_mini(PinholeCamera::qvga());
        let cfg = VioConfig::fast(PinholeCamera::qvga());
        let gt0 = &ds.ground_truth[0];
        let mut filter =
            Msckf::new(cfg, ImuState::from_pose(gt0.timestamp, gt0.pose, gt0.velocity));
        let mut imu_idx = 0;
        for (k, &cam_t) in ds.camera_times.iter().enumerate() {
            while imu_idx < ds.imu.len() && ds.imu[imu_idx].timestamp <= cam_t {
                filter.process_imu(ds.imu[imu_idx]);
                imu_idx += 1;
            }
            let (left, right) = ds.render_frame(&rig, k);
            filter.process_frame(
                &StereoFrame {
                    timestamp: cam_t,
                    left: Arc::new(left),
                    right: Arc::new(right),
                    seq: k as u64,
                },
                None,
            );
            assert!(filter.clones.len() <= cfg.window_size);
            assert_eq!(filter.cov.rows(), IMU_DIM + filter.clones.len() * CLONE_DIM);
        }
    }

    #[test]
    fn task_timer_covers_table_vi_tasks() {
        let ds = Arc::new(SyntheticDataset::vicon_room_like(8, 2.0));
        let rig = StereoRig::zed_mini(PinholeCamera::qvga());
        let gt0 = &ds.ground_truth[0];
        let mut filter = Msckf::new(
            VioConfig::fast(PinholeCamera::qvga()),
            ImuState::from_pose(gt0.timestamp, gt0.pose, gt0.velocity),
        );
        let timer = TaskTimer::new();
        let mut imu_idx = 0;
        for (k, &cam_t) in ds.camera_times.iter().enumerate() {
            while imu_idx < ds.imu.len() && ds.imu[imu_idx].timestamp <= cam_t {
                filter.process_imu(ds.imu[imu_idx]);
                imu_idx += 1;
            }
            let (left, right) = ds.render_frame(&rig, k);
            filter.process_frame(
                &StereoFrame {
                    timestamp: cam_t,
                    left: Arc::new(left),
                    right: Arc::new(right),
                    seq: k as u64,
                },
                Some(&timer),
            );
        }
        let names: Vec<String> = timer.shares().into_iter().map(|(n, _)| n).collect();
        for expected in [
            "feature detection",
            "feature matching",
            "feature initialization",
            "MSCKF update",
            "marginalization",
            "other",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing task '{expected}' in {names:?}");
        }
    }
}
