//! Multi-view feature triangulation (the "feature initialization" task
//! of Table VI: SVD-style linear solve followed by Gauss-Newton
//! refinement).

use illixr_math::{Cholesky, DMatrix, Pose, Vec2, Vec3};

/// One observation of a feature: the observing camera pose
/// (camera-to-world) and the normalized image coordinates
/// `(x/z, y/z)` in that camera.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Camera-to-world pose at the time of observation.
    pub cam_pose: Pose,
    /// Normalized (undistorted, focal-length-removed) image point.
    pub point: Vec2,
}

/// Triangulates a 3-D point from two or more observations.
///
/// Linear initialization: each observation contributes the constraint
/// that the world point lies on its viewing ray; stacking the
/// cross-product form gives a small normal-equation system. Gauss-Newton
/// then refines by minimizing reprojection error in normalized
/// coordinates.
///
/// Returns `None` when the geometry is degenerate (insufficient
/// parallax, point behind a camera, or a singular system).
pub fn triangulate_feature(observations: &[Observation]) -> Option<Vec3> {
    if observations.len() < 2 {
        return None;
    }
    let linear = linear_triangulation(observations)?;
    let refined = gauss_newton_refine(observations, linear, 5)?;
    // Cheirality: must be in front of every camera.
    for obs in observations {
        let p_cam = obs.cam_pose.inverse().transform_point(refined);
        if p_cam.z < 0.05 {
            return None;
        }
    }
    Some(refined)
}

/// Midpoint-style linear triangulation via normal equations.
fn linear_triangulation(observations: &[Observation]) -> Option<Vec3> {
    // Each ray: p = c_i + t d_i. Minimize sum of squared distances to the
    // rays: (I - d dᵀ) (p - c) = 0 stacked.
    let mut a = DMatrix::zeros(3, 3);
    let mut b = DMatrix::zeros(3, 1);
    for obs in observations {
        let d =
            obs.cam_pose.transform_vector(Vec3::new(obs.point.x, obs.point.y, 1.0)).normalized();
        let c = obs.cam_pose.position;
        // M = I - d dᵀ
        for r in 0..3 {
            for col in 0..3 {
                let m = if r == col { 1.0 } else { 0.0 } - d[r] * d[col];
                a[(r, col)] += m;
                b[(r, 0)] += m * c[col];
            }
        }
    }
    let chol = Cholesky::new(&a).ok()?;
    let x = chol.solve(&b);
    let p = Vec3::new(x[(0, 0)], x[(1, 0)], x[(2, 0)]);
    if p.is_finite() {
        Some(p)
    } else {
        None
    }
}

/// Gauss-Newton refinement on reprojection residuals.
fn gauss_newton_refine(
    observations: &[Observation],
    mut p: Vec3,
    iterations: usize,
) -> Option<Vec3> {
    for _ in 0..iterations {
        let mut h = DMatrix::zeros(3, 3);
        let mut g = DMatrix::zeros(3, 1);
        let mut total_err = 0.0;
        for obs in observations {
            let inv = obs.cam_pose.inverse();
            let p_cam = inv.transform_point(p);
            if p_cam.z < 1e-6 {
                return None;
            }
            let r = inv.orientation.to_rotation_matrix();
            let (x, y, z) = (p_cam.x, p_cam.y, p_cam.z);
            let res_u = obs.point.x - x / z;
            let res_v = obs.point.y - y / z;
            total_err += res_u * res_u + res_v * res_v;
            // d(x/z)/dp_cam = [1/z, 0, -x/z²]; chain through R (world→cam).
            let du = Vec3::new(1.0 / z, 0.0, -x / (z * z));
            let dv = Vec3::new(0.0, 1.0 / z, -y / (z * z));
            // p_cam = R_wc p + t → ∂p_cam/∂p = R_wc (rows of `r`).
            let ju = Vec3::new(du.dot(r.col(0)), du.dot(r.col(1)), du.dot(r.col(2)));
            let jv = Vec3::new(dv.dot(r.col(0)), dv.dot(r.col(1)), dv.dot(r.col(2)));
            for a in 0..3 {
                for b2 in 0..3 {
                    h[(a, b2)] += ju[a] * ju[b2] + jv[a] * jv[b2];
                }
                g[(a, 0)] += ju[a] * res_u + jv[a] * res_v;
            }
        }
        let _ = total_err;
        // Levenberg damping for safety.
        for i in 0..3 {
            h[(i, i)] += 1e-9;
        }
        let chol = Cholesky::new(&h).ok()?;
        let step = chol.solve(&g);
        let delta = Vec3::new(step[(0, 0)], step[(1, 0)], step[(2, 0)]);
        if !delta.is_finite() {
            return None;
        }
        p += delta;
        if delta.norm() < 1e-10 {
            break;
        }
    }
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_math::Quat;

    fn observe(cam_pose: Pose, p_world: Vec3) -> Observation {
        let p_cam = cam_pose.inverse().transform_point(p_world);
        Observation { cam_pose, point: Vec2::new(p_cam.x / p_cam.z, p_cam.y / p_cam.z) }
    }

    #[test]
    fn recovers_point_from_two_views() {
        let p = Vec3::new(0.5, -0.3, 4.0);
        let c1 = Pose::IDENTITY;
        let c2 = Pose::new(Vec3::new(0.5, 0.0, 0.0), Quat::IDENTITY);
        let est = triangulate_feature(&[observe(c1, p), observe(c2, p)]).unwrap();
        assert!((est - p).norm() < 1e-6, "est {est}");
    }

    #[test]
    fn more_views_reduce_sensitivity_to_noise() {
        let p = Vec3::new(-0.8, 0.4, 5.0);
        // Simulate pixel noise by perturbing normalized coordinates.
        let noisy = |cam: Pose, du: f64, dv: f64| {
            let mut o = observe(cam, p);
            o.point.x += du;
            o.point.y += dv;
            o
        };
        let two = triangulate_feature(&[
            noisy(Pose::IDENTITY, 1e-3, -1e-3),
            noisy(Pose::new(Vec3::new(0.4, 0.0, 0.0), Quat::IDENTITY), -1e-3, 1e-3),
        ])
        .unwrap();
        let many: Vec<Observation> = (0..8)
            .map(|i| {
                let t = Vec3::new(0.1 * i as f64, 0.03 * i as f64, 0.0);
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                noisy(Pose::new(t, Quat::IDENTITY), sign * 1e-3, -sign * 1e-3)
            })
            .collect();
        let est_many = triangulate_feature(&many).unwrap();
        assert!((est_many - p).norm() <= (two - p).norm() + 1e-3);
    }

    #[test]
    fn rejects_insufficient_parallax() {
        let p = Vec3::new(0.0, 0.0, 10.0);
        // Identical camera poses: rays are parallel, normal matrix is
        // singular.
        let obs = vec![observe(Pose::IDENTITY, p), observe(Pose::IDENTITY, p)];
        assert!(triangulate_feature(&obs).is_none());
    }

    #[test]
    fn rejects_point_behind_camera() {
        let p = Vec3::new(0.0, 0.0, 3.0);
        let o2 = observe(Pose::new(Vec3::new(1.0, 0.0, 0.0), Quat::IDENTITY), p);
        // A camera on the far side looking back: the point is in front
        // of both cameras, guarding the cheirality check's sign.
        let back_cam = Pose::new(
            Vec3::new(0.0, 0.0, 6.0),
            Quat::from_axis_angle(Vec3::UNIT_Y, std::f64::consts::PI),
        );
        let o1 = observe(back_cam, p);
        let result = triangulate_feature(&[o1, o2]);
        // Point IS in front of both cameras here, so it should succeed —
        // this guards the cheirality check's sign convention.
        assert!(result.is_some());
    }

    #[test]
    fn single_observation_is_rejected() {
        let p = Vec3::new(0.0, 0.0, 3.0);
        assert!(triangulate_feature(&[observe(Pose::IDENTITY, p)]).is_none());
    }

    #[test]
    fn rotated_cameras_work() {
        let p = Vec3::new(1.0, 0.5, 6.0);
        let c1 = Pose::new(Vec3::new(-1.0, 0.0, 0.0), Quat::from_axis_angle(Vec3::UNIT_Y, 0.15));
        let c2 = Pose::new(Vec3::new(1.0, 0.2, 0.0), Quat::from_axis_angle(Vec3::UNIT_Y, -0.12));
        let est = triangulate_feature(&[observe(c1, p), observe(c2, p)]).unwrap();
        assert!((est - p).norm() < 1e-6);
    }
}
