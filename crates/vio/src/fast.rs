//! FAST corner detection (the "feature detection" task of Table VI).
//!
//! FAST-9 on a 16-pixel Bresenham circle with a corner score and
//! non-maximum suppression over a grid, following the segment-test
//! formulation of Rosten & Drummond.

use illixr_image::GrayImage;

/// Offsets of the 16-pixel Bresenham circle of radius 3.
const CIRCLE: [(i32, i32); 16] = [
    (0, -3),
    (1, -3),
    (2, -2),
    (3, -1),
    (3, 0),
    (3, 1),
    (2, 2),
    (1, 3),
    (0, 3),
    (-1, 3),
    (-2, 2),
    (-3, 1),
    (-3, 0),
    (-3, -1),
    (-2, -2),
    (-1, -3),
];

/// Number of contiguous circle pixels required (FAST-9).
const ARC_LEN: usize = 9;

/// A detected corner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// Pixel x.
    pub x: f32,
    /// Pixel y.
    pub y: f32,
    /// Corner score (sum of absolute differences over the arc).
    pub score: f32,
}

/// Detects FAST-9 corners with intensity threshold `threshold` (on the
/// image's own scale), keeping at most `max_corners` after grid
/// non-maximum suppression with `cell` pixel cells.
///
/// # Panics
///
/// Panics when `cell` is zero.
pub fn detect_fast(
    img: &GrayImage,
    threshold: f32,
    max_corners: usize,
    cell: usize,
) -> Vec<Corner> {
    assert!(cell > 0, "NMS cell size must be positive");
    let (w, h) = (img.width(), img.height());
    if w < 8 || h < 8 {
        return Vec::new();
    }
    let cells_x = w.div_ceil(cell);
    let cells_y = h.div_ceil(cell);
    // Best corner per grid cell (grid NMS keeps features spread out, as
    // VIO front ends require).
    let mut best: Vec<Option<Corner>> = vec![None; cells_x * cells_y];
    for y in 3..(h - 3) {
        for x in 3..(w - 3) {
            let Some(score) = corner_score(img, x, y, threshold) else { continue };
            let idx = (y / cell) * cells_x + (x / cell);
            if best[idx].is_none_or(|c| score > c.score) {
                best[idx] = Some(Corner { x: x as f32, y: y as f32, score });
            }
        }
    }
    let mut corners: Vec<Corner> = best.into_iter().flatten().collect();
    corners.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are finite"));
    corners.truncate(max_corners);
    corners
}

/// Segment test: returns the corner score when `(x, y)` passes FAST-9.
fn corner_score(img: &GrayImage, x: usize, y: usize, threshold: f32) -> Option<f32> {
    let c = img.get(x, y);
    let mut brighter = [false; 16];
    let mut darker = [false; 16];
    let mut diffs = [0.0f32; 16];
    // Quick rejection using the 4 compass points: at least 3 of them must
    // agree for a 9-arc to exist.
    let compass = [0usize, 4, 8, 12];
    let mut quick_b = 0;
    let mut quick_d = 0;
    for &i in &compass {
        let (dx, dy) = CIRCLE[i];
        let v = img.get((x as i32 + dx) as usize, (y as i32 + dy) as usize);
        if v > c + threshold {
            quick_b += 1;
        } else if v < c - threshold {
            quick_d += 1;
        }
    }
    if quick_b < 3 && quick_d < 3 {
        return None;
    }
    for (i, &(dx, dy)) in CIRCLE.iter().enumerate() {
        let v = img.get((x as i32 + dx) as usize, (y as i32 + dy) as usize);
        diffs[i] = (v - c).abs();
        brighter[i] = v > c + threshold;
        darker[i] = v < c - threshold;
    }
    if has_arc(&brighter) || has_arc(&darker) {
        Some(diffs.iter().sum())
    } else {
        None
    }
}

/// True when `flags` contains `ARC_LEN` contiguous `true` values on the
/// circular buffer.
fn has_arc(flags: &[bool; 16]) -> bool {
    let mut run = 0;
    // Scan twice around to handle wrap.
    for i in 0..32 {
        if flags[i % 16] {
            run += 1;
            if run >= ARC_LEN {
                return true;
            }
        } else {
            run = 0;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_image::draw::fill_circle_gray;

    fn blob_image(n: usize) -> GrayImage {
        let mut img = GrayImage::from_fn(160, 120, |_, _| 0.2);
        for i in 0..n {
            let x = 20.0 + (i % 6) as f32 * 22.0;
            let y = 20.0 + (i / 6) as f32 * 25.0;
            fill_circle_gray(&mut img, x, y, 3.0, 0.9);
        }
        img
    }

    #[test]
    fn detects_bright_blobs() {
        let img = blob_image(12);
        let corners = detect_fast(&img, 0.15, 100, 8);
        assert!(corners.len() >= 12, "found {} corners", corners.len());
    }

    #[test]
    fn flat_image_has_no_corners() {
        let img = GrayImage::from_fn(64, 64, |_, _| 0.5);
        assert!(detect_fast(&img, 0.1, 100, 8).is_empty());
    }

    #[test]
    fn corners_near_blob_centers() {
        let mut img = GrayImage::from_fn(64, 64, |_, _| 0.1);
        fill_circle_gray(&mut img, 32.0, 32.0, 3.0, 1.0);
        let corners = detect_fast(&img, 0.2, 10, 16);
        assert!(!corners.is_empty());
        let c = corners[0];
        let d = ((c.x - 32.0).powi(2) + (c.y - 32.0).powi(2)).sqrt();
        assert!(d < 6.0, "corner at ({}, {}) too far from blob", c.x, c.y);
    }

    #[test]
    fn max_corners_respected() {
        let img = blob_image(20);
        let corners = detect_fast(&img, 0.1, 5, 8);
        assert!(corners.len() <= 5);
        // Kept corners are the strongest.
        for w in corners.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn nms_limits_one_corner_per_cell() {
        let img = blob_image(12);
        let corners = detect_fast(&img, 0.1, 1000, 40);
        // 160x120 with 40px cells → at most 4*3 = 12 corners.
        assert!(corners.len() <= 12);
    }

    #[test]
    fn tiny_image_is_safe() {
        let img = GrayImage::new(6, 6);
        assert!(detect_fast(&img, 0.1, 10, 8).is_empty());
    }
}
