//! The VIO front end: feature track management across stereo frames.
//!
//! Combines FAST detection and KLT tracking into persistent feature
//! tracks, the input to the MSCKF back end. Task timings are reported
//! under the paper's Table VI task names ("feature detection", "feature
//! matching").

use std::collections::HashSet;

use illixr_core::telemetry::TaskTimer;
use illixr_image::GrayImage;
use illixr_math::Vec2;

use crate::fast::detect_fast;
use crate::klt::{track_points_pyramids, KltParams, TrackResult};
use illixr_image::Pyramid;

/// A feature currently tracked by the front end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackedFeature {
    /// Stable feature identity across frames.
    pub id: u64,
    /// Position in the left image, pixels.
    pub left: Vec2,
    /// Position in the right image when the stereo match succeeded.
    pub right: Option<Vec2>,
    /// Number of consecutive frames this feature has been tracked.
    pub age: u32,
}

/// Front-end parameters (the VIO knobs of the §V-E accuracy/performance
/// trade-off).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontEndParams {
    /// Maximum number of concurrently tracked features.
    pub max_features: usize,
    /// FAST intensity threshold.
    pub fast_threshold: f32,
    /// Grid cell size for non-maximum suppression / redetection.
    pub nms_cell: usize,
    /// KLT parameters.
    pub klt: KltParams,
}

impl Default for FrontEndParams {
    fn default() -> Self {
        Self { max_features: 60, fast_threshold: 0.12, nms_cell: 24, klt: KltParams::default() }
    }
}

/// Persistent feature tracker.
///
/// # Examples
///
/// ```
/// use illixr_vio::frontend::{FrontEnd, FrontEndParams};
/// use illixr_image::GrayImage;
/// use illixr_image::draw::fill_circle_gray;
///
/// let mut fe = FrontEnd::new(FrontEndParams::default());
/// let mut img = GrayImage::from_fn(96, 96, |_, _| 0.2);
/// fill_circle_gray(&mut img, 30.0, 40.0, 3.0, 0.9);
/// fill_circle_gray(&mut img, 70.0, 60.0, 3.0, 0.9);
/// let tracks = fe.process(&img, &img, None);
/// assert!(!tracks.is_empty());
/// ```
#[derive(Debug)]
pub struct FrontEnd {
    params: FrontEndParams,
    prev_left_pyramid: Option<Pyramid>,
    tracks: Vec<TrackedFeature>,
    next_id: u64,
}

impl FrontEnd {
    /// Creates an empty tracker.
    pub fn new(params: FrontEndParams) -> Self {
        Self { params, prev_left_pyramid: None, tracks: Vec::new(), next_id: 0 }
    }

    /// Currently live tracks.
    pub fn tracks(&self) -> &[TrackedFeature] {
        &self.tracks
    }

    /// Ingests a stereo pair, returning the updated track set.
    ///
    /// When `timer` is provided, time is attributed to the Table VI task
    /// names.
    pub fn process(
        &mut self,
        left: &GrayImage,
        right: &GrayImage,
        timer: Option<&TaskTimer>,
    ) -> Vec<TrackedFeature> {
        // Build this frame's pyramids once; the left pyramid is reused
        // next frame as the temporal-tracking template.
        let left_pyr = {
            let _guard = timer.map(|t| t.scope("feature matching"));
            Pyramid::new(left, self.params.klt.levels)
        };
        // --- Temporal feature matching (KLT against the previous frame) -
        {
            let _guard = timer.map(|t| t.scope("feature matching"));
            if let Some(prev_pyr) = &self.prev_left_pyramid {
                let points: Vec<Vec2> = self.tracks.iter().map(|t| t.left).collect();
                let results =
                    track_points_pyramids(prev_pyr, &left_pyr, &points, None, &self.params.klt);
                let mut kept = Vec::with_capacity(self.tracks.len());
                for (track, result) in self.tracks.iter().zip(&results) {
                    if let TrackResult::Ok { position, .. } = result {
                        kept.push(TrackedFeature {
                            id: track.id,
                            left: *position,
                            right: None,
                            age: track.age + 1,
                        });
                    }
                }
                self.tracks = kept;
            }
        }

        // --- Feature detection (FAST redetection in empty cells) -------
        {
            let _guard = timer.map(|t| t.scope("feature detection"));
            if self.tracks.len() < self.params.max_features {
                let cell = self.params.nms_cell;
                let occupied: HashSet<(usize, usize)> = self
                    .tracks
                    .iter()
                    .map(|t| ((t.left.x as usize) / cell, (t.left.y as usize) / cell))
                    .collect();
                let corners = detect_fast(
                    left,
                    self.params.fast_threshold,
                    self.params.max_features * 2,
                    cell,
                );
                for c in corners {
                    if self.tracks.len() >= self.params.max_features {
                        break;
                    }
                    let key = ((c.x as usize) / cell, (c.y as usize) / cell);
                    if occupied.contains(&key) {
                        continue;
                    }
                    self.tracks.push(TrackedFeature {
                        id: self.next_id,
                        left: Vec2::new(c.x as f64, c.y as f64),
                        right: None,
                        age: 0,
                    });
                    self.next_id += 1;
                }
            }
        }

        // --- Stereo matching (KLT left → right, same-position seed) ----
        {
            let _guard = timer.map(|t| t.scope("feature matching"));
            if !self.tracks.is_empty() {
                let right_pyr = Pyramid::new(right, self.params.klt.levels);
                let points: Vec<Vec2> = self.tracks.iter().map(|t| t.left).collect();
                let results =
                    track_points_pyramids(&left_pyr, &right_pyr, &points, None, &self.params.klt);
                for (track, result) in self.tracks.iter_mut().zip(&results) {
                    track.right = match result {
                        TrackResult::Ok { position, .. } => {
                            // A valid stereo match has (near-)positive
                            // disparity and small vertical offset.
                            let disparity = track.left.x - position.x;
                            let dy = (track.left.y - position.y).abs();
                            if disparity > -1.0 && dy < 2.0 {
                                Some(*position)
                            } else {
                                None
                            }
                        }
                        TrackResult::Lost => None,
                    };
                }
            }
        }

        self.prev_left_pyramid = Some(left_pyr);
        self.tracks.clone()
    }

    /// Removes a track by id (the back end calls this when a feature is
    /// consumed by an MSCKF update).
    pub fn remove_track(&mut self, id: u64) {
        self.tracks.retain(|t| t.id != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_image::draw::fill_circle_gray;
    use illixr_image::gaussian_blur;

    fn scene(dx: f32) -> GrayImage {
        let mut img = GrayImage::from_fn(160, 120, |x, y| 0.2 + 0.0008 * (x + 2 * y) as f32);
        for i in 0..12 {
            let x = 20.0 + (i % 4) as f32 * 35.0 + dx;
            let y = 20.0 + (i / 4) as f32 * 35.0;
            fill_circle_gray(&mut img, x, y, 3.0, 0.9);
        }
        gaussian_blur(&img, 0.8)
    }

    #[test]
    fn first_frame_detects_features() {
        let mut fe = FrontEnd::new(FrontEndParams::default());
        let img = scene(0.0);
        let tracks = fe.process(&img, &img, None);
        assert!(tracks.len() >= 10, "only {} tracks", tracks.len());
        assert!(tracks.iter().all(|t| t.age == 0));
    }

    #[test]
    fn tracks_persist_across_frames_with_same_ids() {
        let mut fe = FrontEnd::new(FrontEndParams::default());
        let a = scene(0.0);
        let t0 = fe.process(&a, &a, None);
        let ids0: HashSet<u64> = t0.iter().map(|t| t.id).collect();
        let b = scene(2.0);
        let t1 = fe.process(&b, &b, None);
        let survivors = t1.iter().filter(|t| ids0.contains(&t.id) && t.age == 1).count();
        assert!(survivors >= 8, "only {survivors} survivors");
        // Surviving features moved by ~2 px.
        for t in t1.iter().filter(|t| ids0.contains(&t.id)) {
            let orig = t0.iter().find(|o| o.id == t.id).unwrap();
            let dx = t.left.x - orig.left.x;
            assert!((dx - 2.0).abs() < 1.0, "dx {dx}");
        }
    }

    #[test]
    fn stereo_match_has_positive_disparity() {
        let mut fe = FrontEnd::new(FrontEndParams::default());
        let left = scene(0.0);
        let right = scene(-4.0); // right image shifted left = +4 px disparity
        let tracks = fe.process(&left, &right, None);
        let matched: Vec<_> = tracks.iter().filter(|t| t.right.is_some()).collect();
        assert!(!matched.is_empty(), "no stereo matches");
        for t in matched {
            let d = t.left.x - t.right.unwrap().x;
            assert!((d - 4.0).abs() < 1.5, "disparity {d}");
        }
    }

    #[test]
    fn max_features_is_enforced() {
        let mut fe = FrontEnd::new(FrontEndParams { max_features: 5, ..Default::default() });
        let img = scene(0.0);
        let tracks = fe.process(&img, &img, None);
        assert!(tracks.len() <= 5);
    }

    #[test]
    fn remove_track_frees_slot() {
        let mut fe = FrontEnd::new(FrontEndParams::default());
        let img = scene(0.0);
        let tracks = fe.process(&img, &img, None);
        let victim = tracks[0].id;
        fe.remove_track(victim);
        assert!(fe.tracks().iter().all(|t| t.id != victim));
    }

    #[test]
    fn task_timer_records_both_tasks() {
        let timer = TaskTimer::new();
        let mut fe = FrontEnd::new(FrontEndParams::default());
        let img = scene(0.0);
        fe.process(&img, &img, Some(&timer));
        fe.process(&img, &img, Some(&timer));
        let shares = timer.shares();
        let names: Vec<&str> = shares.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"feature detection"));
        assert!(names.contains(&"feature matching"));
    }
}
