//! Visual-inertial odometry: head tracking for the perception pipeline.
//!
//! A from-scratch reproduction of the OpenVINS-style sliding-window
//! **MSCKF** the paper uses as its VIO component (Table II), with the
//! task structure of Table VI:
//!
//! | paper task | module |
//! |---|---|
//! | feature detection (FAST) | [`fast`] |
//! | feature matching (KLT) | [`klt`], [`frontend`] |
//! | feature initialization (triangulation, Gauss-Newton) | [`triangulate`] |
//! | MSCKF update (nullspace projection, chi², QR, EKF) | [`msckf`] |
//! | SLAM update | [`msckf`] (long-lived-track updates; see DESIGN.md) |
//! | marginalization | [`msckf`] |
//!
//! [`alternative`] fills Table II's second VIO slot (Kimera-VIO in the
//! paper) with a structurally different estimator: map-based
//! frame-to-frame tracking with Gauss-Newton PnP.
//!
//! The `imu_integrator` component (RK4 in the paper, Table II) lives in
//! [`integrator`]: it re-propagates the latest VIO state through the IMU
//! stream to produce the high-rate `fast_pose` that reprojection samples.
//!
//! The filter consumes real synthetic images — FAST corners are detected
//! on pixels, KLT tracks them across frames — so runtime is genuinely
//! input-dependent, reproducing the execution-time variability of
//! Fig 4/§IV-B.

pub mod alternative;
pub mod fast;
pub mod frontend;
pub mod integrator;
pub mod klt;
pub mod msckf;
pub mod plugins;
pub mod triangulate;

pub use alternative::{FrameToFrameConfig, FrameToFrameVio};
pub use fast::{detect_fast, Corner};
pub use frontend::{FrontEnd, TrackedFeature};
pub use integrator::{propagate, propagate_rk4, ImuState};
pub use msckf::{Msckf, VioConfig};
pub use plugins::{AlternativeVioPlugin, GroundTruthPosePlugin, ImuIntegratorPlugin, VioPlugin};
pub use triangulate::triangulate_feature;
