//! IMU state propagation: the `imu_integrator` component (RK4, Table II)
//! and the propagation step of the MSCKF itself.
//!
//! Integrates the strapdown kinematics
//!
//! ```text
//! q̇ = ½ q ⊗ (0, ω − b_g)
//! v̇ = R(q)(a − b_a) + g
//! ṗ = v
//! ```
//!
//! with gravity `g = (0, −9.80665, 0)` (world Y up), matching the sensor
//! model in `illixr-sensors`.

use illixr_core::Time;
use illixr_math::{Pose, Quat, Vec3};
use illixr_sensors::types::ImuSample;

/// Standard gravity vector in the world frame (Y up).
pub const GRAVITY_W: Vec3 = Vec3 { x: 0.0, y: -9.80665, z: 0.0 };

/// The propagated inertial state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImuState {
    /// State timestamp.
    pub timestamp: Time,
    /// Body-to-world pose.
    pub pose: Pose,
    /// Linear velocity, world frame.
    pub velocity: Vec3,
    /// Gyro bias estimate.
    pub gyro_bias: Vec3,
    /// Accel bias estimate.
    pub accel_bias: Vec3,
}

impl ImuState {
    /// An identity state at time zero.
    pub fn identity() -> Self {
        Self {
            timestamp: Time::ZERO,
            pose: Pose::IDENTITY,
            velocity: Vec3::ZERO,
            gyro_bias: Vec3::ZERO,
            accel_bias: Vec3::ZERO,
        }
    }

    /// A state initialized from a known pose/velocity (e.g. ground truth
    /// at t₀, the usual VIO initialization in benchmarks).
    pub fn from_pose(timestamp: Time, pose: Pose, velocity: Vec3) -> Self {
        Self { timestamp, pose, velocity, gyro_bias: Vec3::ZERO, accel_bias: Vec3::ZERO }
    }
}

/// Integration scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Classical fourth-order Runge-Kutta (the OpenVINS default the
    /// paper stars in Table II).
    Rk4,
    /// Midpoint rule (the cheaper alternative, standing in for the GTSAM
    /// integrator option).
    Midpoint,
}

/// Propagates `state` through one IMU interval `[sample_a, sample_b]`
/// using RK4 with linearly interpolated measurements.
pub fn propagate_rk4(state: &ImuState, a: &ImuSample, b: &ImuSample) -> ImuState {
    propagate_interval(state, a, b, Scheme::Rk4)
}

/// Propagates through a whole sequence of samples (each consecutive pair
/// forms one integration interval). Samples at or before the state's
/// timestamp are skipped.
pub fn propagate(state: &ImuState, samples: &[ImuSample], scheme: Scheme) -> ImuState {
    let mut s = *state;
    for pair in samples.windows(2) {
        if pair[1].timestamp <= s.timestamp {
            continue;
        }
        s = propagate_interval(&s, &pair[0], &pair[1], scheme);
    }
    s
}

fn propagate_interval(state: &ImuState, a: &ImuSample, b: &ImuSample, scheme: Scheme) -> ImuState {
    let dt = (b.timestamp - a.timestamp).as_secs_f64();
    if dt <= 0.0 {
        return *state;
    }
    let w0 = a.gyro - state.gyro_bias;
    let w1 = b.gyro - state.gyro_bias;
    let f0 = a.accel - state.accel_bias;
    let f1 = b.accel - state.accel_bias;
    match scheme {
        Scheme::Midpoint => {
            let wm = (w0 + w1) * 0.5;
            let fm = (f0 + f1) * 0.5;
            let q_mid = state.pose.orientation * Quat::from_rotation_vector(wm * (dt * 0.5));
            let acc_w = q_mid.rotate(fm) + GRAVITY_W;
            let q_new = (state.pose.orientation * Quat::from_rotation_vector(wm * dt)).normalized();
            let v_new = state.velocity + acc_w * dt;
            let p_new = state.pose.position + state.velocity * dt + acc_w * (0.5 * dt * dt);
            ImuState {
                timestamp: b.timestamp,
                pose: Pose::new(p_new, q_new),
                velocity: v_new,
                gyro_bias: state.gyro_bias,
                accel_bias: state.accel_bias,
            }
        }
        Scheme::Rk4 => {
            // State y = (q, p, v); measurements interpolate linearly.
            let interp = |t: f64| -> (Vec3, Vec3) {
                let alpha = t / dt;
                (w0.lerp(w1, alpha), f0.lerp(f1, alpha))
            };
            let deriv = |q: Quat, v: Vec3, w: Vec3, f: Vec3| -> (Quat, Vec3, Vec3) {
                // q̇ = ½ q ⊗ (0, w)
                let wq = Quat::new(0.0, w.x, w.y, w.z);
                let qd = q * wq;
                let qdot = Quat::new(qd.w * 0.5, qd.x * 0.5, qd.y * 0.5, qd.z * 0.5);
                let pdot = v;
                let vdot = q.rotate(f) + GRAVITY_W;
                (qdot, pdot, vdot)
            };
            let q0 = state.pose.orientation;
            let p0 = state.pose.position;
            let v0 = state.velocity;

            let (wm0, fm0) = interp(0.0);
            let (k1q, k1p, k1v) = deriv(q0, v0, wm0, fm0);

            let (wmh, fmh) = interp(dt * 0.5);
            let q_k2 = quat_add_scaled(q0, k1q, dt * 0.5);
            let (k2q, k2p, k2v) = deriv(q_k2, v0 + k1v * (dt * 0.5), wmh, fmh);

            let q_k3 = quat_add_scaled(q0, k2q, dt * 0.5);
            let (k3q, k3p, k3v) = deriv(q_k3, v0 + k2v * (dt * 0.5), wmh, fmh);

            let (wm1, fm1) = interp(dt);
            let q_k4 = quat_add_scaled(q0, k3q, dt);
            let (k4q, k4p, k4v) = deriv(q_k4, v0 + k3v * dt, wm1, fm1);

            let q_new = Quat::new(
                q0.w + dt / 6.0 * (k1q.w + 2.0 * k2q.w + 2.0 * k3q.w + k4q.w),
                q0.x + dt / 6.0 * (k1q.x + 2.0 * k2q.x + 2.0 * k3q.x + k4q.x),
                q0.y + dt / 6.0 * (k1q.y + 2.0 * k2q.y + 2.0 * k3q.y + k4q.y),
                q0.z + dt / 6.0 * (k1q.z + 2.0 * k2q.z + 2.0 * k3q.z + k4q.z),
            )
            .normalized();
            let p_new = p0 + (k1p + k2p * 2.0 + k3p * 2.0 + k4p) * (dt / 6.0);
            let v_new = v0 + (k1v + k2v * 2.0 + k3v * 2.0 + k4v) * (dt / 6.0);
            ImuState {
                timestamp: b.timestamp,
                pose: Pose::new(p_new, q_new),
                velocity: v_new,
                gyro_bias: state.gyro_bias,
                accel_bias: state.accel_bias,
            }
        }
    }
}

fn quat_add_scaled(q: Quat, dq: Quat, s: f64) -> Quat {
    Quat::new(q.w + dq.w * s, q.x + dq.x * s, q.y + dq.y * s, q.z + dq.z * s).normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_sensors::imu::{ImuModel, ImuNoise};
    use illixr_sensors::trajectory::Trajectory;

    /// Ideal (noise-free) samples along a trajectory.
    fn ideal_samples(traj: &Trajectory, rate_hz: f64, duration_s: f64) -> Vec<ImuSample> {
        let imu = ImuModel::new(traj.clone(), ImuNoise::default(), rate_hz, 0);
        let n = (duration_s * rate_hz) as usize;
        (0..=n).map(|k| imu.ideal_sample(Time::from_secs_f64(k as f64 / rate_hz))).collect()
    }

    #[test]
    fn rk4_tracks_ideal_trajectory() {
        let traj = Trajectory::walking(11);
        let samples = ideal_samples(&traj, 500.0, 2.0);
        let t0 = Time::ZERO;
        let state0 = ImuState::from_pose(t0, traj.pose(t0), traj.velocity(t0));
        let state = propagate(&state0, &samples, Scheme::Rk4);
        let truth = traj.pose(state.timestamp);
        let pos_err = state.pose.translation_distance(&truth);
        let rot_err = state.pose.rotation_distance(&truth);
        assert!(pos_err < 0.02, "position error {pos_err} m after 2 s ideal integration");
        assert!(rot_err < 0.01, "rotation error {rot_err} rad");
    }

    #[test]
    fn midpoint_tracks_but_less_accurately_over_long_runs() {
        let traj = Trajectory::walking(13);
        let samples = ideal_samples(&traj, 500.0, 4.0);
        let state0 =
            ImuState::from_pose(Time::ZERO, traj.pose(Time::ZERO), traj.velocity(Time::ZERO));
        let rk4 = propagate(&state0, &samples, Scheme::Rk4);
        let mid = propagate(&state0, &samples, Scheme::Midpoint);
        let truth = traj.pose(rk4.timestamp);
        let rk4_err = rk4.pose.translation_distance(&truth);
        let mid_err = mid.pose.translation_distance(&truth);
        assert!(mid_err < 0.5, "midpoint diverged: {mid_err}");
        // RK4 should not be (much) worse than midpoint.
        assert!(rk4_err <= mid_err * 1.5 + 1e-3, "rk4 {rk4_err} vs midpoint {mid_err}");
    }

    #[test]
    fn stationary_state_stays_put_under_gravity_compensation() {
        // Constant samples: gyro 0, accel = -g in body == world frame.
        let mk = |k: u64| ImuSample {
            timestamp: Time::from_millis(k * 2),
            gyro: Vec3::ZERO,
            accel: Vec3::new(0.0, 9.80665, 0.0),
        };
        let samples: Vec<ImuSample> = (0..500).map(mk).collect();
        let state = propagate(&ImuState::identity(), &samples, Scheme::Rk4);
        assert!(state.pose.position.norm() < 1e-9, "drifted {}", state.pose.position.norm());
        assert!(state.velocity.norm() < 1e-9);
    }

    #[test]
    fn bias_is_subtracted() {
        let bias = Vec3::new(0.05, -0.02, 0.03);
        let mk = |k: u64| ImuSample {
            timestamp: Time::from_millis(k * 2),
            gyro: bias, // pure bias, no true rotation
            accel: Vec3::new(0.0, 9.80665, 0.0),
        };
        let samples: Vec<ImuSample> = (0..250).map(mk).collect();
        let mut state0 = ImuState::identity();
        state0.gyro_bias = bias;
        let state = propagate(&state0, &samples, Scheme::Rk4);
        assert!(state.pose.rotation_distance(&Pose::IDENTITY) < 1e-9);
    }

    #[test]
    fn skips_stale_samples() {
        let traj = Trajectory::walking(5);
        let samples = ideal_samples(&traj, 500.0, 1.0);
        let mid_t = samples[250].timestamp;
        let state0 = ImuState::from_pose(mid_t, traj.pose(mid_t), traj.velocity(mid_t));
        let state = propagate(&state0, &samples, Scheme::Rk4);
        // Should only have integrated the second half.
        let truth = traj.pose(state.timestamp);
        assert!(state.pose.translation_distance(&truth) < 0.02);
    }

    #[test]
    fn zero_dt_is_identity() {
        let s = ImuState::identity();
        let sample = ImuSample { timestamp: Time::ZERO, gyro: Vec3::ZERO, accel: Vec3::ZERO };
        let out = propagate_rk4(&s, &sample, &sample);
        assert_eq!(out, s);
    }
}
