//! Pyramidal Lucas-Kanade optical flow (the "feature matching" task of
//! Table VI).
//!
//! Tracks sparse points from one image to the next by iteratively solving
//! the 2×2 normal equations of the brightness-constancy linearization
//! over a window, coarse-to-fine across an image pyramid.

use illixr_image::{GrayImage, Pyramid};
use illixr_math::{Mat2, Vec2};

/// KLT parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KltParams {
    /// Half-size of the tracking window (window is `(2w+1)²`).
    pub window_radius: usize,
    /// Pyramid levels.
    pub levels: usize,
    /// Max Gauss-Newton iterations per level.
    pub max_iterations: usize,
    /// Convergence threshold on the update norm (pixels).
    pub epsilon: f64,
    /// Reject tracks whose final per-pixel residual exceeds this.
    pub max_residual: f64,
}

impl Default for KltParams {
    fn default() -> Self {
        Self { window_radius: 4, levels: 3, max_iterations: 12, epsilon: 0.02, max_residual: 0.08 }
    }
}

/// The result of tracking one point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrackResult {
    /// Converged at the given location with the given mean residual.
    Ok { position: Vec2, residual: f64 },
    /// Track lost (out of bounds, singular system, or high residual).
    Lost,
}

/// Tracks `points` from `prev` to `next`, returning one result per point.
///
/// `initial_guesses`, when provided, seeds each point's position in
/// `next` (used for stereo matching with an expected disparity);
/// otherwise points seed at their previous location.
pub fn track_points(
    prev: &GrayImage,
    next: &GrayImage,
    points: &[Vec2],
    initial_guesses: Option<&[Vec2]>,
    params: &KltParams,
) -> Vec<TrackResult> {
    let prev_pyr = Pyramid::new(prev, params.levels);
    let next_pyr = Pyramid::new(next, params.levels);
    track_points_pyramids(&prev_pyr, &next_pyr, points, initial_guesses, params)
}

/// Like [`track_points`] but over pre-built pyramids — front ends build
/// each image's pyramid once and reuse it for temporal and stereo
/// tracking (and across frames).
pub fn track_points_pyramids(
    prev_pyr: &Pyramid,
    next_pyr: &Pyramid,
    points: &[Vec2],
    initial_guesses: Option<&[Vec2]>,
    params: &KltParams,
) -> Vec<TrackResult> {
    points
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let guess = initial_guesses.map(|g| g[i]).unwrap_or(p);
            track_one(prev_pyr, next_pyr, p, guess, params)
        })
        .collect()
}

fn track_one(
    prev_pyr: &Pyramid,
    next_pyr: &Pyramid,
    point: Vec2,
    guess: Vec2,
    params: &KltParams,
) -> TrackResult {
    let levels = prev_pyr.num_levels().min(next_pyr.num_levels());
    // Start from the coarsest level; carry the displacement down.
    let mut disp = (guess - point) / (1 << (levels - 1)) as f64;
    let mut last_residual = f64::INFINITY;
    for level in (0..levels).rev() {
        let scale = (1 << level) as f64;
        let p_level = point / scale;
        let prev_img = prev_pyr.level(level);
        let next_img = next_pyr.level(level);
        match refine_at_level(prev_img, next_img, p_level, disp, params) {
            Some((d, residual)) => {
                disp = d;
                last_residual = residual;
            }
            None => return TrackResult::Lost,
        }
        if level > 0 {
            disp *= 2.0;
        }
    }
    let final_pos = point + disp;
    let (w, h) = (next_pyr.level(0).width() as f64, next_pyr.level(0).height() as f64);
    let r = params.window_radius as f64;
    if final_pos.x < r || final_pos.y < r || final_pos.x >= w - r || final_pos.y >= h - r {
        return TrackResult::Lost;
    }
    if last_residual > params.max_residual {
        return TrackResult::Lost;
    }
    TrackResult::Ok { position: final_pos, residual: last_residual }
}

/// One pyramid level of iterative LK. Returns the refined displacement
/// and mean absolute residual, or `None` on failure.
fn refine_at_level(
    prev: &GrayImage,
    next: &GrayImage,
    p: Vec2,
    mut disp: Vec2,
    params: &KltParams,
) -> Option<(Vec2, f64)> {
    let r = params.window_radius as i32;
    // Precompute template values and gradients around p in `prev`.
    let n = ((2 * r + 1) * (2 * r + 1)) as usize;
    let mut tmpl = Vec::with_capacity(n);
    let mut grads = Vec::with_capacity(n);
    let mut g = Mat2::ZERO;
    for dy in -r..=r {
        for dx in -r..=r {
            let x = p.x + dx as f64;
            let y = p.y + dy as f64;
            let v = prev.sample_bilinear(x as f32, y as f32) as f64;
            // Central-difference gradients on the template image.
            let gx = (prev.sample_bilinear((x + 1.0) as f32, y as f32)
                - prev.sample_bilinear((x - 1.0) as f32, y as f32)) as f64
                * 0.5;
            let gy = (prev.sample_bilinear(x as f32, (y + 1.0) as f32)
                - prev.sample_bilinear(x as f32, (y - 1.0) as f32)) as f64
                * 0.5;
            tmpl.push(v);
            grads.push(Vec2::new(gx, gy));
            g.m[0][0] += gx * gx;
            g.m[0][1] += gx * gy;
            g.m[1][0] += gx * gy;
            g.m[1][1] += gy * gy;
        }
    }
    let g_inv = g.inverse()?; // untextured window → singular → lost
    let mut residual = f64::INFINITY;
    for _ in 0..params.max_iterations {
        let mut b = Vec2::ZERO;
        let mut err_sum = 0.0;
        let mut idx = 0;
        for dy in -r..=r {
            for dx in -r..=r {
                let x = p.x + disp.x + dx as f64;
                let y = p.y + disp.y + dy as f64;
                let v = next.sample_bilinear(x as f32, y as f32) as f64;
                let diff = tmpl[idx] - v;
                b += grads[idx] * diff;
                err_sum += diff.abs();
                idx += 1;
            }
        }
        residual = err_sum / n as f64;
        let delta = g_inv * b;
        disp += delta;
        if !disp.is_finite() {
            return None;
        }
        if delta.norm() < params.epsilon {
            break;
        }
    }
    Some((disp, residual))
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_image::draw::fill_circle_gray;

    /// Renders blobs at given centers over a gradient background.
    fn blobs(centers: &[(f32, f32)]) -> GrayImage {
        let mut img = GrayImage::from_fn(128, 96, |x, y| 0.2 + 0.001 * (x + y) as f32);
        for &(cx, cy) in centers {
            fill_circle_gray(&mut img, cx, cy, 3.0, 0.9);
        }
        illixr_image::gaussian_blur(&img, 1.0)
    }

    #[test]
    fn tracks_pure_translation() {
        let a = blobs(&[(40.0, 40.0), (80.0, 50.0), (60.0, 70.0)]);
        let b = blobs(&[(43.5, 41.0), (83.5, 51.0), (63.5, 71.0)]);
        let points = vec![Vec2::new(40.0, 40.0), Vec2::new(80.0, 50.0), Vec2::new(60.0, 70.0)];
        let results = track_points(&a, &b, &points, None, &KltParams::default());
        for (i, r) in results.iter().enumerate() {
            match r {
                TrackResult::Ok { position, .. } => {
                    let expected = points[i] + Vec2::new(3.5, 1.0);
                    assert!(
                        (*position - expected).norm() < 0.5,
                        "point {i}: {position:?} vs {expected:?}"
                    );
                }
                TrackResult::Lost => panic!("point {i} lost"),
            }
        }
    }

    #[test]
    fn large_motion_handled_by_pyramid() {
        let a = blobs(&[(50.0, 48.0)]);
        let b = blobs(&[(62.0, 52.0)]); // 12.6 px motion > window radius
        let results = track_points(&a, &b, &[Vec2::new(50.0, 48.0)], None, &KltParams::default());
        match results[0] {
            TrackResult::Ok { position, .. } => {
                assert!((position - Vec2::new(62.0, 52.0)).norm() < 1.0, "{position:?}");
            }
            TrackResult::Lost => panic!("lost"),
        }
    }

    #[test]
    fn untextured_point_is_lost() {
        let a = GrayImage::from_fn(64, 64, |_, _| 0.5);
        let b = a.clone();
        let results = track_points(&a, &b, &[Vec2::new(32.0, 32.0)], None, &KltParams::default());
        assert_eq!(results[0], TrackResult::Lost);
    }

    #[test]
    fn point_leaving_image_is_lost() {
        let a = blobs(&[(5.0, 48.0)]);
        let b = blobs(&[(1.0, 48.0)]);
        let params = KltParams { window_radius: 4, ..Default::default() };
        let results = track_points(&a, &b, &[Vec2::new(5.0, 48.0)], None, &params);
        // Either lost outright or clamped near the border; accept Lost or
        // borderline Ok — but never a position outside the image.
        if let TrackResult::Ok { position, .. } = results[0] {
            assert!(position.x >= 0.0 && position.x < 128.0);
        }
    }

    #[test]
    fn initial_guess_accelerates_stereo_match() {
        let a = blobs(&[(70.0, 40.0)]);
        let b = blobs(&[(50.0, 40.0)]); // 20 px disparity
        let guess = vec![Vec2::new(51.0, 40.0)];
        let results =
            track_points(&a, &b, &[Vec2::new(70.0, 40.0)], Some(&guess), &KltParams::default());
        match results[0] {
            TrackResult::Ok { position, .. } => {
                assert!((position - Vec2::new(50.0, 40.0)).norm() < 1.0, "{position:?}");
            }
            TrackResult::Lost => panic!("lost"),
        }
    }
}
