//! Admission control: accept, degrade, or reject a connecting session.
//!
//! The server estimates the load a new session would add (its share of
//! uplink/downlink bandwidth and of the VIO worker pool — see the
//! engine coordinator's `offered_load`) and compares the projected
//! total against two thresholds:
//!
//! * projected ≤ `degrade_threshold` → **accept** at full rates;
//! * projected at *half* rates ≤ `reject_threshold` → **degrade**
//!   (camera and render-stream rates halved — the session gets a worse
//!   but bounded experience instead of dragging everyone down);
//! * otherwise → **reject** (the session never attaches).
//!
//! Every decision is logged with its inputs so a run's admission story
//! is auditable in the report.

use illixr_core::Time;

/// Outcome of one admission request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Attach at full rates.
    Accept,
    /// Attach with camera/render rates halved.
    Degrade,
    /// Do not attach.
    Reject,
}

impl AdmissionDecision {
    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Accept => "accept",
            Self::Degrade => "degrade",
            Self::Reject => "reject",
        }
    }
}

/// Admission thresholds, in units of total estimated load (1.0 = some
/// resource fully subscribed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Above this projected load, new sessions are degraded.
    pub degrade_threshold: f64,
    /// Above this projected load (even at degraded rates), new sessions
    /// are rejected.
    pub reject_threshold: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self { degrade_threshold: 0.7, reject_threshold: 0.95 }
    }
}

/// One logged admission decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionRecord {
    /// When the session asked to connect.
    pub time: Time,
    /// The session asking.
    pub session: u32,
    /// Estimated load before this session.
    pub load_before: f64,
    /// Load the session would add at full rates.
    pub offered: f64,
    /// The decision.
    pub decision: AdmissionDecision,
}

/// The admission policy plus its decision log.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    log: Vec<AdmissionRecord>,
}

impl AdmissionController {
    /// Creates a controller with the given thresholds.
    pub fn new(config: AdmissionConfig) -> Self {
        Self { config, log: Vec::new() }
    }

    /// The thresholds.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Decides whether `session`, offering `offered` load at full rates
    /// on top of `load_before`, may attach. Logs the decision.
    pub fn admit(
        &mut self,
        time: Time,
        session: u32,
        load_before: f64,
        offered: f64,
    ) -> AdmissionDecision {
        let decision = if load_before + offered <= self.config.degrade_threshold {
            AdmissionDecision::Accept
        } else if load_before + offered * 0.5 <= self.config.reject_threshold {
            AdmissionDecision::Degrade
        } else {
            AdmissionDecision::Reject
        };
        self.log.push(AdmissionRecord { time, session, load_before, offered, decision });
        decision
    }

    /// All decisions taken so far, in order.
    pub fn records(&self) -> &[AdmissionRecord] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> AdmissionController {
        AdmissionController::new(AdmissionConfig { degrade_threshold: 0.6, reject_threshold: 0.9 })
    }

    #[test]
    fn empty_server_accepts() {
        let mut c = controller();
        assert_eq!(c.admit(Time::ZERO, 0, 0.0, 0.1), AdmissionDecision::Accept);
    }

    #[test]
    fn exactly_at_capacity_still_accepts() {
        let mut c = controller();
        // Projected load lands exactly on the threshold: ≤ accepts.
        assert_eq!(c.admit(Time::ZERO, 0, 0.5, 0.1), AdmissionDecision::Accept);
    }

    #[test]
    fn over_capacity_degrades_when_half_rate_fits() {
        let mut c = controller();
        // 0.55 + 0.1 > 0.6 but 0.55 + 0.05 ≤ 0.9.
        assert_eq!(c.admit(Time::ZERO, 1, 0.55, 0.1), AdmissionDecision::Degrade);
    }

    #[test]
    fn saturated_server_rejects() {
        let mut c = controller();
        assert_eq!(c.admit(Time::ZERO, 2, 0.88, 0.1), AdmissionDecision::Reject);
    }

    #[test]
    fn every_decision_is_logged_with_inputs() {
        let mut c = controller();
        c.admit(Time::from_millis(5), 0, 0.0, 0.2);
        c.admit(Time::from_millis(9), 1, 0.2, 0.5);
        let log = c.records();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].session, 0);
        assert_eq!(log[1].time, Time::from_millis(9));
        assert_eq!(log[1].load_before, 0.2);
        assert_eq!(log[1].decision, AdmissionDecision::Degrade);
    }
}
