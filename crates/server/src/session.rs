//! One client session: a thin-client XR device attached to the server.
//!
//! Each session owns a full client-side runtime — its own switchboard,
//! synthetic camera + IMU along a per-seed trajectory, and the IMU
//! integrator publishing the fast pose — exactly the perception half of
//! the single-client pipeline. The heavy stages are offloaded: VIO runs
//! server-side on [`VioJob`]s (one camera frame plus the IMU window
//! since the previous frame), and rendering is cloud-side — the client
//! receives [`RenderToken`]s, warps the newest one at each vsync, and
//! measures motion-to-photon latency from the pose the server rendered
//! with. The session never advances time itself; the server's event
//! loop drives [`ClientSession::on_imu_due`] /
//! [`ClientSession::on_camera_due`] / [`ClientSession::on_vsync`] under
//! the shared simulated clock.

use std::sync::Arc;
use std::time::Duration;

use illixr_core::boundary::Boundary;
use illixr_core::fault::FaultPlan;
use illixr_core::plugin::{Plugin, PluginContext, RuntimeBuilder};
use illixr_core::switchboard::{AsyncReader, SyncReader, Writer};
use illixr_core::{Clock, SlabFrame, SlabPool, Time, TopicStats};
use illixr_qoe::mtp::MtpCalculator;
use illixr_sensors::camera::{PinholeCamera, StereoRig};
use illixr_sensors::imu::ImuNoise;
use illixr_sensors::plugins::{SyntheticCameraPlugin, SyntheticImuPlugin};
use illixr_sensors::trajectory::Trajectory;
use illixr_sensors::types::{streams, ImuSample, PoseEstimate, StereoFrame};
use illixr_sensors::world::LandmarkWorld;
use illixr_vio::integrator::ImuState;
use illixr_vio::plugins::ImuIntegratorPlugin;

/// Per-session parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Seed for the session's trajectory, world and IMU noise — distinct
    /// seeds give every client an independent walk through its own room.
    pub seed: u64,
    /// When the session asks the server to admit it.
    pub connect_at: Time,
    /// Mid-run departure, if any.
    pub disconnect_at: Option<Time>,
    /// Camera frame rate (paper Table III: 15 Hz).
    pub camera_hz: f64,
    /// IMU sample rate (500 Hz).
    pub imu_hz: f64,
    /// Display refresh rate (120 Hz).
    pub display_hz: f64,
    /// Multiplier on the session's offered-load estimate, fed into
    /// admission control. `1.0` is a plain session; front-ends raise it
    /// for sessions whose negotiated features (hand tracking, hit
    /// testing, anchors) add per-frame server work that the raw
    /// byte/pool rates don't capture.
    pub load_weight: f64,
}

impl SessionConfig {
    /// Paper Table III rates, connecting at t=0.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            connect_at: Time::ZERO,
            disconnect_at: None,
            camera_hz: 15.0,
            imu_hz: 500.0,
            display_hz: 120.0,
            load_weight: 1.0,
        }
    }

    /// Sets the admission load-weight multiplier (see
    /// [`SessionConfig::load_weight`]).
    pub fn with_load_weight(mut self, weight: f64) -> Self {
        self.load_weight = weight;
        self
    }
}

/// Session lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Created, not yet at its connect time.
    Pending,
    /// Admitted at full rates.
    Running,
    /// Admitted at halved camera/render rates.
    Degraded,
    /// Refused by admission control; never attached.
    Rejected,
    /// Departed (mid-run or at end of run).
    Disconnected,
    /// Lost to a crashed engine fault domain and not (yet) recovered —
    /// the terminal state of a session whose shard died with failover
    /// disabled or its restart budget exhausted.
    Quarantined,
}

impl SessionState {
    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Pending => "pending",
            Self::Running => "running",
            Self::Degraded => "degraded",
            Self::Rejected => "rejected",
            Self::Disconnected => "disconnected",
            Self::Quarantined => "quarantined",
        }
    }
}

/// One unit of offloaded VIO work: a camera frame plus the IMU window
/// covering it.
///
/// Zero-copy by construction: the stereo images are `Arc`-shared and
/// the IMU window lives in a pooled [`SlabFrame`], so cloning a job —
/// uplink queue, scheduler batch, VIO worker — never copies payload
/// bytes, and dropping the last clone recycles the window's allocation
/// into the owning session's slab pool.
#[derive(Debug, Clone)]
pub struct VioJob {
    /// Originating session.
    pub session: u32,
    /// The frame to process.
    pub frame: StereoFrame,
    /// IMU samples since the previous frame, through the frame time.
    pub imu: SlabFrame<Vec<ImuSample>>,
}

/// A request for one cloud-rendered frame, stamped with the freshest
/// client pose.
#[derive(Debug, Clone, Copy)]
pub struct RenderRequest {
    /// Originating session.
    pub session: u32,
    /// Request sequence number.
    pub seq: u64,
    /// Sensor timestamp of the pose the server should render with.
    pub pose_timestamp: Time,
    /// When the client issued the request (the vsync it was sent from).
    /// Carried through to the token so the client can decompose MTP
    /// into sense / round-trip / queue stages exactly.
    pub requested_at: Time,
}

/// A cloud-rendered frame arriving at the client. No pixels — the
/// model tracks only what latency accounting needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderToken {
    /// Matches the originating request's sequence number.
    pub seq: u64,
    /// Sensor timestamp of the pose the frame was rendered with; its
    /// age at display time is the dominant MTP term.
    pub pose_timestamp: Time,
    /// Copied from the originating request (see
    /// [`RenderRequest::requested_at`]).
    pub requested_at: Time,
}

/// One frame the client actually put on its display: the vsync it was
/// shown at and the pose the late warp used. Session front-ends
/// (`illixr-api`) reconstruct a client-visible frame stream from this
/// log after the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisplayedFrame {
    /// The vsync instant the frame was displayed at.
    pub time: Time,
    /// The fast pose the warp used (ground-truth trajectory pose until
    /// the first server estimate lands).
    pub pose: illixr_math::Pose,
}

/// Per-session run counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionTelemetry {
    /// Total motion-to-photon latency per displayed frame, ns.
    pub mtp_ns: Vec<u64>,
    /// Per-displayed-frame display time and warp pose, in display
    /// order (same length as `mtp_ns`).
    pub displayed_frames: Vec<DisplayedFrame>,
    /// Vsyncs that displayed a fresh cloud frame.
    pub frames_displayed: u64,
    /// Vsyncs with no fresh frame to show.
    pub frames_dropped: u64,
    /// VIO jobs shipped uplink.
    pub vio_jobs: u64,
    /// Server pose estimates received.
    pub poses_received: u64,
    /// Render tokens received.
    pub tokens_received: u64,
    /// Render requests sent.
    pub requests_sent: u64,
}

impl SessionTelemetry {
    /// Mean MTP across displayed frames.
    pub fn mean_mtp(&self) -> Duration {
        if self.mtp_ns.is_empty() {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.mtp_ns.iter().sum::<u64>() / self.mtp_ns.len() as u64)
        }
    }

    /// 99th-percentile MTP (nearest-rank).
    pub fn p99_mtp(&self) -> Duration {
        if self.mtp_ns.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.mtp_ns.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64 * 0.99).ceil() as usize).clamp(1, sorted.len());
        Duration::from_nanos(sorted[rank - 1])
    }

    /// Dropped fraction of vsyncs.
    pub fn drop_rate(&self) -> f64 {
        let total = self.frames_displayed + self.frames_dropped;
        if total == 0 {
            0.0
        } else {
            self.frames_dropped as f64 / total as f64
        }
    }
}

/// The client half of one session.
pub struct ClientSession {
    /// Session id (index into the server's session table).
    pub id: u32,
    /// The session's parameters.
    pub config: SessionConfig,
    /// Current lifecycle state.
    pub state: SessionState,
    /// Run counters.
    pub telemetry: SessionTelemetry,
    trajectory: Trajectory,
    ctx: PluginContext,
    camera: SyntheticCameraPlugin,
    imu: SyntheticImuPlugin,
    integrator: ImuIntegratorPlugin,
    /// Uplink taps: what the remote-VIO client ships to the server.
    camera_reader: Option<SyncReader<StereoFrame>>,
    imu_reader: Option<SyncReader<ImuSample>>,
    /// Server pose estimates re-enter the client pipeline here.
    slow_pose_writer: Option<Writer<PoseEstimate>>,
    fast_pose: Option<AsyncReader<PoseEstimate>>,
    mtp: MtpCalculator,
    /// Slab pool recycling IMU-window allocations across frames.
    slab: SlabPool<Vec<ImuSample>>,
    /// IMU window accumulating between camera frames (unique until it
    /// ships inside a [`VioJob`]).
    imu_window: SlabFrame<Vec<ImuSample>>,
    /// Newest undisplayed token plus its arrival time at the client.
    latest_token: Option<(RenderToken, Time)>,
    displayed_seq: Option<u64>,
    request_seq: u64,
    vsync_index: u64,
    /// Total IMU plugin iterations (connect burn included) — the model
    /// fast-forward count a failover restore replays.
    imu_iterations: u64,
    /// Latest server pose estimate delivered, kept for checkpoints so a
    /// delivered-but-not-yet-anchored slow pose survives a restore.
    last_slow_pose: Option<PoseEstimate>,
}

impl ClientSession {
    /// Builds the client for session `id`. Nothing runs until
    /// [`ClientSession::connect`].
    pub fn new(id: u32, config: SessionConfig, clock: Arc<dyn Clock>) -> Self {
        Self::with_obs(
            id,
            config,
            clock,
            illixr_core::obs::Tracer::disabled(),
            illixr_core::obs::Metrics::disabled(),
        )
    }

    /// Builds the client with an observability sink: its switchboard,
    /// warp and MTP instrumentation record through `tracer`/`metrics`.
    /// Pass a tracer scoped per session (`tracer.scoped("s3/")`) so
    /// track names and flow ids stay distinguishable across sessions.
    pub fn with_obs(
        id: u32,
        config: SessionConfig,
        clock: Arc<dyn Clock>,
        tracer: illixr_core::obs::Tracer,
        metrics: illixr_core::obs::Metrics,
    ) -> Self {
        let trajectory = Trajectory::walking(config.seed);
        let world = Arc::new(LandmarkWorld::lab(config.seed));
        let rig = StereoRig::zed_mini(PinholeCamera::qvga());
        // Two windows cycle per session: one filling, one in flight
        // inside a [`VioJob`]; a few spare slots absorb batching jitter.
        let slab = SlabPool::new(4);
        Self {
            id,
            config,
            state: SessionState::Pending,
            telemetry: SessionTelemetry::default(),
            camera: SyntheticCameraPlugin::new(trajectory.clone(), world, rig),
            imu: SyntheticImuPlugin::new(
                trajectory.clone(),
                ImuNoise::default(),
                config.imu_hz,
                config.seed,
            ),
            integrator: ImuIntegratorPlugin::new(ImuState::from_pose(
                config.connect_at,
                trajectory.pose(config.connect_at),
                trajectory.velocity(config.connect_at),
            )),
            trajectory,
            ctx: RuntimeBuilder::new(clock).with_obs(tracer, metrics).build(),
            camera_reader: None,
            imu_reader: None,
            slow_pose_writer: None,
            fast_pose: None,
            mtp: MtpCalculator::new(Duration::from_secs_f64(1.0 / config.display_hz)),
            imu_window: slab.take(),
            slab,
            latest_token: None,
            displayed_seq: None,
            request_seq: 0,
            vsync_index: 0,
            imu_iterations: 0,
            last_slow_pose: None,
        }
    }

    /// Injects faults into this session's sensor pipeline: the camera
    /// and IMU plugins consult `plan` (targets `"camera"` / `"imu"`).
    /// Call before [`ClientSession::connect`].
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.ctx.fault = plan;
        self
    }

    /// Attaches a determinism boundary. A recording boundary captures
    /// this session's sensor inputs; a replaying one feeds them back —
    /// in which case the trajectory, world and sensor plugins are
    /// rebuilt from the *trace header's* seed so re-rendered frames and
    /// ground truth match the recorded session, not this session's
    /// config seed. Call before [`ClientSession::connect`].
    pub fn with_boundary(mut self, boundary: Boundary) -> Self {
        if let Some(src) = boundary.source() {
            let seed = src.header().seed;
            let trajectory = Trajectory::walking(seed);
            let world = Arc::new(LandmarkWorld::lab(seed));
            let rig = StereoRig::zed_mini(PinholeCamera::qvga());
            self.camera = SyntheticCameraPlugin::new(trajectory.clone(), world, rig);
            self.imu = SyntheticImuPlugin::new(
                trajectory.clone(),
                ImuNoise::default(),
                self.config.imu_hz,
                seed,
            );
            self.integrator = ImuIntegratorPlugin::new(ImuState::from_pose(
                self.config.connect_at,
                trajectory.pose(self.config.connect_at),
                trajectory.velocity(self.config.connect_at),
            ));
            self.trajectory = trajectory;
        }
        self.ctx.boundary = Arc::new(boundary);
        self
    }

    /// The session's ground-truth trajectory (the server's ideal-VIO
    /// mode and final-error accounting read it).
    pub fn trajectory(&self) -> &Trajectory {
        &self.trajectory
    }

    /// IMU sample period.
    pub fn imu_period(&self) -> Duration {
        Duration::from_secs_f64(1.0 / self.config.imu_hz)
    }

    /// Camera period in IMU steps: frames land exactly on IMU sample
    /// times so every frame arrives already covered by inertial data.
    /// Degraded sessions run the camera at half rate.
    pub fn camera_steps(&self) -> u64 {
        let steps = (self.config.imu_hz / self.config.camera_hz).round().max(1.0) as u64;
        if self.state == SessionState::Degraded {
            steps * 2
        } else {
            steps
        }
    }

    /// Display refresh period.
    pub fn vsync_period(&self) -> Duration {
        Duration::from_secs_f64(1.0 / self.config.display_hz)
    }

    /// Attaches the session at `now`: starts the client plugins,
    /// fast-forwards the IMU model so its sample times align with the
    /// shared clock (the model emits on its own 1/rate grid from t=0),
    /// and only then subscribes the pipeline readers — late joiners must
    /// not see a backlog of pre-connect samples.
    ///
    /// Returns the IMU step index of the first live sample; the server
    /// schedules ticks from there.
    pub fn connect(&mut self, now: Time, degraded: bool) -> u64 {
        self.camera.start(&self.ctx);
        self.imu.start(&self.ctx);
        // Burn pre-connect samples while nothing is subscribed.
        let first_step = (now.as_secs_f64() * self.config.imu_hz).round() as u64;
        for _ in 0..first_step {
            self.imu.iterate(&self.ctx);
        }
        self.imu_iterations = first_step;
        self.integrator.start(&self.ctx);
        let sb = &self.ctx.switchboard;
        self.camera_reader =
            Some(sb.topic::<StereoFrame>(streams::CAMERA).expect("stream").sync_reader(8));
        self.imu_reader =
            Some(sb.topic::<ImuSample>(streams::IMU).expect("stream").sync_reader(2048));
        self.slow_pose_writer =
            Some(sb.topic::<PoseEstimate>(streams::SLOW_POSE).expect("stream").writer());
        self.fast_pose =
            Some(sb.topic::<PoseEstimate>(streams::FAST_POSE).expect("stream").async_reader());
        self.state = if degraded { SessionState::Degraded } else { SessionState::Running };
        first_step
    }

    /// One IMU tick: emit the next sample and let the integrator
    /// re-propagate the fast pose.
    pub fn on_imu_due(&mut self) {
        self.imu_iterations += 1;
        self.imu.iterate(&self.ctx);
        self.integrator.iterate(&self.ctx);
        let reader = self.imu_reader.as_ref().expect("connect() must run first");
        for s in reader.drain_iter() {
            self.imu_window.make_mut().push(s.data);
        }
    }

    /// One camera tick: render the frame for the current clock time and
    /// package it with the accumulated IMU window as an offload job.
    /// `None` when no frame was published this tick — a recorded camera
    /// drop during replay, or a replayed frame not yet due under the
    /// session's transform; the IMU window keeps accumulating.
    pub fn on_camera_due(&mut self) -> Option<VioJob> {
        self.camera.iterate(&self.ctx);
        let reader = self.camera_reader.as_ref().expect("connect() must run first");
        // Newest wins if a replaying camera caught up several frames.
        let frame = reader.drain_iter().last()?.data.clone();
        // Swap in a recycled slab frame; the filled window ships in the
        // job as a shared, zero-copy payload.
        let imu = std::mem::replace(&mut self.imu_window, self.slab.take());
        self.telemetry.vio_jobs += 1;
        Some(VioJob { session: self.id, frame, imu })
    }

    /// A server pose estimate arrived over the downlink: feed it back
    /// into the client pipeline as the slow pose (the integrator
    /// re-anchors on it at the next IMU tick).
    pub fn on_pose_delivered(&mut self, pose: PoseEstimate) {
        self.telemetry.poses_received += 1;
        self.last_slow_pose = Some(pose);
        self.slow_pose_writer.as_ref().expect("connect() must run first").put(pose);
    }

    /// A cloud-rendered frame arrived. Newest wins; an out-of-order
    /// older token is dropped. The arrival time (read off the shared
    /// clock) feeds the queue stage of the MTP decomposition.
    pub fn on_token_delivered(&mut self, token: RenderToken) {
        self.telemetry.tokens_received += 1;
        if self.latest_token.is_none_or(|(t, _)| token.seq > t.seq) {
            self.latest_token = Some((token, self.ctx.clock.now()));
        }
    }

    /// One vsync: display the newest undisplayed token (warping it for
    /// `warp_cost`) or record a dropped frame, then issue the next
    /// render request stamped with the freshest local pose. Degraded
    /// sessions request on every other vsync.
    pub fn on_vsync(&mut self, now: Time, warp_cost: Duration) -> Option<RenderRequest> {
        match self.latest_token {
            Some((token, arrived)) if self.displayed_seq.is_none_or(|d| token.seq > d) => {
                self.displayed_seq = Some(token.seq);
                let sample = self.mtp.sample(token.pose_timestamp, now, now + warp_cost);
                self.telemetry.mtp_ns.push(sample.total().as_nanos() as u64);
                let pose = self
                    .latest_fast_pose()
                    .map(|p| p.pose)
                    .unwrap_or_else(|| self.trajectory.pose(now));
                self.telemetry.displayed_frames.push(DisplayedFrame { time: now, pose });
                self.telemetry.frames_displayed += 1;
                self.record_frame_obs(&token, arrived, now, &sample);
            }
            _ => self.telemetry.frames_dropped += 1,
        }
        self.vsync_index += 1;
        if self.state == SessionState::Degraded && self.vsync_index.is_multiple_of(2) {
            return None;
        }
        let pose_timestamp = self
            .fast_pose
            .as_ref()
            .expect("connect() must run first")
            .latest()
            .map(|p| p.timestamp)
            .unwrap_or(self.config.connect_at);
        let seq = self.request_seq;
        self.request_seq += 1;
        self.telemetry.requests_sent += 1;
        Some(RenderRequest { session: self.id, seq, pose_timestamp, requested_at: now })
    }

    /// Records the displayed frame's warp span and its exact MTP stage
    /// decomposition. The stages partition the sample's total:
    /// `sense` (pose age when the request left) + `round_trip` (request
    /// → token arrival) + `queue` (arrival → vsync) reconstruct the
    /// sample's `imu_age` term, and `reprojection`/`swap` are the
    /// sample's own; so `mtp.sense + mtp.round_trip + mtp.queue +
    /// mtp.warp + mtp.swap == mtp.total` frame by frame.
    fn record_frame_obs(
        &self,
        token: &RenderToken,
        arrived: Time,
        now: Time,
        sample: &illixr_qoe::mtp::MtpSample,
    ) {
        let tracer = &self.ctx.tracer;
        if tracer.is_enabled() {
            tracer.record_span_args(
                "warp",
                "warp",
                now.as_nanos(),
                (now + sample.reprojection).as_nanos(),
                &[("token_seq", format!("{}", token.seq))],
            );
        }
        let metrics = &self.ctx.metrics;
        if metrics.is_enabled() {
            let sense =
                token.requested_at.as_nanos().saturating_sub(token.pose_timestamp.as_nanos());
            let round_trip = arrived.as_nanos().saturating_sub(token.requested_at.as_nanos());
            let queue = now.as_nanos().saturating_sub(arrived.as_nanos());
            metrics.record_ns("mtp.sense", sense);
            metrics.record_ns("mtp.round_trip", round_trip);
            metrics.record_ns("mtp.queue", queue);
            metrics.record_ns("mtp.warp", sample.reprojection.as_nanos() as u64);
            metrics.record_ns("mtp.swap", sample.swap.as_nanos() as u64);
            metrics.record_ns("mtp.total", sample.total().as_nanos() as u64);
        }
    }

    /// Detaches the session.
    pub fn disconnect(&mut self) {
        self.camera.stop();
        self.imu.stop();
        self.integrator.stop();
        self.state = SessionState::Disconnected;
    }

    /// The freshest local pose estimate, if any.
    pub fn latest_fast_pose(&self) -> Option<PoseEstimate> {
        self.fast_pose.as_ref().and_then(|r| r.latest()).map(|p| **p)
    }

    /// Translation error of the freshest fast pose against ground
    /// truth, meters.
    pub fn pose_error(&self) -> Option<f64> {
        self.latest_fast_pose()
            .map(|p| p.pose.translation_distance(&self.trajectory.pose(p.timestamp)))
    }

    /// End-of-run switchboard counters for this session's streams.
    pub fn stream_stats(&self) -> Vec<TopicStats> {
        self.ctx.switchboard.stats()
    }

    /// Exports this session's per-topic switchboard counters as
    /// `topic.s{id}/{stream}.*` gauges (no-op when metrics are
    /// disabled).
    pub fn export_topic_gauges(&self) {
        illixr_core::obs::export_topic_gauges(
            &self.ctx.switchboard,
            &self.ctx.metrics,
            &format!("s{}/", self.id),
        );
    }

    /// Freezes the session into a deterministic
    /// [`SessionSnapshot`](crate::snapshot::SessionSnapshot):
    /// state-machine fields, plugin internals and telemetry, everything
    /// a [`ClientSession::restore`] needs to resume bit-identically.
    /// Only meaningful for attached (Running/Degraded) sessions.
    pub fn snapshot(&self) -> crate::snapshot::SessionSnapshot {
        let (integrator_state, integrator_history, anchor_timestamp) =
            self.integrator.snapshot_parts();
        crate::snapshot::SessionSnapshot {
            degraded: self.state == SessionState::Degraded,
            imu_iterations: self.imu_iterations,
            camera_seq: self.camera.seq(),
            last_cam: self.camera.last_frame_info(),
            integrator_state,
            integrator_history,
            anchor_timestamp,
            imu_window: self.imu_window.iter().copied().collect(),
            // Peek (not `latest()`): a checkpoint must not emit flow
            // events or consume the reader's once-per-event marker, or
            // arming checkpoints would perturb the live trace.
            fast_pose: self.fast_pose.as_ref().and_then(|r| r.peek_latest()).map(|p| **p),
            last_slow_pose: self.last_slow_pose,
            latest_token: self.latest_token,
            displayed_seq: self.displayed_seq,
            request_seq: self.request_seq,
            vsync_index: self.vsync_index,
            telemetry: self.telemetry.clone(),
        }
    }

    /// Rebuilds a session from a snapshot, on a fresh private
    /// [`illixr_core::SimClock`] (returned so the caller can drive
    /// catch-up replay through it before handing the session the live
    /// lane runtime via [`ClientSession::adopt_runtime`]).
    ///
    /// The reconstruction retraces [`ClientSession::connect`]'s start
    /// order exactly — plugins start, the IMU model fast-forwards by
    /// the snapshotted iteration count *before* any reader subscribes,
    /// the integrator's internals are restored before its `start` (which
    /// only subscribes, never publishes) — then re-seeds the pose topics
    /// from the snapshotted latest values and restores the plain state
    /// fields. Observability is disabled during restore and replay so
    /// re-applied events never double-record into live histograms.
    pub fn restore(
        id: u32,
        config: SessionConfig,
        snap: &crate::snapshot::SessionSnapshot,
        fault: Arc<FaultPlan>,
    ) -> (Self, illixr_core::SimClock) {
        let temp_clock = illixr_core::SimClock::new();
        let mut s = Self::new(id, config, Arc::new(temp_clock.clone()));
        s.ctx.fault = fault;
        s.camera.start(&s.ctx);
        s.imu.start(&s.ctx);
        // Fast-forward the IMU model with nothing subscribed: the
        // model's RNG stream advances exactly as many draws as the
        // snapshotted session had taken.
        for _ in 0..snap.imu_iterations {
            s.imu.iterate(&s.ctx);
        }
        s.imu_iterations = snap.imu_iterations;
        s.integrator.restore_parts(
            snap.integrator_state,
            snap.integrator_history.clone(),
            snap.anchor_timestamp,
        );
        s.integrator.start(&s.ctx);
        let sb = &s.ctx.switchboard;
        s.camera_reader =
            Some(sb.topic::<StereoFrame>(streams::CAMERA).expect("stream").sync_reader(8));
        s.imu_reader = Some(sb.topic::<ImuSample>(streams::IMU).expect("stream").sync_reader(2048));
        s.slow_pose_writer =
            Some(sb.topic::<PoseEstimate>(streams::SLOW_POSE).expect("stream").writer());
        s.fast_pose =
            Some(sb.topic::<PoseEstimate>(streams::FAST_POSE).expect("stream").async_reader());
        s.camera.restore_state(snap.camera_seq, snap.last_cam);
        // Re-seed the pose topics. The fast pose is what vsyncs stamp
        // requests with; the slow pose covers an estimate delivered but
        // not yet anchored (re-anchoring an already-anchored estimate
        // is a no-op thanks to the integrator's timestamp guard).
        if let Some(fp) = snap.fast_pose {
            sb.topic::<PoseEstimate>(streams::FAST_POSE).expect("stream").writer().put(fp);
        }
        if let Some(sp) = snap.last_slow_pose {
            s.slow_pose_writer.as_ref().expect("just set").put(sp);
        }
        s.state = if snap.degraded { SessionState::Degraded } else { SessionState::Running };
        s.telemetry = snap.telemetry.clone();
        s.imu_window.make_mut().extend(snap.imu_window.iter().copied());
        s.latest_token = snap.latest_token;
        s.displayed_seq = snap.displayed_seq;
        s.request_seq = snap.request_seq;
        s.vsync_index = snap.vsync_index;
        s.last_slow_pose = snap.last_slow_pose;
        (s, temp_clock)
    }

    /// Swaps the session onto the live lane runtime after catch-up
    /// replay: the shared clock plus the lane's tracer and metrics.
    /// Every plugin reads these through the context by reference, so
    /// the swap takes effect at the next event.
    pub fn adopt_runtime(
        &mut self,
        clock: Arc<dyn Clock>,
        tracer: illixr_core::obs::Tracer,
        metrics: illixr_core::obs::Metrics,
    ) {
        self.ctx.clock = clock;
        self.ctx.tracer = tracer;
        self.ctx.metrics = metrics;
    }

    /// Marks the session quarantined (its fault domain crashed and no
    /// recovery is in flight).
    pub fn quarantine(&mut self) {
        self.state = SessionState::Quarantined;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_core::SimClock;

    fn session_at(connect: Time) -> (ClientSession, SimClock) {
        let clock = SimClock::new();
        let mut config = SessionConfig::new(7);
        config.connect_at = connect;
        let session = ClientSession::new(0, config, Arc::new(clock.clone()));
        (session, clock)
    }

    #[test]
    fn imu_fast_forward_aligns_timestamps_with_the_clock() {
        let connect = Time::from_millis(500);
        let (mut s, clock) = session_at(connect);
        clock.advance_to(connect);
        let first_step = s.connect(connect, false);
        assert_eq!(first_step, 250, "500 ms at 500 Hz");
        s.on_imu_due();
        let sample = s.imu_window.last().expect("tick emits a sample");
        assert_eq!(sample.timestamp, Time::from_secs_f64(250.0 / 500.0));
    }

    #[test]
    fn camera_tick_packages_the_imu_window() {
        let (mut s, clock) = session_at(Time::ZERO);
        s.connect(Time::ZERO, false);
        for k in 0..=33 {
            clock.advance_to(Time::from_secs_f64(k as f64 / 500.0));
            s.on_imu_due();
        }
        let job = s.on_camera_due().expect("live camera publishes every tick");
        assert_eq!(job.imu.len(), 34);
        assert_eq!(job.frame.timestamp, Time::from_secs_f64(33.0 / 500.0));
        // The window covers the frame: last IMU sample is at frame time.
        assert_eq!(job.imu.last().unwrap().timestamp, job.frame.timestamp);
        // The window does not carry over.
        assert!(s.imu_window.is_empty());
    }

    #[test]
    fn vsync_without_token_drops_and_with_token_displays_once() {
        let (mut s, clock) = session_at(Time::ZERO);
        s.connect(Time::ZERO, false);
        let vsync = Time::from_secs_f64(1.0 / 120.0);
        clock.advance_to(vsync);
        s.on_vsync(vsync, Duration::from_millis(1));
        assert_eq!(s.telemetry.frames_dropped, 1);
        s.on_token_delivered(RenderToken {
            seq: 0,
            pose_timestamp: Time::ZERO,
            requested_at: Time::ZERO,
        });
        let v2 = Time::from_secs_f64(2.0 / 120.0);
        s.on_vsync(v2, Duration::from_millis(1));
        assert_eq!(s.telemetry.frames_displayed, 1);
        // Same token again: stale, counts as a drop.
        s.on_vsync(Time::from_secs_f64(3.0 / 120.0), Duration::from_millis(1));
        assert_eq!(s.telemetry.frames_dropped, 2);
        let mtp = Duration::from_nanos(s.telemetry.mtp_ns[0]);
        // Pose from t=0 displayed after v2 + 1 ms warp + swap.
        assert!(mtp >= v2 - Time::ZERO, "mtp {mtp:?}");
    }

    #[test]
    fn degraded_session_requests_every_other_vsync() {
        let (mut s, _clock) = session_at(Time::ZERO);
        s.connect(Time::ZERO, true);
        assert_eq!(s.state, SessionState::Degraded);
        let mut requests = 0;
        for k in 0..8 {
            let t = Time::from_secs_f64(k as f64 / 120.0);
            if s.on_vsync(t, Duration::from_millis(1)).is_some() {
                requests += 1;
            }
        }
        assert_eq!(requests, 4);
        // Degraded camera runs at half rate: twice the IMU steps.
        assert_eq!(s.camera_steps(), 66);
    }

    #[test]
    fn telemetry_percentiles_and_drop_rate() {
        let t = SessionTelemetry {
            mtp_ns: (1..=100u64).map(|k| k * 1_000_000).collect(),
            frames_displayed: 100,
            frames_dropped: 25,
            ..SessionTelemetry::default()
        };
        assert_eq!(t.p99_mtp(), Duration::from_millis(99));
        assert_eq!(t.drop_rate(), 0.2);
        assert_eq!(t.mean_mtp(), Duration::from_nanos(50_500_000));
    }
}
