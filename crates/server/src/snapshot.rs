//! The session-state snapshot payload: what one `ClientSession` is,
//! frozen at a checkpoint epoch.
//!
//! The `ILXC` container (`illixr_trace::checkpoint`) owns identity and
//! framing; this module owns the payload codec for one session entry —
//! the state-machine fields, the sensor/integrator plugin internals
//! that cannot be re-derived cheaply, and the full telemetry. Every
//! field round-trips exactly (floats travel as IEEE-754 bit patterns),
//! so encode→decode→encode is byte-identical — the property the
//! checkpoint fixture test pins.
//!
//! What is *not* here is as deliberate as what is: the camera's last
//! frame is stored as `(timestamp, seq)` and re-rendered from the
//! trajectory at restore (frame content is a pure function of pose);
//! the IMU model is fast-forwarded by `imu_iterations` rather than
//! serializing its RNG; switchboard topics are re-seeded from the
//! snapshotted latest values. Restore is therefore a *reconstruction*
//! that is provably bit-equal in every observable the engine reads.

use illixr_core::boundary::{ByteReader, ByteWriter, CodecError};
use illixr_core::Time;
use illixr_math::{Pose, Quat, Vec3};
use illixr_sensors::types::{ImuSample, PoseEstimate};
use illixr_vio::integrator::ImuState;

use crate::session::{DisplayedFrame, RenderToken, SessionTelemetry};

/// A full deterministic snapshot of one client session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// Whether the session was admitted at degraded rates.
    pub degraded: bool,
    /// Total IMU plugin iterations so far (connect burn included) —
    /// the model fast-forward count at restore.
    pub imu_iterations: u64,
    /// Camera plugin sequence counter.
    pub camera_seq: u64,
    /// `(timestamp, seq)` of the camera's last fresh frame, if any.
    pub last_cam: Option<(Time, u64)>,
    /// Integrator propagation state.
    pub integrator_state: ImuState,
    /// Integrator IMU history (left endpoint of the next propagation).
    pub integrator_history: Vec<ImuSample>,
    /// Integrator re-anchor watermark.
    pub anchor_timestamp: Time,
    /// IMU window accumulating toward the next VIO job.
    pub imu_window: Vec<ImuSample>,
    /// Latest published fast pose, re-seeded into the topic at restore.
    pub fast_pose: Option<PoseEstimate>,
    /// Latest delivered slow pose, re-seeded so a delivered-but-not-yet
    /// anchored estimate survives the restore.
    pub last_slow_pose: Option<PoseEstimate>,
    /// Newest undisplayed render token and its client arrival time.
    pub latest_token: Option<(RenderToken, Time)>,
    /// Sequence of the newest displayed token.
    pub displayed_seq: Option<u64>,
    /// Next render-request sequence number.
    pub request_seq: u64,
    /// Vsyncs seen so far (drives the degraded every-other cadence).
    pub vsync_index: u64,
    /// Full run counters at the snapshot instant.
    pub telemetry: SessionTelemetry,
}

fn put_vec3(w: &mut ByteWriter, v: Vec3) {
    w.put_f64(v.x);
    w.put_f64(v.y);
    w.put_f64(v.z);
}

fn take_vec3(r: &mut ByteReader) -> Result<Vec3, CodecError> {
    Ok(Vec3::new(r.take_f64()?, r.take_f64()?, r.take_f64()?))
}

fn put_pose(w: &mut ByteWriter, p: &Pose) {
    put_vec3(w, p.position);
    w.put_f64(p.orientation.w);
    w.put_f64(p.orientation.x);
    w.put_f64(p.orientation.y);
    w.put_f64(p.orientation.z);
}

fn take_pose(r: &mut ByteReader) -> Result<Pose, CodecError> {
    let position = take_vec3(r)?;
    let orientation =
        Quat { w: r.take_f64()?, x: r.take_f64()?, y: r.take_f64()?, z: r.take_f64()? };
    Ok(Pose { position, orientation })
}

fn put_estimate(w: &mut ByteWriter, e: &PoseEstimate) {
    w.put_u64(e.timestamp.as_nanos());
    put_pose(w, &e.pose);
    put_vec3(w, e.velocity);
}

fn take_estimate(r: &mut ByteReader) -> Result<PoseEstimate, CodecError> {
    Ok(PoseEstimate {
        timestamp: Time::from_nanos(r.take_u64()?),
        pose: take_pose(r)?,
        velocity: take_vec3(r)?,
    })
}

fn put_sample(w: &mut ByteWriter, s: &ImuSample) {
    w.put_u64(s.timestamp.as_nanos());
    put_vec3(w, s.gyro);
    put_vec3(w, s.accel);
}

fn take_sample(r: &mut ByteReader) -> Result<ImuSample, CodecError> {
    Ok(ImuSample {
        timestamp: Time::from_nanos(r.take_u64()?),
        gyro: take_vec3(r)?,
        accel: take_vec3(r)?,
    })
}

fn put_opt_estimate(w: &mut ByteWriter, e: &Option<PoseEstimate>) {
    match e {
        Some(e) => {
            w.put_u16(1);
            put_estimate(w, e);
        }
        None => w.put_u16(0),
    }
}

fn take_opt_estimate(r: &mut ByteReader) -> Result<Option<PoseEstimate>, CodecError> {
    Ok(if r.take_u16()? != 0 { Some(take_estimate(r)?) } else { None })
}

fn put_samples(w: &mut ByteWriter, samples: &[ImuSample]) {
    w.put_u32(samples.len() as u32);
    for s in samples {
        put_sample(w, s);
    }
}

fn take_samples(r: &mut ByteReader) -> Result<Vec<ImuSample>, CodecError> {
    let n = r.take_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(take_sample(r)?);
    }
    Ok(out)
}

impl SessionSnapshot {
    /// Serializes to the opaque entry payload stored in an `ILXC`
    /// checkpoint.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u16(self.degraded as u16);
        w.put_u64(self.imu_iterations);
        w.put_u64(self.camera_seq);
        match self.last_cam {
            Some((t, seq)) => {
                w.put_u16(1);
                w.put_u64(t.as_nanos());
                w.put_u64(seq);
            }
            None => w.put_u16(0),
        }
        // Integrator.
        w.put_u64(self.integrator_state.timestamp.as_nanos());
        put_pose(&mut w, &self.integrator_state.pose);
        put_vec3(&mut w, self.integrator_state.velocity);
        put_vec3(&mut w, self.integrator_state.gyro_bias);
        put_vec3(&mut w, self.integrator_state.accel_bias);
        put_samples(&mut w, &self.integrator_history);
        w.put_u64(self.anchor_timestamp.as_nanos());
        put_samples(&mut w, &self.imu_window);
        put_opt_estimate(&mut w, &self.fast_pose);
        put_opt_estimate(&mut w, &self.last_slow_pose);
        match &self.latest_token {
            Some((token, arrived)) => {
                w.put_u16(1);
                w.put_u64(token.seq);
                w.put_u64(token.pose_timestamp.as_nanos());
                w.put_u64(token.requested_at.as_nanos());
                w.put_u64(arrived.as_nanos());
            }
            None => w.put_u16(0),
        }
        match self.displayed_seq {
            Some(seq) => {
                w.put_u16(1);
                w.put_u64(seq);
            }
            None => w.put_u16(0),
        }
        w.put_u64(self.request_seq);
        w.put_u64(self.vsync_index);
        // Telemetry.
        let t = &self.telemetry;
        w.put_u32(t.mtp_ns.len() as u32);
        for &ns in &t.mtp_ns {
            w.put_u64(ns);
        }
        w.put_u32(t.displayed_frames.len() as u32);
        for f in &t.displayed_frames {
            w.put_u64(f.time.as_nanos());
            put_pose(&mut w, &f.pose);
        }
        w.put_u64(t.frames_displayed);
        w.put_u64(t.frames_dropped);
        w.put_u64(t.vio_jobs);
        w.put_u64(t.poses_received);
        w.put_u64(t.tokens_received);
        w.put_u64(t.requests_sent);
        w.into_bytes()
    }

    /// Strict decode of an entry payload. Trailing bytes are rejected:
    /// a payload that over-decodes is as corrupt as one that truncates.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let degraded = r.take_u16()? != 0;
        let imu_iterations = r.take_u64()?;
        let camera_seq = r.take_u64()?;
        let last_cam = if r.take_u16()? != 0 {
            Some((Time::from_nanos(r.take_u64()?), r.take_u64()?))
        } else {
            None
        };
        let integrator_state = ImuState {
            timestamp: Time::from_nanos(r.take_u64()?),
            pose: take_pose(&mut r)?,
            velocity: take_vec3(&mut r)?,
            gyro_bias: take_vec3(&mut r)?,
            accel_bias: take_vec3(&mut r)?,
        };
        let integrator_history = take_samples(&mut r)?;
        let anchor_timestamp = Time::from_nanos(r.take_u64()?);
        let imu_window = take_samples(&mut r)?;
        let fast_pose = take_opt_estimate(&mut r)?;
        let last_slow_pose = take_opt_estimate(&mut r)?;
        let latest_token = if r.take_u16()? != 0 {
            let seq = r.take_u64()?;
            let pose_timestamp = Time::from_nanos(r.take_u64()?);
            let requested_at = Time::from_nanos(r.take_u64()?);
            let arrived = Time::from_nanos(r.take_u64()?);
            Some((RenderToken { seq, pose_timestamp, requested_at }, arrived))
        } else {
            None
        };
        let displayed_seq = if r.take_u16()? != 0 { Some(r.take_u64()?) } else { None };
        let request_seq = r.take_u64()?;
        let vsync_index = r.take_u64()?;
        let mtp_len = r.take_u32()? as usize;
        let mut mtp_ns = Vec::with_capacity(mtp_len.min(1 << 16));
        for _ in 0..mtp_len {
            mtp_ns.push(r.take_u64()?);
        }
        let df_len = r.take_u32()? as usize;
        let mut displayed_frames = Vec::with_capacity(df_len.min(1 << 16));
        for _ in 0..df_len {
            displayed_frames.push(DisplayedFrame {
                time: Time::from_nanos(r.take_u64()?),
                pose: take_pose(&mut r)?,
            });
        }
        let telemetry = SessionTelemetry {
            mtp_ns,
            displayed_frames,
            frames_displayed: r.take_u64()?,
            frames_dropped: r.take_u64()?,
            vio_jobs: r.take_u64()?,
            poses_received: r.take_u64()?,
            tokens_received: r.take_u64()?,
            requests_sent: r.take_u64()?,
        };
        if !r.is_empty() {
            return Err(CodecError { offset: r.position(), needed: 0, remaining: r.remaining() });
        }
        Ok(Self {
            degraded,
            imu_iterations,
            camera_seq,
            last_cam,
            integrator_state,
            integrator_history,
            anchor_timestamp,
            imu_window,
            fast_pose,
            last_slow_pose,
            latest_token,
            displayed_seq,
            request_seq,
            vsync_index,
            telemetry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_snapshot() -> SessionSnapshot {
        let pose = Pose {
            position: Vec3::new(0.5, -1.25, 2.0),
            orientation: Quat { w: 0.9, x: 0.1, y: -0.2, z: 0.3 },
        };
        SessionSnapshot {
            degraded: true,
            imu_iterations: 1234,
            camera_seq: 37,
            last_cam: Some((Time::from_millis(2400), 36)),
            integrator_state: ImuState {
                timestamp: Time::from_millis(2398),
                pose,
                velocity: Vec3::new(0.1, 0.0, -0.1),
                gyro_bias: Vec3::new(1e-4, -1e-4, 0.0),
                accel_bias: Vec3::new(0.01, 0.02, -0.03),
            },
            integrator_history: vec![ImuSample {
                timestamp: Time::from_millis(2398),
                gyro: Vec3::new(0.01, 0.02, 0.03),
                accel: Vec3::new(0.0, 9.81, 0.0),
            }],
            anchor_timestamp: Time::from_millis(2333),
            imu_window: vec![
                ImuSample {
                    timestamp: Time::from_millis(2400),
                    gyro: Vec3::ZERO,
                    accel: Vec3::new(0.0, 9.81, 0.0),
                };
                3
            ],
            fast_pose: Some(PoseEstimate {
                timestamp: Time::from_millis(2398),
                pose,
                velocity: Vec3::new(0.1, 0.0, -0.1),
            }),
            last_slow_pose: None,
            latest_token: Some((
                RenderToken {
                    seq: 88,
                    pose_timestamp: Time::from_millis(2390),
                    requested_at: Time::from_millis(2392),
                },
                Time::from_millis(2395),
            )),
            displayed_seq: Some(87),
            request_seq: 90,
            vsync_index: 288,
            telemetry: SessionTelemetry {
                mtp_ns: vec![1_000_000, 2_000_000, 3_000_000],
                displayed_frames: vec![DisplayedFrame { time: Time::from_millis(2392), pose }],
                frames_displayed: 280,
                frames_dropped: 8,
                vio_jobs: 36,
                poses_received: 35,
                tokens_received: 88,
                requests_sent: 90,
            },
        }
    }

    #[test]
    fn round_trips_and_is_canonical() {
        let snap = sample_snapshot();
        let bytes = snap.encode();
        let back = SessionSnapshot::decode(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn rejects_truncation_and_trailing_bytes() {
        let bytes = sample_snapshot().encode();
        for cut in 0..bytes.len() {
            assert!(SessionSnapshot::decode(&bytes[..cut]).is_err(), "cut {cut} decoded");
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(SessionSnapshot::decode(&long).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Arbitrary counter/field values round-trip exactly.
        #[test]
        fn arbitrary_counters_round_trip(
            imu_iterations in 0u64..u64::MAX,
            camera_seq in 0u64..u64::MAX,
            request_seq in 0u64..u64::MAX,
            vsync_index in 0u64..u64::MAX,
            degraded_bit in 0u64..2,
            mtp in proptest::collection::vec(0u64..u64::MAX, 0..32),
        ) {
            let mut snap = sample_snapshot();
            snap.imu_iterations = imu_iterations;
            snap.camera_seq = camera_seq;
            snap.request_seq = request_seq;
            snap.vsync_index = vsync_index;
            snap.degraded = degraded_bit == 1;
            snap.telemetry.mtp_ns = mtp;
            let bytes = snap.encode();
            let back = SessionSnapshot::decode(&bytes).unwrap();
            prop_assert_eq!(&back, &snap);
            prop_assert_eq!(back.encode(), bytes);
        }
    }
}
