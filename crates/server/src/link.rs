//! The shared, contended device↔edge link.
//!
//! [`illixr_system::offload::OffloadLink`] models a private
//! point-to-point pipe: every transfer sees the same one-way latency
//! regardless of who else is talking. That is the right model for one
//! client, but a multi-session server shares *finite* uplink and
//! downlink bandwidth across every connected client, so a transfer's
//! delay has three parts:
//!
//! 1. **queueing** — wait until the direction's serializer is free
//!    (grows with concurrent sessions; zero on an idle link);
//! 2. **serialization** — `bytes / bandwidth`;
//! 3. **propagation** — the base one-way latency, optionally jittered
//!    (log-normal, deterministic per seed), exactly like `OffloadLink`.
//!
//! [`SharedLink`] is the generalization: with infinite bandwidth it
//! degenerates to `OffloadLink`'s fixed-latency behaviour (see
//! [`LinkConfig::from_point_to_point`] and the tests).
//!
//! Both models speak `illixr_core::link`'s unified vocabulary: the
//! [`Direction`] type is re-exported from there, configs are built
//! from named [`LinkProfile`] presets via [`LinkConfig::from_profile`],
//! and `SharedLink` implements the one-method [`Link`] trait.

use std::sync::Arc;
use std::time::Duration;

use illixr_core::boundary::{Boundary, ByteReader, ByteWriter};
use illixr_core::fault::FaultPlan;
use illixr_core::link::{Link, LinkProfile};
use illixr_core::Time;
use illixr_platform::rng::SplitMix64;
use illixr_system::offload::OffloadLink;

pub use illixr_core::link::Direction;

/// Boundary payload for one transfer: queue wait and total delivery
/// delay, as signed deltas from the record tag (the transfer's start
/// time) so a dilating replay transform scales them coherently.
fn encode_transfer(wait_ns: i64, arrival_delta_ns: i64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_i64(wait_ns);
    w.put_i64(arrival_delta_ns);
    w.into_bytes()
}

fn decode_transfer(payload: &[u8]) -> Option<(i64, i64)> {
    let mut r = ByteReader::new(payload);
    let wait = r.take_i64().ok()?;
    let arrival = r.take_i64().ok()?;
    r.is_empty().then_some((wait, arrival))
}

/// Shared-link parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Uplink bandwidth, bits per second.
    pub uplink_bps: f64,
    /// Downlink bandwidth, bits per second.
    pub downlink_bps: f64,
    /// One-way propagation latency, both directions.
    pub base_latency: Duration,
    /// Log-normal jitter sigma on the propagation term (0 = none).
    pub jitter_sigma: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl LinkConfig {
    /// Builds a config from a named [`LinkProfile`], threading the run
    /// seed into the jitter/fault RNG stream. This replaces the old
    /// per-model preset constructors (`LinkConfig::wifi()` et al.):
    /// profiles are the single source of preset numbers.
    pub fn from_profile(profile: LinkProfile, seed: u64) -> Self {
        Self {
            uplink_bps: profile.uplink_bps,
            downlink_bps: profile.downlink_bps,
            base_latency: profile.base_latency,
            jitter_sigma: profile.jitter_sigma,
            seed,
        }
    }

    /// Embeds a point-to-point [`OffloadLink`] in the shared model:
    /// infinite bandwidth (no serialization, no queueing), so every
    /// transfer sees exactly the uplink latency plus jitter. Only the
    /// uplink latency is representable per config — build one config
    /// per direction if the link is asymmetric.
    pub fn from_point_to_point(link: &OffloadLink) -> Self {
        Self {
            uplink_bps: f64::INFINITY,
            downlink_bps: f64::INFINITY,
            base_latency: link.uplink,
            jitter_sigma: link.jitter_sigma,
            seed: link.seed,
        }
    }
}

/// Aggregate counters for one run, per direction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DirectionStats {
    /// Transfers completed.
    pub transfers: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Sum of per-transfer queueing delays, ns.
    pub queue_delay_ns: u64,
    /// Worst single queueing delay, ns.
    pub max_queue_delay_ns: u64,
}

impl DirectionStats {
    /// Mean queueing delay per transfer.
    pub fn mean_queue_delay(&self) -> Duration {
        Duration::from_nanos(self.queue_delay_ns.checked_div(self.transfers).unwrap_or(0))
    }
}

/// The contended link: all sessions' transfers serialize through one
/// pipe per direction.
#[derive(Debug)]
pub struct SharedLink {
    config: LinkConfig,
    up_busy_until: Time,
    down_busy_until: Time,
    rng: SplitMix64,
    up: DirectionStats,
    down: DirectionStats,
    fault: Arc<FaultPlan>,
    boundary: Arc<Boundary>,
}

impl SharedLink {
    /// Creates an idle link.
    pub fn new(config: LinkConfig) -> Self {
        Self {
            config,
            up_busy_until: Time::ZERO,
            down_busy_until: Time::ZERO,
            rng: SplitMix64::new(config.seed ^ 0x51A2_ED11),
            up: DirectionStats::default(),
            down: DirectionStats::default(),
            fault: Arc::new(FaultPlan::quiet()),
            boundary: Arc::new(Boundary::off()),
        }
    }

    /// Injects link faults according to `plan`: a `LinkOutage` window
    /// (targets `"uplink"` / `"downlink"`) defers the transfer's first
    /// byte to the window's end, and a `LinkJitterSpike` multiplies the
    /// propagation term.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = plan;
        self
    }

    /// Attaches a determinism boundary: a recording boundary captures
    /// every transfer's `(queue wait, delivery delay)` on
    /// `link/uplink` / `link/downlink`, and a replaying one feeds those
    /// delays back instead of consulting jitter RNG or fault windows.
    pub fn with_boundary(mut self, boundary: Arc<Boundary>) -> Self {
        self.boundary = boundary;
        self
    }

    /// The link parameters.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Starts a transfer of `bytes` at `now` and returns its delivery
    /// time. FIFO per direction: the transfer first waits for the
    /// serializer to drain whatever earlier transfers queued.
    pub fn transfer(&mut self, direction: Direction, now: Time, bytes: u64) -> Time {
        let stream = direction.boundary_stream();
        let replay = self.boundary.source().filter(|src| src.has_stream(stream)).cloned();
        let (queue, serialization, arrival) = if let Some(src) = replay {
            let (tag, payload) = src
                .next_due(stream, now.as_nanos())
                .expect("link replay diverged: no recorded transfer due at this instant");
            let (wait_ns, arrival_delta) =
                decode_transfer(&payload).expect("corrupt link boundary record");
            // Re-record the popped bytes verbatim so a re-recorded
            // replay stays byte-identical to its input trace.
            self.boundary.record(stream, tag, payload);
            let t = src.transform();
            let queue = Duration::from_nanos(t.scale_delta(wait_ns).max(0) as u64);
            let arrival = Time::from_nanos(
                now.as_nanos().saturating_add(t.scale_delta(arrival_delta).max(0) as u64),
            );
            let bps = match direction {
                Direction::Uplink => self.config.uplink_bps,
                Direction::Downlink => self.config.downlink_bps,
            };
            let serialization = if bps.is_finite() {
                Duration::from_secs_f64(bytes as f64 * 8.0 / bps)
            } else {
                Duration::ZERO
            };
            (queue, serialization, arrival)
        } else {
            let (bps, busy_until, target) = match direction {
                Direction::Uplink => (self.config.uplink_bps, &self.up_busy_until, "uplink"),
                Direction::Downlink => {
                    (self.config.downlink_bps, &self.down_busy_until, "downlink")
                }
            };
            let faults = self.fault.link(target);
            let mut start = (*busy_until).max(now);
            if let Some(outage_end) = faults.outage_until(now.as_nanos()) {
                // The radio is down: the first byte waits out the outage.
                start = start.max(Time::from_nanos(outage_end));
            }
            let queue = start - now;
            let serialization = if bps.is_finite() {
                Duration::from_secs_f64(bytes as f64 * 8.0 / bps)
            } else {
                Duration::ZERO
            };
            let jitter = if self.config.jitter_sigma > 0.0 {
                self.rng.next_lognormal(self.config.jitter_sigma)
            } else {
                1.0
            };
            let propagation = Duration::from_secs_f64(
                self.config.base_latency.as_secs_f64()
                    * jitter
                    * faults.jitter_scale(now.as_nanos()),
            );
            let arrival = start + serialization + propagation;
            self.boundary.record(
                stream,
                now.as_nanos(),
                encode_transfer(
                    queue.as_nanos() as i64,
                    arrival.as_nanos() as i64 - now.as_nanos() as i64,
                ),
            );
            (queue, serialization, arrival)
        };
        let busy_until = match direction {
            Direction::Uplink => &mut self.up_busy_until,
            Direction::Downlink => &mut self.down_busy_until,
        };
        *busy_until = now + queue + serialization;
        let stats = match direction {
            Direction::Uplink => &mut self.up,
            Direction::Downlink => &mut self.down,
        };
        stats.transfers += 1;
        stats.bytes += bytes;
        stats.queue_delay_ns += queue.as_nanos() as u64;
        stats.max_queue_delay_ns = stats.max_queue_delay_ns.max(queue.as_nanos() as u64);
        arrival
    }

    /// How long a transfer issued at `now` would wait before its first
    /// byte goes out — the direction's current queue depth in time.
    pub fn queue_delay(&self, direction: Direction, now: Time) -> Duration {
        let busy_until = match direction {
            Direction::Uplink => self.up_busy_until,
            Direction::Downlink => self.down_busy_until,
        };
        busy_until - now
    }

    /// Counters for one direction.
    pub fn stats(&self, direction: Direction) -> &DirectionStats {
        match direction {
            Direction::Uplink => &self.up,
            Direction::Downlink => &self.down,
        }
    }
}

impl Link for SharedLink {
    fn label(&self) -> &'static str {
        "shared"
    }

    fn deliver_at(&mut self, direction: Direction, now: Time, bytes: u64) -> Time {
        self.transfer(direction, now, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_link(bps: f64) -> SharedLink {
        SharedLink::new(LinkConfig {
            uplink_bps: bps,
            downlink_bps: bps,
            base_latency: Duration::from_millis(2),
            jitter_sigma: 0.0,
            seed: 0,
        })
    }

    #[test]
    fn idle_link_has_no_queueing() {
        let mut link = flat_link(8e6); // 1 MB/s
        let t = link.transfer(Direction::Uplink, Time::ZERO, 1000);
        // 1 kB at 1 MB/s = 1 ms serialization + 2 ms propagation.
        assert_eq!(t, Time::from_millis(3));
        assert_eq!(link.stats(Direction::Uplink).queue_delay_ns, 0);
    }

    #[test]
    fn concurrent_transfers_queue_fifo() {
        let mut link = flat_link(8e6);
        let first = link.transfer(Direction::Uplink, Time::ZERO, 1000);
        let second = link.transfer(Direction::Uplink, Time::ZERO, 1000);
        // Second transfer waits out the first's serialization.
        assert_eq!(second - first, Duration::from_millis(1));
        assert_eq!(
            link.stats(Direction::Uplink).queue_delay_ns,
            Duration::from_millis(1).as_nanos() as u64
        );
    }

    #[test]
    fn directions_do_not_contend_with_each_other() {
        let mut link = flat_link(8e6);
        link.transfer(Direction::Uplink, Time::ZERO, 100_000);
        let down = link.transfer(Direction::Downlink, Time::ZERO, 1000);
        assert_eq!(down, Time::from_millis(3), "downlink must not see uplink queueing");
    }

    #[test]
    fn queue_delay_drains_over_time() {
        let mut link = flat_link(8e6);
        link.transfer(Direction::Uplink, Time::ZERO, 8000); // 8 ms of serialization
        assert_eq!(link.queue_delay(Direction::Uplink, Time::ZERO), Duration::from_millis(8));
        assert_eq!(
            link.queue_delay(Direction::Uplink, Time::from_millis(5)),
            Duration::from_millis(3)
        );
        assert_eq!(link.queue_delay(Direction::Uplink, Time::from_millis(20)), Duration::ZERO);
    }

    #[test]
    fn infinite_bandwidth_degenerates_to_offload_link() {
        let p2p = OffloadLink::symmetric(Duration::from_millis(7));
        let mut link = SharedLink::new(LinkConfig::from_point_to_point(&p2p));
        // Back-to-back huge transfers all arrive after exactly the base
        // latency — OffloadLink semantics.
        for _ in 0..4 {
            let t = link.transfer(Direction::Uplink, Time::from_millis(1), 10_000_000);
            assert_eq!(t, Time::from_millis(8));
        }
        assert_eq!(link.stats(Direction::Uplink).queue_delay_ns, 0);
    }

    #[test]
    fn shared_link_speaks_the_unified_trait() {
        let mut link = SharedLink::new(LinkConfig::from_profile(LinkProfile::wifi(), 0));
        assert_eq!(Link::label(&link), "shared");
        // 25 kB at 200 Mbit/s = 1 ms serialization + 2 ms propagation.
        let t = link.deliver_at(Direction::Uplink, Time::ZERO, 25_000);
        assert_eq!(t, Time::from_millis(3));
    }

    #[test]
    fn outage_window_defers_uplink_but_not_downlink() {
        use illixr_core::fault::{FaultKind, FaultWindow};
        let plan = illixr_core::fault::FaultPlan::new(3).with_window(FaultWindow::new(
            FaultKind::LinkOutage,
            "uplink",
            Time::from_millis(5).as_nanos(),
            Time::from_millis(20).as_nanos(),
            1.0,
        ));
        let mut link = flat_link(8e6).with_fault_plan(Arc::new(plan));
        // Inside the outage: first byte leaves at 20 ms, +1 ms
        // serialization +2 ms propagation.
        let up = link.transfer(Direction::Uplink, Time::from_millis(10), 1000);
        assert_eq!(up, Time::from_millis(23));
        // The downlink target is unaffected.
        let down = link.transfer(Direction::Downlink, Time::from_millis(10), 1000);
        assert_eq!(down, Time::from_millis(13));
        // After the outage the uplink behaves nominally again.
        let late = link.transfer(Direction::Uplink, Time::from_millis(30), 1000);
        assert_eq!(late, Time::from_millis(33));
    }

    #[test]
    fn jitter_spike_scales_propagation() {
        use illixr_core::fault::{FaultKind, FaultWindow};
        let plan = illixr_core::fault::FaultPlan::new(4).with_window(FaultWindow::new(
            FaultKind::LinkJitterSpike,
            "downlink",
            0,
            Time::from_millis(100).as_nanos(),
            5.0,
        ));
        let mut link = flat_link(8e6).with_fault_plan(Arc::new(plan));
        // 1 ms serialization + 5 × 2 ms propagation.
        let t = link.transfer(Direction::Downlink, Time::ZERO, 1000);
        assert_eq!(t, Time::from_millis(11));
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let config =
            LinkConfig { jitter_sigma: 0.3, ..LinkConfig::from_profile(LinkProfile::wifi(), 9) };
        let mut a = SharedLink::new(config);
        let mut b = SharedLink::new(config);
        for i in 0..32 {
            let now = Time::from_millis(i * 3);
            assert_eq!(
                a.transfer(Direction::Downlink, now, 5000),
                b.transfer(Direction::Downlink, now, 5000)
            );
        }
    }
}
