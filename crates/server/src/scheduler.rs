//! Server-side batch scheduler for homogeneous offloaded work.
//!
//! Offloaded components arrive in homogeneous waves — N sessions each
//! ship a VIO update per camera period — so the server amortizes
//! per-invocation setup (cache warm-up, kernel launch, weight paging)
//! by batching the jobs that arrived in one server tick onto a single
//! worker: a batch of `k` jobs costs `setup + k × per_job` instead of
//! `k × (setup + per_job)`. Batches go to the earliest-free worker of a
//! fixed pool; when every worker is busy the batch queues, which is how
//! compute contention (as opposed to link contention) shows up in
//! motion-to-photon latency.
//!
//! Under sustained overload the earliest-free policy queues without
//! bound — every batch starts later than the previous one and pose
//! staleness grows monotonically. [`PlacementPolicy::DeadlineAware`]
//! instead bounds each batch by a completion deadline: jobs that cannot
//! finish inside the budget are *shed* (the session reprojects with its
//! last delivered pose — graceful degradation) rather than enqueued.

use std::time::Duration;

use illixr_core::Time;

/// How batches are placed onto the worker pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementPolicy {
    /// Earliest-free worker; under overload, batches queue unboundedly.
    EarliestFree,
    /// Earliest-free worker, but each batch is trimmed so it completes
    /// within `deadline` of its arrival; jobs that cannot make the
    /// deadline are shed and counted in
    /// [`SchedulerStats::shed_jobs`]. A stale pose now beats a fresh
    /// pose far too late — shed sessions fall back to reprojecting
    /// their previous pose instead of waiting on an unbounded queue.
    DeadlineAware {
        /// Completion budget measured from batch arrival.
        deadline: Duration,
    },
}

/// Worker-pool and batching parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Number of identical workers.
    pub workers: usize,
    /// Fixed cost to launch a batch, independent of its size.
    pub batch_setup: Duration,
    /// Marginal cost per job in a batch.
    pub per_job: Duration,
    /// Placement policy (see [`PlacementPolicy`]).
    pub placement: PlacementPolicy,
}

impl Default for SchedulerConfig {
    /// Two workers sized for VIO updates (paper Table IV: ~11 ms per
    /// update on a desktop; batching amortizes a 2 ms setup), placed
    /// earliest-free (the historical behaviour).
    fn default() -> Self {
        Self {
            workers: 2,
            batch_setup: Duration::from_millis(2),
            per_job: Duration::from_millis(11),
            placement: PlacementPolicy::EarliestFree,
        }
    }
}

/// Aggregate scheduler counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SchedulerStats {
    /// Batches launched.
    pub batches: u64,
    /// Jobs across all batches.
    pub jobs: u64,
    /// Largest single batch.
    pub max_batch: u64,
    /// Total worker-busy time, ns.
    pub busy_ns: u64,
    /// Sum of batch start delays (arrival → worker pickup), ns.
    pub wait_ns: u64,
    /// Jobs shed by deadline-aware placement (never scheduled).
    pub shed_jobs: u64,
}

impl SchedulerStats {
    /// Mean jobs per batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.jobs as f64 / self.batches as f64
        }
    }
}

/// Where one batch landed: the worker index and its execution window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPlacement {
    /// Index of the worker that ran the batch.
    pub worker: usize,
    /// When the worker picked the batch up (`>=` arrival).
    pub start: Time,
    /// Batch completion time.
    pub end: Time,
}

/// Result of a deadline-bounded placement: what ran and what was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedPlacement {
    /// Where the accepted jobs ran (`None` when everything was shed).
    pub placement: Option<BatchPlacement>,
    /// Jobs scheduled onto the worker.
    pub accepted: usize,
    /// Jobs shed because they could not finish inside the deadline.
    pub shed: usize,
}

/// The worker pool.
#[derive(Debug)]
pub struct BatchScheduler {
    config: SchedulerConfig,
    /// When each worker finishes its current assignment.
    free_at: Vec<Time>,
    stats: SchedulerStats,
}

impl BatchScheduler {
    /// Creates an idle pool.
    ///
    /// # Panics
    ///
    /// Panics when `config.workers` is zero.
    pub fn new(config: SchedulerConfig) -> Self {
        assert!(config.workers > 0, "scheduler needs at least one worker");
        Self { config, free_at: vec![Time::ZERO; config.workers], stats: SchedulerStats::default() }
    }

    /// The pool parameters.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Schedules `jobs` homogeneous jobs arriving at `now` as one batch
    /// on the earliest-free worker (lowest index on ties, so placement
    /// is deterministic) and returns the batch completion time. All
    /// jobs in the batch complete together.
    pub fn schedule_batch(&mut self, now: Time, jobs: usize) -> Time {
        self.schedule_batch_placed(now, jobs).end
    }

    /// [`BatchScheduler::schedule_batch`] exposing the full placement —
    /// which worker ran the batch and when it started — so callers can
    /// record per-worker execution spans.
    pub fn schedule_batch_placed(&mut self, now: Time, jobs: usize) -> BatchPlacement {
        assert!(jobs > 0, "cannot schedule an empty batch");
        let worker = self.earliest_free();
        let start = self.free_at[worker].max(now);
        let cost = self.config.batch_setup + self.config.per_job * jobs as u32;
        let end = start + cost;
        self.free_at[worker] = end;
        self.stats.batches += 1;
        self.stats.jobs += jobs as u64;
        self.stats.max_batch = self.stats.max_batch.max(jobs as u64);
        self.stats.busy_ns += cost.as_nanos() as u64;
        self.stats.wait_ns += (start - now).as_nanos() as u64;
        BatchPlacement { worker, start, end }
    }

    /// Places a batch under the configured [`PlacementPolicy`].
    ///
    /// With [`PlacementPolicy::EarliestFree`] this is exactly
    /// [`BatchScheduler::schedule_batch_placed`] (everything accepted).
    /// With [`PlacementPolicy::DeadlineAware`] the batch is trimmed to
    /// the largest prefix that completes by `now + deadline`; the
    /// remainder is shed. Completing exactly at the deadline counts as
    /// making it, mirroring the strict-miss convention in
    /// `illixr-sched`.
    pub fn schedule_batch_bounded(&mut self, now: Time, jobs: usize) -> BoundedPlacement {
        assert!(jobs > 0, "cannot schedule an empty batch");
        let accepted = match self.config.placement {
            PlacementPolicy::EarliestFree => jobs,
            PlacementPolicy::DeadlineAware { deadline } => {
                let worker = self.earliest_free();
                let start = self.free_at[worker].max(now);
                let latest = now.as_nanos().saturating_add(deadline.as_nanos() as u64);
                let head =
                    start.as_nanos().saturating_add(self.config.batch_setup.as_nanos() as u64);
                let per_job = (self.config.per_job.as_nanos() as u64).max(1);
                if head >= latest {
                    0
                } else {
                    (((latest - head) / per_job) as usize).min(jobs)
                }
            }
        };
        let shed = jobs - accepted;
        self.stats.shed_jobs += shed as u64;
        let placement = (accepted > 0).then(|| self.schedule_batch_placed(now, accepted));
        BoundedPlacement { placement, accepted, shed }
    }

    fn earliest_free(&self) -> usize {
        self.free_at
            .iter()
            .enumerate()
            .min_by_key(|(i, t)| (**t, *i))
            .map(|(i, _)| i)
            .expect("pool is non-empty")
    }

    /// Fraction of pool capacity used over a horizon.
    pub fn utilization(&self, horizon: Duration) -> f64 {
        if horizon.is_zero() {
            0.0
        } else {
            self.stats.busy_ns as f64 / (horizon.as_nanos() as f64 * self.config.workers as f64)
        }
    }

    /// Run counters.
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(workers: usize) -> BatchScheduler {
        BatchScheduler::new(SchedulerConfig {
            workers,
            batch_setup: Duration::from_millis(2),
            per_job: Duration::from_millis(10),
            placement: PlacementPolicy::EarliestFree,
        })
    }

    fn deadline_pool(workers: usize, deadline_ms: u64) -> BatchScheduler {
        BatchScheduler::new(SchedulerConfig {
            workers,
            batch_setup: Duration::from_millis(2),
            per_job: Duration::from_millis(10),
            placement: PlacementPolicy::DeadlineAware {
                deadline: Duration::from_millis(deadline_ms),
            },
        })
    }

    #[test]
    fn batching_amortizes_setup() {
        let mut s = pool(1);
        // One batch of 4: 2 + 4×10 = 42 ms, versus 4×12 unbatched.
        assert_eq!(s.schedule_batch(Time::ZERO, 4), Time::from_millis(42));
        assert_eq!(s.stats().mean_batch(), 4.0);
    }

    #[test]
    fn batches_spread_across_free_workers() {
        let mut s = pool(2);
        let a = s.schedule_batch(Time::ZERO, 1);
        let b = s.schedule_batch(Time::ZERO, 1);
        // Both 12 ms batches run concurrently on separate workers.
        assert_eq!(a, Time::from_millis(12));
        assert_eq!(b, Time::from_millis(12));
        // Third batch queues behind the earliest-free worker.
        let c = s.schedule_batch(Time::from_millis(1), 1);
        assert_eq!(c, Time::from_millis(24));
        assert_eq!(s.stats().wait_ns, Duration::from_millis(11).as_nanos() as u64);
    }

    #[test]
    fn utilization_counts_busy_time_across_pool() {
        let mut s = pool(2);
        s.schedule_batch(Time::ZERO, 1); // 12 ms busy
        let util = s.utilization(Duration::from_millis(12));
        assert!((util - 0.5).abs() < 1e-12, "one of two workers busy: {util}");
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batches_are_rejected() {
        pool(1).schedule_batch(Time::ZERO, 0);
    }

    #[test]
    fn earliest_free_accepts_everything_bounded() {
        let mut s = pool(1);
        let b = s.schedule_batch_bounded(Time::ZERO, 4);
        assert_eq!(b.accepted, 4);
        assert_eq!(b.shed, 0);
        assert_eq!(b.placement.unwrap().end, Time::from_millis(42));
        assert_eq!(s.stats().shed_jobs, 0);
    }

    #[test]
    fn deadline_aware_trims_to_what_fits() {
        // Budget 35 ms: setup 2 + k×10 ≤ 35 → k = 3 of 5 fit.
        let mut s = deadline_pool(1, 35);
        let b = s.schedule_batch_bounded(Time::ZERO, 5);
        assert_eq!(b.accepted, 3);
        assert_eq!(b.shed, 2);
        assert_eq!(b.placement.unwrap().end, Time::from_millis(32));
        assert_eq!(s.stats().shed_jobs, 2);
    }

    #[test]
    fn deadline_aware_bounds_the_queue_under_overload() {
        // Offered load is 2 jobs / 10 ms against capacity ~1 job / 10 ms.
        // Earliest-free queues without bound; deadline-aware sheds and
        // keeps completion within the 25 ms budget of each arrival.
        let mut unbounded = pool(1);
        let mut bounded = deadline_pool(1, 25);
        let mut worst_unbounded = Duration::ZERO;
        let mut worst_bounded = Duration::ZERO;
        for step in 0..50u64 {
            let now = Time::from_millis(10 * step);
            let end = unbounded.schedule_batch(now, 2);
            worst_unbounded = worst_unbounded.max(end - now);
            let b = bounded.schedule_batch_bounded(now, 2);
            if let Some(p) = b.placement {
                worst_bounded = worst_bounded.max(p.end - now);
            }
        }
        assert!(
            worst_unbounded > Duration::from_millis(500),
            "earliest-free backlog should grow without bound: {worst_unbounded:?}"
        );
        assert!(
            worst_bounded <= Duration::from_millis(25),
            "deadline-aware completion must stay inside the budget: {worst_bounded:?}"
        );
        assert!(bounded.stats().shed_jobs > 0, "overload must shed");
        assert_eq!(unbounded.stats().shed_jobs, 0);
    }

    #[test]
    fn exact_deadline_completion_is_accepted() {
        // setup 2 + 2×10 = 22 ms == budget → both jobs accepted (strict
        // miss convention: end == deadline is a hit).
        let mut s = deadline_pool(1, 22);
        let b = s.schedule_batch_bounded(Time::ZERO, 2);
        assert_eq!(b.accepted, 2);
        assert_eq!(b.shed, 0);
    }
}
