//! Server-side batch scheduler for homogeneous offloaded work.
//!
//! Offloaded components arrive in homogeneous waves — N sessions each
//! ship a VIO update per camera period — so the server amortizes
//! per-invocation setup (cache warm-up, kernel launch, weight paging)
//! by batching the jobs that arrived in one server tick onto a single
//! worker: a batch of `k` jobs costs `setup + k × per_job` instead of
//! `k × (setup + per_job)`. Batches go to the earliest-free worker of a
//! fixed pool; when every worker is busy the batch queues, which is how
//! compute contention (as opposed to link contention) shows up in
//! motion-to-photon latency.

use std::time::Duration;

use illixr_core::Time;

/// Worker-pool and batching parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Number of identical workers.
    pub workers: usize,
    /// Fixed cost to launch a batch, independent of its size.
    pub batch_setup: Duration,
    /// Marginal cost per job in a batch.
    pub per_job: Duration,
}

impl Default for SchedulerConfig {
    /// Two workers sized for VIO updates (paper Table IV: ~11 ms per
    /// update on a desktop; batching amortizes a 2 ms setup).
    fn default() -> Self {
        Self {
            workers: 2,
            batch_setup: Duration::from_millis(2),
            per_job: Duration::from_millis(11),
        }
    }
}

/// Aggregate scheduler counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SchedulerStats {
    /// Batches launched.
    pub batches: u64,
    /// Jobs across all batches.
    pub jobs: u64,
    /// Largest single batch.
    pub max_batch: u64,
    /// Total worker-busy time, ns.
    pub busy_ns: u64,
    /// Sum of batch start delays (arrival → worker pickup), ns.
    pub wait_ns: u64,
}

impl SchedulerStats {
    /// Mean jobs per batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.jobs as f64 / self.batches as f64
        }
    }
}

/// Where one batch landed: the worker index and its execution window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPlacement {
    /// Index of the worker that ran the batch.
    pub worker: usize,
    /// When the worker picked the batch up (`>=` arrival).
    pub start: Time,
    /// Batch completion time.
    pub end: Time,
}

/// The worker pool.
#[derive(Debug)]
pub struct BatchScheduler {
    config: SchedulerConfig,
    /// When each worker finishes its current assignment.
    free_at: Vec<Time>,
    stats: SchedulerStats,
}

impl BatchScheduler {
    /// Creates an idle pool.
    ///
    /// # Panics
    ///
    /// Panics when `config.workers` is zero.
    pub fn new(config: SchedulerConfig) -> Self {
        assert!(config.workers > 0, "scheduler needs at least one worker");
        Self { config, free_at: vec![Time::ZERO; config.workers], stats: SchedulerStats::default() }
    }

    /// The pool parameters.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Schedules `jobs` homogeneous jobs arriving at `now` as one batch
    /// on the earliest-free worker (lowest index on ties, so placement
    /// is deterministic) and returns the batch completion time. All
    /// jobs in the batch complete together.
    pub fn schedule_batch(&mut self, now: Time, jobs: usize) -> Time {
        self.schedule_batch_placed(now, jobs).end
    }

    /// [`BatchScheduler::schedule_batch`] exposing the full placement —
    /// which worker ran the batch and when it started — so callers can
    /// record per-worker execution spans.
    pub fn schedule_batch_placed(&mut self, now: Time, jobs: usize) -> BatchPlacement {
        assert!(jobs > 0, "cannot schedule an empty batch");
        let worker = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(i, t)| (**t, *i))
            .map(|(i, _)| i)
            .expect("pool is non-empty");
        let start = self.free_at[worker].max(now);
        let cost = self.config.batch_setup + self.config.per_job * jobs as u32;
        let end = start + cost;
        self.free_at[worker] = end;
        self.stats.batches += 1;
        self.stats.jobs += jobs as u64;
        self.stats.max_batch = self.stats.max_batch.max(jobs as u64);
        self.stats.busy_ns += cost.as_nanos() as u64;
        self.stats.wait_ns += (start - now).as_nanos() as u64;
        BatchPlacement { worker, start, end }
    }

    /// Fraction of pool capacity used over a horizon.
    pub fn utilization(&self, horizon: Duration) -> f64 {
        if horizon.is_zero() {
            0.0
        } else {
            self.stats.busy_ns as f64 / (horizon.as_nanos() as f64 * self.config.workers as f64)
        }
    }

    /// Run counters.
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(workers: usize) -> BatchScheduler {
        BatchScheduler::new(SchedulerConfig {
            workers,
            batch_setup: Duration::from_millis(2),
            per_job: Duration::from_millis(10),
        })
    }

    #[test]
    fn batching_amortizes_setup() {
        let mut s = pool(1);
        // One batch of 4: 2 + 4×10 = 42 ms, versus 4×12 unbatched.
        assert_eq!(s.schedule_batch(Time::ZERO, 4), Time::from_millis(42));
        assert_eq!(s.stats().mean_batch(), 4.0);
    }

    #[test]
    fn batches_spread_across_free_workers() {
        let mut s = pool(2);
        let a = s.schedule_batch(Time::ZERO, 1);
        let b = s.schedule_batch(Time::ZERO, 1);
        // Both 12 ms batches run concurrently on separate workers.
        assert_eq!(a, Time::from_millis(12));
        assert_eq!(b, Time::from_millis(12));
        // Third batch queues behind the earliest-free worker.
        let c = s.schedule_batch(Time::from_millis(1), 1);
        assert_eq!(c, Time::from_millis(24));
        assert_eq!(s.stats().wait_ns, Duration::from_millis(11).as_nanos() as u64);
    }

    #[test]
    fn utilization_counts_busy_time_across_pool() {
        let mut s = pool(2);
        s.schedule_batch(Time::ZERO, 1); // 12 ms busy
        let util = s.utilization(Duration::from_millis(12));
        assert!((util - 0.5).abs() < 1e-12, "one of two workers busy: {util}");
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batches_are_rejected() {
        pool(1).schedule_batch(Time::ZERO, 0);
    }
}
