//! The multi-session edge server: configuration, builder API and run
//! reports. The discrete-event core lives in the private `engine`
//! module.
//!
//! Three shared resources create the contention the scaling benchmark
//! measures:
//!
//! * the [`SharedLink`] — every VIO job, pose, render request and
//!   frame token serializes through finite uplink/downlink bandwidth;
//! * the [`BatchScheduler`] — VIO updates from all sessions are batched
//!   per server tick onto a fixed worker pool;
//! * the renderer — one cloud render per request, modeled as a fixed
//!   cost (the pool contention story lives in the VIO scheduler).
//!
//! Everything runs under one simulated timeline. Events are ordered by
//! `(time, kind priority, session, insertion seq)`, so two runs with
//! identical configs produce bit-identical reports — regardless of the
//! shard or worker count the engine executes them with.
//!
//! Entry point:
//!
//! ```
//! use std::time::Duration;
//! use illixr_server::ServerBuilder;
//!
//! let report = ServerBuilder::new()
//!     .sessions(4)
//!     .duration(Duration::from_secs(1))
//!     .build()
//!     .run();
//! for session in report.sessions() {
//!     let mtp = session.mtp();
//!     println!("s{}: mean mtp {:?}", session.id(), mtp.mean);
//! }
//! ```

use std::sync::Arc;
use std::time::Duration;

use illixr_core::boundary::{fan_out_transform, Trace, TraceSource};
use illixr_core::sched::{Migration, PlacementConfig, PlacementPlan, Side};
use illixr_core::TopicStats;

use crate::admission::{AdmissionConfig, AdmissionRecord};
use crate::engine::Engine;
use crate::link::{DirectionStats, LinkConfig};
use crate::scheduler::{SchedulerConfig, SchedulerStats};
use crate::session::{SessionConfig, SessionState, SessionTelemetry};

#[allow(unused_imports)] // doc links
use crate::link::SharedLink;
#[allow(unused_imports)] // doc links
use crate::scheduler::BatchScheduler;

/// Full server-run parameters. Built through [`ServerBuilder`]; the
/// fields stay public so benches can sweep them via
/// [`ServerBuilder::tune`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The sessions to run (index = session id).
    pub sessions: Vec<SessionConfig>,
    /// Shared link parameters.
    pub link: LinkConfig,
    /// VIO worker-pool parameters.
    pub scheduler: SchedulerConfig,
    /// Admission thresholds.
    pub admission: AdmissionConfig,
    /// Simulated run length.
    pub duration: Duration,
    /// Server tick period: pending VIO jobs are batched every tick.
    pub server_tick: Duration,
    /// Cloud render cost per requested frame.
    pub render_cost: Duration,
    /// Client-side warp cost per displayed frame.
    pub warp_cost: Duration,
    /// Uplink payload per VIO job (stereo frame + IMU window).
    pub job_bytes: u64,
    /// Downlink payload per pose estimate.
    pub pose_bytes: u64,
    /// Uplink payload per render request.
    pub request_bytes: u64,
    /// Downlink payload per rendered frame token.
    pub token_bytes: u64,
    /// Run the real per-session MSCKF server-side. When false the
    /// server returns ground-truth poses — the cheap mode unit tests
    /// and admission studies use.
    pub real_vio: bool,
    /// Record spans, flow events and histograms for the whole run
    /// ([`ServerReport::tracer`] / [`ServerReport::metrics`]). All
    /// timestamps come from the simulated timeline, so traces are
    /// bit-identical across identically-configured runs.
    pub trace: bool,
    /// Fault-injection plan, consulted by the shared link (targets
    /// `"uplink"` / `"downlink"`) and every session's sensor pipeline
    /// (quiet — a guaranteed no-op — by default).
    pub fault_plan: Arc<illixr_core::fault::FaultPlan>,
    /// Record every session's sensor boundary (scoped `s{id}/`) and the
    /// shared link's transfer delays into
    /// [`ServerReport::boundary_trace`].
    pub record_boundary: bool,
    /// Drive the run from a recorded trace instead of live generators —
    /// identity replay or trace-driven load generation (see
    /// [`ReplayLoad`]).
    pub replay: Option<ReplayLoad>,
    /// Session-state shards in the engine. Results are invariant to
    /// this (the shard-invariance golden test pins it); it only tunes
    /// parallel granularity.
    pub shards: usize,
    /// Engine worker threads for wide batches. `0` = auto (available
    /// parallelism). Results are invariant to this too.
    pub workers: usize,
    /// Capacity of each shard's emission ring. Small capacities
    /// exercise backpressure (workers block, never drop).
    pub ring_capacity: usize,
    /// Where the `"vio"` cut runs. The server's preferred side is
    /// [`Side::Edge`] — offloaded VIO *is* this server's reason to
    /// exist — so the default plan pins `vio` to the edge and is
    /// byte-identical to the pre-placement behaviour. Pin it to
    /// [`Side::Device`] to run VIO on-headset (jobs never touch the
    /// link), or declare it adaptive to let the controller migrate at
    /// decision epochs.
    pub placement: PlacementPlan,
    /// Controller tuning for an adaptive `vio` cut.
    pub placement_config: PlacementConfig,
    /// On-device VIO cost per camera frame when the cut runs
    /// device-side (headset silicon is slower than the pool's edge
    /// workers, but pays no link delay).
    pub device_vio_cost: Duration,
    /// Crash-consistent session failover: how the engine recovers
    /// sessions whose fault domain (shard worker) crashed. The default
    /// ([`FailoverPolicy::Disabled`], no checkpoints) is bit-identical
    /// to the historical engine.
    pub failover: FailoverConfig,
}

/// How the engine recovers sessions lost to a crashed fault domain
/// (a shard worker killed by a `FaultKind::WorkerCrash` window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverPolicy {
    /// No recovery: a crashed shard quarantines its sessions for the
    /// rest of the run (ghost bookkeeping keeps the rest of the engine's
    /// contention identical, but the sessions display nothing).
    Disabled,
    /// Reboot the session from scratch after
    /// [`FailoverConfig::restart_delay`]: fresh state anchored to
    /// ground truth at the recovery instant, telemetry lost.
    RestartOnly,
    /// Restore the last `ILXC` checkpoint, then replay the journaled
    /// boundary events since the snapshot tag — the recovered session
    /// rejoins the live run with the exact state an uncrashed session
    /// would have.
    CheckpointCatchup,
}

impl FailoverPolicy {
    /// Stable lowercase label for reports and config hashing.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Disabled => "disabled",
            Self::RestartOnly => "restart",
            Self::CheckpointCatchup => "catchup",
        }
    }
}

/// Failover tuning (see [`FailoverPolicy`]). Constructed through
/// [`ServerBuilder::failover`] / [`ServerBuilder::checkpoint_every`];
/// the defaults model a ~250 ms process reboot versus a ~5 ms snapshot
/// restore plus ~2 µs per replayed boundary event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverConfig {
    /// Recovery policy for crashed fault domains.
    pub policy: FailoverPolicy,
    /// Checkpoint epoch: attached sessions snapshot at the first
    /// `ServerBatch` boundary at or after each multiple of this period.
    /// `None` disables checkpointing (restart-only recovery at best).
    pub checkpoint_every: Option<Duration>,
    /// Simulated cost of rebooting a session from scratch.
    pub restart_delay: Duration,
    /// Simulated cost of decoding + restoring one checkpoint.
    pub restore_cost: Duration,
    /// Simulated cost per journaled event replayed during catch-up.
    pub catchup_per_event: Duration,
    /// Restarts a session may consume before it is quarantined for
    /// good (checkpoint restores are not budgeted).
    pub restart_budget: u32,
    /// Test-only: corrupt every stored checkpoint so recovery exercises
    /// the typed decode-error fallback path.
    #[doc(hidden)]
    pub corrupt_checkpoints: bool,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        Self {
            policy: FailoverPolicy::Disabled,
            checkpoint_every: None,
            restart_delay: Duration::from_millis(250),
            restore_cost: Duration::from_millis(5),
            catchup_per_event: Duration::from_micros(2),
            restart_budget: 3,
            corrupt_checkpoints: false,
        }
    }
}

/// One crash-and-recovery episode of a session's fault domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverIncident {
    /// The session lost to the crash.
    pub session: u32,
    /// When its shard's worker crashed.
    pub crashed_at: illixr_core::Time,
    /// When the session rejoined the live run (`None`: never — policy
    /// disabled, restart budget exhausted, or the run ended first).
    pub recovered_at: Option<illixr_core::Time>,
    /// How it recovered: `"catchup"`, `"restart"`,
    /// `"restart_fallback"` (corrupt/missing checkpoint) or `"none"`.
    pub mode: &'static str,
    /// Display opportunities (vsyncs) that elapsed while quarantined.
    pub lost_frames: u64,
}

/// Trace-driven load: every session replays the same recorded session,
/// each through its own deterministic [`fan_out_transform`] (phase
/// jitter + time dilation), so one recording fans out into N distinct
/// but reproducible synthetic clients.
#[derive(Debug, Clone)]
pub struct ReplayLoad {
    /// The recording to replay.
    pub trace: Arc<Trace>,
    /// Stream prefix of the recorded session inside the trace (`"s0/"`
    /// for a trace recorded by a one-session server run).
    pub prefix: String,
    /// Per-session phase offset is uniform in `[0, max_jitter)`.
    pub max_jitter: Duration,
    /// Per-session time dilation is uniform in
    /// `[1 − spread, 1 + spread)`, clamped to `[0, 0.5]`.
    pub dilation_spread: f64,
    /// Seed of the fan-out transform family.
    pub seed: u64,
    /// Also replay the shared link's recorded transfer delays. True for
    /// identity replay; false for load generation, where the link must
    /// run live so N sessions actually contend.
    pub replay_link: bool,
}

impl ReplayLoad {
    /// Identity replay: one session, no transform, link replayed — the
    /// configuration whose report is bit-identical to the recording's.
    pub fn identity(trace: Arc<Trace>) -> Self {
        Self {
            trace,
            prefix: "s0/".to_owned(),
            max_jitter: Duration::ZERO,
            dilation_spread: 0.0,
            seed: 0,
            replay_link: true,
        }
    }

    /// Load generation: fan the recording out across live-link sessions
    /// with per-session phase jitter and time dilation. Works from a
    /// one-session server recording (streams under `s0/`) or a
    /// single-client integrated-run recording (unprefixed streams) —
    /// the prefix is detected from the trace.
    pub fn fan_out(trace: Arc<Trace>, seed: u64, max_jitter: Duration, spread: f64) -> Self {
        let prefix =
            if trace.stream("s0/camera").is_some() { "s0/".to_owned() } else { String::new() };
        Self { trace, prefix, max_jitter, dilation_spread: spread, seed, replay_link: false }
    }

    /// The boundary source for synthetic session `index`: independent
    /// cursors over the shared trace, the session's own transform.
    pub fn session_source(&self, index: usize) -> TraceSource {
        TraceSource::with_transform(
            self.trace.clone(),
            fan_out_transform(
                self.seed,
                index,
                self.max_jitter.as_nanos() as u64,
                self.dilation_spread,
            ),
        )
        .scoped(&self.prefix)
    }
}

impl ServerConfig {
    /// The behaviour-preserving default plan: `vio` pinned to the edge.
    pub fn default_placement() -> PlacementPlan {
        PlacementPlan::pinned("vio", Side::Edge)
    }

    /// True when this run's placement is the edge-pinned default (no
    /// device path, no controller — the pre-placement code path).
    pub fn placement_is_default(&self) -> bool {
        self.placement == Self::default_placement()
    }

    /// True when failover is fully default (no policy, no checkpoints —
    /// the pre-failover code path).
    pub fn failover_is_default(&self) -> bool {
        self.failover == FailoverConfig::default()
    }

    /// FNV-1a hash of the recording-relevant configuration, stamped
    /// into trace headers for provenance. Engine knobs (shards,
    /// workers, ring capacity) are deliberately excluded: results are
    /// invariant to them, so they must not fork trace identities.
    pub fn config_hash(&self) -> u64 {
        let mut repr = format!(
            "{}|{}|{:?}|{:?}|{:?}|{}|{}|{}|{}|{}|{}",
            self.sessions.len(),
            self.duration.as_nanos(),
            self.link,
            self.scheduler,
            self.admission,
            self.job_bytes,
            self.pose_bytes,
            self.request_bytes,
            self.token_bytes,
            self.real_vio,
            self.fault_plan.is_quiet(),
        );
        // Folded in only when non-default so pre-placement trace
        // fixtures keep their identities.
        if !self.placement_is_default() {
            repr.push_str(&format!("|place={}", self.placement.label()));
        }
        // Same discipline for failover: default runs keep their
        // pre-failover trace identities.
        if !self.failover_is_default() {
            let f = &self.failover;
            repr.push_str(&format!(
                "|failover={},{:?},{},{},{},{},{}",
                f.policy.label(),
                f.checkpoint_every.map(|d| d.as_nanos()),
                f.restart_delay.as_nanos(),
                f.restore_cost.as_nanos(),
                f.catchup_per_event.as_nanos(),
                f.restart_budget,
                f.corrupt_checkpoints,
            ));
        }
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in repr.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

/// Builder for a [`Server`]: the only way to construct a run.
///
/// Defaults model `n` sessions with distinct seeds on a Wi-Fi-class
/// link, paper Table III/IV constants elsewhere. QVGA stereo ≈ 150 kB
/// per job for the frame pair plus IMU window; tokens model a
/// compressed eye-buffer pair (~50 kB), so one session takes ~12% of
/// the downlink and ~8% of the VIO pool — the server saturates around
/// ten clients, which is where admission control starts degrading and
/// rejecting.
#[derive(Debug, Clone)]
pub struct ServerBuilder {
    config: ServerConfig,
}

impl Default for ServerBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerBuilder {
    /// A builder with zero sessions and a ten-second horizon.
    pub fn new() -> Self {
        Self {
            config: ServerConfig {
                sessions: Vec::new(),
                link: LinkConfig::from_profile(illixr_core::link::LinkProfile::wifi(), 0),
                scheduler: SchedulerConfig::default(),
                admission: AdmissionConfig::default(),
                duration: Duration::from_secs(10),
                server_tick: Duration::from_millis(4),
                render_cost: Duration::from_millis(5),
                warp_cost: Duration::from_millis(1),
                job_bytes: 150_000,
                pose_bytes: 64,
                request_bytes: 64,
                token_bytes: 50_000,
                real_vio: false,
                trace: false,
                fault_plan: Arc::new(illixr_core::fault::FaultPlan::quiet()),
                record_boundary: false,
                replay: None,
                shards: 8,
                workers: 0,
                ring_capacity: 256,
                placement: ServerConfig::default_placement(),
                placement_config: PlacementConfig::default(),
                device_vio_cost: Duration::from_millis(12),
                failover: FailoverConfig::default(),
            },
        }
    }

    /// `n` sessions with the standard distinct seeds (`11 + 2i`).
    /// Replaces any previously configured session list.
    pub fn sessions(mut self, n: usize) -> Self {
        self.config.sessions = (0..n).map(|i| SessionConfig::new(11 + 2 * i as u64)).collect();
        self
    }

    /// Edits one session's config in place (seed, connect/disconnect
    /// times, rates). Call after [`ServerBuilder::sessions`].
    pub fn configure_session(mut self, index: usize, f: impl FnOnce(&mut SessionConfig)) -> Self {
        f(&mut self.config.sessions[index]);
        self
    }

    /// Simulated run length.
    pub fn duration(mut self, duration: Duration) -> Self {
        self.config.duration = duration;
        self
    }

    /// Enables span/flow tracing and histogram metrics for this run.
    pub fn trace(mut self, enabled: bool) -> Self {
        self.config.trace = enabled;
        self
    }

    /// Injects faults according to `plan` (shared link and all
    /// sessions).
    pub fn fault_plan(mut self, plan: illixr_core::fault::FaultPlan) -> Self {
        self.config.fault_plan = Arc::new(plan);
        self
    }

    /// Records the determinism boundary into
    /// [`ServerReport::boundary_trace`].
    pub fn record_boundary(mut self, enabled: bool) -> Self {
        self.config.record_boundary = enabled;
        self
    }

    /// Drives the run from `load` instead of live sensor generators.
    pub fn replay(mut self, load: ReplayLoad) -> Self {
        self.config.replay = Some(load);
        self
    }

    /// Session-state shard count (results are invariant to it).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Engine worker threads (`0` = auto; results are invariant).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Per-shard emission-ring capacity (small values exercise
    /// backpressure; results are invariant).
    pub fn ring_capacity(mut self, capacity: usize) -> Self {
        self.config.ring_capacity = capacity;
        self
    }

    /// Runs the real per-session MSCKF server-side.
    pub fn real_vio(mut self, enabled: bool) -> Self {
        self.config.real_vio = enabled;
        self
    }

    /// Shared-link parameters.
    pub fn link(mut self, link: LinkConfig) -> Self {
        self.config.link = link;
        self
    }

    /// Where the `"vio"` cut runs (see [`ServerConfig::placement`]).
    /// The default pins it to the edge, the server's historical
    /// behaviour.
    pub fn placement(mut self, plan: PlacementPlan) -> Self {
        self.config.placement = plan;
        self
    }

    /// Sets the full failover configuration (see [`FailoverConfig`]).
    pub fn failover(mut self, failover: FailoverConfig) -> Self {
        self.config.failover = failover;
        self
    }

    /// Checkpoints every attached session's state at the first server
    /// tick at or after each multiple of `period`, and (if no policy
    /// was chosen yet) selects [`FailoverPolicy::CheckpointCatchup`].
    pub fn checkpoint_every(mut self, period: Duration) -> Self {
        self.config.failover.checkpoint_every = Some(period);
        if self.config.failover.policy == FailoverPolicy::Disabled {
            self.config.failover.policy = FailoverPolicy::CheckpointCatchup;
        }
        self
    }

    /// VIO worker-pool parameters.
    pub fn scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.config.scheduler = scheduler;
        self
    }

    /// Admission thresholds.
    pub fn admission(mut self, admission: AdmissionConfig) -> Self {
        self.config.admission = admission;
        self
    }

    /// Escape hatch for everything else: direct access to the full
    /// [`ServerConfig`] (payload sizes, tick period, render cost…).
    pub fn tune(mut self, f: impl FnOnce(&mut ServerConfig)) -> Self {
        f(&mut self.config);
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> Server {
        Server { config: self.config }
    }
}

/// A configured server run. Consume with [`Server::run`].
pub struct Server {
    config: ServerConfig,
}

impl Server {
    /// The finished configuration (inspection/diagnostics).
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Runs the simulation to completion and reports.
    pub fn run(self) -> ServerReport {
        Engine::new(self.config).run()
    }
}

/// Per-session results.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Session id.
    pub id: u32,
    /// Final lifecycle state.
    pub state: SessionState,
    /// Run counters.
    pub telemetry: SessionTelemetry,
    /// Fast-pose error against ground truth at end of run, meters.
    pub pose_error: Option<f64>,
    /// The session's switchboard counters.
    pub stream_stats: Vec<TopicStats>,
}

/// Per-session motion-to-photon digest, read through
/// [`SessionHandle::mtp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MtpStats {
    /// Mean MTP across the session's displayed frames.
    pub mean: Duration,
    /// Nearest-rank 99th-percentile MTP.
    pub p99: Duration,
    /// Frames displayed.
    pub displayed: u64,
    /// Vsyncs with nothing new to show.
    pub dropped: u64,
}

impl MtpStats {
    /// Dropped fraction of this session's vsyncs.
    pub fn drop_rate(&self) -> f64 {
        let total = self.displayed + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }
}

/// A typed view over one session's results — the read side of the
/// builder API. Obtained from [`ServerReport::session`] or
/// [`ServerReport::sessions`].
#[derive(Debug, Clone, Copy)]
pub struct SessionHandle<'a> {
    report: &'a SessionReport,
}

impl<'a> SessionHandle<'a> {
    /// Session id.
    pub fn id(&self) -> u32 {
        self.report.id
    }

    /// Final lifecycle state.
    pub fn state(&self) -> SessionState {
        self.report.state
    }

    /// Run counters.
    pub fn telemetry(&self) -> &'a SessionTelemetry {
        &self.report.telemetry
    }

    /// Fast-pose error against ground truth at end of run, meters.
    pub fn pose_error(&self) -> Option<f64> {
        self.report.pose_error
    }

    /// The session's switchboard counters.
    pub fn stream_stats(&self) -> &'a [TopicStats] {
        &self.report.stream_stats
    }

    /// The session's motion-to-photon digest.
    pub fn mtp(&self) -> MtpStats {
        MtpStats {
            mean: self.report.telemetry.mean_mtp(),
            p99: self.report.telemetry.p99_mtp(),
            displayed: self.report.telemetry.frames_displayed,
            dropped: self.report.telemetry.frames_dropped,
        }
    }
}

/// Aggregate results for one server run.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Per-session results, by id. Read through [`ServerReport::sessions`].
    pub(crate) session_reports: Vec<SessionReport>,
    /// Every admission decision.
    pub admission: Vec<AdmissionRecord>,
    /// Shared-link uplink counters.
    pub uplink: DirectionStats,
    /// Shared-link downlink counters.
    pub downlink: DirectionStats,
    /// VIO pool counters.
    pub scheduler: SchedulerStats,
    /// VIO pool utilization over the run.
    pub pool_utilization: f64,
    /// Simulated run length.
    pub duration: Duration,
    /// Span/flow recorder (disabled unless tracing was enabled).
    /// Per-session tracks are scoped `s{id}/…`; server-side tracks are
    /// `vio_pool/w{i}`, `render/s{id}` and the `link` counters.
    pub tracer: illixr_core::obs::Tracer,
    /// Histogram/gauge registry (disabled unless tracing was enabled):
    /// `mtp.*` per-stage decompositions, `vio_pool.*` batch latencies
    /// and per-topic switchboard gauges.
    pub metrics: illixr_core::obs::Metrics,
    /// Determinism-boundary recording (present when boundary recording
    /// was enabled).
    pub boundary_trace: Option<Trace>,
    /// The run's placement plan label (`"vio=edge"` by default).
    pub placement_label: String,
    /// Side the `vio` cut ended the run on.
    pub final_side: Side,
    /// Every placement migration the controller decided (or replayed),
    /// in decision order. Empty for pinned plans.
    pub migrations: Vec<Migration>,
    /// Every fault-domain crash and its recovery outcome, in crash
    /// order. Empty unless worker-crash faults fired.
    pub failover_incidents: Vec<FailoverIncident>,
}

impl ServerReport {
    /// Typed per-session views, in id order.
    pub fn sessions(&self) -> impl Iterator<Item = SessionHandle<'_>> {
        self.session_reports.iter().map(|report| SessionHandle { report })
    }

    /// The view for one session id.
    pub fn session(&self, id: u32) -> Option<SessionHandle<'_>> {
        self.session_reports.get(id as usize).map(|report| SessionHandle { report })
    }

    /// Number of sessions in the run (admitted or not).
    pub fn session_count(&self) -> usize {
        self.session_reports.len()
    }

    /// Sessions that ended in a given state.
    pub fn count(&self, state: SessionState) -> usize {
        self.session_reports.iter().filter(|s| s.state == state).count()
    }

    /// Sessions admission accepted or degraded (i.e. that actually ran).
    pub fn admitted(&self) -> usize {
        self.session_reports.len() - self.count(SessionState::Rejected)
    }

    /// Sessions admitted at degraded rates. Counted from the admission
    /// log — final lifecycle states all collapse to `Disconnected` at
    /// the end of the run.
    pub fn degraded(&self) -> usize {
        self.admission
            .iter()
            .filter(|a| a.decision == crate::admission::AdmissionDecision::Degrade)
            .count()
    }

    /// Mean MTP across every displayed frame of every session.
    pub fn mean_mtp(&self) -> Duration {
        let (sum, n) = self.session_reports.iter().fold((0u64, 0u64), |(s, n), r| {
            (s + r.telemetry.mtp_ns.iter().sum::<u64>(), n + r.telemetry.mtp_ns.len() as u64)
        });
        Duration::from_nanos(sum.checked_div(n).unwrap_or(0))
    }

    /// 99th-percentile MTP across all sessions (nearest-rank).
    pub fn p99_mtp(&self) -> Duration {
        let mut all: Vec<u64> =
            self.session_reports.iter().flat_map(|r| r.telemetry.mtp_ns.iter().copied()).collect();
        if all.is_empty() {
            return Duration::ZERO;
        }
        all.sort_unstable();
        let rank = ((all.len() as f64 * 0.99).ceil() as usize).clamp(1, all.len());
        Duration::from_nanos(all[rank - 1])
    }

    /// Dropped fraction of vsyncs across all admitted sessions.
    pub fn drop_rate(&self) -> f64 {
        let (dropped, total) = self.session_reports.iter().fold((0u64, 0u64), |(d, t), r| {
            (
                d + r.telemetry.frames_dropped,
                t + r.telemetry.frames_dropped + r.telemetry.frames_displayed,
            )
        });
        if total == 0 {
            0.0
        } else {
            dropped as f64 / total as f64
        }
    }

    /// Aggregate delivered throughput: displayed frames across all
    /// sessions per simulated second — the scaling sweep's headline
    /// alongside per-session p99 MTP.
    pub fn aggregate_fps(&self) -> f64 {
        let displayed: u64 =
            self.session_reports.iter().map(|s| s.telemetry.frames_displayed).sum();
        displayed as f64 / self.duration.as_secs_f64()
    }

    /// Deterministic text rendering: identical runs produce identical
    /// strings, which is what the scaling benchmark's bit-identity
    /// check compares.
    pub fn summary_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sessions={} admitted={} degraded={} rejected={}\n",
            self.session_reports.len(),
            self.admitted(),
            self.degraded(),
            self.count(SessionState::Rejected),
        ));
        out.push_str(&format!(
            "mtp_mean_ms={:.3} mtp_p99_ms={:.3} drop_rate={:.4}\n",
            self.mean_mtp().as_secs_f64() * 1e3,
            self.p99_mtp().as_secs_f64() * 1e3,
            self.drop_rate(),
        ));
        out.push_str(&format!(
            "uplink: transfers={} bytes={} mean_queue_ms={:.3} max_queue_ms={:.3}\n",
            self.uplink.transfers,
            self.uplink.bytes,
            self.uplink.mean_queue_delay().as_secs_f64() * 1e3,
            self.uplink.max_queue_delay_ns as f64 / 1e6,
        ));
        out.push_str(&format!(
            "downlink: transfers={} bytes={} mean_queue_ms={:.3} max_queue_ms={:.3}\n",
            self.downlink.transfers,
            self.downlink.bytes,
            self.downlink.mean_queue_delay().as_secs_f64() * 1e3,
            self.downlink.max_queue_delay_ns as f64 / 1e6,
        ));
        out.push_str(&format!(
            "vio_pool: batches={} jobs={} mean_batch={:.2} max_batch={} utilization={:.4} shed={}\n",
            self.scheduler.batches,
            self.scheduler.jobs,
            self.scheduler.mean_batch(),
            self.scheduler.max_batch,
            self.pool_utilization,
            self.scheduler.shed_jobs,
        ));
        // Placement lines appear only for non-default plans, so every
        // pre-placement golden summary stays byte-identical.
        if self.placement_label != ServerConfig::default_placement().label() {
            out.push_str(&format!(
                "placement={} final={} migrations={}\n",
                self.placement_label,
                self.final_side.label(),
                self.migrations.len(),
            ));
            for m in &self.migrations {
                out.push_str(&format!(
                    "migration t={:.3}s {}->{}\n",
                    m.at_ns as f64 / 1e9,
                    m.from.label(),
                    m.to.label(),
                ));
            }
        }
        // Failover lines appear only when a fault domain actually
        // crashed, so every pre-failover golden summary stays
        // byte-identical.
        if !self.failover_incidents.is_empty() {
            let recovered =
                self.failover_incidents.iter().filter(|i| i.recovered_at.is_some()).count();
            let lost: u64 = self.failover_incidents.iter().map(|i| i.lost_frames).sum();
            out.push_str(&format!(
                "failover: incidents={} recovered={} lost_frames={}\n",
                self.failover_incidents.len(),
                recovered,
                lost,
            ));
            for i in &self.failover_incidents {
                match i.recovered_at {
                    Some(r) => out.push_str(&format!(
                        "failover session={} crashed_t={:.3}s recovered_t={:.3}s mode={} \
                         lost_frames={}\n",
                        i.session,
                        i.crashed_at.as_secs_f64(),
                        r.as_secs_f64(),
                        i.mode,
                        i.lost_frames,
                    )),
                    None => out.push_str(&format!(
                        "failover session={} crashed_t={:.3}s recovered_t=never mode={} \
                         lost_frames={}\n",
                        i.session,
                        i.crashed_at.as_secs_f64(),
                        i.mode,
                        i.lost_frames,
                    )),
                }
            }
        }
        for a in &self.admission {
            out.push_str(&format!(
                "admission t={:.3}s session={} load={:.3} offered={:.3} -> {}\n",
                a.time.as_secs_f64(),
                a.session,
                a.load_before,
                a.offered,
                a.decision.label(),
            ));
        }
        for s in &self.session_reports {
            out.push_str(&format!(
                "session {} [{}]: mtp_mean_ms={:.3} mtp_p99_ms={:.3} displayed={} dropped={} \
                 jobs={} poses={} tokens={}\n",
                s.id,
                s.state.label(),
                s.telemetry.mean_mtp().as_secs_f64() * 1e3,
                s.telemetry.p99_mtp().as_secs_f64() * 1e3,
                s.telemetry.frames_displayed,
                s.telemetry.frames_dropped,
                s.telemetry.vio_jobs,
                s.telemetry.poses_received,
                s.telemetry.tokens_received,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerStats;
    use illixr_core::Time;

    fn quick(n: usize) -> ServerBuilder {
        ServerBuilder::new().sessions(n).duration(Duration::from_secs(2))
    }

    #[test]
    fn zero_sessions_is_an_empty_run() {
        let report = quick(0).build().run();
        assert_eq!(report.session_count(), 0);
        assert!(report.sessions().next().is_none());
        assert!(report.admission.is_empty());
        assert_eq!(report.mean_mtp(), Duration::ZERO);
        assert_eq!(report.drop_rate(), 0.0);
    }

    #[test]
    fn single_session_runs_the_full_pipeline() {
        let report = quick(1).build().run();
        assert_eq!(report.admitted(), 1);
        let s = report.session(0).expect("session 0 exists");
        assert_eq!(s.state(), SessionState::Disconnected);
        // 2 s at 15 Hz minus the first period: ~29 jobs.
        assert!(s.telemetry().vio_jobs >= 25, "jobs {}", s.telemetry().vio_jobs);
        assert!(s.telemetry().poses_received >= 20, "poses {}", s.telemetry().poses_received);
        let mtp = s.mtp();
        assert!(mtp.displayed >= 100, "displayed {}", mtp.displayed);
        assert!(mtp.mean > Duration::ZERO);
        // Ideal VIO + prompt anchoring: the fast pose stays accurate.
        assert!(s.pose_error().unwrap() < 0.5, "pose error {:?}", s.pose_error());
        // Stream stats cover the client pipeline.
        assert!(s.stream_stats().iter().any(|t| t.name == "imu" && t.seq > 900));
    }

    #[test]
    fn rejection_at_saturation() {
        let report = quick(4)
            .tune(|c| {
                // Thresholds so tight only the first session fits.
                c.admission = AdmissionConfig { degrade_threshold: 0.1, reject_threshold: 0.1 };
                c.scheduler.workers = 1;
                c.scheduler.per_job = Duration::from_millis(7); // 15 Hz × 7 ms ≈ 0.105 load
            })
            .build()
            .run();
        assert_eq!(report.count(SessionState::Rejected), 3);
        assert_eq!(report.admitted(), 1);
        // Rejected sessions produced no traffic.
        for s in report.sessions().skip(1) {
            assert_eq!(s.telemetry().vio_jobs, 0);
            let mtp = s.mtp();
            assert_eq!(mtp.displayed + mtp.dropped, 0);
        }
    }

    #[test]
    fn degraded_sessions_run_at_half_rate() {
        let report = quick(2)
            .tune(|c| {
                // First session accepted, second lands in the degrade band.
                c.admission = AdmissionConfig { degrade_threshold: 0.13, reject_threshold: 0.5 };
                c.scheduler.workers = 1;
                c.scheduler.per_job = Duration::from_millis(7);
            })
            .build()
            .run();
        assert_eq!(report.session(0).unwrap().state(), SessionState::Disconnected);
        assert_eq!(report.count(SessionState::Rejected), 0);
        let full = report.session(0).unwrap().telemetry().vio_jobs;
        let half = report.session(1).unwrap().telemetry().vio_jobs;
        assert!(
            half * 2 <= full + 2 && half * 2 + 4 >= full,
            "degraded session should send about half the jobs: {half} vs {full}"
        );
        assert_eq!(report.admission[1].decision, crate::admission::AdmissionDecision::Degrade);
    }

    #[test]
    fn load_weight_feeds_admission_control() {
        // Two identical sessions fit; doubling the second session's
        // feature load weight pushes its projected load past the reject
        // threshold.
        let base = || {
            quick(2).tune(|c| {
                c.admission = AdmissionConfig { degrade_threshold: 0.25, reject_threshold: 0.2 };
                c.scheduler.workers = 1;
                c.scheduler.per_job = Duration::from_millis(7); // ≈ 0.105 load each
            })
        };
        let plain = base().build().run();
        assert_eq!(plain.count(SessionState::Rejected), 0);
        let weighted = base().configure_session(1, |s| s.load_weight = 2.0).build().run();
        assert_eq!(weighted.count(SessionState::Rejected), 1);
        assert_eq!(weighted.session(0).unwrap().state(), SessionState::Disconnected);
        // The weight changes admission inputs only — the accepted
        // session's traffic is untouched.
        assert_eq!(
            plain.session(0).unwrap().telemetry().vio_jobs,
            weighted.session(0).unwrap().telemetry().vio_jobs
        );
    }

    #[test]
    fn displayed_frames_log_matches_mtp_samples() {
        let report = quick(1).build().run();
        let t = report.session(0).unwrap().telemetry();
        assert_eq!(t.displayed_frames.len(), t.mtp_ns.len());
        assert!(!t.displayed_frames.is_empty());
        // Display times are strictly increasing vsyncs with finite poses.
        for pair in t.displayed_frames.windows(2) {
            assert!(pair[1].time > pair[0].time);
        }
        assert!(t.displayed_frames.iter().all(|f| f.pose.is_finite()));
    }

    #[test]
    fn mid_run_disconnect_stops_traffic() {
        let report = quick(1)
            .configure_session(0, |s| s.disconnect_at = Some(Time::from_millis(500)))
            .build()
            .run();
        let s = report.session(0).unwrap();
        assert_eq!(s.state(), SessionState::Disconnected);
        // Only the first half-second of vsyncs happened: ≤ 60 of 240.
        let mtp = s.mtp();
        let vsyncs = mtp.displayed + mtp.dropped;
        assert!(vsyncs <= 61, "vsyncs after disconnect: {vsyncs}");
        assert!(s.telemetry().vio_jobs <= 8);
    }

    #[test]
    fn staggered_connect_joins_late() {
        let report =
            quick(2).configure_session(1, |s| s.connect_at = Time::from_millis(1000)).build().run();
        let early = report.session(0).unwrap().telemetry().vio_jobs;
        let late = report.session(1).unwrap().telemetry().vio_jobs;
        assert!(late < early, "late joiner sends fewer jobs: {late} vs {early}");
        assert!(late >= 10, "late joiner still runs its second half: {late}");
        assert_eq!(report.admission[1].time, Time::from_millis(1000));
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        let a = quick(3).build().run().summary_text();
        let b = quick(3).build().run().summary_text();
        assert_eq!(a, b);
    }

    #[test]
    fn reports_are_invariant_to_shard_count() {
        // The FNV shard map only places state; it must never leak into
        // results. One shard serializes everything; seven is coprime
        // with every stride the batch loop sees.
        let run = |shards| quick(6).shards(shards).build().run().summary_text();
        let one = run(1);
        assert_eq!(one, run(4));
        assert_eq!(one, run(7));
    }

    #[test]
    fn reports_are_invariant_to_worker_count_and_ring_capacity() {
        // Forcing workers=4 with a tiny ring exercises the threaded
        // fan-out path and ring backpressure; the report must match the
        // inline path bit-for-bit.
        let inline = quick(8)
            .tune(|c| {
                c.admission.degrade_threshold = 10.0;
                c.admission.reject_threshold = 10.0;
            })
            .workers(1)
            .build()
            .run()
            .summary_text();
        let threaded = quick(8)
            .tune(|c| {
                c.admission.degrade_threshold = 10.0;
                c.admission.reject_threshold = 10.0;
            })
            .workers(4)
            .ring_capacity(2)
            .build()
            .run()
            .summary_text();
        assert_eq!(inline, threaded);
    }

    #[test]
    fn recorded_server_run_replays_bit_identically() {
        let recorded = quick(1).record_boundary(true).build().run();
        let trace = recorded.boundary_trace.clone().expect("recording enabled");
        assert!(trace.record_count() > 0, "boundary saw traffic");

        let replayed = quick(1)
            .record_boundary(true)
            .replay(ReplayLoad::identity(Arc::new(trace.clone())))
            // Different session seed: replay must not depend on it.
            .configure_session(0, |s| s.seed ^= 0xABCD)
            .build()
            .run();

        assert_eq!(
            recorded.summary_text(),
            replayed.summary_text(),
            "replayed report diverged from the recording"
        );
        let rerec = replayed.boundary_trace.expect("re-recording enabled");
        assert_eq!(rerec.encode(), trace.encode(), "re-recorded trace not byte-identical");
    }

    #[test]
    fn fan_out_replay_is_deterministic_and_phase_shifted() {
        let recorded = quick(1).record_boundary(true).build().run();
        let trace = Arc::new(recorded.boundary_trace.expect("recording enabled"));

        let load = ReplayLoad::fan_out(trace, 42, Duration::from_millis(40), 0.05);
        let run = || {
            quick(4)
                .tune(|c| {
                    c.admission.degrade_threshold = 10.0; // admit everyone
                    c.admission.reject_threshold = 10.0;
                })
                .replay(load.clone())
                .build()
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.summary_text(), b.summary_text(), "fan-out reruns diverged");
        // Every synthetic session actually produced traffic.
        for s in a.sessions() {
            assert!(
                s.telemetry().vio_jobs > 10,
                "session {} jobs {}",
                s.id(),
                s.telemetry().vio_jobs
            );
            assert!(s.mtp().displayed > 0, "session {} displayed 0", s.id());
        }
        // Session 0 replays at identity; the jittered sessions lag it.
        let j0 = a.session(0).unwrap().telemetry().vio_jobs;
        let m0 = a.session(0).unwrap().mtp().mean;
        assert!(
            a.sessions().skip(1).any(|s| s.telemetry().vio_jobs != j0)
                || a.sessions().skip(1).any(|s| s.mtp().mean != m0),
            "transforms should differentiate the sessions"
        );
    }

    #[test]
    fn deadline_aware_placement_sheds_under_pool_overload() {
        // A single slow worker vs eight sessions: the earliest-free
        // pool queues unboundedly, so batch completion latency keeps
        // growing; the deadline-aware pool sheds jobs and keeps every
        // placed batch inside the budget.
        let slow_pool = |placement| crate::scheduler::SchedulerConfig {
            workers: 1,
            batch_setup: Duration::from_millis(2),
            per_job: Duration::from_millis(11),
            placement,
        };
        let base = |placement| {
            quick(8).tune(move |c| {
                c.admission.degrade_threshold = 10.0; // isolate the pool
                c.admission.reject_threshold = 10.0;
                c.scheduler = slow_pool(placement);
            })
        };
        let free = base(crate::scheduler::PlacementPolicy::EarliestFree).build().run();
        let capped = base(crate::scheduler::PlacementPolicy::DeadlineAware {
            deadline: Duration::from_millis(60),
        })
        .build()
        .run();
        assert_eq!(free.scheduler.shed_jobs, 0);
        assert!(capped.scheduler.shed_jobs > 0, "overloaded pool must shed");
        // The point of shedding: batch pickup delay stays bounded by
        // the deadline instead of growing with the backlog.
        let mean_wait = |s: &SchedulerStats| s.wait_ns as f64 / s.batches.max(1) as f64;
        let free_wait = mean_wait(&free.scheduler);
        let capped_wait = mean_wait(&capped.scheduler);
        assert!(
            free_wait > Duration::from_millis(100).as_nanos() as f64,
            "earliest-free backlog should dominate: {free_wait} ns"
        );
        assert!(
            capped_wait < Duration::from_millis(60).as_nanos() as f64,
            "deadline-aware pickup delay must stay inside the budget: {capped_wait} ns"
        );
    }

    #[test]
    fn device_pinned_placement_bypasses_the_link() {
        let edge = quick(1).build().run();
        let device = quick(1).placement(PlacementPlan::pinned("vio", Side::Device)).build().run();
        // VIO jobs no longer cross the uplink — only render requests do.
        assert!(
            device.uplink.transfers < edge.uplink.transfers,
            "device placement must shed uplink jobs: {} vs {}",
            device.uplink.transfers,
            edge.uplink.transfers
        );
        let s = device.session(0).unwrap();
        assert!(s.telemetry().poses_received >= 20, "on-device VIO still produces poses");
        // A device-pinned plan is all-local by definition, and that is
        // the label the summary carries.
        assert!(device.summary_text().contains("placement=all_local final=device migrations=0"));
        // The default-placement summary carries no placement lines.
        assert!(!edge.summary_text().contains("placement="));
    }

    #[test]
    fn adaptive_placement_migrates_under_uplink_outage_and_recovers() {
        use illixr_core::fault::{FaultKind, FaultPlan, FaultWindow};
        let outage = || {
            FaultPlan::new(7).with_window(FaultWindow::new(
                FaultKind::LinkOutage,
                "uplink",
                Time::from_millis(500).as_nanos(),
                Time::from_millis(1000).as_nanos(),
                1.0,
            ))
        };
        let run = || {
            ServerBuilder::new()
                .sessions(1)
                .duration(Duration::from_secs(3))
                .placement(PlacementPlan::adaptive("vio", Side::Edge))
                .fault_plan(outage())
                .build()
                .run()
        };
        let report = run();
        assert_eq!(report.migrations.len(), 2, "one escalation, one restore: {:?}", {
            &report.migrations
        });
        let away = report.migrations[0];
        let back = report.migrations[1];
        assert_eq!((away.from, away.to), (Side::Edge, Side::Device));
        assert_eq!((back.from, back.to), (Side::Device, Side::Edge));
        // The restore lands within the controller's recovery budget of
        // the outage clearing.
        let budget = PlacementConfig::default().recovery_budget_ns();
        let outage_end = Time::from_millis(1000).as_nanos();
        assert!(
            back.at_ns <= outage_end + budget,
            "restore at {} ns blew the {} ns budget past the outage end",
            back.at_ns,
            budget
        );
        assert_eq!(report.final_side, Side::Edge);
        // Same-seed rerun reproduces the decisions bit-for-bit.
        assert_eq!(report.summary_text(), run().summary_text());

        // A quiet plan migrates nothing.
        let quiet = ServerBuilder::new()
            .sessions(1)
            .duration(Duration::from_secs(3))
            .placement(PlacementPlan::adaptive("vio", Side::Edge))
            .build()
            .run();
        assert!(quiet.migrations.is_empty(), "quiet fault plan must not migrate");
    }

    #[test]
    fn contention_grows_mtp_with_session_count() {
        let narrow = |n: usize| {
            quick(n).tune(|c| {
                c.link.downlink_bps = 60e6; // tight enough that 6 sessions queue
            })
        };
        let one = narrow(1).build().run();
        let many = narrow(6)
            .tune(|c| {
                c.admission.degrade_threshold = 10.0; // no degradation: isolate queueing
                c.admission.reject_threshold = 10.0;
            })
            .build()
            .run();
        assert!(
            many.mean_mtp() > one.mean_mtp(),
            "contention must raise MTP: {:?} vs {:?}",
            many.mean_mtp(),
            one.mean_mtp()
        );
        assert!(many.downlink.mean_queue_delay() > one.downlink.mean_queue_delay());
    }
}
