//! The multi-session edge server: a deterministic discrete-event loop
//! coupling N client sessions to shared infrastructure.
//!
//! Three shared resources create the contention the scaling benchmark
//! measures:
//!
//! * the [`SharedLink`] — every VIO job, pose, render request and
//!   frame token serializes through finite uplink/downlink bandwidth;
//! * the [`BatchScheduler`] — VIO updates from all sessions are batched
//!   per server tick onto a fixed worker pool;
//! * the renderer — one cloud render per request, modeled as a fixed
//!   cost (the pool contention story lives in the VIO scheduler).
//!
//! Everything runs under one simulated clock. Events are ordered by
//! `(time, kind priority, session, insertion seq)`, so two runs with
//! identical configs produce bit-identical reports — the determinism
//! the ISSUE's acceptance test checks.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Duration;

use illixr_core::boundary::{fan_out_transform, Boundary, Trace, TraceRecorder, TraceSource};
use illixr_core::{SimClock, Time, TopicStats};
use illixr_sensors::camera::PinholeCamera;
use illixr_sensors::types::PoseEstimate;
use illixr_vio::integrator::ImuState;
use illixr_vio::msckf::{Msckf, VioConfig};

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionRecord};
use crate::link::{Direction, DirectionStats, LinkConfig, SharedLink};
use crate::scheduler::{BatchScheduler, SchedulerConfig, SchedulerStats};
use crate::session::{
    ClientSession, RenderRequest, RenderToken, SessionConfig, SessionState, SessionTelemetry,
    VioJob,
};

/// Full server-run parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The sessions to run (index = session id).
    pub sessions: Vec<SessionConfig>,
    /// Shared link parameters.
    pub link: LinkConfig,
    /// VIO worker-pool parameters.
    pub scheduler: SchedulerConfig,
    /// Admission thresholds.
    pub admission: AdmissionConfig,
    /// Simulated run length.
    pub duration: Duration,
    /// Server tick period: pending VIO jobs are batched every tick.
    pub server_tick: Duration,
    /// Cloud render cost per requested frame.
    pub render_cost: Duration,
    /// Client-side warp cost per displayed frame.
    pub warp_cost: Duration,
    /// Uplink payload per VIO job (stereo frame + IMU window).
    pub job_bytes: u64,
    /// Downlink payload per pose estimate.
    pub pose_bytes: u64,
    /// Uplink payload per render request.
    pub request_bytes: u64,
    /// Downlink payload per rendered frame token.
    pub token_bytes: u64,
    /// Run the real per-session MSCKF server-side. When false the
    /// server returns ground-truth poses — the cheap mode unit tests
    /// and admission studies use.
    pub real_vio: bool,
    /// Record spans, flow events and histograms for the whole run
    /// ([`ServerReport::tracer`] / [`ServerReport::metrics`]). All
    /// timestamps come from the shared simulated clock, so traces are
    /// bit-identical across identically-configured runs.
    pub trace: bool,
    /// Fault-injection plan, consulted by the shared link (targets
    /// `"uplink"` / `"downlink"`) and every session's sensor pipeline
    /// (quiet — a guaranteed no-op — by default).
    pub fault_plan: Arc<illixr_core::fault::FaultPlan>,
    /// Record every session's sensor boundary (scoped `s{id}/`) and the
    /// shared link's transfer delays into
    /// [`ServerReport::boundary_trace`].
    pub record_boundary: bool,
    /// Drive the run from a recorded trace instead of live generators —
    /// identity replay or trace-driven load generation (see
    /// [`ReplayLoad`]).
    pub replay: Option<ReplayLoad>,
}

/// Trace-driven load: every session replays the same recorded session,
/// each through its own deterministic [`fan_out_transform`] (phase
/// jitter + time dilation), so one recording fans out into N distinct
/// but reproducible synthetic clients.
#[derive(Debug, Clone)]
pub struct ReplayLoad {
    /// The recording to replay.
    pub trace: Arc<Trace>,
    /// Stream prefix of the recorded session inside the trace (`"s0/"`
    /// for a trace recorded by a one-session server run).
    pub prefix: String,
    /// Per-session phase offset is uniform in `[0, max_jitter)`.
    pub max_jitter: Duration,
    /// Per-session time dilation is uniform in
    /// `[1 − spread, 1 + spread)`, clamped to `[0, 0.5]`.
    pub dilation_spread: f64,
    /// Seed of the fan-out transform family.
    pub seed: u64,
    /// Also replay the shared link's recorded transfer delays. True for
    /// identity replay; false for load generation, where the link must
    /// run live so N sessions actually contend.
    pub replay_link: bool,
}

impl ReplayLoad {
    /// Identity replay: one session, no transform, link replayed — the
    /// configuration whose report is bit-identical to the recording's.
    pub fn identity(trace: Arc<Trace>) -> Self {
        Self {
            trace,
            prefix: "s0/".to_owned(),
            max_jitter: Duration::ZERO,
            dilation_spread: 0.0,
            seed: 0,
            replay_link: true,
        }
    }

    /// Load generation: fan the recording out across live-link sessions
    /// with per-session phase jitter and time dilation. Works from a
    /// one-session server recording (streams under `s0/`) or a
    /// single-client integrated-run recording (unprefixed streams) —
    /// the prefix is detected from the trace.
    pub fn fan_out(trace: Arc<Trace>, seed: u64, max_jitter: Duration, spread: f64) -> Self {
        let prefix =
            if trace.stream("s0/camera").is_some() { "s0/".to_owned() } else { String::new() };
        Self { trace, prefix, max_jitter, dilation_spread: spread, seed, replay_link: false }
    }

    /// The boundary source for synthetic session `index`: independent
    /// cursors over the shared trace, the session's own transform.
    pub fn session_source(&self, index: usize) -> TraceSource {
        TraceSource::with_transform(
            self.trace.clone(),
            fan_out_transform(
                self.seed,
                index,
                self.max_jitter.as_nanos() as u64,
                self.dilation_spread,
            ),
        )
        .scoped(&self.prefix)
    }
}

impl ServerConfig {
    /// `n` sessions with distinct seeds on a Wi-Fi-class link, paper
    /// Table III/IV constants elsewhere. QVGA stereo ≈ 150 kB per job
    /// for the frame pair plus IMU window; tokens model a compressed
    /// eye-buffer pair (~50 kB), so one session takes ~12% of the
    /// downlink and ~8% of the VIO pool — the server saturates around
    /// ten clients, which is where admission control starts degrading
    /// and rejecting.
    pub fn new(n: usize, duration: Duration) -> Self {
        Self {
            sessions: (0..n).map(|i| SessionConfig::new(11 + 2 * i as u64)).collect(),
            link: LinkConfig::wifi(),
            scheduler: SchedulerConfig::default(),
            admission: AdmissionConfig::default(),
            duration,
            server_tick: Duration::from_millis(4),
            render_cost: Duration::from_millis(5),
            warp_cost: Duration::from_millis(1),
            job_bytes: 150_000,
            pose_bytes: 64,
            request_bytes: 64,
            token_bytes: 50_000,
            real_vio: false,
            trace: false,
            fault_plan: Arc::new(illixr_core::fault::FaultPlan::quiet()),
            record_boundary: false,
            replay: None,
        }
    }

    /// Enables span/flow tracing and histogram metrics for this run.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Injects faults according to `plan` (shared link and all
    /// sessions).
    pub fn with_fault_plan(mut self, plan: illixr_core::fault::FaultPlan) -> Self {
        self.fault_plan = Arc::new(plan);
        self
    }

    /// Records the determinism boundary into
    /// [`ServerReport::boundary_trace`].
    pub fn with_boundary_record(mut self) -> Self {
        self.record_boundary = true;
        self
    }

    /// Drives the run from `load` instead of live sensor generators.
    pub fn with_replay(mut self, load: ReplayLoad) -> Self {
        self.replay = Some(load);
        self
    }

    /// FNV-1a hash of the recording-relevant configuration, stamped
    /// into trace headers for provenance.
    pub fn config_hash(&self) -> u64 {
        let repr = format!(
            "{}|{}|{:?}|{:?}|{:?}|{}|{}|{}|{}|{}|{}",
            self.sessions.len(),
            self.duration.as_nanos(),
            self.link,
            self.scheduler,
            self.admission,
            self.job_bytes,
            self.pose_bytes,
            self.request_bytes,
            self.token_bytes,
            self.real_vio,
            self.fault_plan.is_quiet(),
        );
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in repr.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

/// What happens at an event's fire time. Payload-carrying variants
/// compare by event key only.
enum EventKind {
    Connect,
    ImuTick { step: u64 },
    CameraTick { step: u64 },
    JobArrive(VioJob),
    ServerBatch,
    VioComplete(Vec<VioJob>),
    PoseDeliver(PoseEstimate),
    RequestArrive(RenderRequest),
    TokenRendered(RenderRequest),
    TokenDeliver(RenderToken),
    Vsync { index: u64 },
    Disconnect,
}

impl EventKind {
    /// Tie-break order at equal times. IMU before camera keeps frames
    /// covered by inertial data; deliveries before vsync let a frame
    /// arriving exactly on the deadline be shown.
    fn priority(&self) -> u8 {
        match self {
            Self::Connect => 0,
            Self::ImuTick { .. } => 1,
            Self::CameraTick { .. } => 2,
            Self::JobArrive(_) => 3,
            Self::ServerBatch => 4,
            Self::VioComplete(_) => 5,
            Self::PoseDeliver(_) => 6,
            Self::RequestArrive(_) => 7,
            Self::TokenRendered(_) => 8,
            Self::TokenDeliver(_) => 9,
            Self::Vsync { .. } => 10,
            Self::Disconnect => 11,
        }
    }
}

struct Event {
    time: Time,
    session: u32,
    /// Insertion counter: the final, total tie-break.
    seq: u64,
    kind: EventKind,
}

impl Event {
    fn key(&self) -> (Time, u8, u32, u64) {
        (self.time, self.kind.priority(), self.session, self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    /// Reversed so the `BinaryHeap` pops the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

/// Server-side state for one admitted session.
struct ServerSideSession {
    /// The per-session VIO filter (`None` in ground-truth mode).
    filter: Option<Msckf>,
}

/// Per-session results.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Session id.
    pub id: u32,
    /// Final lifecycle state.
    pub state: SessionState,
    /// Run counters.
    pub telemetry: SessionTelemetry,
    /// Fast-pose error against ground truth at end of run, meters.
    pub pose_error: Option<f64>,
    /// The session's switchboard counters.
    pub stream_stats: Vec<TopicStats>,
}

/// Aggregate results for one server run.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Per-session results, by id.
    pub sessions: Vec<SessionReport>,
    /// Every admission decision.
    pub admission: Vec<AdmissionRecord>,
    /// Shared-link uplink counters.
    pub uplink: DirectionStats,
    /// Shared-link downlink counters.
    pub downlink: DirectionStats,
    /// VIO pool counters.
    pub scheduler: SchedulerStats,
    /// VIO pool utilization over the run.
    pub pool_utilization: f64,
    /// Simulated run length.
    pub duration: Duration,
    /// Span/flow recorder (disabled unless [`ServerConfig::trace`]).
    /// Per-session tracks are scoped `s{id}/…`; server-side tracks are
    /// `vio_pool/w{i}`, `render/s{id}` and the `link` counters.
    pub tracer: illixr_core::obs::Tracer,
    /// Histogram/gauge registry (disabled unless
    /// [`ServerConfig::trace`]): `mtp.*` per-stage decompositions,
    /// `vio_pool.*` batch latencies and per-topic switchboard gauges.
    pub metrics: illixr_core::obs::Metrics,
    /// Determinism-boundary recording (present when
    /// [`ServerConfig::record_boundary`] was set).
    pub boundary_trace: Option<Trace>,
}

impl ServerReport {
    /// Sessions that ended in a given state.
    pub fn count(&self, state: SessionState) -> usize {
        self.sessions.iter().filter(|s| s.state == state).count()
    }

    /// Sessions admission accepted or degraded (i.e. that actually ran).
    pub fn admitted(&self) -> usize {
        self.sessions.len() - self.count(SessionState::Rejected)
    }

    /// Sessions admitted at degraded rates. Counted from the admission
    /// log — final lifecycle states all collapse to `Disconnected` at
    /// the end of the run.
    pub fn degraded(&self) -> usize {
        self.admission
            .iter()
            .filter(|a| a.decision == crate::admission::AdmissionDecision::Degrade)
            .count()
    }

    /// Mean MTP across every displayed frame of every session.
    pub fn mean_mtp(&self) -> Duration {
        let (sum, n) = self.sessions.iter().fold((0u64, 0u64), |(s, n), r| {
            (s + r.telemetry.mtp_ns.iter().sum::<u64>(), n + r.telemetry.mtp_ns.len() as u64)
        });
        Duration::from_nanos(sum.checked_div(n).unwrap_or(0))
    }

    /// 99th-percentile MTP across all sessions (nearest-rank).
    pub fn p99_mtp(&self) -> Duration {
        let mut all: Vec<u64> =
            self.sessions.iter().flat_map(|r| r.telemetry.mtp_ns.iter().copied()).collect();
        if all.is_empty() {
            return Duration::ZERO;
        }
        all.sort_unstable();
        let rank = ((all.len() as f64 * 0.99).ceil() as usize).clamp(1, all.len());
        Duration::from_nanos(all[rank - 1])
    }

    /// Dropped fraction of vsyncs across all admitted sessions.
    pub fn drop_rate(&self) -> f64 {
        let (dropped, total) = self.sessions.iter().fold((0u64, 0u64), |(d, t), r| {
            (
                d + r.telemetry.frames_dropped,
                t + r.telemetry.frames_dropped + r.telemetry.frames_displayed,
            )
        });
        if total == 0 {
            0.0
        } else {
            dropped as f64 / total as f64
        }
    }

    /// Deterministic text rendering: identical runs produce identical
    /// strings, which is what the scaling benchmark's bit-identity
    /// check compares.
    pub fn summary_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sessions={} admitted={} degraded={} rejected={}\n",
            self.sessions.len(),
            self.admitted(),
            self.degraded(),
            self.count(SessionState::Rejected),
        ));
        out.push_str(&format!(
            "mtp_mean_ms={:.3} mtp_p99_ms={:.3} drop_rate={:.4}\n",
            self.mean_mtp().as_secs_f64() * 1e3,
            self.p99_mtp().as_secs_f64() * 1e3,
            self.drop_rate(),
        ));
        out.push_str(&format!(
            "uplink: transfers={} bytes={} mean_queue_ms={:.3} max_queue_ms={:.3}\n",
            self.uplink.transfers,
            self.uplink.bytes,
            self.uplink.mean_queue_delay().as_secs_f64() * 1e3,
            self.uplink.max_queue_delay_ns as f64 / 1e6,
        ));
        out.push_str(&format!(
            "downlink: transfers={} bytes={} mean_queue_ms={:.3} max_queue_ms={:.3}\n",
            self.downlink.transfers,
            self.downlink.bytes,
            self.downlink.mean_queue_delay().as_secs_f64() * 1e3,
            self.downlink.max_queue_delay_ns as f64 / 1e6,
        ));
        out.push_str(&format!(
            "vio_pool: batches={} jobs={} mean_batch={:.2} max_batch={} utilization={:.4} shed={}\n",
            self.scheduler.batches,
            self.scheduler.jobs,
            self.scheduler.mean_batch(),
            self.scheduler.max_batch,
            self.pool_utilization,
            self.scheduler.shed_jobs,
        ));
        for a in &self.admission {
            out.push_str(&format!(
                "admission t={:.3}s session={} load={:.3} offered={:.3} -> {}\n",
                a.time.as_secs_f64(),
                a.session,
                a.load_before,
                a.offered,
                a.decision.label(),
            ));
        }
        for s in &self.sessions {
            out.push_str(&format!(
                "session {} [{}]: mtp_mean_ms={:.3} mtp_p99_ms={:.3} displayed={} dropped={} \
                 jobs={} poses={} tokens={}\n",
                s.id,
                s.state.label(),
                s.telemetry.mean_mtp().as_secs_f64() * 1e3,
                s.telemetry.p99_mtp().as_secs_f64() * 1e3,
                s.telemetry.frames_displayed,
                s.telemetry.frames_dropped,
                s.telemetry.vio_jobs,
                s.telemetry.poses_received,
                s.telemetry.tokens_received,
            ));
        }
        out
    }
}

/// The server runtime.
pub struct MultiSessionServer {
    config: ServerConfig,
    clock: SimClock,
    sessions: Vec<ClientSession>,
    server_side: Vec<ServerSideSession>,
    link: SharedLink,
    scheduler: BatchScheduler,
    admission: AdmissionController,
    heap: BinaryHeap<Event>,
    next_seq: u64,
    pending_jobs: Vec<VioJob>,
    tracer: illixr_core::obs::Tracer,
    metrics: illixr_core::obs::Metrics,
    recorder: Option<TraceRecorder>,
}

impl MultiSessionServer {
    /// Builds the server and its client sessions.
    pub fn new(config: ServerConfig) -> Self {
        let clock = SimClock::new();
        let clock_arc: Arc<SimClock> = Arc::new(clock.clone());
        let (tracer, metrics) = if config.trace {
            (illixr_core::obs::tracer_for(clock_arc.clone()), illixr_core::obs::Metrics::new())
        } else {
            (illixr_core::obs::Tracer::disabled(), illixr_core::obs::Metrics::disabled())
        };
        // The re-record of a replay inherits the replayed trace's
        // header, so the identity check can compare whole encodings.
        let recorder = config.record_boundary.then(|| match &config.replay {
            Some(r) => TraceRecorder::new(r.trace.header.seed, r.trace.header.config_hash),
            None => TraceRecorder::new(
                config.sessions.first().map(|s| s.seed).unwrap_or(0),
                config.config_hash(),
            ),
        });
        let sessions: Vec<ClientSession> = config
            .sessions
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let scoped_rec = recorder.as_ref().map(|rec| rec.scoped(&format!("s{i}/")));
                let boundary = match (&config.replay, scoped_rec) {
                    (Some(r), rec) => Boundary::replaying(r.session_source(i), rec),
                    (None, Some(rec)) => Boundary::recording(rec),
                    (None, None) => Boundary::off(),
                };
                ClientSession::with_obs(
                    i as u32,
                    *c,
                    clock_arc.clone(),
                    tracer.scoped(&format!("s{i}/")),
                    metrics.clone(),
                )
                .with_fault_plan(config.fault_plan.clone())
                .with_boundary(boundary)
            })
            .collect();
        let server_side = sessions.iter().map(|_| ServerSideSession { filter: None }).collect();
        let link_boundary = match &config.replay {
            Some(r) if r.replay_link => {
                Boundary::replaying(TraceSource::new(r.trace.clone()), recorder.clone())
            }
            _ => match &recorder {
                Some(rec) => Boundary::recording(rec.clone()),
                None => Boundary::off(),
            },
        };
        Self {
            link: SharedLink::new(config.link)
                .with_fault_plan(config.fault_plan.clone())
                .with_boundary(Arc::new(link_boundary)),
            scheduler: BatchScheduler::new(config.scheduler),
            admission: AdmissionController::new(config.admission),
            clock,
            sessions,
            server_side,
            heap: BinaryHeap::new(),
            next_seq: 0,
            pending_jobs: Vec::new(),
            tracer,
            metrics,
            recorder,
            config,
        }
    }

    fn push(&mut self, time: Time, session: u32, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, session, seq, kind });
    }

    /// The load one session adds at full rates: the largest share it
    /// takes of any shared resource — uplink bits, downlink bits, or
    /// VIO pool time per second.
    fn offered_load(&self, config: &SessionConfig) -> f64 {
        let c = &self.config;
        let up_bits = (c.job_bytes as f64 * config.camera_hz
            + c.request_bytes as f64 * config.display_hz)
            * 8.0;
        let down_bits = (c.pose_bytes as f64 * config.camera_hz
            + c.token_bytes as f64 * config.display_hz)
            * 8.0;
        let up = if c.link.uplink_bps.is_finite() { up_bits / c.link.uplink_bps } else { 0.0 };
        let down =
            if c.link.downlink_bps.is_finite() { down_bits / c.link.downlink_bps } else { 0.0 };
        let pool =
            c.scheduler.per_job.as_secs_f64() * config.camera_hz / c.scheduler.workers as f64;
        up.max(down).max(pool)
    }

    /// Load currently admitted sessions place on the server. Degraded
    /// sessions run camera and render streams at half rate.
    fn current_load(&self) -> f64 {
        self.sessions
            .iter()
            .map(|s| match s.state {
                SessionState::Running => self.offered_load(&s.config),
                SessionState::Degraded => self.offered_load(&s.config) * 0.5,
                _ => 0.0,
            })
            .sum()
    }

    /// Time of IMU step `k` for a session — the exact expression the
    /// IMU model uses, so event times and sample timestamps agree
    /// bit-for-bit.
    fn imu_step_time(config: &SessionConfig, step: u64) -> Time {
        Time::from_secs_f64(step as f64 / config.imu_hz)
    }

    fn vsync_time(config: &SessionConfig, index: u64) -> Time {
        let period = Duration::from_secs_f64(1.0 / config.display_hz).as_nanos() as u64;
        Time::from_nanos(index * period)
    }

    /// Last instant the session participates in.
    fn session_end(&self, id: u32) -> Time {
        let end = Time::ZERO + self.config.duration;
        match self.sessions[id as usize].config.disconnect_at {
            Some(t) if t < end => t,
            _ => end,
        }
    }

    /// Runs the simulation to completion and reports.
    pub fn run(mut self) -> ServerReport {
        let end = Time::ZERO + self.config.duration;
        // Seed the schedule: one connect per session, plus the global
        // batching tick.
        for (i, s) in self.config.sessions.clone().iter().enumerate() {
            let at = s.connect_at.min(end);
            self.push(at, i as u32, EventKind::Connect);
        }
        let tick = self.config.server_tick;
        let mut t = Time::ZERO + tick;
        while t <= end {
            self.push(t, u32::MAX, EventKind::ServerBatch);
            t += tick;
        }

        while let Some(event) = self.heap.pop() {
            if event.time > end {
                break;
            }
            self.clock.advance_to(event.time);
            self.dispatch(event);
        }

        // Flush any sessions still attached at the horizon.
        for s in &mut self.sessions {
            if matches!(s.state, SessionState::Running | SessionState::Degraded) {
                s.disconnect();
            }
        }

        let sessions: Vec<SessionReport> = self
            .sessions
            .iter()
            .map(|s| SessionReport {
                id: s.id,
                state: s.state,
                telemetry: s.telemetry.clone(),
                pose_error: s.pose_error(),
                stream_stats: s.stream_stats(),
            })
            .collect();
        if self.metrics.is_enabled() {
            for s in &self.sessions {
                s.export_topic_gauges();
            }
            let rejected =
                sessions.iter().filter(|s| s.state == SessionState::Rejected).count() as f64;
            self.metrics.set_gauge(
                "server.pool_utilization",
                self.scheduler.utilization(self.config.duration),
            );
            self.metrics.set_gauge("server.admitted", sessions.len() as f64 - rejected);
            self.metrics.set_gauge("server.shed_jobs", self.scheduler.stats().shed_jobs as f64);
        }
        ServerReport {
            sessions,
            admission: self.admission.records().to_vec(),
            uplink: *self.link.stats(Direction::Uplink),
            downlink: *self.link.stats(Direction::Downlink),
            scheduler: *self.scheduler.stats(),
            pool_utilization: self.scheduler.utilization(self.config.duration),
            duration: self.config.duration,
            tracer: self.tracer,
            metrics: self.metrics,
            boundary_trace: self.recorder.map(|rec| rec.snapshot()),
        }
    }

    fn dispatch(&mut self, event: Event) {
        let now = event.time;
        let id = event.session;
        match event.kind {
            EventKind::Connect => self.on_connect(now, id),
            EventKind::ImuTick { step } => {
                self.sessions[id as usize].on_imu_due();
                let next = Self::imu_step_time(&self.sessions[id as usize].config, step + 1);
                if next <= self.session_end(id) {
                    self.push(next, id, EventKind::ImuTick { step: step + 1 });
                }
            }
            EventKind::CameraTick { step } => {
                if let Some(job) = self.sessions[id as usize].on_camera_due() {
                    let arrive = self.link.transfer(Direction::Uplink, now, self.config.job_bytes);
                    self.record_link_counter(Direction::Uplink, now);
                    self.push(arrive, id, EventKind::JobArrive(job));
                }
                let stride = self.sessions[id as usize].camera_steps();
                let next = Self::imu_step_time(&self.sessions[id as usize].config, step + stride);
                if next <= self.session_end(id) {
                    self.push(next, id, EventKind::CameraTick { step: step + stride });
                }
            }
            EventKind::JobArrive(job) => self.pending_jobs.push(job),
            EventKind::ServerBatch => {
                if self.pending_jobs.is_empty() {
                    return;
                }
                let mut jobs = std::mem::take(&mut self.pending_jobs);
                let bounded = self.scheduler.schedule_batch_bounded(now, jobs.len());
                if bounded.shed > 0 {
                    // Shed the oldest jobs: their poses are the
                    // stalest, and the session falls back to its last
                    // delivered pose either way.
                    jobs.drain(..bounded.shed);
                    if self.tracer.is_enabled() {
                        self.tracer.counter(
                            "vio_pool",
                            "vio_pool.shed",
                            now.as_nanos(),
                            self.scheduler.stats().shed_jobs as f64,
                        );
                    }
                }
                let Some(placed) = bounded.placement else {
                    return;
                };
                if self.tracer.is_enabled() {
                    self.tracer.record_span_args(
                        &format!("vio_pool/w{}", placed.worker),
                        "vio_batch",
                        placed.start.as_nanos(),
                        placed.end.as_nanos(),
                        &[("jobs", format!("{}", jobs.len()))],
                    );
                }
                if self.metrics.is_enabled() {
                    self.metrics.record_ns(
                        "vio_pool.batch_latency",
                        placed.end.as_nanos().saturating_sub(now.as_nanos()),
                    );
                    self.metrics.record_ns(
                        "vio_pool.batch_wait",
                        placed.start.as_nanos().saturating_sub(now.as_nanos()),
                    );
                }
                self.push(placed.end, u32::MAX, EventKind::VioComplete(jobs));
            }
            EventKind::VioComplete(jobs) => {
                for job in jobs {
                    let sid = job.session;
                    if !self.session_is_attached(sid) {
                        continue;
                    }
                    let pose = self.run_vio(&job);
                    let arrive =
                        self.link.transfer(Direction::Downlink, now, self.config.pose_bytes);
                    self.record_link_counter(Direction::Downlink, now);
                    self.push(arrive, sid, EventKind::PoseDeliver(pose));
                }
            }
            EventKind::PoseDeliver(pose) => {
                if self.session_is_attached(id) {
                    self.sessions[id as usize].on_pose_delivered(pose);
                }
            }
            EventKind::RequestArrive(request) => {
                let done = now + self.config.render_cost;
                if self.tracer.is_enabled() {
                    self.tracer.record_span_args(
                        &format!("render/s{id}"),
                        "render",
                        now.as_nanos(),
                        done.as_nanos(),
                        &[("seq", format!("{}", request.seq))],
                    );
                }
                self.push(done, id, EventKind::TokenRendered(request));
            }
            EventKind::TokenRendered(request) => {
                let token = RenderToken {
                    seq: request.seq,
                    pose_timestamp: request.pose_timestamp,
                    requested_at: request.requested_at,
                };
                let arrive = self.link.transfer(Direction::Downlink, now, self.config.token_bytes);
                self.record_link_counter(Direction::Downlink, now);
                self.push(arrive, id, EventKind::TokenDeliver(token));
            }
            EventKind::TokenDeliver(token) => {
                if self.session_is_attached(id) {
                    self.sessions[id as usize].on_token_delivered(token);
                }
            }
            EventKind::Vsync { index } => {
                if let Some(request) =
                    self.sessions[id as usize].on_vsync(now, self.config.warp_cost)
                {
                    let arrive =
                        self.link.transfer(Direction::Uplink, now, self.config.request_bytes);
                    self.record_link_counter(Direction::Uplink, now);
                    self.push(arrive, id, EventKind::RequestArrive(request));
                }
                let next = Self::vsync_time(&self.sessions[id as usize].config, index + 1);
                if next <= self.session_end(id) {
                    self.push(next, id, EventKind::Vsync { index: index + 1 });
                }
            }
            EventKind::Disconnect => {
                if self.session_is_attached(id) {
                    self.sessions[id as usize].disconnect();
                }
            }
        }
    }

    /// Samples one direction's queue backlog (in milliseconds) onto the
    /// `link` counter track, right after a transfer was enqueued.
    fn record_link_counter(&self, direction: Direction, now: Time) {
        if !self.tracer.is_enabled() {
            return;
        }
        let name = match direction {
            Direction::Uplink => "uplink_queue_ms",
            Direction::Downlink => "downlink_queue_ms",
        };
        let backlog = self.link.queue_delay(direction, now);
        self.tracer.counter("link", name, now.as_nanos(), backlog.as_secs_f64() * 1e3);
    }

    fn session_is_attached(&self, id: u32) -> bool {
        matches!(self.sessions[id as usize].state, SessionState::Running | SessionState::Degraded)
    }

    fn on_connect(&mut self, now: Time, id: u32) {
        let offered = self.offered_load(&self.sessions[id as usize].config);
        let load_before = self.current_load();
        let decision = self.admission.admit(now, id, load_before, offered);
        let degraded = match decision {
            crate::admission::AdmissionDecision::Accept => false,
            crate::admission::AdmissionDecision::Degrade => true,
            crate::admission::AdmissionDecision::Reject => {
                self.sessions[id as usize].state = SessionState::Rejected;
                return;
            }
        };
        let first_step = self.sessions[id as usize].connect(now, degraded);
        let config = self.sessions[id as usize].config;
        // Server-side VIO starts from ground truth at the connect time,
        // the standard benchmark initialization.
        if self.config.real_vio {
            let trajectory = self.sessions[id as usize].trajectory();
            let initial = ImuState::from_pose(
                Self::imu_step_time(&config, first_step),
                trajectory.pose(now),
                trajectory.velocity(now),
            );
            self.server_side[id as usize].filter =
                Some(Msckf::new(VioConfig::fast(PinholeCamera::qvga()), initial));
        }
        let end = self.session_end(id);
        self.push(
            Self::imu_step_time(&config, first_step),
            id,
            EventKind::ImuTick { step: first_step },
        );
        // First camera frame one full period after connect, so its IMU
        // window is populated.
        let stride = self.sessions[id as usize].camera_steps();
        let cam_step = first_step + stride;
        if Self::imu_step_time(&config, cam_step) <= end {
            self.push(
                Self::imu_step_time(&config, cam_step),
                id,
                EventKind::CameraTick { step: cam_step },
            );
        }
        // First vsync strictly after connect.
        let period = Duration::from_secs_f64(1.0 / config.display_hz).as_nanos() as u64;
        let vsync_index = now.as_nanos() / period + 1;
        if Self::vsync_time(&config, vsync_index) <= end {
            self.push(
                Self::vsync_time(&config, vsync_index),
                id,
                EventKind::Vsync { index: vsync_index },
            );
        }
        if let Some(at) = config.disconnect_at {
            if at <= Time::ZERO + self.config.duration {
                self.push(at, id, EventKind::Disconnect);
            }
        }
    }

    /// Processes one offloaded VIO job, returning the pose estimate to
    /// ship back.
    fn run_vio(&mut self, job: &VioJob) -> PoseEstimate {
        let side = &mut self.server_side[job.session as usize];
        match side.filter.as_mut() {
            Some(filter) => {
                for sample in &job.imu {
                    filter.process_imu(*sample);
                }
                let out = filter.process_frame(&job.frame, None);
                PoseEstimate {
                    timestamp: job.frame.timestamp,
                    pose: out.state.pose,
                    velocity: out.state.velocity,
                }
            }
            None => {
                // Ideal-VIO mode: ground truth at the frame time.
                let trajectory = self.sessions[job.session as usize].trajectory();
                PoseEstimate {
                    timestamp: job.frame.timestamp,
                    pose: trajectory.pose(job.frame.timestamp),
                    velocity: trajectory.velocity(job.frame.timestamp),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(n: usize) -> ServerConfig {
        ServerConfig::new(n, Duration::from_secs(2))
    }

    #[test]
    fn zero_sessions_is_an_empty_run() {
        let report = MultiSessionServer::new(quick(0)).run();
        assert!(report.sessions.is_empty());
        assert!(report.admission.is_empty());
        assert_eq!(report.mean_mtp(), Duration::ZERO);
        assert_eq!(report.drop_rate(), 0.0);
    }

    #[test]
    fn single_session_runs_the_full_pipeline() {
        let report = MultiSessionServer::new(quick(1)).run();
        assert_eq!(report.admitted(), 1);
        let s = &report.sessions[0];
        assert_eq!(s.state, SessionState::Disconnected);
        // 2 s at 15 Hz minus the first period: ~29 jobs.
        assert!(s.telemetry.vio_jobs >= 25, "jobs {}", s.telemetry.vio_jobs);
        assert!(s.telemetry.poses_received >= 20, "poses {}", s.telemetry.poses_received);
        assert!(s.telemetry.frames_displayed >= 100, "displayed {}", s.telemetry.frames_displayed);
        assert!(report.mean_mtp() > Duration::ZERO);
        // Ideal VIO + prompt anchoring: the fast pose stays accurate.
        assert!(s.pose_error.unwrap() < 0.5, "pose error {:?}", s.pose_error);
        // Stream stats cover the client pipeline.
        assert!(s.stream_stats.iter().any(|t| t.name == "imu" && t.seq > 900));
    }

    #[test]
    fn rejection_at_saturation() {
        let mut config = quick(4);
        // Thresholds so tight only the first session fits.
        config.admission = AdmissionConfig { degrade_threshold: 0.1, reject_threshold: 0.1 };
        config.scheduler.workers = 1;
        config.scheduler.per_job = Duration::from_millis(7); // 15 Hz × 7 ms ≈ 0.105 load
        let report = MultiSessionServer::new(config).run();
        assert_eq!(report.count(SessionState::Rejected), 3);
        assert_eq!(report.admitted(), 1);
        // Rejected sessions produced no traffic.
        for s in &report.sessions[1..] {
            assert_eq!(s.telemetry.vio_jobs, 0);
            assert_eq!(s.telemetry.frames_displayed + s.telemetry.frames_dropped, 0);
        }
    }

    #[test]
    fn degraded_sessions_run_at_half_rate() {
        let mut config = quick(2);
        // First session accepted, second lands in the degrade band.
        config.admission = AdmissionConfig { degrade_threshold: 0.13, reject_threshold: 0.5 };
        config.scheduler.workers = 1;
        config.scheduler.per_job = Duration::from_millis(7);
        let report = MultiSessionServer::new(config).run();
        assert_eq!(report.sessions[0].state, SessionState::Disconnected);
        assert_eq!(report.count(SessionState::Rejected), 0);
        let full = report.sessions[0].telemetry.vio_jobs;
        let half = report.sessions[1].telemetry.vio_jobs;
        assert!(
            half * 2 <= full + 2 && half * 2 + 4 >= full,
            "degraded session should send about half the jobs: {half} vs {full}"
        );
        assert_eq!(report.admission[1].decision, crate::admission::AdmissionDecision::Degrade);
    }

    #[test]
    fn mid_run_disconnect_stops_traffic() {
        let mut config = quick(1);
        config.sessions[0].disconnect_at = Some(Time::from_millis(500));
        let report = MultiSessionServer::new(config).run();
        let s = &report.sessions[0];
        assert_eq!(s.state, SessionState::Disconnected);
        // Only the first half-second of vsyncs happened: ≤ 60 of 240.
        let vsyncs = s.telemetry.frames_displayed + s.telemetry.frames_dropped;
        assert!(vsyncs <= 61, "vsyncs after disconnect: {vsyncs}");
        assert!(s.telemetry.vio_jobs <= 8);
    }

    #[test]
    fn staggered_connect_joins_late() {
        let mut config = quick(2);
        config.sessions[1].connect_at = Time::from_millis(1000);
        let report = MultiSessionServer::new(config).run();
        let early = report.sessions[0].telemetry.vio_jobs;
        let late = report.sessions[1].telemetry.vio_jobs;
        assert!(late < early, "late joiner sends fewer jobs: {late} vs {early}");
        assert!(late >= 10, "late joiner still runs its second half: {late}");
        assert_eq!(report.admission[1].time, Time::from_millis(1000));
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        let a = MultiSessionServer::new(quick(3)).run().summary_text();
        let b = MultiSessionServer::new(quick(3)).run().summary_text();
        assert_eq!(a, b);
    }

    #[test]
    fn recorded_server_run_replays_bit_identically() {
        let recorded = MultiSessionServer::new(quick(1).with_boundary_record()).run();
        let trace = recorded.boundary_trace.clone().expect("recording enabled");
        assert!(trace.record_count() > 0, "boundary saw traffic");

        let mut replay_cfg = quick(1)
            .with_boundary_record()
            .with_replay(ReplayLoad::identity(Arc::new(trace.clone())));
        // Different session seed: replay must not depend on it.
        replay_cfg.sessions[0].seed ^= 0xABCD;
        let replayed = MultiSessionServer::new(replay_cfg).run();

        assert_eq!(
            recorded.summary_text(),
            replayed.summary_text(),
            "replayed report diverged from the recording"
        );
        let rerec = replayed.boundary_trace.expect("re-recording enabled");
        assert_eq!(rerec.encode(), trace.encode(), "re-recorded trace not byte-identical");
    }

    #[test]
    fn fan_out_replay_is_deterministic_and_phase_shifted() {
        let recorded = MultiSessionServer::new(quick(1).with_boundary_record()).run();
        let trace = Arc::new(recorded.boundary_trace.expect("recording enabled"));

        let load = ReplayLoad::fan_out(trace, 42, Duration::from_millis(40), 0.05);
        let run = || {
            let mut cfg = quick(4);
            cfg.admission.degrade_threshold = 10.0; // admit everyone
            cfg.admission.reject_threshold = 10.0;
            MultiSessionServer::new(cfg.with_replay(load.clone())).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.summary_text(), b.summary_text(), "fan-out reruns diverged");
        // Every synthetic session actually produced traffic.
        for s in &a.sessions {
            assert!(s.telemetry.vio_jobs > 10, "session {} jobs {}", s.id, s.telemetry.vio_jobs);
            assert!(s.telemetry.frames_displayed > 0, "session {} displayed 0", s.id);
        }
        // Session 0 replays at identity; the jittered sessions lag it.
        let j0 = a.sessions[0].telemetry.vio_jobs;
        assert!(
            a.sessions[1..].iter().any(|s| s.telemetry.vio_jobs != j0)
                || a.sessions[1..]
                    .iter()
                    .any(|s| s.telemetry.mean_mtp() != a.sessions[0].telemetry.mean_mtp()),
            "transforms should differentiate the sessions"
        );
    }

    #[test]
    fn deadline_aware_placement_sheds_under_pool_overload() {
        // A single slow worker vs eight sessions: the earliest-free
        // pool queues unboundedly, so batch completion latency keeps
        // growing; the deadline-aware pool sheds jobs and keeps every
        // placed batch inside the budget.
        let slow_pool = |placement| crate::scheduler::SchedulerConfig {
            workers: 1,
            batch_setup: Duration::from_millis(2),
            per_job: Duration::from_millis(11),
            placement,
        };
        let mut unbounded = quick(8);
        unbounded.admission.degrade_threshold = 10.0; // isolate the pool
        unbounded.admission.reject_threshold = 10.0;
        unbounded.scheduler = slow_pool(crate::scheduler::PlacementPolicy::EarliestFree);
        let mut bounded = unbounded.clone();
        bounded.scheduler = slow_pool(crate::scheduler::PlacementPolicy::DeadlineAware {
            deadline: Duration::from_millis(60),
        });
        let free = MultiSessionServer::new(unbounded).run();
        let capped = MultiSessionServer::new(bounded).run();
        assert_eq!(free.scheduler.shed_jobs, 0);
        assert!(capped.scheduler.shed_jobs > 0, "overloaded pool must shed");
        // The point of shedding: batch pickup delay stays bounded by
        // the deadline instead of growing with the backlog.
        let mean_wait = |s: &SchedulerStats| s.wait_ns as f64 / s.batches.max(1) as f64;
        let free_wait = mean_wait(&free.scheduler);
        let capped_wait = mean_wait(&capped.scheduler);
        assert!(
            free_wait > Duration::from_millis(100).as_nanos() as f64,
            "earliest-free backlog should dominate: {free_wait} ns"
        );
        assert!(
            capped_wait < Duration::from_millis(60).as_nanos() as f64,
            "deadline-aware pickup delay must stay inside the budget: {capped_wait} ns"
        );
    }

    #[test]
    fn contention_grows_mtp_with_session_count() {
        let mut narrow = quick(1);
        narrow.link.downlink_bps = 60e6; // tight enough that 6 sessions queue
        let one = MultiSessionServer::new(narrow.clone()).run();
        let mut six = narrow.clone();
        six.sessions = (0..6).map(|i| SessionConfig::new(11 + 2 * i as u64)).collect();
        six.admission.degrade_threshold = 10.0; // no degradation: isolate queueing
        six.admission.reject_threshold = 10.0;
        let many = MultiSessionServer::new(six).run();
        assert!(
            many.mean_mtp() > one.mean_mtp(),
            "contention must raise MTP: {:?} vs {:?}",
            many.mean_mtp(),
            one.mean_mtp()
        );
        assert!(many.downlink.mean_queue_delay() > one.downlink.mean_queue_delay());
    }
}
