//! illixr-server: a multi-session XR runtime server.
//!
//! The single-client testbed answers "what latency does one headset
//! see"; this crate answers "what happens when N headsets share one
//! edge server". It instantiates N independent client sessions — each
//! with its own switchboard, synthetic sensors along a per-seed
//! trajectory, and IMU integrator — against shared server
//! infrastructure, all under one deterministic simulated clock
//! (FleXR-style device/edge split: perception capture and late warp on
//! the device, VIO and rendering in the cloud).
//!
//! The pieces:
//!
//! * [`session::ClientSession`] — the thin client: camera + IMU + fast
//!   pose, shipping VIO jobs uplink and displaying rendered frame
//!   tokens at vsync;
//! * [`link::SharedLink`] — finite uplink/downlink bandwidth shared by
//!   every session; queueing delay grows with concurrency
//!   (generalizing the point-to-point `OffloadLink`);
//! * [`scheduler::BatchScheduler`] — server-side worker pool batching
//!   homogeneous VIO updates per tick;
//! * [`admission::AdmissionController`] — accept / degrade / reject on
//!   a projected-load estimate;
//! * `engine` (private) — the event-driven session engine: sessions as
//!   lightweight state machines sharded (FNV) across a fixed worker
//!   pool, emissions returning over bounded SPSC rings, same-time event
//!   batches fanned out in parallel with bit-identical results;
//! * [`server::ServerBuilder`] / [`server::Server`] — the public API:
//!   configure a run, execute it, read per-session results through
//!   typed [`server::SessionHandle`]s.
//!
//! The `scaling_sessions` bench binary sweeps the session count (up to
//! 1,000) and writes aggregate throughput plus the
//! sessions-vs-MTP/drop-rate curve.

pub mod admission;
mod engine;
pub mod link;
pub mod scheduler;
pub mod server;
pub mod session;
pub mod snapshot;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionDecision, AdmissionRecord};
pub use illixr_core::sched::{
    Migration, PlacementConfig, PlacementController, PlacementPlan, Side,
};
pub use link::{Direction, DirectionStats, LinkConfig, SharedLink};
pub use scheduler::{
    BatchPlacement, BatchScheduler, BoundedPlacement, PlacementPolicy, SchedulerConfig,
    SchedulerStats,
};
pub use server::{
    FailoverConfig, FailoverIncident, FailoverPolicy, MtpStats, ReplayLoad, Server, ServerBuilder,
    ServerConfig, ServerReport, SessionHandle, SessionReport,
};
pub use session::{
    ClientSession, DisplayedFrame, RenderRequest, RenderToken, SessionConfig, SessionState,
};
pub use snapshot::SessionSnapshot;
