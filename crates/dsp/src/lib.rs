//! Signal-processing substrate for ILLIXR-rs.
//!
//! Provides the kernels the audio pipeline (psychoacoustic filtering,
//! HRTF binauralization) and the hologram generator (plane-to-plane field
//! propagation) are built on: complex arithmetic, an iterative radix-2
//! FFT, fast convolution, window functions and biquad filters — all
//! implemented from scratch.
//!
//! # Examples
//!
//! ```
//! use illixr_dsp::{fft, ifft, Complex};
//! let signal: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
//! let spectrum = fft(&signal);
//! let back = ifft(&spectrum);
//! for (a, b) in signal.iter().zip(&back) {
//!     assert!((a.re - b.re).abs() < 1e-9);
//! }
//! ```

pub mod complex;
pub mod convolution;
pub mod fft;
pub mod filter;
pub mod window;

pub use complex::Complex;
pub use convolution::{convolve_direct, fft_convolve, OverlapSave};
pub use fft::{fft, fft_2d, fft_in_place, ifft, ifft_2d, ifft_in_place, rfft};
pub use filter::Biquad;
pub use window::{hamming, hann};
