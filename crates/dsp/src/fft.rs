//! Iterative radix-2 Cooley-Tukey FFT, plus 2-D transforms for the
//! hologram propagation kernels.

use crate::complex::Complex;

/// In-place radix-2 decimation-in-time FFT.
///
/// # Panics
///
/// Panics when `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex]) {
    transform(data, false);
}

/// In-place inverse FFT (includes the `1/N` scaling).
///
/// # Panics
///
/// Panics when `data.len()` is not a power of two.
pub fn ifft_in_place(data: &mut [Complex]) {
    transform(data, true);
    let scale = 1.0 / data.len() as f64;
    for v in data.iter_mut() {
        *v = v.scale(scale);
    }
}

/// Out-of-place FFT convenience wrapper.
///
/// # Panics
///
/// Panics when `data.len()` is not a power of two.
pub fn fft(data: &[Complex]) -> Vec<Complex> {
    let mut out = data.to_vec();
    fft_in_place(&mut out);
    out
}

/// Out-of-place inverse FFT convenience wrapper.
///
/// # Panics
///
/// Panics when `data.len()` is not a power of two.
pub fn ifft(data: &[Complex]) -> Vec<Complex> {
    let mut out = data.to_vec();
    ifft_in_place(&mut out);
    out
}

/// FFT of a real signal; returns the full complex spectrum.
///
/// # Panics
///
/// Panics when `data.len()` is not a power of two.
pub fn rfft(data: &[f64]) -> Vec<Complex> {
    let buf: Vec<Complex> = data.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft(&buf)
}

/// Row-column 2-D FFT of a `height × width` row-major buffer.
///
/// # Panics
///
/// Panics when `width`/`height` are not powers of two or
/// `data.len() != width * height`.
pub fn fft_2d(data: &mut [Complex], width: usize, height: usize) {
    transform_2d(data, width, height, false);
}

/// Row-column 2-D inverse FFT (includes `1/(W·H)` scaling).
///
/// # Panics
///
/// Panics when `width`/`height` are not powers of two or
/// `data.len() != width * height`.
pub fn ifft_2d(data: &mut [Complex], width: usize, height: usize) {
    transform_2d(data, width, height, true);
    let scale = 1.0 / (width * height) as f64;
    for v in data.iter_mut() {
        *v = v.scale(scale);
    }
}

fn transform_2d(data: &mut [Complex], width: usize, height: usize, inverse: bool) {
    assert_eq!(data.len(), width * height, "2-D FFT: buffer size mismatch");
    // Rows.
    for row in data.chunks_mut(width) {
        transform(row, inverse);
    }
    // Columns via a scratch buffer.
    let mut col = vec![Complex::ZERO; height];
    for c in 0..width {
        for r in 0..height {
            col[r] = data[r * width + c];
        }
        transform(&mut col, inverse);
        for r in 0..height {
            data[r * width + c] = col[r];
        }
    }
}

fn transform(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterfly stages.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Returns the smallest power of two ≥ `n`.
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut data = vec![Complex::ZERO; 16];
        data[0] = Complex::ONE;
        fft_in_place(&mut data);
        for v in &data {
            assert!((v.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sine_concentrates_in_one_bin() {
        let n = 64;
        let freq = 5;
        let signal: Vec<Complex> = (0..n)
            .map(|i| Complex::new((2.0 * PI * freq as f64 * i as f64 / n as f64).sin(), 0.0))
            .collect();
        let spec = fft(&signal);
        // Energy at bins `freq` and `n - freq`, ~nothing elsewhere.
        for (k, v) in spec.iter().enumerate() {
            if k == freq || k == n - freq {
                assert!(v.abs() > n as f64 / 4.0, "bin {k} should carry energy");
            } else {
                assert!(v.abs() < 1e-9, "bin {k} should be empty, got {}", v.abs());
            }
        }
    }

    #[test]
    fn roundtrip_random() {
        let signal: Vec<Complex> = (0..128)
            .map(|i| Complex::new(((i * 37) % 11) as f64 - 5.0, ((i * 13) % 7) as f64))
            .collect();
        let back = ifft(&fft(&signal));
        for (a, b) in signal.iter().zip(&back) {
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let signal: Vec<Complex> =
            (0..32).map(|i| Complex::new((i as f64 * 0.7).cos(), 0.0)).collect();
        let spec = fft(&signal);
        let time_energy: f64 = signal.iter().map(|v| v.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn fft_2d_roundtrip() {
        let (w, h) = (8, 4);
        let original: Vec<Complex> =
            (0..w * h).map(|i| Complex::new((i % 5) as f64, (i % 3) as f64)).collect();
        let mut data = original.clone();
        fft_2d(&mut data, w, h);
        ifft_2d(&mut data, w, h);
        for (a, b) in original.iter().zip(&data) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_panics() {
        let mut data = vec![Complex::ZERO; 12];
        fft_in_place(&mut data);
    }

    #[test]
    fn length_one_is_identity() {
        let mut data = vec![Complex::new(3.5, -1.0)];
        fft_in_place(&mut data);
        assert_eq!(data[0], Complex::new(3.5, -1.0));
    }
}
