//! Direct and FFT-based convolution, including a streaming overlap-save
//! convolver for block-based audio processing.

use crate::complex::Complex;
use crate::fft::{fft_in_place, ifft_in_place, next_power_of_two};

/// Direct (time-domain) full convolution. Output length is
/// `signal.len() + kernel.len() - 1`.
pub fn convolve_direct(signal: &[f64], kernel: &[f64]) -> Vec<f64> {
    if signal.is_empty() || kernel.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; signal.len() + kernel.len() - 1];
    for (i, &s) in signal.iter().enumerate() {
        if s == 0.0 {
            continue;
        }
        for (j, &k) in kernel.iter().enumerate() {
            out[i + j] += s * k;
        }
    }
    out
}

/// FFT-based full convolution. Matches [`convolve_direct`] to numerical
/// precision but runs in `O(n log n)`.
pub fn fft_convolve(signal: &[f64], kernel: &[f64]) -> Vec<f64> {
    if signal.is_empty() || kernel.is_empty() {
        return Vec::new();
    }
    let out_len = signal.len() + kernel.len() - 1;
    let n = next_power_of_two(out_len);
    let mut a = vec![Complex::ZERO; n];
    let mut b = vec![Complex::ZERO; n];
    for (dst, &src) in a.iter_mut().zip(signal) {
        dst.re = src;
    }
    for (dst, &src) in b.iter_mut().zip(kernel) {
        dst.re = src;
    }
    fft_in_place(&mut a);
    fft_in_place(&mut b);
    for (x, y) in a.iter_mut().zip(&b) {
        *x *= *y;
    }
    ifft_in_place(&mut a);
    a.truncate(out_len);
    a.into_iter().map(|c| c.re).collect()
}

/// Streaming overlap-save convolver: applies a fixed FIR kernel to a
/// sequence of equally sized blocks with correct state carried between
/// blocks. This is how the audio playback component applies HRTFs to
/// 1024-sample blocks (paper Table III).
///
/// # Examples
///
/// ```
/// use illixr_dsp::OverlapSave;
/// let kernel = [0.5, 0.25];
/// let mut conv = OverlapSave::new(&kernel, 8);
/// let block = [1.0; 8];
/// let out = conv.process(&block);
/// assert_eq!(out.len(), 8);
/// assert!((out[0] - 0.5).abs() < 1e-12);   // only kernel[0] overlaps sample 0
/// assert!((out[1] - 0.75).abs() < 1e-12);  // steady state
/// ```
#[derive(Debug, Clone)]
pub struct OverlapSave {
    kernel_spectrum: Vec<Complex>,
    fft_len: usize,
    block_len: usize,
    overlap: Vec<f64>,
}

impl OverlapSave {
    /// Creates a convolver for `kernel` operating on blocks of
    /// `block_len` samples.
    ///
    /// # Panics
    ///
    /// Panics when the kernel is empty or `block_len` is zero.
    pub fn new(kernel: &[f64], block_len: usize) -> Self {
        assert!(!kernel.is_empty(), "overlap-save kernel must not be empty");
        assert!(block_len > 0, "block length must be positive");
        let fft_len = next_power_of_two(block_len + kernel.len() - 1).max(2);
        let mut spec = vec![Complex::ZERO; fft_len];
        for (dst, &src) in spec.iter_mut().zip(kernel) {
            dst.re = src;
        }
        fft_in_place(&mut spec);
        Self { kernel_spectrum: spec, fft_len, block_len, overlap: vec![0.0; kernel.len() - 1] }
    }

    /// Filter (kernel) length in samples.
    pub fn kernel_len(&self) -> usize {
        self.overlap.len() + 1
    }

    /// Processes one block, returning exactly `block.len()` output samples.
    ///
    /// # Panics
    ///
    /// Panics when `block.len() != block_len` given at construction.
    pub fn process(&mut self, block: &[f64]) -> Vec<f64> {
        assert_eq!(block.len(), self.block_len, "block size must match constructor");
        let m = self.overlap.len(); // kernel_len - 1
        let mut buf = vec![Complex::ZERO; self.fft_len];
        for (dst, &src) in buf.iter_mut().zip(self.overlap.iter().chain(block.iter())) {
            dst.re = src;
        }
        fft_in_place(&mut buf);
        for (x, y) in buf.iter_mut().zip(&self.kernel_spectrum) {
            *x *= *y;
        }
        ifft_in_place(&mut buf);
        // Valid samples start after the first `m` (contaminated) outputs.
        let out: Vec<f64> = buf[m..m + self.block_len].iter().map(|c| c.re).collect();
        // Save the tail of the input as the next block's history.
        let hist: Vec<f64> = self.overlap.iter().copied().chain(block.iter().copied()).collect();
        let keep = hist.len() - m;
        self.overlap.copy_from_slice(&hist[keep..]);
        out
    }

    /// Resets the carried state (e.g. on seek).
    pub fn reset(&mut self) {
        self.overlap.iter_mut().for_each(|v| *v = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_matches_direct() {
        let signal: Vec<f64> = (0..37).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let kernel: Vec<f64> = (0..9).map(|i| (i as f64 * 0.3).sin()).collect();
        let a = convolve_direct(&signal, &kernel);
        let b = fft_convolve(&signal, &kernel);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(convolve_direct(&[], &[1.0]).is_empty());
        assert!(fft_convolve(&[1.0], &[]).is_empty());
    }

    #[test]
    fn identity_kernel() {
        let signal = [1.0, 2.0, 3.0];
        assert_eq!(convolve_direct(&signal, &[1.0]), signal.to_vec());
    }

    #[test]
    fn overlap_save_matches_batch_convolution() {
        let kernel: Vec<f64> = (0..17).map(|i| ((i * 3) % 7) as f64 * 0.1 - 0.2).collect();
        let signal: Vec<f64> = (0..256).map(|i| ((i * 11) % 13) as f64 - 6.0).collect();
        let block = 64;
        let mut conv = OverlapSave::new(&kernel, block);
        let mut streamed = Vec::new();
        for chunk in signal.chunks(block) {
            streamed.extend(conv.process(chunk));
        }
        let batch = convolve_direct(&signal, &kernel);
        for (i, (a, b)) in streamed.iter().zip(batch.iter()).enumerate() {
            assert!((a - b).abs() < 1e-9, "sample {i}: {a} vs {b}");
        }
    }

    #[test]
    fn overlap_save_reset_clears_history() {
        let mut conv = OverlapSave::new(&[1.0, 1.0], 4);
        conv.process(&[1.0, 1.0, 1.0, 1.0]);
        conv.reset();
        let out = conv.process(&[1.0, 0.0, 0.0, 0.0]);
        assert!((out[0] - 1.0).abs() < 1e-12); // no leakage from before reset
    }

    #[test]
    #[should_panic]
    fn overlap_save_wrong_block_size_panics() {
        let mut conv = OverlapSave::new(&[1.0], 8);
        conv.process(&[0.0; 4]);
    }
}
