//! Window functions for spectral processing.

use std::f64::consts::PI;

/// Periodic Hann window of length `n`.
pub fn hann(n: usize) -> Vec<f64> {
    cosine_window(n, 0.5, 0.5)
}

/// Periodic Hamming window of length `n`.
pub fn hamming(n: usize) -> Vec<f64> {
    cosine_window(n, 0.54, 0.46)
}

/// Blackman window of length `n`.
pub fn blackman(n: usize) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    (0..n)
        .map(|i| {
            let x = 2.0 * PI * i as f64 / n as f64;
            0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos()
        })
        .collect()
}

fn cosine_window(n: usize, a0: f64, a1: f64) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    (0..n).map(|i| a0 - a1 * (2.0 * PI * i as f64 / n as f64).cos()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hann_endpoints_and_peak() {
        let w = hann(8);
        assert!(w[0].abs() < 1e-12);
        assert!((w[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_is_raised() {
        let w = hamming(8);
        assert!((w[0] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn windows_are_bounded() {
        for w in [hann(33), hamming(33), blackman(33)] {
            assert!(w.iter().all(|&v| (-1e-9..=1.0 + 1e-9).contains(&v)));
        }
    }

    #[test]
    fn zero_length_is_empty() {
        assert!(hann(0).is_empty());
        assert!(blackman(0).is_empty());
    }
}
