//! Biquad IIR filters (RBJ cookbook designs) used by the psychoacoustic
//! stage of audio playback and for IMU signal conditioning.

use std::f64::consts::PI;

/// A direct-form-I biquad filter section.
///
/// # Examples
///
/// ```
/// use illixr_dsp::Biquad;
/// let mut lp = Biquad::low_pass(48_000.0, 1000.0, 0.707);
/// // DC passes through a low-pass unchanged once settled.
/// let mut y = 0.0;
/// for _ in 0..4096 { y = lp.process(1.0); }
/// assert!((y - 1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
    x1: f64,
    x2: f64,
    y1: f64,
    y2: f64,
}

impl Biquad {
    /// Creates a filter from normalized coefficients (`a0 == 1`).
    pub fn from_coefficients(b0: f64, b1: f64, b2: f64, a1: f64, a2: f64) -> Self {
        Self { b0, b1, b2, a1, a2, x1: 0.0, x2: 0.0, y1: 0.0, y2: 0.0 }
    }

    /// RBJ low-pass design.
    ///
    /// # Panics
    ///
    /// Panics when `cutoff_hz` is not in `(0, sample_rate/2)` or `q <= 0`.
    pub fn low_pass(sample_rate: f64, cutoff_hz: f64, q: f64) -> Self {
        let (w0, alpha, cos_w0) = rbj_params(sample_rate, cutoff_hz, q);
        let _ = w0;
        let b1 = 1.0 - cos_w0;
        let b0 = b1 / 2.0;
        let b2 = b0;
        let a0 = 1.0 + alpha;
        Self::from_coefficients(b0 / a0, b1 / a0, b2 / a0, -2.0 * cos_w0 / a0, (1.0 - alpha) / a0)
    }

    /// RBJ high-pass design.
    ///
    /// # Panics
    ///
    /// Panics when `cutoff_hz` is not in `(0, sample_rate/2)` or `q <= 0`.
    pub fn high_pass(sample_rate: f64, cutoff_hz: f64, q: f64) -> Self {
        let (_, alpha, cos_w0) = rbj_params(sample_rate, cutoff_hz, q);
        let b0 = (1.0 + cos_w0) / 2.0;
        let b1 = -(1.0 + cos_w0);
        let b2 = b0;
        let a0 = 1.0 + alpha;
        Self::from_coefficients(b0 / a0, b1 / a0, b2 / a0, -2.0 * cos_w0 / a0, (1.0 - alpha) / a0)
    }

    /// Processes one sample.
    #[inline]
    pub fn process(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.b1 * self.x1 + self.b2 * self.x2
            - self.a1 * self.y1
            - self.a2 * self.y2;
        self.x2 = self.x1;
        self.x1 = x;
        self.y2 = self.y1;
        self.y1 = y;
        y
    }

    /// Processes a block in place.
    pub fn process_block(&mut self, block: &mut [f64]) {
        for v in block {
            *v = self.process(*v);
        }
    }

    /// Clears the filter state.
    pub fn reset(&mut self) {
        self.x1 = 0.0;
        self.x2 = 0.0;
        self.y1 = 0.0;
        self.y2 = 0.0;
    }
}

fn rbj_params(sample_rate: f64, cutoff_hz: f64, q: f64) -> (f64, f64, f64) {
    assert!(cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0, "cutoff must be below Nyquist");
    assert!(q > 0.0, "Q must be positive");
    let w0 = 2.0 * PI * cutoff_hz / sample_rate;
    (w0, w0.sin() / (2.0 * q), w0.cos())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rms_of_sine(filter: &mut Biquad, freq: f64, rate: f64) -> f64 {
        let n = 8192;
        let mut acc = 0.0;
        for i in 0..n {
            let x = (2.0 * PI * freq * i as f64 / rate).sin();
            let y = filter.process(x);
            if i >= n / 2 {
                acc += y * y;
            }
        }
        (acc / (n / 2) as f64).sqrt()
    }

    #[test]
    fn low_pass_attenuates_high_frequencies() {
        let rate = 48_000.0;
        let mut lp = Biquad::low_pass(rate, 1_000.0, 0.707);
        let passband = rms_of_sine(&mut lp, 100.0, rate);
        lp.reset();
        let stopband = rms_of_sine(&mut lp, 15_000.0, rate);
        assert!(passband > 10.0 * stopband, "pass={passband} stop={stopband}");
    }

    #[test]
    fn high_pass_attenuates_low_frequencies() {
        let rate = 48_000.0;
        let mut hp = Biquad::high_pass(rate, 5_000.0, 0.707);
        let stopband = rms_of_sine(&mut hp, 100.0, rate);
        hp.reset();
        let passband = rms_of_sine(&mut hp, 15_000.0, rate);
        assert!(passband > 10.0 * stopband, "pass={passband} stop={stopband}");
    }

    #[test]
    #[should_panic]
    fn cutoff_above_nyquist_panics() {
        let _ = Biquad::low_pass(48_000.0, 30_000.0, 0.707);
    }

    #[test]
    fn reset_clears_state() {
        let mut f = Biquad::low_pass(48_000.0, 1_000.0, 0.707);
        for _ in 0..100 {
            f.process(1.0);
        }
        f.reset();
        let y = f.process(0.0);
        assert_eq!(y, 0.0);
    }
}
