//! Minimal complex-number type for the FFT and frequency-domain filters.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` over `f64`.
///
/// # Examples
///
/// ```
/// use illixr_dsp::Complex;
/// let i = Complex::new(0.0, 1.0);
/// assert!((i * i + Complex::ONE).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates `r·e^{iθ}` from polar coordinates.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self::new(r * c, r * s)
    }

    /// The unit phasor `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// True when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Self;
    #[inline]
    fn add(self, r: Self) -> Self {
        Self::new(self.re + r.re, self.im + r.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, r: Self) {
        self.re += r.re;
        self.im += r.im;
    }
}

impl Sub for Complex {
    type Output = Self;
    #[inline]
    fn sub(self, r: Self) -> Self {
        Self::new(self.re - r.re, self.im - r.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, r: Self) {
        self.re -= r.re;
        self.im -= r.im;
    }
}

impl Mul for Complex {
    type Output = Self;
    #[inline]
    fn mul(self, r: Self) -> Self {
        Self::new(self.re * r.re - self.im * r.im, self.re * r.im + self.im * r.re)
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, r: Self) {
        *self = *self * r;
    }
}

impl Mul<f64> for Complex {
    type Output = Self;
    #[inline]
    fn mul(self, s: f64) -> Self {
        self.scale(s)
    }
}

impl Div for Complex {
    type Output = Self;
    #[inline]
    fn div(self, r: Self) -> Self {
        let d = r.norm_sqr();
        Self::new((self.re * r.re + self.im * r.im) / d, (self.im * r.re - self.re * r.im) / d)
    }
}

impl Neg for Complex {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Self::new(re, 0.0)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn multiplication_and_conjugate() {
        let a = Complex::new(3.0, 4.0);
        assert!((a * a.conj() - Complex::new(25.0, 0.0)).abs() < 1e-12);
        assert!((a.abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, PI / 3.0);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - PI / 3.0).abs() < 1e-12);
    }

    #[test]
    fn division_inverse() {
        let a = Complex::new(1.5, -2.5);
        let one = a / a;
        assert!((one - Complex::ONE).abs() < 1e-12);
    }

    #[test]
    fn cis_unit_circle() {
        for k in 0..8 {
            let z = Complex::cis(2.0 * PI * k as f64 / 8.0);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }
}
