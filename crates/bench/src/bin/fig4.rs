//! Fig 4: per-frame execution times for every component, Platformer on
//! the desktop. The top panel of the paper's figure shows VIO and the
//! application; the bottom panel the remaining components.

use illixr_bench::{experiment_config, write_obs_artifacts};
use illixr_platform::spec::Platform;
use illixr_render::apps::Application;
use illixr_system::experiment::{IntegratedExperiment, COMPONENTS};

fn main() {
    let result = IntegratedExperiment::run(
        &experiment_config(Application::Platformer, Platform::Desktop).with_trace(),
    );
    println!("Fig 4: per-frame execution time (ms), Platformer on Desktop");
    println!("(paper: VIO 5–25 ms with high variance; other components ≤ ~2 ms, all jittery)\n");
    for name in COMPONENTS {
        let records = result.telemetry.records(name);
        if records.is_empty() {
            continue;
        }
        let series: Vec<f64> =
            records.iter().map(|r| r.execution_time().as_secs_f64() * 1e3).collect();
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        let std = (series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (series.len().max(2) - 1) as f64)
            .sqrt();
        let min = series.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = series.iter().cloned().fold(0.0, f64::max);
        println!(
            "{name:<16} n={:<5} mean={mean:>7.3} std={std:>6.3} min={min:>7.3} max={max:>7.3}",
            series.len()
        );
        // Print the (down-sampled) time series itself — the figure's
        // content — at most 60 points.
        let stride = (series.len() / 60).max(1);
        let pts: Vec<String> = series.iter().step_by(stride).map(|v| format!("{v:.2}")).collect();
        println!("  series(ms): {}", pts.join(" "));
    }
    // The same run as a Perfetto trace: every per-frame slice above is
    // a span, with switchboard flows linking producers to consumers.
    std::fs::create_dir_all("results").expect("create results dir");
    write_obs_artifacts("fig4", &result.tracer, &result.metrics).expect("write obs artifacts");
}
