//! Session-negotiation matrix: sweeps the WebXR-style front-end
//! (`illixr-api`) across session mode × feature set × backend and
//! checks the claims the front-end exists to support.
//!
//! Three parts:
//!
//! 1. **Per-backend sweep** (mock, headless): every supported
//!    (mode, feature-set) pair gets its own registry and session; the
//!    row reports negotiated features, delivered frames, input edges
//!    and hit-test answers. Refusals (headless × immersive-ar) are
//!    reported as typed errors, not skipped silently.
//! 2. **Mixed-mode remote run**: inline + immersive-vr + immersive-ar
//!    sessions all adopted into ONE `illixr-server` run through
//!    `RemoteDiscovery`, with negotiated features feeding admission
//!    control via the session load-weight.
//! 3. **Claims**: the whole matrix reruns bit-identically
//!    (`deterministic_rerun_identical`); every mixed-mode remote
//!    session delivers frames (`mixed_modes_coexist`); and a default
//!    immersive-vr remote session's report is byte-identical to a
//!    direct `ServerBuilder` run of the same shape
//!    (`remote_matches_direct`).
//!
//! Usage: `cargo run --release -p illixr-bench --bin session_matrix`.
//! Flags (see `illixr_bench::cli`): `--quick` halves simulated
//! durations and frame counts for CI; `--seed <n>` reseeds the mock
//! script; `--write-fixture <path>` saves the mock golden transcript.
//! Writes `results/session_matrix.txt`.

use std::fmt::Write as _;
use std::time::Duration;

use illixr_api::{
    Feature, HeadlessConfig, HeadlessDiscovery, MockConfig, MockDiscovery, Registry, RemoteConfig,
    RemoteDiscovery, Session, SessionInit, SessionMode,
};
use illixr_bench::cli::BenchArgs;
use illixr_bench::rule;
use illixr_math::Vec3;
use illixr_server::ServerBuilder;

/// The feature sets each (mode, backend) cell is negotiated with.
fn feature_sets() -> Vec<(&'static str, SessionInit)> {
    vec![
        ("base", SessionInit::new()),
        (
            "full",
            SessionInit::new().optional(&[
                Feature::LocalFloor,
                Feature::HandTracking,
                Feature::HitTest,
                Feature::Anchors,
            ]),
        ),
    ]
}

/// Comma-joined feature names for a row.
fn feature_names(features: &[Feature]) -> String {
    features.iter().map(|f| f.name()).collect::<Vec<_>>().join(",")
}

/// Drains a session completely and renders its row.
fn drain(mut session: Session, mode: SessionMode, set: &str) -> String {
    let inputs = session.input_events();
    let hits = session.hit_test_events();
    let subscribed = session
        .request_hit_test(illixr_api::Ray {
            origin: Vec3::new(0.0, 1.6, 0.0),
            direction: Vec3::new(0.0, -1.0, 0.0),
        })
        .is_ok();
    let frames = session.run(u64::MAX);
    format!(
        "{:<8} {:<13} {:<5} frames={:<5} input_events={:<4} hit_events={:<5} hit_test={} \
         granted={}",
        session.backend(),
        mode.label(),
        set,
        frames,
        inputs.drain().len(),
        hits.drain().len(),
        subscribed,
        feature_names(session.granted_features()),
    )
}

/// One full deterministic pass over the matrix. Returns the rendered
/// report body plus the claim bits computed from it.
fn run_matrix(seed: u64, quick: bool) -> (String, bool, bool) {
    let mut out = String::new();
    let mock_frames = if quick { 60 } else { 120 };
    let sim = if quick { Duration::from_secs(1) } else { Duration::from_secs(2) };

    writeln!(out, "## per-backend sweep (mode x feature-set)").unwrap();
    for mode in SessionMode::ALL {
        for (set, init) in feature_sets() {
            let mut registry = Registry::new();
            registry.register(Box::new(MockDiscovery::with_config(MockConfig {
                frames: mock_frames,
                ..MockConfig::new(seed)
            })));
            let session = registry.request_session(mode, &init).expect("mock serves all modes");
            writeln!(out, "{}", drain(session, mode, set)).unwrap();
        }
    }
    for mode in SessionMode::ALL {
        let (set, init) = feature_sets().swap_remove(1);
        let mut registry = Registry::new();
        registry.register(Box::new(HeadlessDiscovery::new(HeadlessConfig {
            duration: sim,
            ..HeadlessConfig::default()
        })));
        match registry.request_session(mode, &init) {
            Ok(session) => writeln!(out, "{}", drain(session, mode, set)).unwrap(),
            Err(err) => {
                writeln!(out, "{:<8} {:<13} {:<5} refused: {}", "headless", mode.label(), set, err)
                    .unwrap();
            }
        }
    }

    writeln!(out, "\n## mixed-mode remote run (one shared server)").unwrap();
    let discovery = RemoteDiscovery::new(RemoteConfig { duration: sim, real_vio: false });
    let server = discovery.handle();
    let mut registry = Registry::new();
    registry.register(Box::new(discovery));
    let requests = [
        (SessionMode::Inline, "base", SessionInit::new()),
        (SessionMode::ImmersiveVr, "base", SessionInit::new()),
        (SessionMode::ImmersiveVr, "full", feature_sets().swap_remove(1).1),
        (SessionMode::ImmersiveAr, "full", feature_sets().swap_remove(1).1),
    ];
    let mut sessions: Vec<(SessionMode, &str, Session)> = requests
        .into_iter()
        .map(|(mode, set, init)| {
            let session = registry.request_session(mode, &init).expect("remote serves all modes");
            (mode, set, session)
        })
        .collect();
    let mut coexist = true;
    for (mode, set, session) in &mut sessions {
        let frames = session.run(u64::MAX);
        coexist &= frames > 0;
        writeln!(
            out,
            "{:<8} {:<13} {:<5} frames={:<5} granted={}",
            session.backend(),
            mode.label(),
            set,
            frames,
            feature_names(session.granted_features()),
        )
        .unwrap();
    }
    let report = server.server_report();
    writeln!(
        out,
        "server: sessions={} admitted={} degraded={} mean_mtp_ms={:.3} drop_rate={:.4}",
        report.session_count(),
        report.admitted(),
        report.degraded(),
        report.mean_mtp().as_secs_f64() * 1e3,
        report.drop_rate(),
    )
    .unwrap();

    writeln!(out, "\n## remote vs direct identity (immersive-vr, defaults)").unwrap();
    let mut registry = Registry::new();
    registry
        .register(Box::new(RemoteDiscovery::new(RemoteConfig { duration: sim, real_vio: false })));
    let mut session =
        registry.request_session(SessionMode::ImmersiveVr, &SessionInit::new()).unwrap();
    let frames = session.run(u64::MAX);
    let direct = ServerBuilder::new().sessions(1).duration(sim).build().run().summary_text();
    let matches = session.report() == direct;
    writeln!(out, "remote frames={frames} report_bytes={}", session.report().len()).unwrap();

    (out, coexist, matches)
}

fn main() -> std::io::Result<()> {
    let args = BenchArgs::parse();
    let quick = args.quick();
    let seed = args.seed().unwrap_or(7);

    println!("session negotiation matrix (mode x feature-set x backend)");
    rule(98);

    let (body, coexist, matches) = run_matrix(seed, quick);
    print!("{body}");
    println!("re-running the full matrix for determinism...");
    let (body2, _, _) = run_matrix(seed, quick);
    let identical = body == body2;

    let mut out = String::from("# session_matrix\n\n");
    out.push_str(&body);
    writeln!(
        out,
        "\nmixed_modes_coexist={coexist} deterministic_rerun_identical={identical} \
         remote_matches_direct={matches}"
    )
    .unwrap();

    rule(98);
    println!("mixed session modes coexist on one server: {coexist}");
    println!("full-matrix rerun bit-identical: {identical}");
    println!("remote report matches direct ServerBuilder run: {matches}");

    if let Some(path) = args.write_fixture() {
        let mut registry = Registry::new();
        registry.register(Box::new(MockDiscovery::with_config(MockConfig {
            frames: 60,
            ..MockConfig::new(seed)
        })));
        let mut session = registry
            .request_session(SessionMode::ImmersiveVr, &feature_sets().swap_remove(1).1)
            .unwrap();
        session.run(u64::MAX);
        std::fs::write(path, session.transcript())?;
        println!("wrote mock golden transcript to {path}");
    }

    std::fs::create_dir_all("results")?;
    std::fs::write("results/session_matrix.txt", &out)?;
    println!("wrote results/session_matrix.txt");
    Ok(())
}
