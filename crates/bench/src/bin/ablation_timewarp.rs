//! Timewarp ablation: rotational-only vs rotational+translational
//! reprojection.
//!
//! The paper evaluates rotational timewarp ("TimeWarp") and notes
//! translational reprojection was implemented later (§II-A footnote).
//! This binary quantifies what the extra term buys: render a frame at a
//! stale pose, warp it to the fresh pose with both variants, and compare
//! each against the image a zero-latency system would have shown.

use illixr_bench::rule;
use illixr_image::{flip, ssim};
use illixr_math::{Pose, Vec3};
use illixr_qoe::report::MeanStd;
use illixr_render::apps::Application;
use illixr_render::raster::Rasterizer;
use illixr_sensors::trajectory::Trajectory;
use illixr_visual::reprojection::{reproject, ReprojectionConfig};

fn main() {
    println!("Timewarp ablation: rotational vs rotational+translational reprojection");
    println!("(frames rendered one display period stale, warped to the fresh pose,");
    println!(" compared against a zero-latency render; Materials scene, walking motion)\n");

    let mut scene = Application::Materials.build(11);
    let trajectory = Trajectory::walking(11);
    let (w, h) = (96, 96);
    let fov = 1.3;
    let rot_cfg = ReprojectionConfig::rotational(fov, 1.0);
    let trans_cfg = ReprojectionConfig::translational(fov, 1.0, 3.0);
    let mut raster = Rasterizer::new(w, h);
    // View offset so the gallery is in frame.
    let offset = Vec3::new(0.0, 1.2, 4.0);

    /// One staleness level's collected metrics.
    type Row = (f64, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);
    let mut rows: Vec<Row> = Vec::new();
    for staleness_ms in [8.3f64, 33.0, 66.0] {
        let mut ssim_rot = Vec::new();
        let mut ssim_trans = Vec::new();
        let mut flip_rot = Vec::new();
        let mut flip_trans = Vec::new();
        for k in 0..10u64 {
            let t_display = 0.5 + k as f64 * 0.37;
            let t_render = t_display - staleness_ms / 1e3;
            let mut pose_render = trajectory.pose(illixr_core::Time::from_secs_f64(t_render));
            let mut pose_display = trajectory.pose(illixr_core::Time::from_secs_f64(t_display));
            pose_render.position += offset;
            pose_display.position += offset;
            scene.animate_to(t_display);

            let mut render_at = |pose: &Pose| {
                scene.render(&mut raster, pose, fov, 1.0);
                raster.take_framebuffer()
            };
            let stale = render_at(&pose_render);
            let truth = render_at(&pose_display);
            let rot = reproject(&stale, &pose_render, &pose_display, &rot_cfg);
            let trans = reproject(&stale, &pose_render, &pose_display, &trans_cfg);
            ssim_rot.push(ssim(&truth.to_luma(), &rot.to_luma()) as f64);
            ssim_trans.push(ssim(&truth.to_luma(), &trans.to_luma()) as f64);
            flip_rot.push(1.0 - flip(&truth, &rot) as f64);
            flip_trans.push(1.0 - flip(&truth, &trans) as f64);
        }
        rows.push((staleness_ms, ssim_rot, ssim_trans, flip_rot, flip_trans));
    }

    println!(
        "{:<14} {:>16} {:>16} {:>16} {:>16}",
        "staleness", "SSIM rot", "SSIM rot+trans", "1-FLIP rot", "1-FLIP rot+trans"
    );
    rule(84);
    for (ms, sr, st, fr, ft) in &rows {
        println!(
            "{:<14} {:>16} {:>16} {:>16} {:>16}",
            format!("{ms:.1} ms"),
            format!("{:.3}", MeanStd::of(sr).unwrap()),
            format!("{:.3}", MeanStd::of(st).unwrap()),
            format!("{:.3}", MeanStd::of(fr).unwrap()),
            format!("{:.3}", MeanStd::of(ft).unwrap()),
        );
    }
    println!("\nRotational warp corrects head rotation only; adding the translational");
    println!("term recovers parallax, and its advantage grows with frame staleness —");
    println!("why the paper's later versions added it.");
}
