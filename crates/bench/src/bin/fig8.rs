//! Fig 8: IPC and top-down cycle breakdown (retiring / bad speculation /
//! frontend bound / backend bound) per component, from the analytical
//! microarchitecture model over the hand-derived op-mix profiles.

use illixr_bench::{component_op_mixes, rule};
use illixr_platform::uarch::UarchModel;

fn main() {
    println!("Fig 8: cycle breakdown and IPC per component (analytical model)");
    println!("(paper: IPC spans 0.3 (reprojection, frontend-bound driver code) to 3.5");
    println!(" (audio playback, 86 % retiring); top-down identity retiring = IPC/4)\n");
    print!("{:<16}", "component");
    println!(
        " {:>9} {:>9} {:>9} {:>9} {:>6}",
        "retiring", "bad-spec", "frontend", "backend", "IPC"
    );
    rule(16 + 10 * 4 + 7);
    let model = UarchModel::new();
    let metrics = illixr_core::obs::Metrics::new();
    for (name, mix) in component_op_mixes() {
        let b = model.evaluate(&mix);
        println!(
            "{name:<16} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>6.2}",
            b.retiring * 100.0,
            b.bad_speculation * 100.0,
            b.frontend_bound * 100.0,
            b.backend_bound * 100.0,
            b.ipc
        );
        let key = name.to_lowercase().replace([' ', '.'], "_");
        metrics.set_gauge(&format!("uarch.{key}.ipc"), b.ipc);
        metrics.set_gauge(&format!("uarch.{key}.retiring"), b.retiring);
        metrics.set_gauge(&format!("uarch.{key}.backend_bound"), b.backend_bound);
    }
    // The breakdown as a machine-readable gauge CSV alongside the table.
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/fig8.metrics.csv", illixr_core::obs::metrics_csv(&metrics))
        .expect("write fig8 metrics");
    println!("\nwrote results/fig8.metrics.csv");
}
