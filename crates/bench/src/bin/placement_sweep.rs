//! Placement sweep: link profiles × placement plans for the `vio`
//! cut-point of the integrated pipeline.
//!
//! For each [`LinkProfile`] preset (plus a wifi link degraded by a
//! scheduled mid-run uplink outage) the sweep runs three plans:
//!
//! * **all_local** — `vio` pinned on the device: the exact
//!   pre-placement pipeline, where VIO monopolizes the contended core;
//! * **all_offload** — `vio` pinned on the edge: the device core is
//!   relieved but every frame rides the link, and an outage starves
//!   the IMU integrator of fresh poses;
//! * **adaptive** — a `PlacementController` migrates the cut at
//!   deterministic decision epochs from link probes and the offloaded
//!   path's own lateness, escalating device-side during degradation
//!   and restoring within the governor's hysteresis budget.
//!
//! The claim the subsystem exists to support: adaptive placement's
//! motion-to-photon chain-miss rate is never worse than either static
//! extreme, and strictly better than both when the link degrades
//! mid-run.
//!
//! Usage: `cargo run --release -p illixr-bench --bin placement_sweep`
//! (`--quick` caps each cell at 3 simulated seconds for CI; honours
//! `ILLIXR_SECONDS` otherwise; writes `results/placement_sweep.txt`).
//!
//! Every run is fully deterministic — simulated clock, seeded sensors,
//! seeded link probes, epoch-aligned migrations — so two invocations
//! produce bit-identical artifacts; the harness reruns the degraded
//! adaptive cell and checks.

use std::fmt::Write as _;
use std::time::Duration;

use illixr_bench::cli::BenchArgs;
use illixr_bench::{experiment_config, rule};
use illixr_core::fault::{FaultKind, FaultPlan, FaultWindow};
use illixr_core::link::{Direction, LinkProfile};
use illixr_core::sched::{Migration, PlacementConfig, PlacementPlan, Side};
use illixr_platform::spec::Platform;
use illixr_render::apps::Application;
use illixr_system::experiment::{ExperimentResult, IntegratedExperiment, MTP_CHAIN};

const SEED: u64 = 42;
/// Same contended régime as `fault_sweep`: one core at 2× load is
/// where moving VIO off the device visibly relieves the mtp chain.
const LOAD: f64 = 2.0;
const CHAIN_DEADLINE: Duration = Duration::from_millis(15);

#[derive(Clone, Copy, PartialEq)]
enum Plan {
    AllLocal,
    AllOffload,
    Adaptive,
}

impl Plan {
    fn label(self) -> &'static str {
        match self {
            Plan::AllLocal => "all_local",
            Plan::AllOffload => "all_offload",
            Plan::Adaptive => "adaptive",
        }
    }

    fn placement(self) -> PlacementPlan {
        match self {
            Plan::AllLocal => PlacementPlan::all_local(),
            Plan::AllOffload => PlacementPlan::pinned("vio", Side::Edge),
            Plan::Adaptive => PlacementPlan::adaptive("vio", Side::Edge),
        }
    }
}

/// One link condition of the sweep: a profile preset, optionally
/// degraded by a scheduled uplink outage over the middle quarter of
/// the run.
struct Condition {
    label: &'static str,
    profile: LinkProfile,
    outage: bool,
}

fn conditions() -> Vec<Condition> {
    let mut v: Vec<Condition> = LinkProfile::all()
        .into_iter()
        .map(|profile| Condition { label: profile.name, profile, outage: false })
        .collect();
    v.push(Condition { label: "wifi+outage", profile: LinkProfile::wifi(), outage: true });
    v
}

/// Outage window: the second quarter of the run, leaving the second
/// half for the controller's restore ladder to play out.
fn outage_window(duration: Duration) -> (u64, u64) {
    let d = duration.as_nanos() as u64;
    (d / 4, d / 2)
}

fn fault_plan(cond: &Condition, duration: Duration) -> FaultPlan {
    if !cond.outage {
        return FaultPlan::quiet();
    }
    let (start, end) = outage_window(duration);
    FaultPlan::new(SEED).with_window(FaultWindow::new(
        FaultKind::LinkOutage,
        Direction::Uplink.label(),
        start,
        end,
        1.0,
    ))
}

struct Cell {
    condition: &'static str,
    plan: Plan,
    mtp_chains: usize,
    mtp_chain_miss: f64,
    all_chain_miss: f64,
    mtp_mean_ms: f64,
    mtp_p99_ms: f64,
    migrations: usize,
    final_side: Side,
    /// Raw sorted samples kept for the determinism check.
    mtp_ms: Vec<f64>,
    chain_ms: Vec<f64>,
    migration_log: Vec<Migration>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn bench_duration(quick: bool) -> Duration {
    if quick {
        Duration::from_secs(3)
    } else {
        illixr_bench::sim_duration().min(Duration::from_secs(12))
    }
}

fn run_once(cond: &Condition, plan: Plan, duration: Duration) -> ExperimentResult {
    let mut config = experiment_config(Application::Platformer, Platform::Desktop)
        .with_load_factor(LOAD)
        .with_cpu_cores(1)
        .with_fault_plan(fault_plan(cond, duration))
        .with_link_profile(cond.profile)
        .with_placement(plan.placement());
    if plan == Plan::Adaptive {
        // A snappier ladder than the governor default: with a 15 Hz
        // camera, 150 ms epochs trusting two samples react one frame
        // after the outage bites, and two clean epochs suffice to
        // restore — camping on the device for four would cost nearly
        // as much core contention as the outage itself. The escalate
        // threshold asks for every sample in the window to be bad, so
        // a lone jitter spike on a noisy (cellular) link does not
        // trigger a pointless round trip to the device.
        config = config.with_placement_config(PlacementConfig {
            epoch_ns: 150_000_000,
            min_samples: 2,
            restore_epochs: 2,
            escalate_miss_rate: 0.6,
            ..PlacementConfig::default()
        });
    }
    config.duration = duration;
    config.chain_deadline = CHAIN_DEADLINE;
    IntegratedExperiment::run(&config)
}

fn summarize(cond: &Condition, plan: Plan, result: &ExperimentResult) -> Cell {
    let mut mtp_ms: Vec<f64> = result.mtp.iter().map(|s| s.total().as_secs_f64() * 1e3).collect();
    mtp_ms.sort_by(|a, b| a.total_cmp(b));
    let mut chain_ms: Vec<f64> =
        result.chain_outcomes.iter().map(|o| o.latency_ns as f64 / 1e6).collect();
    chain_ms.sort_by(|a, b| a.total_cmp(b));
    let mtp_outcomes: Vec<_> =
        result.chain_outcomes.iter().filter(|o| o.chain == MTP_CHAIN).collect();
    let all_misses = result.chain_outcomes.iter().filter(|o| o.missed).count();
    Cell {
        condition: cond.label,
        plan,
        mtp_chains: mtp_outcomes.len(),
        mtp_chain_miss: result.chain_miss_rate(MTP_CHAIN).unwrap_or(0.0),
        all_chain_miss: if result.chain_outcomes.is_empty() {
            0.0
        } else {
            all_misses as f64 / result.chain_outcomes.len() as f64
        },
        mtp_mean_ms: if mtp_ms.is_empty() {
            0.0
        } else {
            mtp_ms.iter().sum::<f64>() / mtp_ms.len() as f64
        },
        mtp_p99_ms: percentile(&mtp_ms, 0.99),
        migrations: result.migrations.len(),
        final_side: result.vio_final_side,
        mtp_ms,
        chain_ms,
        migration_log: result.migrations.clone(),
    }
}

fn main() -> std::io::Result<()> {
    let quick = BenchArgs::parse().quick();
    let duration = bench_duration(quick);
    let conds = conditions();
    let (o_start, o_end) = outage_window(duration);

    let mut out = String::new();
    writeln!(
        out,
        "# Placement sweep, Platformer on Desktop pinned to 1 CPU core at {LOAD}x load \
         ({}s simulated per cell, seed {SEED})",
        duration.as_secs()
    )
    .unwrap();
    writeln!(
        out,
        "# mtp chain deadline {} ms; wifi+outage: uplink LinkOutage {:.2}s..{:.2}s",
        CHAIN_DEADLINE.as_millis(),
        o_start as f64 / 1e9,
        o_end as f64 / 1e9,
    )
    .unwrap();
    let header = format!(
        "{:>12} {:>12} {:>7} {:>10} {:>9} {:>8} {:>8} {:>11} {:>7}",
        "link",
        "plan",
        "chains",
        "mtp_miss",
        "all_miss",
        "mtp_ms",
        "mtp_p99",
        "migrations",
        "final",
    );
    writeln!(out, "{header}").unwrap();

    println!("Placement sweep ({duration:?} simulated per cell)");
    rule(92);
    println!("{header}");

    let mut cells: Vec<Cell> = Vec::new();
    for cond in &conds {
        for plan in [Plan::AllLocal, Plan::AllOffload, Plan::Adaptive] {
            let cell = summarize(cond, plan, &run_once(cond, plan, duration));
            let row = format!(
                "{:>12} {:>12} {:>7} {:>10.4} {:>9.4} {:>8.3} {:>8.3} {:>11} {:>7}",
                cell.condition,
                cell.plan.label(),
                cell.mtp_chains,
                cell.mtp_chain_miss,
                cell.all_chain_miss,
                cell.mtp_mean_ms,
                cell.mtp_p99_ms,
                cell.migrations,
                cell.final_side.label(),
            );
            println!("{row}");
            writeln!(out, "{row}").unwrap();
            cells.push(cell);
        }
    }

    // The claim: per link condition, adaptive's mtp-chain miss rate is
    // never worse than either static extreme — and the degraded link
    // is where it must also strictly beat at least one of them.
    const EPS: f64 = 1e-9;
    let find = |cond: &str, plan: Plan| {
        cells.iter().find(|c| c.condition == cond && c.plan == plan).expect("cell present")
    };
    writeln!(out).unwrap();
    let mut wins = 0usize;
    let mut degraded_ok = false;
    for cond in &conds {
        let local = find(cond.label, Plan::AllLocal);
        let offload = find(cond.label, Plan::AllOffload);
        let adaptive = find(cond.label, Plan::Adaptive);
        let le_both = adaptive.mtp_chain_miss <= local.mtp_chain_miss + EPS
            && adaptive.mtp_chain_miss <= offload.mtp_chain_miss + EPS;
        wins += le_both as usize;
        writeln!(
            out,
            "adaptive_le_static[{}]={} (adaptive {:.4} vs all_local {:.4} / all_offload {:.4})",
            cond.label,
            le_both,
            adaptive.mtp_chain_miss,
            local.mtp_chain_miss,
            offload.mtp_chain_miss,
        )
        .unwrap();
        if cond.outage {
            let p99_le = adaptive.mtp_p99_ms <= local.mtp_p99_ms + EPS
                && adaptive.mtp_p99_ms <= offload.mtp_p99_ms + EPS;
            let strict = adaptive.mtp_chain_miss + EPS < local.mtp_chain_miss
                && adaptive.mtp_chain_miss + EPS < offload.mtp_chain_miss;
            let migrated = adaptive.migrations >= 2 && adaptive.final_side == Side::Edge;
            degraded_ok = le_both && p99_le && strict && migrated;
            writeln!(
                out,
                "degraded_link_checks: p99_le_both={p99_le} strictly_below_both={strict} \
                 migrated_and_restored={migrated}"
            )
            .unwrap();
        }
    }
    let adaptive_beats_static = wins >= 3 && degraded_ok;
    writeln!(out, "adaptive_beats_static={adaptive_beats_static} (le_both on {wins}/4 links)")
        .unwrap();
    rule(92);
    println!("adaptive ≤ both static extremes on {wins}/4 link conditions");
    println!("adaptive beats both extremes on the degraded link: {degraded_ok}");
    if !adaptive_beats_static {
        eprintln!("WARNING: placement claims did not hold on this run");
    }

    // Determinism: the degraded adaptive cell rerun must match bit for
    // bit — samples, chain latencies, and the migration log itself.
    let degraded = conds.last().expect("outage condition present");
    let base = find(degraded.label, Plan::Adaptive);
    let rerun = summarize(degraded, Plan::Adaptive, &run_once(degraded, Plan::Adaptive, duration));
    let deterministic = rerun.mtp_ms == base.mtp_ms
        && rerun.chain_ms == base.chain_ms
        && rerun.migration_log == base.migration_log;
    writeln!(out, "deterministic_rerun_identical={deterministic}").unwrap();
    println!("deterministic rerun identical: {deterministic}");
    for m in &base.migration_log {
        writeln!(
            out,
            "# migration epoch={} at={:.3}s {}->{}",
            m.epoch,
            m.at_ns as f64 / 1e9,
            m.from.label(),
            m.to.label(),
        )
        .unwrap();
    }

    std::fs::create_dir_all("results")?;
    std::fs::write("results/placement_sweep.txt", &out)?;
    println!("wrote results/placement_sweep.txt");
    Ok(())
}
