//! Session-scaling study: how motion-to-photon latency, frame drops
//! and admission decisions evolve as client sessions pile onto one
//! edge server (the multi-user counterpart of the paper's single-user
//! QoE tables).
//!
//! Two sweeps:
//!
//! 1. **Wi-Fi class** (1–16 sessions, real MSCKF per session): the
//!    historical contention curve on a 2-worker pool behind an
//!    802.11ac-class link — byte-identical to what this bench always
//!    produced;
//! 2. **Edge pool** (1–1,000 sessions): an accelerator-backed worker
//!    pool behind a 30/100 Gbit/s link with deadline-aware batch
//!    trimming, the régime the event-driven session engine exists
//!    for. Reports aggregate
//!    throughput (sessions × frames/s) alongside per-session p99 MTP,
//!    and reruns the 256-session point to check bit-identical reports.
//!
//! Usage: `cargo run --release -p illixr-bench --bin scaling_sessions`
//! (honours `ILLIXR_SECONDS`; writes `results/scaling_sessions.txt`).
//! Flags (see `illixr_bench::cli`): `--quick` caps runs at 2 simulated
//! seconds and the edge sweep at 256 sessions for CI; `--sessions <n>`
//! caps the edge sweep at `n`; `--shards <n>` overrides the engine
//! shard count (results are invariant to it); `--trace <path>` replays
//! the recorded boundary trace at `path` (written by
//! `trace_replay --write-fixture` or any `record_boundary` server run)
//! into every Wi-Fi-sweep session through per-session fan-out
//! transforms instead of running live generators.
//!
//! Every run is fully deterministic — simulated clock, seeded
//! trajectories, seeded link jitter — so two invocations produce a
//! bit-identical output file.

use std::fmt::Write as _;
use std::time::Duration;

use illixr_bench::cli::BenchArgs;
use illixr_bench::{mtp_stage_summary, rule, sim_duration, write_obs_artifacts};
use illixr_server::server::ReplayLoad;
use illixr_server::{
    LinkConfig, PlacementPolicy, SchedulerConfig, ServerBuilder, ServerReport, SessionState,
};

const WIFI_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
const EDGE_COUNTS: [usize; 5] = [1, 16, 64, 256, 1000];
/// Rerun-for-determinism point of the edge sweep (clamped to the
/// largest point actually swept when `--sessions` caps lower).
const EDGE_RERUN: usize = 256;

/// The scaled profile: a rack-class VIO pool (32 accelerator-backed
/// workers at 0.5 ms per update, 1 ms batch ticks) behind an
/// aggregated 30 Gbit/s up / 100 Gbit/s down edge ingress, batches
/// trimmed deadline-aware so overload sheds instead of queueing
/// unboundedly. A batch runs on one worker sequentially, so the
/// per-update cost — not the worker count — bounds how many jobs fit
/// one tick's batch inside the deadline; 0.5 ms carries a 1,000-session
/// tick comfortably where the Wi-Fi profile's 11 ms CPU updates cannot.
/// Per-session MSCKF is off — pose values don't affect timing, and
/// 1,000 live filters would dominate wall time.
fn edge_builder(n: usize, duration: Duration, shards: usize) -> ServerBuilder {
    ServerBuilder::new()
        .sessions(n)
        .duration(duration)
        .shards(shards)
        .link(LinkConfig {
            uplink_bps: 30e9,
            downlink_bps: 100e9,
            base_latency: Duration::from_millis(2),
            jitter_sigma: 0.0,
            seed: 0,
        })
        .scheduler(SchedulerConfig {
            workers: 32,
            batch_setup: Duration::from_millis(2),
            per_job: Duration::from_micros(500),
            placement: PlacementPolicy::DeadlineAware { deadline: Duration::from_millis(30) },
        })
        .tune(|c| c.server_tick = Duration::from_millis(1))
}

fn edge_row(n: usize, report: &ServerReport) -> String {
    format!(
        "{:>8} {:>9} {:>9} {:>9} {:>11.1} {:>12.3} {:>11.3} {:>10.4} {:>10.4}",
        n,
        report.admitted(),
        report.degraded(),
        report.count(SessionState::Rejected),
        report.aggregate_fps(),
        report.mean_mtp().as_secs_f64() * 1e3,
        report.p99_mtp().as_secs_f64() * 1e3,
        report.drop_rate(),
        report.pool_utilization,
    )
}

fn main() -> std::io::Result<()> {
    let args = BenchArgs::parse();
    let quick = args.quick();
    let duration = if quick { Duration::from_secs(2) } else { sim_duration() };
    let replay = args.trace();
    let replay_seed = args.seed().unwrap_or(42);
    let shards = args.shards().unwrap_or(32);
    let mut out = String::new();
    writeln!(
        out,
        "# Session scaling on one edge server ({}s simulated per point)",
        duration.as_secs()
    )
    .unwrap();
    writeln!(out, "# Shared link: Wi-Fi class (200 Mbit/s up, 400 Mbit/s down, 2 ms)").unwrap();
    writeln!(out, "# VIO pool: 2 workers, batched per 4 ms server tick; real MSCKF per session")
        .unwrap();
    writeln!(
        out,
        "{:>8} {:>9} {:>9} {:>9} {:>12} {:>11} {:>10} {:>13} {:>13} {:>10}",
        "sessions",
        "admitted",
        "degraded",
        "rejected",
        "mtp_mean_ms",
        "mtp_p99_ms",
        "drop_rate",
        "up_queue_ms",
        "down_queue_ms",
        "pool_util"
    )
    .unwrap();

    println!("Session scaling ({duration:?} simulated per point)");
    rule(112);

    let mut details = String::new();
    let mut mean_curve: Vec<f64> = Vec::new();
    let mut drops_or_rejections_seen = false;
    for &n in &WIFI_COUNTS {
        let mut builder = ServerBuilder::new().sessions(n).duration(duration).real_vio(true);
        if let Some(trace) = &replay {
            builder = builder.replay(ReplayLoad::fan_out(
                trace.clone(),
                replay_seed,
                Duration::from_millis(40),
                0.05,
            ));
        }
        let report = builder.build().run();
        let mean_ms = report.mean_mtp().as_secs_f64() * 1e3;
        let row = format!(
            "{:>8} {:>9} {:>9} {:>9} {:>12.3} {:>11.3} {:>10.4} {:>13.3} {:>13.3} {:>10.4}",
            n,
            report.admitted(),
            report.degraded(),
            report.count(SessionState::Rejected),
            mean_ms,
            report.p99_mtp().as_secs_f64() * 1e3,
            report.drop_rate(),
            report.uplink.mean_queue_delay().as_secs_f64() * 1e3,
            report.downlink.mean_queue_delay().as_secs_f64() * 1e3,
            report.pool_utilization,
        );
        println!("{row}");
        writeln!(out, "{row}").unwrap();
        writeln!(details, "\n## {n} sessions\n{}", report.summary_text()).unwrap();
        mean_curve.push(mean_ms);
        if report.drop_rate() > 0.0 || report.count(SessionState::Rejected) > 0 {
            drops_or_rejections_seen = true;
        }
    }

    // The whole point of the curve: contention can only make things
    // worse. Flag any inversion loudly (deterministic, so this is a
    // model regression, not noise).
    let monotone = mean_curve.windows(2).all(|w| w[1] >= w[0] - 1e-9);
    writeln!(
        out,
        "\nmean_mtp_monotone_nondecreasing={monotone} drops_or_rejections_at_scale={drops_or_rejections_seen}"
    )
    .unwrap();
    out.push_str(&details);

    rule(112);
    println!("mean MTP monotone non-decreasing: {monotone}");
    println!("drops or rejections at scale: {drops_or_rejections_seen}");
    if !monotone {
        eprintln!(
            "WARNING: mean MTP decreased while adding sessions — contention model regression"
        );
    }

    // --- Edge-pool sweep: the 1,000-session régime --------------------
    // Uniform per-point duration (capped: a 1,000-session point walks
    // ~5 M events) so aggregate throughput scales comparably.
    let edge_cap = args.sessions().unwrap_or(if quick { EDGE_RERUN } else { 1000 });
    let edge_duration =
        if quick { Duration::from_secs(2) } else { duration.min(Duration::from_secs(4)) };
    let edge_counts: Vec<usize> = EDGE_COUNTS.iter().copied().filter(|&n| n <= edge_cap).collect();
    writeln!(
        out,
        "\n# Edge-pool scaling ({}s simulated per point, {} shards)",
        edge_duration.as_secs(),
        shards
    )
    .unwrap();
    writeln!(out, "# Shared link: edge ingress (30 Gbit/s up, 100 Gbit/s down, 2 ms)").unwrap();
    writeln!(
        out,
        "# VIO pool: 32 workers at 0.5 ms/update, 1 ms ticks, deadline-aware (30 ms); synthetic poses"
    )
    .unwrap();
    writeln!(
        out,
        "{:>8} {:>9} {:>9} {:>9} {:>11} {:>12} {:>11} {:>10} {:>10}",
        "sessions",
        "admitted",
        "degraded",
        "rejected",
        "agg_fps",
        "mtp_mean_ms",
        "mtp_p99_ms",
        "drop_rate",
        "pool_util"
    )
    .unwrap();

    println!("Edge-pool scaling ({edge_duration:?} simulated per point, {shards} shards)");
    rule(98);

    let mut p99_curve: Vec<f64> = Vec::new();
    let mut rerun_reference = String::new();
    let rerun_point = EDGE_RERUN.min(*edge_counts.last().expect("edge sweep non-empty"));
    for &n in &edge_counts {
        let report = edge_builder(n, edge_duration, shards).build().run();
        let row = edge_row(n, &report);
        println!("{row}");
        writeln!(out, "{row}").unwrap();
        p99_curve.push(report.p99_mtp().as_secs_f64() * 1e3);
        if n == rerun_point {
            rerun_reference = report.summary_text();
        }
    }

    // Claims the engine exists to support: per-session p99 MTP stays
    // monotone under load and bounded (no unbounded queueing) all the
    // way up, and the rerun of the 256-session point is bit-identical.
    // Monotonicity is judged at the table's display resolution (1 µs):
    // nearest-rank p99 can dip by nanoseconds as the sample count
    // grows, which is not a contention inversion.
    let edge_monotone = p99_curve.windows(2).all(|w| w[1] >= w[0] - 1e-3);
    let edge_bounded = p99_curve.last().is_some_and(|&p| p < 100.0);
    println!("re-running {rerun_point}-session edge point for determinism...");
    let rerun = edge_builder(rerun_point, edge_duration, shards).build().run().summary_text();
    let edge_rerun_identical = rerun == rerun_reference;
    writeln!(
        out,
        "\nedge_p99_monotone_nondecreasing={edge_monotone} edge_p99_bounded={edge_bounded} \
         edge_rerun_identical={edge_rerun_identical}"
    )
    .unwrap();
    rule(98);
    println!("edge p99 MTP monotone non-decreasing: {edge_monotone}");
    println!("edge p99 MTP bounded (< 100 ms at scale): {edge_bounded}");
    println!("edge {rerun_point}-session rerun bit-identical: {edge_rerun_identical}");
    if !edge_rerun_identical {
        eprintln!("WARNING: edge rerun diverged — engine determinism regression");
    }

    // Traced run at a modest scale: spans for every pipeline stage,
    // switchboard flow events and per-stage MTP histograms, exported
    // as a Perfetto-loadable trace plus a metrics CSV. Deterministic:
    // re-running produces bit-identical artifacts.
    let traced_duration = duration.min(Duration::from_secs(4));
    let traced = ServerBuilder::new()
        .sessions(4)
        .duration(traced_duration)
        .trace(true)
        .real_vio(true)
        .build()
        .run();
    let stages = mtp_stage_summary(&traced.metrics);
    print!("{stages}");
    writeln!(out, "\n## traced run (4 sessions, {}s)\n{stages}", traced_duration.as_secs())
        .unwrap();

    std::fs::create_dir_all("results")?;
    std::fs::write("results/scaling_sessions.txt", &out)?;
    println!("wrote results/scaling_sessions.txt");
    write_obs_artifacts("scaling_sessions", &traced.tracer, &traced.metrics)?;
    Ok(())
}
