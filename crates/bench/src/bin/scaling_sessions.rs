//! Session-scaling study: how motion-to-photon latency, frame drops
//! and admission decisions evolve as client sessions pile onto one
//! edge server (the multi-user counterpart of the paper's single-user
//! QoE tables).
//!
//! Usage: `cargo run --release -p illixr-bench --bin scaling_sessions`
//! (honours `ILLIXR_SECONDS`; writes `results/scaling_sessions.txt`).
//! With `--trace <path>` every session replays the recorded boundary
//! trace at `path` (written by `trace_replay --write-fixture` or any
//! `record_boundary` server run) through per-session fan-out
//! transforms, instead of running live generators; without the flag
//! the sweep is byte-identical to what it always produced.
//!
//! Every run is fully deterministic — simulated clock, seeded
//! trajectories, seeded link jitter — so two invocations produce a
//! bit-identical output file.

use std::fmt::Write as _;
use std::sync::Arc;

use illixr_bench::{mtp_stage_summary, rule, sim_duration, write_obs_artifacts};
use illixr_core::boundary::Trace;
use illixr_server::server::ReplayLoad;
use illixr_server::{MultiSessionServer, ServerConfig};

const SESSION_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// `--trace <path>`: the decoded trace driving every session.
fn trace_arg() -> Option<Arc<Trace>> {
    let args: Vec<String> = std::env::args().collect();
    let path = args.iter().position(|a| a == "--trace").and_then(|i| args.get(i + 1))?;
    let bytes = std::fs::read(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let trace = Trace::decode(&bytes).unwrap_or_else(|e| panic!("decoding {path}: {e}"));
    println!("replaying {} ({} records) into every session", path, trace.record_count());
    Some(Arc::new(trace))
}

fn main() -> std::io::Result<()> {
    let duration = sim_duration();
    let replay = trace_arg();
    let mut out = String::new();
    writeln!(
        out,
        "# Session scaling on one edge server ({}s simulated per point)",
        duration.as_secs()
    )
    .unwrap();
    writeln!(out, "# Shared link: Wi-Fi class (200 Mbit/s up, 400 Mbit/s down, 2 ms)").unwrap();
    writeln!(out, "# VIO pool: 2 workers, batched per 4 ms server tick; real MSCKF per session")
        .unwrap();
    writeln!(
        out,
        "{:>8} {:>9} {:>9} {:>9} {:>12} {:>11} {:>10} {:>13} {:>13} {:>10}",
        "sessions",
        "admitted",
        "degraded",
        "rejected",
        "mtp_mean_ms",
        "mtp_p99_ms",
        "drop_rate",
        "up_queue_ms",
        "down_queue_ms",
        "pool_util"
    )
    .unwrap();

    println!("Session scaling ({duration:?} simulated per point)");
    rule(112);

    let mut details = String::new();
    let mut mean_curve: Vec<f64> = Vec::new();
    let mut drops_or_rejections_seen = false;
    for &n in &SESSION_COUNTS {
        let mut config = ServerConfig::new(n, duration);
        config.real_vio = true;
        if let Some(trace) = &replay {
            config = config.with_replay(ReplayLoad::fan_out(
                trace.clone(),
                42,
                std::time::Duration::from_millis(40),
                0.05,
            ));
        }
        let report = MultiSessionServer::new(config).run();
        let mean_ms = report.mean_mtp().as_secs_f64() * 1e3;
        let row = format!(
            "{:>8} {:>9} {:>9} {:>9} {:>12.3} {:>11.3} {:>10.4} {:>13.3} {:>13.3} {:>10.4}",
            n,
            report.admitted(),
            report.degraded(),
            report.count(illixr_server::SessionState::Rejected),
            mean_ms,
            report.p99_mtp().as_secs_f64() * 1e3,
            report.drop_rate(),
            report.uplink.mean_queue_delay().as_secs_f64() * 1e3,
            report.downlink.mean_queue_delay().as_secs_f64() * 1e3,
            report.pool_utilization,
        );
        println!("{row}");
        writeln!(out, "{row}").unwrap();
        writeln!(details, "\n## {n} sessions\n{}", report.summary_text()).unwrap();
        mean_curve.push(mean_ms);
        if report.drop_rate() > 0.0 || report.count(illixr_server::SessionState::Rejected) > 0 {
            drops_or_rejections_seen = true;
        }
    }

    // The whole point of the curve: contention can only make things
    // worse. Flag any inversion loudly (deterministic, so this is a
    // model regression, not noise).
    let monotone = mean_curve.windows(2).all(|w| w[1] >= w[0] - 1e-9);
    writeln!(
        out,
        "\nmean_mtp_monotone_nondecreasing={monotone} drops_or_rejections_at_scale={drops_or_rejections_seen}"
    )
    .unwrap();
    out.push_str(&details);

    rule(112);
    println!("mean MTP monotone non-decreasing: {monotone}");
    println!("drops or rejections at scale: {drops_or_rejections_seen}");
    if !monotone {
        eprintln!(
            "WARNING: mean MTP decreased while adding sessions — contention model regression"
        );
    }

    // Traced run at a modest scale: spans for every pipeline stage,
    // switchboard flow events and per-stage MTP histograms, exported
    // as a Perfetto-loadable trace plus a metrics CSV. Deterministic:
    // re-running produces bit-identical artifacts.
    let traced_duration = duration.min(std::time::Duration::from_secs(4));
    let mut traced_config = ServerConfig::new(4, traced_duration).with_trace();
    traced_config.real_vio = true;
    let traced = MultiSessionServer::new(traced_config).run();
    let stages = mtp_stage_summary(&traced.metrics);
    print!("{stages}");
    writeln!(out, "\n## traced run (4 sessions, {}s)\n{stages}", traced_duration.as_secs())
        .unwrap();

    std::fs::create_dir_all("results")?;
    std::fs::write("results/scaling_sessions.txt", &out)?;
    println!("wrote results/scaling_sessions.txt");
    write_obs_artifacts("scaling_sessions", &traced.tracer, &traced.metrics)?;
    Ok(())
}
