//! Fig 7: per-frame motion-to-photon latency, Platformer, all three
//! platforms.

use illixr_bench::experiment_config;
use illixr_platform::spec::Platform;
use illixr_render::apps::Application;
use illixr_system::experiment::IntegratedExperiment;

fn main() {
    println!("Fig 7: motion-to-photon latency per frame (ms), Platformer");
    println!("(paper: desktop ≈ 3 ms flat; Jetson-HP ≈ 6 ms; Jetson-LP ≈ 11 ms and spiky)\n");
    for platform in Platform::ALL {
        let r = IntegratedExperiment::run(&experiment_config(Application::Platformer, platform));
        let series: Vec<f64> = r.mtp.iter().map(|s| s.total().as_secs_f64() * 1e3).collect();
        let stats = r.mtp_ms().expect("mtp samples");
        println!("{:<10} n={:<5} mean±std = {:.1} ms", platform.label(), series.len(), stats);
        let stride = (series.len() / 80).max(1);
        let pts: Vec<String> = series.iter().step_by(stride).map(|v| format!("{v:.2}")).collect();
        println!("  series(ms): {}\n", pts.join(" "));
    }
}
