//! Table VI: task-level time breakdown of VIO and scene reconstruction,
//! measured from the instrumented standalone components on the synthetic
//! Vicon-Room-like dataset.

use std::sync::Arc;

use illixr_bench::rule;
use illixr_core::telemetry::TaskTimer;
use illixr_core::Time;
use illixr_reconstruction::pipeline::ScenePipeline;
use illixr_sensors::camera::{PinholeCamera, StereoRig};
use illixr_sensors::dataset::SyntheticDataset;
use illixr_sensors::trajectory::Trajectory;
use illixr_sensors::types::StereoFrame;
use illixr_sensors::world::LandmarkWorld;
use illixr_vio::integrator::ImuState;
use illixr_vio::msckf::{Msckf, VioConfig};

fn print_shares(title: &str, paper: &[(&str, f64)], timer: &TaskTimer, note: &str) {
    println!("\n{title}");
    rule(60);
    println!("{:<26} {:>10} {:>10}", "task", "measured", "paper");
    let shares = timer.shares();
    for (task, paper_share) in paper {
        let measured =
            shares.iter().find(|(n, _)| n == task).map(|(_, s)| *s * 100.0).unwrap_or(0.0);
        println!("{task:<26} {measured:>9.1}% {paper_share:>9.0}%");
    }
    if !note.is_empty() {
        println!("  note: {note}");
    }
}

fn main() {
    println!("Table VI: task breakdown of VIO and scene reconstruction");

    // --- VIO -------------------------------------------------------------
    let cam = PinholeCamera::qvga();
    let rig = StereoRig::zed_mini(cam);
    let ds = SyntheticDataset::vicon_room_like(42, 10.0);
    let gt0 = &ds.ground_truth[0];
    let mut filter = Msckf::new(
        VioConfig::accurate(cam),
        ImuState::from_pose(gt0.timestamp, gt0.pose, gt0.velocity),
    );
    let vio_timer = TaskTimer::new();
    let mut imu_idx = 0;
    for (k, &cam_t) in ds.camera_times.iter().enumerate() {
        while imu_idx < ds.imu.len() && ds.imu[imu_idx].timestamp <= cam_t {
            filter.process_imu(ds.imu[imu_idx]);
            imu_idx += 1;
        }
        let (left, right) = ds.render_frame(&rig, k);
        filter.process_frame(
            &StereoFrame {
                timestamp: cam_t,
                left: Arc::new(left),
                right: Arc::new(right),
                seq: k as u64,
            },
            Some(&vio_timer),
        );
    }
    print_shares(
        "VIO (OpenVINS-style MSCKF, Vicon-Room-like synthetic sequence)",
        &[
            ("feature detection", 15.0),
            ("feature matching", 13.0),
            ("feature initialization", 14.0),
            ("MSCKF update", 23.0),
            ("SLAM update", 20.0),
            ("marginalization", 5.0),
            ("other", 10.0),
        ],
        &vio_timer,
        "all seven tasks present; shares skew toward matching because this \
         scalar KLT lacks the SIMD the reference's OpenCV tracker has \
         relative to its Eigen filter backend (see EXPERIMENTS.md)",
    );

    // --- Scene reconstruction ---------------------------------------------
    let world = LandmarkWorld::lab(7);
    let traj = Trajectory::gentle(7);
    let scene_cam = PinholeCamera { fx: 95.0, fy: 95.0, cx: 48.0, cy: 36.0, width: 96, height: 72 };
    let scene_rig = StereoRig::zed_mini(scene_cam);
    let mut pipe = ScenePipeline::elastic_fusion_like(scene_cam, traj.pose(Time::ZERO));
    let scene_timer = TaskTimer::new();
    for k in 0..40u64 {
        let t = Time::from_millis(k * 100);
        let depth = world.render_depth(&scene_rig, &traj.pose(t));
        pipe.process(&depth, None, Some(&scene_timer));
    }
    print_shares(
        "Scene reconstruction (ElasticFusion-style surfel pipeline, dyson_lab-like scene)",
        &[
            ("camera processing", 5.0),
            ("image processing", 18.0),
            ("pose estimation", 28.0),
            ("surfel prediction", 34.0),
            ("map fusion", 15.0),
        ],
        &scene_timer,
        "all five tasks present; the scalar bilateral filter is relatively \
         more expensive than ElasticFusion's CUDA kernel (see EXPERIMENTS.md)",
    );
}
