//! Table III: the tuned system-level parameters.

use illixr_bench::rule;
use illixr_system::config::SystemConfig;

fn main() {
    let c = SystemConfig::default();
    println!("Table III: key ILLIXR parameters after system-level tuning");
    rule(66);
    println!("{:<28} {:>14} {:>14}", "parameter", "tuned", "deadline");
    rule(66);
    println!(
        "{:<28} {:>14} {:>14}",
        "Camera (VIO) rate",
        format!("{} Hz", c.camera_hz),
        format!("{:.1} ms", c.camera_period().as_secs_f64() * 1e3)
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "IMU (integrator) rate",
        format!("{} Hz", c.imu_hz),
        format!("{:.1} ms", c.imu_period().as_secs_f64() * 1e3)
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "Display rate",
        format!("{} Hz", c.display_hz),
        format!("{:.2} ms", c.display_period().as_secs_f64() * 1e3)
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "Audio block rate",
        format!("{} Hz", c.audio_hz),
        format!("{:.1} ms", c.audio_period().as_secs_f64() * 1e3)
    );
    println!("{:<28} {:>14} {:>14}", "Audio block size", format!("{}", c.audio_block), "-");
    println!("{:<28} {:>14} {:>14}", "Field of view", format!("{}°", c.fov_deg), "-");
    println!(
        "{:<28} {:>14} {:>14}",
        "Eye buffer (simulated)",
        format!("{}x{}", c.eye_width, c.eye_height),
        "-"
    );
    println!("\n(paper Table III: camera 15 Hz/VGA, IMU 500 Hz, display 120 Hz/2K/90°,");
    println!(" audio 48 Hz blocks of 1024 — identical tuned values; the simulation");
    println!(" renders smaller eye buffers and charges 2K cost via the timing model)");

    // The tuned parameters as a gauge CSV for downstream tooling.
    let metrics = illixr_core::obs::Metrics::new();
    metrics.set_gauge("params.camera_hz", c.camera_hz);
    metrics.set_gauge("params.imu_hz", c.imu_hz);
    metrics.set_gauge("params.display_hz", c.display_hz);
    metrics.set_gauge("params.audio_hz", c.audio_hz);
    metrics.set_gauge("params.audio_block", c.audio_block as f64);
    metrics.set_gauge("params.fov_deg", c.fov_deg);
    metrics.set_gauge("params.eye_width", c.eye_width as f64);
    metrics.set_gauge("params.eye_height", c.eye_height as f64);
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/table3.metrics.csv", illixr_core::obs::metrics_csv(&metrics))
        .expect("write table3 metrics");
    println!("\nwrote results/table3.metrics.csv");
}
