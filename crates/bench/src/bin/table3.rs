//! Table III: the tuned system-level parameters.

use illixr_bench::rule;
use illixr_system::config::SystemConfig;

fn main() {
    let c = SystemConfig::default();
    println!("Table III: key ILLIXR parameters after system-level tuning");
    rule(66);
    println!("{:<28} {:>14} {:>14}", "parameter", "tuned", "deadline");
    rule(66);
    println!(
        "{:<28} {:>14} {:>14}",
        "Camera (VIO) rate",
        format!("{} Hz", c.camera_hz),
        format!("{:.1} ms", c.camera_period().as_secs_f64() * 1e3)
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "IMU (integrator) rate",
        format!("{} Hz", c.imu_hz),
        format!("{:.1} ms", c.imu_period().as_secs_f64() * 1e3)
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "Display rate",
        format!("{} Hz", c.display_hz),
        format!("{:.2} ms", c.display_period().as_secs_f64() * 1e3)
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "Audio block rate",
        format!("{} Hz", c.audio_hz),
        format!("{:.1} ms", c.audio_period().as_secs_f64() * 1e3)
    );
    println!("{:<28} {:>14} {:>14}", "Audio block size", format!("{}", c.audio_block), "-");
    println!("{:<28} {:>14} {:>14}", "Field of view", format!("{}°", c.fov_deg), "-");
    println!(
        "{:<28} {:>14} {:>14}",
        "Eye buffer (simulated)",
        format!("{}x{}", c.eye_width, c.eye_height),
        "-"
    );
    println!("\n(paper Table III: camera 15 Hz/VGA, IMU 500 Hz, display 120 Hz/2K/90°,");
    println!(" audio 48 Hz blocks of 1024 — identical tuned values; the simulation");
    println!(" renders smaller eye buffers and charges 2K cost via the timing model)");
}
