//! Dumps raw per-frame telemetry CSVs for every app × platform — the
//! artifact's `results/metrics/metrics-${hardware}-${app}` workflow,
//! which its analysis scripts then turn into the figures.
//!
//! Usage: `cargo run -p illixr-bench --release --bin metrics_dump`
//! (writes `results/metrics/metrics-<platform>-<app>.csv` and a
//! companion `streams-<platform>-<app>.csv` with per-stream switchboard
//! counters: publishes, back-pressure drops, subscriptions).

use illixr_bench::experiment_config;
use illixr_platform::spec::Platform;
use illixr_render::apps::Application;
use illixr_system::experiment::IntegratedExperiment;

fn main() -> std::io::Result<()> {
    let dir = std::path::Path::new("results/metrics");
    std::fs::create_dir_all(dir)?;
    for platform in Platform::ALL {
        for app in Application::ALL {
            // One representative pair additionally exports span/flow
            // observability artifacts (Perfetto trace + histogram CSV).
            let mut cfg = experiment_config(app, platform);
            cfg.trace = platform == Platform::Desktop && app == Application::Platformer;
            let r = IntegratedExperiment::run(&cfg);
            if cfg.trace {
                let (trace, csv) = illixr_core::obs::write_artifacts(
                    dir,
                    "obs-desktop-platformer",
                    &r.tracer,
                    &r.metrics,
                )?;
                println!("{:<40} obs trace", trace.display());
                println!("{:<40} obs histograms", csv.display());
            }
            let name = format!(
                "metrics-{}-{}.csv",
                platform.label().to_lowercase().replace('-', ""),
                app.label().to_lowercase().replace(' ', "_")
            );
            let path = dir.join(&name);
            r.telemetry.save_csv(&path)?;
            let mut streams_csv = String::from("stream,published,dropped,subscribers\n");
            for s in &r.stream_stats {
                streams_csv
                    .push_str(&format!("{},{},{},{}\n", s.name, s.seq, s.dropped, s.subscribers));
            }
            std::fs::write(dir.join(name.replace("metrics-", "streams-")), streams_csv)?;
            println!(
                "{:<40} {:>8} records, {:>7.1} J",
                path.display(),
                r.telemetry
                    .component_names()
                    .iter()
                    .map(|n| r.telemetry.records(n).len())
                    .sum::<usize>(),
                r.energy_joules
            );
        }
    }
    println!("\nEach CSV row: component,release_ns,start_ns,end_ns,cpu_ns,work_factor,missed");
    Ok(())
}
