//! Table IV: motion-to-photon latency (mean ± std, ms) for every
//! application and platform.

use illixr_bench::{experiment_config, rule};
use illixr_platform::spec::Platform;
use illixr_render::apps::Application;
use illixr_system::experiment::IntegratedExperiment;

fn main() {
    println!("Table IV: motion-to-photon latency in ms (mean±std), without t_display");
    println!("(paper: Desktop 3.1±1.1 … 3.0±0.9; Jetson-HP 13.5±10.7 … 5.6±1.4;");
    println!(" Jetson-LP 19.3±14.5 … 12.0±3.4; targets: VR < 20 ms, AR < 5 ms)\n");
    print!("{:<12}", "Platform");
    for app in Application::ALL {
        print!(" {:>12}", app.label());
    }
    println!();
    rule(12 + 13 * 4);
    for platform in Platform::ALL {
        print!("{:<12}", platform.label());
        for app in Application::ALL {
            let r = IntegratedExperiment::run(&experiment_config(app, platform));
            match r.mtp_ms() {
                Some(m) => print!(" {:>12}", format!("{m:.1}")),
                None => print!(" {:>12}", "-"),
            }
        }
        println!();
    }
}
