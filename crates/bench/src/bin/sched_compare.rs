//! Scheduling-policy comparison: sweeps offered load across the three
//! `illixr-sched` policies (rate-monotonic, EDF, adaptive governor) on
//! a deliberately constrained single-core platform and reports the
//! motion-to-photon chain (imu → integrator → timewarp) deadline
//! behaviour of each.
//!
//! Usage: `cargo run --release -p illixr-bench --bin sched_compare`
//! (`--quick` caps each cell at 3 simulated seconds for CI; honours
//! `ILLIXR_SECONDS` otherwise; writes `results/sched_compare.txt` plus
//! one chain-latency/MTP CDF CSV per policy).
//!
//! Every run is fully deterministic — simulated clock, seeded sensors —
//! so two invocations produce bit-identical output files.

use std::fmt::Write as _;
use std::time::Duration;

use illixr_bench::cli::BenchArgs;
use illixr_bench::{experiment_config, rule};
use illixr_core::sched::PolicyKind;
use illixr_platform::spec::Platform;
use illixr_render::apps::Application;
use illixr_system::experiment::{ExperimentResult, IntegratedExperiment};

const LOADS: [f64; 3] = [1.0, 2.0, 3.0];

/// Chain deadline for the study. Tighter than the paper's ~25 ms
/// single-user budget: on the pinned single core the interesting
/// transition (blocked integrator → stale display pose) happens in the
/// 10–30 ms band, and a 15 ms budget puts the overloaded rows right on
/// it.
const CHAIN_DEADLINE: Duration = Duration::from_millis(15);
const POLICIES: [PolicyKind; 3] =
    [PolicyKind::RateMonotonic, PolicyKind::Edf, PolicyKind::Adaptive];

/// One (load, policy) cell of the sweep.
struct Cell {
    load: f64,
    policy: PolicyKind,
    chain_total: usize,
    chain_miss_rate: f64,
    chain_p50_ms: f64,
    chain_p99_ms: f64,
    mtp_mean_ms: f64,
    mtp_p99_ms: f64,
    shed: u64,
    level: u32,
    /// Sorted chain latencies (ms) for the CDF export.
    chain_ms: Vec<f64>,
    /// Sorted MTP totals (ms) for the CDF export.
    mtp_ms: Vec<f64>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_cell(load: f64, policy: PolicyKind) -> Cell {
    let result = run_once(load, policy);
    summarize(load, policy, &result)
}

/// Nine cells are simulated, so cap the per-cell duration well below
/// the harness-wide `ILLIXR_SECONDS` maximum (3 s under `--quick`).
fn bench_duration() -> Duration {
    let cap = if BenchArgs::parse().quick() { 3 } else { 20 };
    illixr_bench::sim_duration().min(Duration::from_secs(cap))
}

fn run_once(load: f64, policy: PolicyKind) -> ExperimentResult {
    // One CPU core turns the paper's 6-core desktop into a contended
    // platform where the non-preemptive VIO update blocks the 2 ms
    // IMU-integrator period — exactly the régime where scheduling
    // policy matters.
    let mut config = experiment_config(Application::Platformer, Platform::Desktop)
        .with_policy(policy)
        .with_load_factor(load)
        .with_cpu_cores(1);
    config.duration = bench_duration();
    config.chain_deadline = CHAIN_DEADLINE;
    IntegratedExperiment::run(&config)
}

fn summarize(load: f64, policy: PolicyKind, result: &ExperimentResult) -> Cell {
    let mut chain_ms: Vec<f64> =
        result.chain_outcomes.iter().map(|o| o.latency_ns as f64 / 1e6).collect();
    chain_ms.sort_by(|a, b| a.total_cmp(b));
    let misses = result.chain_outcomes.iter().filter(|o| o.missed).count();
    let total = result.chain_outcomes.len();
    let mut mtp_ms: Vec<f64> = result.mtp.iter().map(|s| s.total().as_secs_f64() * 1e3).collect();
    mtp_ms.sort_by(|a, b| a.total_cmp(b));
    let mtp_mean_ms =
        if mtp_ms.is_empty() { 0.0 } else { mtp_ms.iter().sum::<f64>() / mtp_ms.len() as f64 };
    Cell {
        load,
        policy,
        chain_total: total,
        chain_miss_rate: if total == 0 { 0.0 } else { misses as f64 / total as f64 },
        chain_p50_ms: percentile(&chain_ms, 0.50),
        chain_p99_ms: percentile(&chain_ms, 0.99),
        mtp_mean_ms,
        mtp_p99_ms: percentile(&mtp_ms, 0.99),
        shed: result.shed_jobs,
        level: result.degradation_level,
        chain_ms,
        mtp_ms,
    }
}

/// Writes one CDF CSV: cumulative fraction against chain latency and
/// MTP, sampled on a fixed quantile grid so files stay small and
/// comparable across policies.
fn write_cdf(policy: PolicyKind, cell: &Cell) -> std::io::Result<()> {
    let mut csv = String::from("quantile,chain_latency_ms,mtp_ms\n");
    for i in 0..=100u32 {
        let q = i as f64 / 100.0;
        writeln!(
            csv,
            "{q:.2},{:.6},{:.6}",
            percentile(&cell.chain_ms, q),
            percentile(&cell.mtp_ms, q)
        )
        .unwrap();
    }
    let path = format!("results/sched_compare_cdf_{}.csv", policy.label());
    std::fs::write(&path, csv)?;
    println!("wrote {path}");
    Ok(())
}

fn main() -> std::io::Result<()> {
    let duration = bench_duration();
    let mut out = String::new();
    writeln!(
        out,
        "# Scheduling-policy comparison, Platformer on Desktop pinned to 1 CPU core \
         ({}s simulated per cell)",
        duration.as_secs()
    )
    .unwrap();
    writeln!(
        out,
        "# chain = imu -> imu_integrator -> timewarp, deadline {} ms",
        CHAIN_DEADLINE.as_millis()
    )
    .unwrap();
    writeln!(
        out,
        "{:>5} {:>15} {:>7} {:>10} {:>9} {:>9} {:>9} {:>9} {:>6} {:>6}",
        "load",
        "policy",
        "chains",
        "miss_rate",
        "p50_ms",
        "p99_ms",
        "mtp_ms",
        "mtp_p99",
        "shed",
        "level"
    )
    .unwrap();

    println!("Scheduling-policy comparison ({duration:?} simulated per cell)");
    rule(96);

    let mut cells: Vec<Cell> = Vec::new();
    for &load in &LOADS {
        for &policy in &POLICIES {
            let cell = run_cell(load, policy);
            let row = format!(
                "{:>5.1} {:>15} {:>7} {:>10.4} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>6} {:>6}",
                cell.load,
                cell.policy.label(),
                cell.chain_total,
                cell.chain_miss_rate,
                cell.chain_p50_ms,
                cell.chain_p99_ms,
                cell.mtp_mean_ms,
                cell.mtp_p99_ms,
                cell.shed,
                cell.level,
            );
            println!("{row}");
            writeln!(out, "{row}").unwrap();
            cells.push(cell);
        }
    }

    // The claims the subsystem exists to support, checked on the top
    // overload row: the governor strictly reduces p99 chain lateness
    // and miss rate versus rate-monotonic while MTP stays bounded
    // (timewarp is Critical — never shed).
    let top = *LOADS.last().expect("loads non-empty");
    let find = |load: f64, policy: PolicyKind| {
        cells.iter().find(|c| c.load == load && c.policy == policy).expect("cell present")
    };
    let rm = find(top, PolicyKind::RateMonotonic);
    let gov = find(top, PolicyKind::Adaptive);
    let governor_reduces_p99 = gov.chain_p99_ms < rm.chain_p99_ms;
    let governor_reduces_misses = gov.chain_miss_rate < rm.chain_miss_rate;
    let mtp_bounded = gov.mtp_p99_ms < 3.0 * rm.mtp_p99_ms.max(1.0);
    writeln!(
        out,
        "\ngovernor_reduces_p99_chain_latency={governor_reduces_p99} \
         governor_reduces_miss_rate={governor_reduces_misses} mtp_bounded={mtp_bounded}"
    )
    .unwrap();
    rule(96);
    println!("governor reduces p99 chain latency at {top}x load: {governor_reduces_p99}");
    println!("governor reduces chain miss rate at {top}x load: {governor_reduces_misses}");
    println!("governor MTP stays bounded: {mtp_bounded}");
    if !(governor_reduces_p99 && governor_reduces_misses) {
        eprintln!("WARNING: adaptive governor did not beat rate-monotonic under overload");
    }

    // Determinism: the overload governor cell rerun must match its
    // first run sample for sample.
    let rerun = summarize(top, PolicyKind::Adaptive, &run_once(top, PolicyKind::Adaptive));
    let deterministic = rerun.chain_ms == gov.chain_ms
        && rerun.mtp_ms == gov.mtp_ms
        && rerun.shed == gov.shed
        && rerun.level == gov.level;
    writeln!(out, "deterministic_rerun_identical={deterministic}").unwrap();
    println!("deterministic rerun identical: {deterministic}");

    std::fs::create_dir_all("results")?;
    for &policy in &POLICIES {
        let cell = find(top, policy);
        write_cdf(policy, cell)?;
    }
    std::fs::write("results/sched_compare.txt", &out)?;
    println!("wrote results/sched_compare.txt");
    Ok(())
}
