//! Fault-intensity sweep: runs the integrated experiment under the
//! canonical [`FaultPlan::scheduled`] stress plan (sensor faults, a
//! mid-run link outage, a `vio` crash) at increasing intensity, in two
//! runtime modes:
//!
//! * **supervised** — adaptive governor + crash supervision: the `vio`
//!   crash is answered with a backoff restart and the panic→recovery
//!   latency lands in the `supervisor.recovery` accounting;
//! * **baseline** — rate-monotonic, supervision off: the crash is
//!   contained but `vio` stays dead for the rest of the run.
//!
//! Usage: `cargo run --release -p illixr-bench --bin fault_sweep`
//! (`--quick` caps each cell at 3 simulated seconds for CI; honours
//! `ILLIXR_SECONDS` otherwise; writes `results/fault_sweep.txt`
//! embedding the exact fault schedule).
//!
//! Every run is fully deterministic — simulated clock, seeded sensors,
//! hash-based fault trials — so two invocations produce bit-identical
//! artifacts; the harness reruns the top supervised cell and checks.

use std::fmt::Write as _;
use std::time::Duration;

use illixr_bench::cli::BenchArgs;
use illixr_bench::{experiment_config, rule};
use illixr_core::fault::FaultPlan;
use illixr_core::sched::PolicyKind;
use illixr_core::supervisor::SupervisionPolicy;
use illixr_platform::spec::Platform;
use illixr_render::apps::Application;
use illixr_system::experiment::{ExperimentResult, IntegratedExperiment};

const SEED: u64 = 42;
const INTENSITIES: [f64; 3] = [0.0, 0.5, 1.0];
/// Same contended régime as `sched_compare`: one core at 2× load is
/// where the governor's shedding matters, so the supervised mode's
/// advantage under faults is visible in the chain-miss column.
const LOAD: f64 = 2.0;
const CHAIN_DEADLINE: Duration = Duration::from_millis(15);

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Supervised,
    Baseline,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Supervised => "supervised",
            Mode::Baseline => "baseline",
        }
    }
}

/// One (intensity, mode) cell of the sweep.
struct Cell {
    intensity: f64,
    mode: Mode,
    chain_total: usize,
    chain_miss_rate: f64,
    mtp_mean_ms: f64,
    mtp_p99_ms: f64,
    pose_judder: f64,
    panics: u32,
    recoveries: usize,
    recovery_mean_ms: f64,
    recovery_p50_ms: f64,
    recovery_p99_ms: f64,
    restarts: u32,
    degraded: u32,
    failed: usize,
    level: u32,
    shed: u64,
    /// Raw sorted samples kept for the determinism check.
    mtp_ms: Vec<f64>,
    chain_ms: Vec<f64>,
    recovery_ns: Vec<u64>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn bench_duration(quick: bool) -> Duration {
    if quick {
        Duration::from_secs(3)
    } else {
        illixr_bench::sim_duration().min(Duration::from_secs(12))
    }
}

fn run_once(intensity: f64, mode: Mode, duration: Duration) -> ExperimentResult {
    let plan = FaultPlan::scheduled(SEED, intensity, duration.as_nanos() as u64);
    let mut config = experiment_config(Application::Platformer, Platform::Desktop)
        .with_load_factor(LOAD)
        .with_cpu_cores(1)
        .with_fault_plan(plan);
    config.duration = duration;
    config.chain_deadline = CHAIN_DEADLINE;
    config = match mode {
        Mode::Supervised => {
            config.with_policy(PolicyKind::Adaptive).with_supervision(SupervisionPolicy::default())
        }
        Mode::Baseline => config.with_policy(PolicyKind::RateMonotonic),
    };
    IntegratedExperiment::run(&config)
}

fn summarize(intensity: f64, mode: Mode, result: &ExperimentResult) -> Cell {
    let mut mtp_ms: Vec<f64> = result.mtp.iter().map(|s| s.total().as_secs_f64() * 1e3).collect();
    mtp_ms.sort_by(|a, b| a.total_cmp(b));
    let mut chain_ms: Vec<f64> =
        result.chain_outcomes.iter().map(|o| o.latency_ns as f64 / 1e6).collect();
    chain_ms.sort_by(|a, b| a.total_cmp(b));
    let misses = result.chain_outcomes.iter().filter(|o| o.missed).count();
    let total = result.chain_outcomes.len();
    let recovery_ns = result.supervisor.recovery_times_ns();
    let recovery_mean_ms = if recovery_ns.is_empty() {
        0.0
    } else {
        recovery_ns.iter().sum::<u64>() as f64 / recovery_ns.len() as f64 / 1e6
    };
    let mut recovery_ms: Vec<f64> = recovery_ns.iter().map(|&n| n as f64 / 1e6).collect();
    recovery_ms.sort_by(|a, b| a.total_cmp(b));
    let sup_report = result.supervisor.report();
    Cell {
        intensity,
        mode,
        chain_total: total,
        chain_miss_rate: if total == 0 { 0.0 } else { misses as f64 / total as f64 },
        mtp_mean_ms: if mtp_ms.is_empty() {
            0.0
        } else {
            mtp_ms.iter().sum::<f64>() / mtp_ms.len() as f64
        },
        mtp_p99_ms: percentile(&mtp_ms, 0.99),
        pose_judder: result.pose_judder().unwrap_or(0.0),
        panics: result.supervisor.total_panics(),
        recoveries: recovery_ns.len(),
        recovery_mean_ms,
        recovery_p50_ms: percentile(&recovery_ms, 0.50),
        recovery_p99_ms: percentile(&recovery_ms, 0.99),
        restarts: sup_report.iter().map(|r| r.restarts).sum(),
        degraded: sup_report.iter().map(|r| r.degraded_incidents).sum(),
        failed: sup_report
            .iter()
            .filter(|r| r.health == illixr_core::supervisor::PluginHealth::Failed)
            .count(),
        level: result.degradation_level,
        shed: result.shed_jobs,
        mtp_ms,
        chain_ms,
        recovery_ns,
    }
}

fn main() -> std::io::Result<()> {
    let quick = BenchArgs::parse().quick();
    let duration = bench_duration(quick);
    let top = *INTENSITIES.last().expect("intensities non-empty");

    let mut out = String::new();
    writeln!(
        out,
        "# Fault-intensity sweep, Platformer on Desktop pinned to 1 CPU core at {LOAD}x load \
         ({}s simulated per cell, seed {SEED})",
        duration.as_secs()
    )
    .unwrap();
    writeln!(
        out,
        "# chain deadline {} ms; schedule at intensity {top}:",
        CHAIN_DEADLINE.as_millis()
    )
    .unwrap();
    for line in FaultPlan::scheduled(SEED, top, duration.as_nanos() as u64).summary().lines() {
        writeln!(out, "#   {line}").unwrap();
    }
    let header = format!(
        "{:>9} {:>11} {:>7} {:>10} {:>8} {:>8} {:>9} {:>7} {:>10} {:>9} {:>6} {:>6}",
        "intensity",
        "mode",
        "chains",
        "miss_rate",
        "mtp_ms",
        "mtp_p99",
        "judder_m",
        "panics",
        "recoveries",
        "recov_ms",
        "level",
        "shed",
    );
    writeln!(out, "{header}").unwrap();

    println!("Fault-intensity sweep ({duration:?} simulated per cell)");
    rule(112);
    println!("{header}");

    let mut cells: Vec<Cell> = Vec::new();
    for &intensity in &INTENSITIES {
        for mode in [Mode::Baseline, Mode::Supervised] {
            let cell = summarize(intensity, mode, &run_once(intensity, mode, duration));
            let row = format!(
                "{:>9.2} {:>11} {:>7} {:>10.4} {:>8.3} {:>8.3} {:>9.5} {:>7} {:>10} {:>9.3} \
                 {:>6} {:>6}",
                cell.intensity,
                cell.mode.label(),
                cell.chain_total,
                cell.chain_miss_rate,
                cell.mtp_mean_ms,
                cell.mtp_p99_ms,
                cell.pose_judder,
                cell.panics,
                cell.recoveries,
                cell.recovery_mean_ms,
                cell.level,
                cell.shed,
            );
            println!("{row}");
            writeln!(out, "{row}").unwrap();
            cells.push(cell);
        }
    }

    // Supervisor outcome rows: the same restart/degraded/failed gauges
    // that `metrics.csv` carries, plus the `supervisor.recovery`
    // distribution, one row per cell so regressions in crash handling
    // are greppable from the artifact alone.
    writeln!(out, "\n# supervisor outcomes (matches supervisor.* gauges in metrics.csv)").unwrap();
    for cell in &cells {
        let row = format!(
            "supervisor.recovery intensity={:.2} mode={} p50_ms={:.3} p99_ms={:.3} \
             restarts={} degraded={} failed={}",
            cell.intensity,
            cell.mode.label(),
            cell.recovery_p50_ms,
            cell.recovery_p99_ms,
            cell.restarts,
            cell.degraded,
            cell.failed,
        );
        println!("{row}");
        writeln!(out, "{row}").unwrap();
    }

    // The claims the subsystem exists to support, checked at the top
    // intensity.
    let find = |intensity: f64, mode: Mode| {
        cells.iter().find(|c| c.intensity == intensity && c.mode == mode).expect("cell present")
    };
    let sup = find(top, Mode::Supervised);
    let base = find(top, Mode::Baseline);
    // The scheduled vio crash fired in both modes; only the supervised
    // run restarted the plugin and recorded a recovery latency.
    let recovery_recorded = sup.panics >= 1 && sup.recoveries >= 1;
    let baseline_stays_dead = base.panics >= 1 && base.recoveries == 0;
    let governor_lower_miss = sup.chain_miss_rate < base.chain_miss_rate;
    writeln!(
        out,
        "\nrecovery_recorded={recovery_recorded} baseline_stays_dead={baseline_stays_dead} \
         governor_lower_miss_rate={governor_lower_miss}"
    )
    .unwrap();
    rule(112);
    println!("supervised run recovered from the vio crash: {recovery_recorded}");
    println!("baseline run left vio dead after the crash: {baseline_stays_dead}");
    println!(
        "supervised+governor beats baseline miss rate at intensity {top}: {governor_lower_miss}"
    );
    if !(recovery_recorded && governor_lower_miss) {
        eprintln!("WARNING: fault-tolerance claims did not hold on this run");
    }

    // Determinism: the top supervised cell rerun must match bit for bit.
    let rerun = summarize(top, Mode::Supervised, &run_once(top, Mode::Supervised, duration));
    let deterministic = rerun.mtp_ms == sup.mtp_ms
        && rerun.chain_ms == sup.chain_ms
        && rerun.recovery_ns == sup.recovery_ns
        && rerun.panics == sup.panics
        && rerun.level == sup.level
        && rerun.shed == sup.shed;
    writeln!(out, "deterministic_rerun_identical={deterministic}").unwrap();
    println!("deterministic rerun identical: {deterministic}");

    std::fs::create_dir_all("results")?;
    std::fs::write("results/fault_sweep.txt", &out)?;
    println!("wrote results/fault_sweep.txt");
    Ok(())
}
